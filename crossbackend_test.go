package randompeer

import (
	"fmt"
	"testing"

	"github.com/dht-sampling/randompeer/internal/stats"
)

// TestCrossBackendDeterminism is the substrate-independence claim made
// executable at the sequence level: the King–Saia sampler consults the
// DHT only through H and Next, and every backend resolves both to the
// identical peers over the same ring, so the same seeds must yield the
// exact same sequence of sampled owners on the oracle, on Chord, and
// on Kademlia. Any backend peeking past the dht.DHT interface — or any
// backend resolving ownership differently — breaks the equality.
func TestCrossBackendDeterminism(t *testing.T) {
	t.Parallel()
	const (
		n       = 64
		seed    = 17
		samples = 400
	)
	sequences := make(map[Backend][]int, 3)
	for _, backend := range Backends() {
		tb, err := New(WithPeers(n), WithSeed(seed), WithBackend(backend))
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		s, err := tb.UniformSampler(seed + 1)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		seq := make([]int, samples)
		for i := range seq {
			p, err := s.Sample()
			if err != nil {
				t.Fatalf("%v: sample %d: %v", backend, i, err)
			}
			seq[i] = p.Owner
		}
		sequences[backend] = seq
	}
	want := sequences[OracleBackend]
	for _, backend := range Backends() {
		got := sequences[backend]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("backend %v diverges from oracle at sample %d: owner %d vs %d",
					backend, i, got[i], want[i])
			}
		}
	}
}

// TestCrossBackendUniformity runs the chi-square goodness-of-fit test
// on every backend with the same seeds: the sampler's uniformity
// guarantee (Theorem 6) must not depend on the routing geometry
// beneath it.
func TestCrossBackendUniformity(t *testing.T) {
	t.Parallel()
	const (
		n       = 32
		samples = 3200
	)
	for _, backend := range Backends() {
		backend := backend
		t.Run(fmt.Sprint(backend), func(t *testing.T) {
			t.Parallel()
			tb, err := New(WithPeers(n), WithSeed(5), WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			s, err := tb.UniformSampler(9)
			if err != nil {
				t.Fatal(err)
			}
			tally := make([]int64, n)
			for i := 0; i < samples; i++ {
				p, err := s.Sample()
				if err != nil {
					t.Fatal(err)
				}
				if p.Owner < 0 || p.Owner >= n {
					t.Fatalf("owner %d outside [0, %d)", p.Owner, n)
				}
				tally[p.Owner]++
			}
			_, pvalue, err := stats.ChiSquareUniform(tally)
			if err != nil {
				t.Fatal(err)
			}
			if pvalue < 0.001 {
				t.Fatalf("uniformity rejected on %v (p = %v)", backend, pvalue)
			}
		})
	}
}
