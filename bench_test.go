package randompeer

// Benchmark harness: one testing.B benchmark per experiment table or
// figure series of the reproduction (see DESIGN.md section 4 for the
// experiment index and EXPERIMENTS.md for recorded results). Run all of
// them with:
//
//	go test -bench=. -benchmem
//
// The benchmarks time the operations the corresponding experiment
// measures; the experiment harness (cmd/experiments) produces the
// actual tables.

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/agreement"
	"github.com/dht-sampling/randompeer/internal/arcs"
	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/biased"
	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/churn"
	"github.com/dht-sampling/randompeer/internal/collect"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/engine"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/loadbalance"
	"github.com/dht-sampling/randompeer/internal/randgraph"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// benchOracle builds an oracle DHT of size n for benchmarks.
func benchOracle(b *testing.B, n int) *dht.Oracle {
	b.Helper()
	rng := rand.New(rand.NewPCG(uint64(n), 0xbe7c))
	o, err := dht.GenerateOracle(rng, n)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

func benchRing(b *testing.B, n int) *ring.Ring {
	b.Helper()
	rng := rand.New(rand.NewPCG(uint64(n), 0x417c))
	r, err := ring.Generate(rng, n)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkUniformSample is the headline single-sample benchmark: one
// King–Saia uniform sample over the oracle backend at n=16384. It is
// the per-op cost the batch engine parallelizes; CI runs it on every
// push as the perf-trajectory anchor.
func BenchmarkUniformSample(b *testing.B) {
	o := benchOracle(b, 16384)
	rng := rand.New(rand.NewPCG(20, 20))
	s, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchThroughput measures the concurrent sampling engine on
// the million-peer oracle backend at 1/2/4/8 workers, reporting
// samples/sec. On a multi-core machine throughput scales with workers
// (the per-block forks share no mutable state and the cost meter is
// sharded); cmd/benchsnap records the same measurement into the
// committed BENCH_<pr>.json trajectory.
//
// batch must stay well above workers*engine.DefaultBlockSize — the
// engine clamps workers to the block count, so a small batch would
// silently measure fewer workers than the sub-benchmark name claims —
// and large enough that drawing samples, not zeroing the per-worker
// million-owner tallies, dominates each op.
func BenchmarkBatchThroughput(b *testing.B) {
	const n = 1_000_000
	const batch = 16384
	o := benchOracle(b, n)
	rng := rand.New(rand.NewPCG(21, 21))
	s, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				_, err := engine.SampleN(context.Background(), s, batch, engine.Config{
					Workers: w, Seed: uint64(i), Owners: o.Owners(), TallyOnly: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(batch)*float64(b.N)/elapsed.Seconds(), "samples/sec")
		})
	}
}

// BenchmarkChooseRandomPeer (E1): one uniform sample over the oracle
// backend across network sizes.
func BenchmarkChooseRandomPeer(b *testing.B) {
	for _, n := range []int{1024, 16384, 262144} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			o := benchOracle(b, n)
			rng := rand.New(rand.NewPCG(1, uint64(n)))
			s, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Sample(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSampleCostChord (E2): one uniform sample over a real Chord
// ring, paying genuine O(log n) lookup RPCs.
func BenchmarkSampleCostChord(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := benchRing(b, n)
			net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), r.Points())
			if err != nil {
				b.Fatal(err)
			}
			d, err := net.AsDHT(r.At(0))
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(2, uint64(n)))
			s, err := core.New(d, d.Self(), rng, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Sample(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSampleCostKademlia (E24): one uniform sample over a real
// Kademlia overlay, paying genuine iterative FIND_NODE lookups.
func BenchmarkSampleCostKademlia(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := benchRing(b, n)
			net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), r.Points())
			if err != nil {
				b.Fatal(err)
			}
			d, err := net.AsDHT(r.At(0))
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(2, uint64(n)))
			s, err := core.New(d, d.Self(), rng, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Sample(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKademliaLookup: the h primitive on the Kademlia overlay —
// an alpha-parallel iterative FIND_NODE plus the O(1) clockwise-owner
// verification.
func BenchmarkKademliaLookup(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := benchRing(b, n)
			net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), r.Points())
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(10, uint64(n)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := net.ResolveOwner(r.At(0), ring.Point(rng.Uint64())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLookupCostBackends (E24): the per-lookup t_h/m_h comparison
// across all three substrates at n=16384, reported as rpcs/lookup and
// msgs/lookup metrics next to wall-clock time. This is the committed
// cross-backend cost benchmark: the oracle charges the synthetic
// textbook cost, Chord pays finger hops, Kademlia pays k-close
// alpha-parallel FIND_NODE waves plus an O(1) ring verification.
func BenchmarkLookupCostBackends(b *testing.B) {
	const n = 16384
	for _, backend := range Backends() {
		b.Run(backend.String(), func(b *testing.B) {
			tb, err := New(WithPeers(n), WithSeed(15), WithBackend(backend))
			if err != nil {
				b.Fatal(err)
			}
			d := tb.DHT()
			rng := rand.New(rand.NewPCG(16, uint64(n)))
			before := d.Meter().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.H(ring.Point(rng.Uint64())); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cost := d.Meter().Snapshot().Sub(before)
			b.ReportMetric(float64(cost.Calls)/float64(b.N), "rpcs/lookup")
			b.ReportMetric(float64(cost.Messages)/float64(b.N), "msgs/lookup")
		})
	}
}

// BenchmarkEstimateN (E3): the size-estimation walk.
func BenchmarkEstimateN(b *testing.B) {
	for _, c1 := range []float64{1, 2, 4} {
		b.Run(fmt.Sprintf("c1=%v", c1), func(b *testing.B) {
			o := benchOracle(b, 16384)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateN(o, o.PeerByIndex(i%o.Size()), c1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLemma1 (E4): the successor-arc bound check over a full ring.
func BenchmarkLemma1(b *testing.B) {
	r := benchRing(b, 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arcs.CheckLemma1(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLemma2 (E5): the anchored-interval concentration check.
func BenchmarkLemma2(b *testing.B) {
	r := benchRing(b, 4096)
	params := arcs.Lemma2Params{C: 8, Alpha1: 1, Alpha2: 3, Eps: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arcs.CheckLemma2(r, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLemma4 (E6): the sliding-window peerless-interval sum check.
func BenchmarkLemma4(b *testing.B) {
	r := benchRing(b, 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arcs.CheckLemma4(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtremes (E7): arc-extreme statistics.
func BenchmarkExtremes(b *testing.B) {
	r := benchRing(b, 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arcs.Extremes(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveSample (E8): the biased heuristic (one lookup).
func BenchmarkNaiveSample(b *testing.B) {
	o := benchOracle(b, 16384)
	s := baseline.NewNaive(o, rand.New(rand.NewPCG(3, 3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplerComparison (E9/E10): one sample from each strategy at
// equal network size.
func BenchmarkSamplerComparison(b *testing.B) {
	const n = 16384
	o := benchOracle(b, n)
	rng := rand.New(rand.NewPCG(4, 4))
	ks, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	graph := baseline.NewOracleGraph(o)
	walk, err := baseline.NewWalk(o, graph, o.PeerByIndex(0), int(math.Log2(n)), rng)
	if err != nil {
		b.Fatal(err)
	}
	samplers := []dht.Sampler{ks, baseline.NewNaive(o, rng), walk}
	for _, s := range samplers {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Sample(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPolling (E11): a 100-sample mean poll.
func BenchmarkPolling(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewPCG(5, 5))
	r, err := ring.Generate(rng, n)
	if err != nil {
		b.Fatal(err)
	}
	o := dht.NewOracle(r)
	pop, err := collect.ArcCorrelated(r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := collect.PollMean(s, pop, 100, 1.96); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandGraph (E12): building a 1000-node, 5-links graph and
// measuring its giant component after 30% adversarial deletion.
func BenchmarkRandGraph(b *testing.B) {
	const n, k = 1000, 5
	o := benchOracle(b, n)
	rng := rand.New(rand.NewPCG(6, 6))
	s, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := randgraph.Build(s, n, k)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.DeleteAdversarial(0.3); err != nil {
			b.Fatal(err)
		}
		_ = g.LargestComponentFraction()
	}
}

// BenchmarkLoadBalance (E13): assigning n tasks to n peers.
func BenchmarkLoadBalance(b *testing.B) {
	const n = 1024
	o := benchOracle(b, n)
	rng := rand.New(rand.NewPCG(7, 7))
	s, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loadbalance.Assign(s, n, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommittees (E14): electing one 64-seat committee.
func BenchmarkCommittees(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewPCG(8, 8))
	r, err := ring.Generate(rng, n)
	if err != nil {
		b.Fatal(err)
	}
	o := dht.NewOracle(r)
	bad, _, err := agreement.LongestArcAttack(r, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agreement.ElectCommittees(s, func(owner int) bool { return bad[owner] }, 64, 1, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnEvent (E15): one churn event (join or crash) plus its
// maintenance rounds on a live Chord ring.
func BenchmarkChurnEvent(b *testing.B) {
	r := benchRing(b, 128)
	net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	d, err := churn.NewDriver(churn.Chord(net), rng, churn.Config{Events: 1 << 30, RoundsPerEvent: 2})
	if err != nil {
		b.Fatal(err)
	}
	_ = d
	b.ResetTimer()
	// Drive single events by constructing one-event drivers repeatedly
	// over the same network (the network keeps evolving).
	for i := 0; i < b.N; i++ {
		one, err := churn.NewDriver(churn.Chord(net), rng, churn.Config{Events: 1, RoundsPerEvent: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := one.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStepFactor (E16): the exact analyzer at the paper's
// walk bound versus a truncated bound.
func BenchmarkAblationStepFactor(b *testing.B) {
	r := benchRing(b, 4096)
	for _, factor := range []float64{1, 6} {
		params, err := core.DeriveParams(float64(r.Len()), 1, factor)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("factor=%v", factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(r, params.Lambda, params.MaxSteps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyze (E17): the exact Theorem 6 verification across sizes.
func BenchmarkAnalyze(b *testing.B) {
	for _, n := range []int{1024, 16384, 131072} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := benchRing(b, n)
			params, err := core.DeriveParams(float64(n), 1, 6)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(r, params.Lambda, params.MaxSteps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBiasedSample (E18): one inverse-distance biased sample
// (rejection over the uniform sampler).
func BenchmarkBiasedSample(b *testing.B) {
	const n = 4096
	o := benchOracle(b, n)
	rng := rand.New(rand.NewPCG(11, 11))
	uniform, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	w, maxW, err := biased.InverseDistance(o.PeerByIndex(0), 0.05)
	if err != nil {
		b.Fatal(err)
	}
	s, err := biased.New(uniform, w, maxW, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetropolisSample (E19): one degree-corrected walk sample on
// the symmetrized overlay.
func BenchmarkMetropolisSample(b *testing.B) {
	const n = 4096
	o := benchOracle(b, n)
	g := baseline.NewUndirectedOracleGraph(o)
	rng := rand.New(rand.NewPCG(12, 12))
	s, err := baseline.NewMetropolisWalk(o, g, o.PeerByIndex(0), 4*int(math.Log2(n)), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoSample: the deployment wrapper (includes periodic
// re-estimation).
func BenchmarkAutoSample(b *testing.B) {
	const n = 4096
	o := benchOracle(b, n)
	rng := rand.New(rand.NewPCG(13, 13))
	s, err := core.NewAuto(o, o.PeerByIndex(0), rng, core.Config{}, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChordPutGet (E20 substrate): one replicated Put plus one Get
// over the real Chord ring.
func BenchmarkChordPutGet(b *testing.B) {
	r := benchRing(b, 256)
	net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(14, 14))
	from := r.At(0)
	value := []byte("benchmark-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := ring.Point(rng.Uint64())
		if err := net.Put(from, key, value, 3); err != nil {
			b.Fatal(err)
		}
		if _, err := net.Get(from, key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChordLookup: the underlying h primitive on the real Chord
// ring (the t_h = O(log n) the paper assumes).
func BenchmarkChordLookup(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := benchRing(b, n)
			net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), r.Points())
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(10, uint64(n)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.Lookup(r.At(0), ring.Point(rng.Uint64())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimTransportOverhead (E25): the cost of the virtual-clock
// transport on the sampling hot path. Each sub-benchmark draws uniform
// samples over the same static Chord ring; "direct" uses the plain
// synchronous transport, "sim" the discrete-event transport in
// free-running mode (latency draw + clock advance + histogram record
// per RPC). The acceptance bound is absolute — on the order of 20 ns
// of extra work per RPC — rather than a percentage: the PR 4 hot-path
// pass sped up both transports but direct more, so the ratio benchsnap
// records (BENCH_<pr>.json) grew from 8.4% to ~16% even though the
// simulation machinery itself got cheaper per RPC.
func BenchmarkSimTransportOverhead(b *testing.B) {
	const n = 1024
	transports := map[string]func() simnet.Transport{
		"direct": func() simnet.Transport { return simnet.NewDirect() },
		"sim": func() simnet.Transport {
			return sim.NewTransport(sim.WithModel(sim.Constant{RTT: time.Millisecond}))
		},
	}
	for _, name := range []string{"direct", "sim"} {
		b.Run(name, func(b *testing.B) {
			r := benchRing(b, n)
			net, err := chord.BuildStatic(chord.Config{}, transports[name](), r.Points())
			if err != nil {
				b.Fatal(err)
			}
			d, err := net.AsDHT(r.At(0))
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(2, n))
			s, err := core.New(d, d.Self(), rng, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Sample(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelEventLoop: the raw discrete-event scheduling cost, the
// floor under every kernel-mode simulation, across the kernel's three
// dispatch paths:
//
//   - proc: one process sleeping through b.N events. With nothing else
//     queued every sleep takes the run-to-completion fast path — no
//     heap operation, no channel handoff — which is the common shape of
//     a simulation dominated by one active process at a time. The PR-3
//     kernel paid two channel handoffs plus a container/heap push+pop
//     here (~492 ns/event on the reference box).
//   - callback: a self-reposting Post callback — a pure timer chain
//     through the 4-ary queue with zero channel operations.
//   - proc-interleaved: two processes strictly alternating, forcing the
//     full coroutine yield/resume handoff on every event — the worst
//     case, and the closest analogue of the PR-3 per-event cost.
func BenchmarkKernelEventLoop(b *testing.B) {
	b.Run("proc", func(b *testing.B) {
		k := sim.NewKernel(1)
		k.Go("sleeper", func() {
			for i := 0; i < b.N; i++ {
				if k.Sleep(time.Microsecond) != nil {
					return
				}
			}
		})
		b.ResetTimer()
		k.Run()
	})
	b.Run("callback", func(b *testing.B) {
		k := sim.NewKernel(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				k.Post(time.Microsecond, "tick", tick)
			}
		}
		k.Post(time.Microsecond, "tick", tick)
		b.ResetTimer()
		k.Run()
	})
	b.Run("proc-interleaved", func(b *testing.B) {
		k := sim.NewKernel(1)
		for p := 0; p < 2; p++ {
			k.Go("sleeper", func() {
				for i := 0; i < (b.N+1)/2; i++ {
					if k.Sleep(time.Microsecond) != nil {
						return
					}
				}
			})
		}
		b.ResetTimer()
		k.Run()
	})
}

// BenchmarkBuildStatic: bulk overlay construction cost per backend —
// the start-up price of every large scenario. Construction shards
// per-node routing state over GOMAXPROCS workers (bit-identical at any
// worker count), so ns/op here scales down with cores.
func BenchmarkBuildStatic(b *testing.B) {
	const n = 1 << 14
	r := benchRing(b, n)
	points := r.Points()
	b.Run("chord", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), points); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kademlia", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points); err != nil {
				b.Fatal(err)
			}
		}
	})
}
