package randompeer

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"

	"github.com/dht-sampling/randompeer/internal/adversary"
	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Adversarial surface of the facade: the fault plan attached to every
// transport-backed testbed, Byzantine attack installation, and the
// swap-based mitigation sampler. Everything is reproducible from seeds
// (the CLI's -drop-rate/-partition/-adversary flags wire through here).

// FaultPlan is the composable fault-injection plan a transport-backed
// testbed carries: a global drop rate, asymmetric per-link drops,
// message-class-targeted loss, and named network partitions with heal
// events. See the methods of internal/simnet.Faults.
type FaultPlan = simnet.Faults

// FaultPlan returns the testbed's fault plan. It is nil for the oracle
// backend, which models RPCs without a transport; the Chord and
// Kademlia backends always carry one (an empty plan costs one atomic
// load per RPC).
func (tb *Testbed) FaultPlan() *FaultPlan { return tb.faults }

// PartitionFraction installs a named partition cutting a seeded random
// fraction of peers (at least one, never the primary caller peer 0)
// off from the rest. Heal it with FaultPlan().Heal(name). It is the
// programmatic form of the CLI's -partition flag.
func (tb *Testbed) PartitionFraction(name string, fraction float64, seed uint64) error {
	if tb.faults == nil {
		return fmt.Errorf("randompeer: partitions require a transport-backed backend (chord or kademlia), not %s", tb.backend)
	}
	if fraction <= 0 || fraction >= 1 {
		return fmt.Errorf("randompeer: partition fraction %v outside (0,1)", fraction)
	}
	count := int(fraction * float64(tb.n))
	if count < 1 {
		count = 1
	}
	if count > tb.n-1 {
		count = tb.n - 1
	}
	// Seeded choice among peers 1..n-1 (peer 0 initiates lookups and
	// stays on the majority side).
	idx := make([]int, tb.n-1)
	for i := range idx {
		idx[i] = i + 1
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x510e527fade682d1))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	island := make([]simnet.NodeID, 0, count)
	for _, i := range idx[:count] {
		island = append(island, simnet.NodeID(tb.r.At(i)))
	}
	rest := make([]simnet.NodeID, 0, tb.n-count)
	chosen := make(map[int]bool, count)
	for _, i := range idx[:count] {
		chosen[i] = true
	}
	for i := 0; i < tb.n; i++ {
		if !chosen[i] {
			rest = append(rest, simnet.NodeID(tb.r.At(i)))
		}
	}
	tb.faults.Partition(name, island, rest)
	return nil
}

// Adversary is a compiled Byzantine attack installed on a testbed's
// transport. Remove disarms it; the selection and every steering
// decision are pure functions of the installation seed.
type Adversary struct {
	tb   *Testbed
	plan *adversary.Plan
}

// InstallAdversary compiles and arms a Byzantine attack on the
// testbed's transport. spec is "kind:fraction" — kind one of
// "route-bias", "eclipse" or "censor", fraction the subverted share of
// the membership in [0,1] (e.g. "route-bias:0.2"). seed roots node
// selection and per-call steering. exclude lists owner indices the
// threat model assumes honest (peer 0, the primary sampling vantage,
// is always excluded; pass any additional swap-sampler vantages).
//
// Eclipse attacks target the peer halfway around the ring from the
// caller (owner index n/2); read it back with Victim. Only the Chord
// and Kademlia backends can host an adversary — the oracle executes no
// RPCs to subvert.
func (tb *Testbed) InstallAdversary(spec string, seed uint64, exclude ...int) (*Adversary, error) {
	kind, fraction, err := parseAdversarySpec(spec)
	if err != nil {
		return nil, err
	}
	if tb.backend != ChordBackend && tb.backend != KademliaBackend {
		return nil, fmt.Errorf("randompeer: adversary requires a transport-backed backend (chord or kademlia), not %s", tb.backend)
	}
	excludePoints := []Point{tb.r.At(0)}
	for _, i := range exclude {
		p, err := tb.Peer(i)
		if err != nil {
			return nil, err
		}
		excludePoints = append(excludePoints, p.Point)
	}
	cfg := adversary.Config{
		Kind:     kind,
		Fraction: fraction,
		Seed:     seed,
		Exclude:  excludePoints,
	}
	if kind == adversary.Eclipse {
		cfg.Victim = tb.r.At(tb.n / 2)
	}
	var members []Point
	var install func(plan *adversary.Plan, t simnet.Interceptable)
	var t simnet.Transport
	switch tb.backend {
	case ChordBackend:
		members = tb.net.Members()
		t = tb.net.Transport()
		install = func(plan *adversary.Plan, it simnet.Interceptable) {
			it.SetInterceptor(plan.ChordInterceptor())
		}
	case KademliaBackend:
		members = tb.knet.Members()
		t = tb.knet.Transport()
		install = func(plan *adversary.Plan, it simnet.Interceptable) {
			it.SetInterceptor(plan.KademliaInterceptor())
		}
	}
	it, ok := t.(simnet.Interceptable)
	if !ok {
		return nil, fmt.Errorf("randompeer: transport %T does not support Byzantine interception", t)
	}
	plan, err := adversary.New(members, cfg)
	if err != nil {
		return nil, fmt.Errorf("randompeer: compiling adversary: %w", err)
	}
	install(plan, it)
	return &Adversary{tb: tb, plan: plan}, nil
}

// parseAdversarySpec splits "kind:fraction".
func parseAdversarySpec(spec string) (adversary.Kind, float64, error) {
	name, frac, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("randompeer: adversary spec %q is not kind:fraction (e.g. route-bias:0.2)", spec)
	}
	kind, err := adversary.ParseKind(name)
	if err != nil {
		return 0, 0, err
	}
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, 0, fmt.Errorf("randompeer: adversary fraction %q outside [0,1]", frac)
	}
	return kind, f, nil
}

// AdversaryKinds returns the attack names InstallAdversary accepts.
func AdversaryKinds() []string { return adversary.Kinds() }

// Kind returns the attack's name ("route-bias", "eclipse", "censor").
func (a *Adversary) Kind() string { return a.plan.Kind().String() }

// NumNodes returns how many peers the attack subverted.
func (a *Adversary) NumNodes() int { return a.plan.NumNodes() }

// Contains reports whether the given peer is subverted.
func (a *Adversary) Contains(p Peer) bool { return a.plan.Contains(p.Point) }

// Victim returns the eclipse target (valid for eclipse attacks only).
func (a *Adversary) Victim() (Peer, error) {
	if a.plan.Kind() != adversary.Eclipse {
		return Peer{}, fmt.Errorf("randompeer: %s attack has no victim", a.Kind())
	}
	v := a.plan.Victim()
	for i := 0; i < a.tb.n; i++ {
		if a.tb.r.At(i) == v {
			return Peer{Point: v, Owner: i}, nil
		}
	}
	return Peer{Point: v, Owner: -1}, nil
}

// EclipseFraction measures the attack's capture of the victim's
// routing state: the fraction of the victim's successor-list and
// finger entries (Chord) or k-bucket contacts (Kademlia) pointing at
// subverted nodes. Run maintenance sweeps first to give the attack its
// window; near-zero without them.
func (a *Adversary) EclipseFraction() (float64, error) {
	switch a.tb.backend {
	case ChordBackend:
		return a.plan.EclipseChord(a.tb.net)
	case KademliaBackend:
		return a.plan.EclipseKademlia(a.tb.knet)
	}
	return 0, fmt.Errorf("randompeer: no eclipse measurement for backend %s", a.tb.backend)
}

// Remove disarms the attack, restoring honest RPC delivery.
func (a *Adversary) Remove() {
	var t simnet.Transport
	switch a.tb.backend {
	case ChordBackend:
		t = a.tb.net.Transport()
	case KademliaBackend:
		t = a.tb.knet.Transport()
	default:
		return
	}
	if it, ok := t.(simnet.Interceptable); ok {
		it.SetInterceptor(nil)
	}
}

// SwapSampler builds the PeerSwap-style mitigation sampler: every
// sample is resolved from two of the testbed's vantage peers
// ("swapping" audit duty across the pool) and accepted only when both
// agree on the owner. The audit is key-split — the second vantage
// resolves a key skewed by far less than the mean owner arc, so the
// owner is the same when routing is honest but a per-key forged reply
// names a different colluder for each key and gets rejected. Under
// Byzantine routing that subverts a lookup with probability q this
// drives the accepted bias from the naive sampler's q toward q²/c (c
// the coalition size) at the price of a non-zero failure rate from
// rejected audits. vantages selects the pool size (minimum and default
// 2); vantage peers are spread evenly around the ring starting at peer
// 0 and should be passed to InstallAdversary's exclude list — the
// threat model assumes the auditors themselves are honest.
func (tb *Testbed) SwapSampler(seed uint64, vantages int) (Sampler, error) {
	if vantages <= 0 {
		vantages = 2
	}
	if vantages < 2 || vantages > tb.n {
		return nil, fmt.Errorf("randompeer: swap sampler needs 2..%d vantages, got %d", tb.n, vantages)
	}
	views := make([]dht.DHT, 0, vantages)
	for _, i := range tb.SwapVantages(vantages) {
		switch tb.backend {
		case ChordBackend:
			v, err := tb.net.AsDHT(tb.r.At(i))
			if err != nil {
				return nil, fmt.Errorf("randompeer: swap vantage %d: %w", i, err)
			}
			views = append(views, v)
		case KademliaBackend:
			v, err := tb.knet.AsDHT(tb.r.At(i))
			if err != nil {
				return nil, fmt.Errorf("randompeer: swap vantage %d: %w", i, err)
			}
			views = append(views, v)
		default:
			// The oracle has one global view; the audit degenerates to
			// agreement-with-itself, which keeps the sampler available
			// for apples-to-apples comparisons.
			views = append(views, tb.oracle)
		}
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9b05688c2b3e6c1f))
	// Key-split skew of 1/64 mean arc keeps the honest false-rejection
	// rate below about 1%; the ownership cap of one mean arc trades an
	// e^-1 per-attempt honest rejection rate (under 2% of samples
	// exhaust their retries) for catching widest-interval lies and
	// truncating the naive sampler's arc-length bias. A deployment
	// would calibrate both from Estimate n; the testbed knows its size
	// exactly.
	meanArc := ^uint64(0) / uint64(tb.n)
	s, err := baseline.NewSwap(views, baseline.SwapConfig{
		Skew:         meanArc/64 + 1,
		MaxOwnerDist: meanArc,
		Bisect:       6,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("randompeer: building swap sampler: %w", err)
	}
	return s, nil
}

// SwapVantages returns the owner indices SwapSampler uses as its
// vantage pool of the given size: evenly spread around the ring
// starting at peer 0. Pass them to InstallAdversary's exclude list.
func (tb *Testbed) SwapVantages(vantages int) []int {
	if vantages < 2 {
		vantages = 2
	}
	if vantages > tb.n {
		vantages = tb.n
	}
	out := make([]int, vantages)
	for i := range out {
		out[i] = i * tb.n / vantages
	}
	return out
}
