package randompeer

import (
	"context"
	"sync"
	"testing"
)

// TestSampleNFacadeDeterminism: the facade batch API must reproduce the
// same multiset (indeed the same sequence) of peers for a fixed batch
// seed at every worker count, on both the uniform and naive samplers.
func TestSampleNFacadeDeterminism(t *testing.T) {
	tb, err := New(WithPeers(512), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	us, err := tb.UniformSampler(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Sampler{us, tb.NaiveSampler(6)} {
		base, err := tb.SampleN(context.Background(), s, 2000, WithWorkers(1), WithBatchSeed(77))
		if err != nil {
			t.Fatal(err)
		}
		if !base.Deterministic {
			t.Fatalf("%s: batch run not deterministic", s.Name())
		}
		for _, workers := range []int{2, 8} {
			got, err := tb.SampleN(context.Background(), s, 2000, WithWorkers(workers), WithBatchSeed(77))
			if err != nil {
				t.Fatal(err)
			}
			for i := range base.Peers {
				if got.Peers[i] != base.Peers[i] {
					t.Fatalf("%s workers=%d: peer %d differs", s.Name(), workers, i)
				}
			}
		}
	}
}

// TestSampleNFacadeTallyAndCost: the tally must sum to k and the batch
// must charge the testbed meter (per-sample cost ~ O(log n) calls).
func TestSampleNFacadeTallyAndCost(t *testing.T) {
	tb, err := New(WithPeers(1024), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.UniformSampler(9)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3000
	res, err := tb.SampleN(context.Background(), s, k, WithWorkers(4), WithTallyOnly())
	if err != nil {
		t.Fatal(err)
	}
	if res.Peers != nil {
		t.Fatal("WithTallyOnly kept the peer log")
	}
	if len(res.Tally) != tb.Size() {
		t.Fatalf("tally over %d owners, want %d", len(res.Tally), tb.Size())
	}
	var total int64
	for _, c := range res.Tally {
		total += c
	}
	if total != k {
		t.Fatalf("tally sums to %d, want %d", total, k)
	}
	if res.Cost.Calls < k {
		t.Fatalf("batch charged only %d calls for %d samples", res.Cost.Calls, k)
	}
}

// TestSampleNFacadeStress hammers one testbed from concurrent batch
// runs and raw Sample calls at once — the facade-level -race gate.
// It runs on every backend: the protocol backends drive concurrent
// lookups through their own locking (Chord's node state, Kademlia's
// routing tables and ring pointers), which no single-goroutine
// conformance test exercises.
func TestSampleNFacadeStress(t *testing.T) {
	t.Parallel()
	for _, backend := range Backends() {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			t.Parallel()
			n, batch, raw := 256, 1000, 200
			if backend != OracleBackend {
				n, batch, raw = 64, 300, 60 // real lookups are pricier
			}
			tb, err := New(WithPeers(n), WithSeed(8), WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			s, err := tb.UniformSampler(2)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					if _, err := tb.SampleN(context.Background(), s, batch, WithWorkers(4), WithBatchSeed(uint64(g))); err != nil {
						errs <- err
					}
				}(g)
			}
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < raw; i++ {
						if _, err := s.Sample(); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestSampleNFacadeAuto: AutoUniformSampler is not forkable, so the
// batch must fall back to the shared-sampler mode and still complete.
func TestSampleNFacadeAuto(t *testing.T) {
	tb, err := New(WithPeers(128), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.AutoUniformSampler(3, 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.SampleN(context.Background(), s, 1200, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("auto sampler cannot be deterministic across workers")
	}
	var total int64
	for _, c := range res.Tally {
		total += c
	}
	if total != 1200 {
		t.Fatalf("tally sums to %d, want 1200", total)
	}
}

// TestForkableSamplers pins which facade samplers implement
// ForkableSampler.
func TestForkableSamplers(t *testing.T) {
	tb, err := New(WithPeers(128), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	us, err := tb.UniformSampler(1)
	if err != nil {
		t.Fatal(err)
	}
	w, maxW, err := tb.InverseDistanceWeight(0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := tb.BiasedSampler(1, w, maxW)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := tb.MetropolisSampler(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := tb.AutoUniformSampler(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		s    Sampler
		want bool
	}{
		{us, true},
		{tb.NaiveSampler(2), true},
		{bs, true},
		{ms, true},
		{auto, false},
	} {
		if _, ok := tc.s.(ForkableSampler); ok != tc.want {
			t.Errorf("%s: forkable = %v, want %v", tc.s.Name(), ok, tc.want)
		}
	}
}
