package randompeer

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every program under examples/ so
// the example code cannot silently rot: each must compile against the
// current API and exit 0. The examples are tiny (the whole set runs in
// a few seconds); CI additionally runs them in a go-run matrix.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example subprocesses in -short mode")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, gobin, "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("examples/%s produced no output", name)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example programs found")
	}
}
