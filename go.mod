module github.com/dht-sampling/randompeer

go 1.22
