// Command experiments regenerates every table and figure-series of the
// King–Saia reproduction (experiments E1-E28, indexed in DESIGN.md).
// The substrate experiments enumerate randompeer.Backends(), so a new
// DHT backend shows up in their tables without any change here.
//
// Usage:
//
//	experiments [-run E1,E2|all] [-seed N] [-quick] [-csv DIR] [-list] [-workers N] [-latency MODEL]
//
// -latency selects the link-latency model for the simulated-time
// experiments (E25, E26) — e.g. constant:1ms, uniform:500us-5ms,
// lognormal:2ms,0.6, straggler:0.1,8,constant:1ms — defaulting to a
// constant 1ms round trip.
//
// Output is a paper-style aligned table per experiment on stdout; with
// -csv the raw data also lands in DIR/<id>.csv for plotting. Experiments
// (and the sweep points within them) execute across -workers goroutines;
// every sweep point is seeded independently, so the tables are identical
// at any worker count and print in experiment order regardless of which
// finishes first.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/dht-sampling/randompeer/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runIDs  = fs.String("run", "all", "comma-separated experiment ids (e.g. E1,E8) or 'all'")
		seed    = fs.Uint64("seed", 1, "root seed; equal seeds reproduce equal tables")
		quick   = fs.Bool("quick", false, "reduced sweeps (smoke run)")
		csvDir  = fs.String("csv", "", "also write <id>.csv files into this directory")
		list    = fs.Bool("list", false, "list experiments and exit")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "goroutines for experiments and their sweep points")
		latency = fs.String("latency", "", "latency model for the simulated-time experiments (default constant:1ms)")
		sloOut  = fs.String("slo-report", "", "also write the per-backend E28 SLO report (markdown) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}
	selected, err := selectExperiments(*runIDs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	}
	cfg := exp.RunConfig{Seed: *seed, Quick: *quick, Workers: *workers, Latency: *latency}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("running %d experiments (%s mode, seed %d, %d workers)\n\n", len(selected), mode, *seed, *workers)
	failures := 0
	for _, res := range exp.RunAll(cfg, selected, *workers) {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", res.Experiment.ID, res.Err)
			failures++
			continue
		}
		if err := res.Table.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		fmt.Printf("  (%s completed in %v)\n\n", res.Experiment.ID, res.Elapsed.Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res.Table); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				failures++
			}
		}
	}
	if *sloOut != "" {
		if err := writeSLOReport(*sloOut, *seed, *quick, *latency); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			failures++
		} else {
			fmt.Printf("wrote SLO report to %s\n", *sloOut)
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// writeSLOReport runs the E28 scenario per backend with the same seed
// derivation the E28 table uses and writes the full markdown report —
// the artifact the CI smoke job uploads. Same seed, same mode: the
// report's numbers match the table's.
func writeSLOReport(path string, seed uint64, quick bool, latency string) error {
	model, err := exp.RunConfig{Latency: latency}.LatencyModel()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	defer f.Close()
	for _, backend := range []string{"chord", "kademlia"} {
		sc := exp.DefaultSLOScenario(backend, quick, model, seed^0x28^uint64(len(backend)))
		res, err := exp.RunSLOScenario(sc)
		if err != nil {
			return fmt.Errorf("E28 %s: %w", backend, err)
		}
		if err := res.WriteMarkdownReport(f); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return f.Close()
}

func selectExperiments(spec string) ([]exp.Experiment, error) {
	if spec == "all" || spec == "" {
		return exp.All(), nil
	}
	var out []exp.Experiment
	for _, id := range strings.Split(spec, ",") {
		e, err := exp.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func writeCSV(dir string, table *exp.Table) error {
	path := filepath.Join(dir, table.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	defer f.Close()
	if err := table.WriteCSV(f); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
