package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d", got)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if got := run([]string{"-run", "E99"}); got != 2 {
		t.Errorf("run(E99) = %d, want 2", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if got := run([]string{"-bogus"}); got != 2 {
		t.Errorf("run(-bogus) = %d, want 2", got)
	}
}

func TestRunQuickSubsetWithCSV(t *testing.T) {
	dir := t.TempDir()
	if got := run([]string{"-run", "E4,E8", "-quick", "-csv", dir}); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	for _, id := range []string{"E4", "E8"} {
		path := filepath.Join(dir, id+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 30 {
		t.Errorf("all = %d experiments, want 30", len(all))
	}
	two, err := selectExperiments("E1, E2")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Errorf("subset = %d experiments", len(two))
	}
	if _, err := selectExperiments("nope"); err == nil {
		t.Error("unknown id should fail")
	}
}
