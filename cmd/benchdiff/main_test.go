package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// write drops a minimal snapshot file and returns its path.
func write(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseSnap = `{
  "benchmark": "batch-throughput", "peers": 1000, "samples_per_run": 100,
  "runs": [{"workers": 1, "samples_per_sec": 50000}],
  "kernel": {"proc_events_per_sec": 90000000, "callback_events_per_sec": 29000000},
  "builds": [{"backend": "chord", "peers": 1000000, "peers_per_sec": 160000}],
  "churn": {"peers": 256, "events_per_sec": 6000}
}`

func TestBenchdiffPassesOnImprovement(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", baseSnap)
	newP := write(t, dir, "new.json", `{
  "benchmark": "batch-throughput", "peers": 1000, "samples_per_run": 100,
  "runs": [{"workers": 1, "samples_per_sec": 52000}],
  "kernel": {"proc_events_per_sec": 95000000, "callback_events_per_sec": 30000000},
  "builds": [{"backend": "chord", "peers": 1000000, "peers_per_sec": 170000}],
  "churn": {"peers": 256, "events_per_sec": 6100}
}`)
	if code := run([]string{oldP, newP}); code != 0 {
		t.Fatalf("exit = %d, want 0 for an improvement", code)
	}
}

func TestBenchdiffFailsOnKernelRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", baseSnap)
	// Kernel proc path 20% slower: beyond the 10% tolerance.
	newP := write(t, dir, "new.json", `{
  "benchmark": "batch-throughput", "peers": 1000, "samples_per_run": 100,
  "runs": [{"workers": 1, "samples_per_sec": 50000}],
  "kernel": {"proc_events_per_sec": 72000000, "callback_events_per_sec": 29000000},
  "builds": [{"backend": "chord", "peers": 1000000, "peers_per_sec": 160000}],
  "churn": {"peers": 256, "events_per_sec": 6000}
}`)
	if code := run([]string{oldP, newP}); code != 1 {
		t.Fatalf("exit = %d, want 1 for a >10%% kernel regression", code)
	}
}

func TestBenchdiffFailsOnBuildAndChurnRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", baseSnap)
	newP := write(t, dir, "new.json", `{
  "benchmark": "batch-throughput", "peers": 1000, "samples_per_run": 100,
  "runs": [{"workers": 1, "samples_per_sec": 50000}],
  "kernel": {"proc_events_per_sec": 90000000, "callback_events_per_sec": 29000000},
  "builds": [{"backend": "chord", "peers": 1000000, "peers_per_sec": 100000}],
  "churn": {"peers": 256, "events_per_sec": 4000}
}`)
	if code := run([]string{oldP, newP}); code != 1 {
		t.Fatalf("exit = %d, want 1 for build+churn regressions", code)
	}
}

func TestBenchdiffToleratesMissingSections(t *testing.T) {
	dir := t.TempDir()
	// An old snapshot (pre-BENCH_5) has no scenario-scale sections: the
	// newer snapshot introduces them and sets the baseline, no gate.
	oldP := write(t, dir, "old.json", `{
  "benchmark": "batch-throughput", "peers": 1000, "samples_per_run": 100,
  "runs": [{"workers": 1, "samples_per_sec": 50000}]
}`)
	newP := write(t, dir, "new.json", baseSnap)
	if code := run([]string{oldP, newP}); code != 0 {
		t.Fatalf("exit = %d, want 0 when the old snapshot predates the sections", code)
	}
}

// sloSnap builds a one-section snapshot around an E28 SLO record.
func sloSnap(p99, budget, reqPerSec float64, met bool) string {
	return `{
  "benchmark": "batch-throughput", "peers": 1000, "samples_per_run": 100,
  "runs": [{"workers": 1, "samples_per_sec": 50000}],
  "slo": [{"backend": "chord", "peers": 512,
    "p99_ms": ` + strconv.FormatFloat(p99, 'f', -1, 64) + `,
    "availability": 0.99,
    "budget_consumed_pct": ` + strconv.FormatFloat(budget, 'f', -1, 64) + `,
    "requests_per_sec_wall": ` + strconv.FormatFloat(reqPerSec, 'f', -1, 64) + `,
    "met": ` + strconv.FormatBool(met) + `}]
}`
}

func TestBenchdiffSLOGateInvertsForLatencyAndBudget(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", sloSnap(800, 40, 900, true))

	// Faster p99, less budget burned, higher wall rate: an improvement.
	better := write(t, dir, "better.json", sloSnap(700, 30, 1000, true))
	if code := run([]string{oldP, better}); code != 0 {
		t.Fatalf("exit = %d, want 0 for an SLO improvement", code)
	}

	// p99 up 20%: higher is worse, the inverted gate must fire.
	slower := write(t, dir, "slower.json", sloSnap(960, 40, 900, true))
	if code := run([]string{oldP, slower}); code != 1 {
		t.Fatalf("exit = %d, want 1 for a >10%% p99 regression", code)
	}

	// Budget consumed up 20% at unchanged latency: also a regression.
	burned := write(t, dir, "burned.json", sloSnap(800, 48, 900, true))
	if code := run([]string{oldP, burned}); code != 1 {
		t.Fatalf("exit = %d, want 1 for a >10%% budget-burn regression", code)
	}
}

func TestBenchdiffSLOGateFailsOnMetFlip(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", sloSnap(800, 40, 900, true))
	// Same rates, but the objectives flipped from met to missed.
	missed := write(t, dir, "missed.json", sloSnap(800, 40, 900, false))
	if code := run([]string{oldP, missed}); code != 1 {
		t.Fatalf("exit = %d, want 1 when objectives flip from met to missed", code)
	}
}

func TestBenchdiffEnvMismatchDetection(t *testing.T) {
	same := &Snapshot{GoVersion: "go1.24.0", NumCPU: 8, GOMAXPROCS: 8}
	if ms := envMismatches(same, same); len(ms) != 0 {
		t.Fatalf("identical environments flagged: %v", ms)
	}
	other := &Snapshot{GoVersion: "go1.23.1", NumCPU: 4, GOMAXPROCS: 2}
	if ms := envMismatches(same, other); len(ms) != 3 {
		t.Fatalf("got %d mismatches, want 3: %v", len(ms), ms)
	}
	// Snapshots that predate the environment fields never flag.
	empty := &Snapshot{}
	if ms := envMismatches(empty, same); len(ms) != 0 {
		t.Fatalf("pre-env snapshot flagged: %v", ms)
	}
}

func TestBenchdiffWarnsAcrossEnvironmentsButStillPasses(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", `{
  "benchmark": "batch-throughput", "go_version": "go1.23.1", "num_cpu": 4, "gomaxprocs": 4,
  "peers": 1000, "samples_per_run": 100,
  "runs": [{"workers": 1, "samples_per_sec": 50000}]
}`)
	newP := write(t, dir, "new.json", `{
  "benchmark": "batch-throughput", "go_version": "go1.24.0", "num_cpu": 8, "gomaxprocs": 8,
  "peers": 1000, "samples_per_run": 100,
  "runs": [{"workers": 1, "samples_per_sec": 52000}]
}`)
	// A cross-environment comparison warns but does not fail on its own.
	if code := run([]string{oldP, newP}); code != 0 {
		t.Fatalf("exit = %d, want 0 (warning only) for cross-environment comparison", code)
	}
}
