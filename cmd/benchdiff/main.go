// Command benchdiff compares two committed benchmark snapshots
// (BENCH_<pr>.json, written by cmd/benchsnap) and prints the
// per-worker-count deltas: samples/sec, ns/sample and allocs/sample.
// With no arguments it picks the two highest-numbered BENCH_*.json in
// the current directory, so `make benchdiff` always reports the latest
// PR-over-PR change in the perf trajectory.
//
// Usage:
//
//	benchdiff [old.json new.json]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Snapshot mirrors the fields of cmd/benchsnap's output that the diff
// reports. Older snapshots predate the ns/ allocs/sample fields; those
// render as "-".
type Snapshot struct {
	Benchmark string  `json:"benchmark"`
	GoVersion string  `json:"go_version"`
	Peers     int     `json:"peers"`
	Samples   int     `json:"samples_per_run"`
	Runs      []Run   `json:"runs"`
	Transport *Transp `json:"transport_overhead"`
}

// Run is one timed configuration of a snapshot. The per-sample fields
// are pointers so a snapshot that predates them (BENCH_1..3) is
// distinguishable from a measured value of exactly zero.
type Run struct {
	Workers         int      `json:"workers"`
	SamplesPerSec   float64  `json:"samples_per_sec"`
	NsPerSample     *float64 `json:"ns_per_sample"`
	AllocsPerSample *float64 `json:"allocs_per_sample"`
}

// Transp is the sim-transport overhead record of a snapshot.
type Transp struct {
	OverheadPct float64 `json:"overhead_pct"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var oldPath, newPath string
	switch len(args) {
	case 0:
		var err error
		oldPath, newPath, err = latestPair(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 1
		}
	case 2:
		oldPath, newPath = args[0], args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [old.json new.json]")
		return 2
	}
	oldSnap, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	newSnap, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	fmt.Printf("benchdiff: %s (n=%d, k=%d) -> %s (n=%d, k=%d)\n",
		oldPath, oldSnap.Peers, oldSnap.Samples, newPath, newSnap.Peers, newSnap.Samples)
	fmt.Printf("%-8s  %14s  %14s  %8s  %12s  %14s\n",
		"workers", "old samples/s", "new samples/s", "speedup", "new ns/samp", "new allocs/samp")
	byWorkers := make(map[int]Run, len(oldSnap.Runs))
	for _, r := range oldSnap.Runs {
		byWorkers[r.Workers] = r
	}
	for _, nr := range newSnap.Runs {
		or, ok := byWorkers[nr.Workers]
		speedup := "-"
		oldRate := "-"
		if ok && or.SamplesPerSec > 0 {
			speedup = fmt.Sprintf("%.2fx", nr.SamplesPerSec/or.SamplesPerSec)
			oldRate = fmt.Sprintf("%.0f", or.SamplesPerSec)
		}
		fmt.Printf("%-8d  %14s  %14.0f  %8s  %12s  %14s\n",
			nr.Workers, oldRate, nr.SamplesPerSec, speedup,
			optional(nr.NsPerSample, "%.0f"), optional(nr.AllocsPerSample, "%.4f"))
	}
	if oldSnap.Transport != nil && newSnap.Transport != nil {
		fmt.Printf("sim-transport overhead: %.2f%% -> %.2f%%\n",
			oldSnap.Transport.OverheadPct, newSnap.Transport.OverheadPct)
	}
	return 0
}

// optional renders a metric the snapshot may predate.
func optional(v *float64, format string) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf(format, *v)
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// latestPair returns the two highest-numbered BENCH_<pr>.json in dir.
func latestPair(dir string) (oldPath, newPath string, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	re := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	type numbered struct {
		pr   int
		path string
	}
	var found []numbered
	for _, p := range paths {
		m := re.FindStringSubmatch(p)
		if m == nil {
			continue
		}
		pr, _ := strconv.Atoi(m[1])
		found = append(found, numbered{pr, p})
	}
	if len(found) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_<pr>.json in %s, found %d", dir, len(found))
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pr < found[j].pr })
	return found[len(found)-2].path, found[len(found)-1].path, nil
}
