// Command benchdiff compares two committed benchmark snapshots
// (BENCH_<pr>.json, written by cmd/benchsnap) and prints the
// per-worker-count deltas — samples/sec, ns/sample and allocs/sample —
// plus the scenario-scale sections: kernel events/sec (proc and
// callback paths), per-backend construction peers/sec, async-churn
// events/sec, the per-backend flat-storage capacity records (heap
// bytes/node and bulk build time, both gated higher-is-worse — the
// capacity headline regresses when either grows), the per-backend E28
// SLO records (p99 latency, error
// budget and objective verdict — where higher is worse, the gate
// inverts), the per-backend adversarial records (mitigation bias,
// audit price and eclipse capture, all gated higher-is-worse, plus the
// standalone invariant that the swap mitigation's TV stays below the
// attacked naive sampler's) and the sim-transport overhead. With no
// arguments it picks
// the two highest-numbered BENCH_*.json in the current directory, so
// `make benchdiff` always reports the latest PR-over-PR change in the
// perf trajectory.
//
// The scenario-scale fields act as a regression gate: when both
// snapshots carry a field and the newer one is more than 10% worse,
// benchdiff prints the regression and exits nonzero, failing `make
// benchdiff` (and any CI step that runs it).
//
// Snapshots record the environment they were measured in (Go version,
// CPU count, GOMAXPROCS). When the two snapshots disagree, benchdiff
// warns that the comparison crosses environments — the deltas then
// measure the machine as much as the code.
//
// Usage:
//
//	benchdiff [old.json new.json]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Snapshot mirrors the fields of cmd/benchsnap's output that the diff
// reports. Older snapshots predate some sections (ns/allocs per sample,
// kernel/build/churn); those render as "-" and are exempt from the
// regression gate.
type Snapshot struct {
	Benchmark  string   `json:"benchmark"`
	GoVersion  string   `json:"go_version"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Peers      int      `json:"peers"`
	Samples    int      `json:"samples_per_run"`
	Runs       []Run    `json:"runs"`
	Transport  *Transp  `json:"transport_overhead"`
	Kernel     *Kernel  `json:"kernel"`
	Builds     []Build  `json:"builds"`
	Churn      *ChurnRt `json:"churn"`
	Mem        []MemRec `json:"mem"`
	SLO        []SLORec `json:"slo"`
	Adversary  []AdvRec `json:"adversary"`
}

// envMismatches compares the environment benchsnap stamped into two
// snapshots. Deltas across different toolchains or machines measure the
// environment, not the code, so benchdiff flags every comparison whose
// environments differ. Fields a snapshot predates (empty/zero) are not
// compared.
func envMismatches(oldSnap, newSnap *Snapshot) []string {
	var out []string
	if oldSnap.GoVersion != "" && newSnap.GoVersion != "" && oldSnap.GoVersion != newSnap.GoVersion {
		out = append(out, fmt.Sprintf("go_version %s -> %s", oldSnap.GoVersion, newSnap.GoVersion))
	}
	if oldSnap.NumCPU > 0 && newSnap.NumCPU > 0 && oldSnap.NumCPU != newSnap.NumCPU {
		out = append(out, fmt.Sprintf("num_cpu %d -> %d", oldSnap.NumCPU, newSnap.NumCPU))
	}
	if oldSnap.GOMAXPROCS > 0 && newSnap.GOMAXPROCS > 0 && oldSnap.GOMAXPROCS != newSnap.GOMAXPROCS {
		out = append(out, fmt.Sprintf("gomaxprocs %d -> %d", oldSnap.GOMAXPROCS, newSnap.GOMAXPROCS))
	}
	return out
}

// Kernel mirrors benchsnap's kernel event-loop section.
type Kernel struct {
	ProcEventsPerSec     float64 `json:"proc_events_per_sec"`
	CallbackEventsPerSec float64 `json:"callback_events_per_sec"`
	SpeedupVsPR3         float64 `json:"speedup_vs_pr3"`
}

// Build mirrors benchsnap's per-backend construction section.
type Build struct {
	Backend     string  `json:"backend"`
	Peers       int     `json:"peers"`
	PeersPerSec float64 `json:"peers_per_sec"`
}

// MemRec mirrors benchsnap's per-backend flat-storage capacity
// section. Bytes/node and build wall time both gate higher-is-worse: a
// fatter per-node layout or a slower bulk build regresses the
// capacity headline (10M-peer rings in a few GB, sub-minute builds)
// even when the sampling hot paths are unaffected.
type MemRec struct {
	Backend      string  `json:"backend"`
	Peers        int     `json:"peers"`
	BuildWallMS  float64 `json:"build_wall_ms"`
	PeersPerSec  float64 `json:"peers_per_sec"`
	BytesPerNode float64 `json:"bytes_per_node"`
}

// ChurnRt mirrors benchsnap's async-churn rate section.
type ChurnRt struct {
	Peers        int     `json:"peers"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// SLORec mirrors benchsnap's per-backend E28 SLO section. The latency,
// availability and budget fields are deterministic functions of the
// scenario (not wall-clock measurements), so their gate catches
// behavioral regressions — a slower walk, a less effective maintenance
// sweep — that throughput noise would hide. RequestsPerSecWall is the
// section's one wall-clock rate and gates like the other rates.
type SLORec struct {
	Backend            string  `json:"backend"`
	Peers              int     `json:"peers"`
	P99Ms              float64 `json:"p99_ms"`
	Availability       float64 `json:"availability"`
	BudgetConsumedPct  float64 `json:"budget_consumed_pct"`
	RequestsPerSecWall float64 `json:"requests_per_sec_wall"`
	Met                bool    `json:"met"`
}

// AdvRec mirrors benchsnap's per-backend adversarial section. All of
// its gated fields are deterministic functions of the seed and gate
// with higher-is-worse: more accepted bias through the mitigation, a
// pricier audit, or a larger eclipse capture each mean the adversarial
// posture regressed. The naive TV is context (the attack's strength),
// not a gate. Independently of the old snapshot, the mitigation
// invariant swap_tv < naive_tv must hold within each new record.
type AdvRec struct {
	Backend        string  `json:"backend"`
	Peers          int     `json:"peers"`
	Fraction       float64 `json:"fraction"`
	NaiveTV        float64 `json:"naive_tv"`
	SwapTV         float64 `json:"swap_tv"`
	SwapFailRate   float64 `json:"swap_fail_rate"`
	EclipseCapture float64 `json:"eclipse_capture"`
}

// Run is one timed configuration of a snapshot. The per-sample fields
// are pointers so a snapshot that predates them (BENCH_1..3) is
// distinguishable from a measured value of exactly zero.
type Run struct {
	Workers         int      `json:"workers"`
	SamplesPerSec   float64  `json:"samples_per_sec"`
	NsPerSample     *float64 `json:"ns_per_sample"`
	AllocsPerSample *float64 `json:"allocs_per_sample"`
}

// Transp is the sim-transport overhead record of a snapshot.
type Transp struct {
	OverheadPct float64 `json:"overhead_pct"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var oldPath, newPath string
	switch len(args) {
	case 0:
		var err error
		oldPath, newPath, err = latestPair(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 1
		}
	case 2:
		oldPath, newPath = args[0], args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [old.json new.json]")
		return 2
	}
	oldSnap, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	newSnap, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	fmt.Printf("benchdiff: %s (n=%d, k=%d) -> %s (n=%d, k=%d)\n",
		oldPath, oldSnap.Peers, oldSnap.Samples, newPath, newSnap.Peers, newSnap.Samples)
	mismatches := envMismatches(oldSnap, newSnap)
	for _, m := range mismatches {
		fmt.Fprintln(os.Stderr, "benchdiff: WARNING: cross-environment comparison:", m)
	}
	fmt.Printf("%-8s  %14s  %14s  %8s  %12s  %14s\n",
		"workers", "old samples/s", "new samples/s", "speedup", "new ns/samp", "new allocs/samp")
	byWorkers := make(map[int]Run, len(oldSnap.Runs))
	for _, r := range oldSnap.Runs {
		byWorkers[r.Workers] = r
	}
	for _, nr := range newSnap.Runs {
		or, ok := byWorkers[nr.Workers]
		speedup := "-"
		oldRate := "-"
		if ok && or.SamplesPerSec > 0 {
			speedup = fmt.Sprintf("%.2fx", nr.SamplesPerSec/or.SamplesPerSec)
			oldRate = fmt.Sprintf("%.0f", or.SamplesPerSec)
		}
		fmt.Printf("%-8d  %14s  %14.0f  %8s  %12s  %14s\n",
			nr.Workers, oldRate, nr.SamplesPerSec, speedup,
			optional(nr.NsPerSample, "%.0f"), optional(nr.AllocsPerSample, "%.4f"))
	}
	if oldSnap.Transport != nil && newSnap.Transport != nil {
		fmt.Printf("sim-transport overhead: %.2f%% -> %.2f%%\n",
			oldSnap.Transport.OverheadPct, newSnap.Transport.OverheadPct)
	}
	// The scenario-scale sections gate on >10% regression: a comparison
	// runs only when both snapshots carry the field, so the first
	// snapshot to introduce a section sets its baseline.
	var regressions []string
	check := func(name string, oldV, newV float64) {
		if oldV <= 0 || newV <= 0 {
			return
		}
		fmt.Printf("%-28s  %14.0f  %14.0f  %6.2fx\n", name, oldV, newV, newV/oldV)
		if newV < oldV*(1-regressionTolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s regressed %.1f%% (%.0f -> %.0f)", name, 100*(1-newV/oldV), oldV, newV))
		}
	}
	// checkUp gates metrics where higher is worse (latency, budget
	// burn): the newer snapshot regresses when it exceeds the old value
	// by more than the tolerance.
	checkUp := func(name string, oldV, newV float64) {
		if oldV <= 0 || newV <= 0 {
			return
		}
		fmt.Printf("%-28s  %14.2f  %14.2f  %6.2fx\n", name, oldV, newV, newV/oldV)
		if newV > oldV*(1+regressionTolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s regressed %.1f%% (%.2f -> %.2f)", name, 100*(newV/oldV-1), oldV, newV))
		}
	}
	if oldSnap.Kernel != nil && newSnap.Kernel != nil {
		check("kernel proc events/sec", oldSnap.Kernel.ProcEventsPerSec, newSnap.Kernel.ProcEventsPerSec)
		check("kernel callback events/sec", oldSnap.Kernel.CallbackEventsPerSec, newSnap.Kernel.CallbackEventsPerSec)
	}
	oldBuilds := make(map[string]Build, len(oldSnap.Builds))
	for _, b := range oldSnap.Builds {
		oldBuilds[b.Backend] = b
	}
	for _, nb := range newSnap.Builds {
		if ob, ok := oldBuilds[nb.Backend]; ok && ob.Peers == nb.Peers {
			check("build "+nb.Backend+" peers/sec", ob.PeersPerSec, nb.PeersPerSec)
		}
	}
	if oldSnap.Churn != nil && newSnap.Churn != nil && oldSnap.Churn.Peers == newSnap.Churn.Peers {
		check("churn events/sec", oldSnap.Churn.EventsPerSec, newSnap.Churn.EventsPerSec)
	}
	oldMem := make(map[string]MemRec, len(oldSnap.Mem))
	for _, m := range oldSnap.Mem {
		oldMem[m.Backend] = m
	}
	for _, nm := range newSnap.Mem {
		prev, ok := oldMem[nm.Backend]
		if !ok || prev.Peers != nm.Peers {
			continue
		}
		checkUp("mem "+nm.Backend+" bytes/node", prev.BytesPerNode, nm.BytesPerNode)
		checkUp("mem "+nm.Backend+" build ms", prev.BuildWallMS, nm.BuildWallMS)
		check("mem "+nm.Backend+" peers/sec", prev.PeersPerSec, nm.PeersPerSec)
	}
	oldSLO := make(map[string]SLORec, len(oldSnap.SLO))
	for _, s := range oldSnap.SLO {
		oldSLO[s.Backend] = s
	}
	for _, ns := range newSnap.SLO {
		prev, ok := oldSLO[ns.Backend]
		if !ok || prev.Peers != ns.Peers {
			continue
		}
		check("slo "+ns.Backend+" req/sec wall", prev.RequestsPerSecWall, ns.RequestsPerSecWall)
		checkUp("slo "+ns.Backend+" p99 ms", prev.P99Ms, ns.P99Ms)
		checkUp("slo "+ns.Backend+" budget %", prev.BudgetConsumedPct, ns.BudgetConsumedPct)
		if prev.Met && !ns.Met {
			regressions = append(regressions,
				fmt.Sprintf("slo %s: objectives previously met, now missed (availability %.4f -> %.4f)",
					ns.Backend, prev.Availability, ns.Availability))
		}
	}
	oldAdv := make(map[string]AdvRec, len(oldSnap.Adversary))
	for _, a := range oldSnap.Adversary {
		oldAdv[a.Backend] = a
	}
	for _, na := range newSnap.Adversary {
		if na.SwapTV >= na.NaiveTV && na.NaiveTV > 0 {
			regressions = append(regressions,
				fmt.Sprintf("adversary %s: mitigation no longer holds (swap TV %.4f >= naive TV %.4f)",
					na.Backend, na.SwapTV, na.NaiveTV))
		}
		prev, ok := oldAdv[na.Backend]
		if !ok || prev.Peers != na.Peers || prev.Fraction != na.Fraction {
			continue
		}
		checkUp("adversary "+na.Backend+" swap tv", prev.SwapTV, na.SwapTV)
		checkUp("adversary "+na.Backend+" swap fail rate", prev.SwapFailRate, na.SwapFailRate)
		checkUp("adversary "+na.Backend+" eclipse capture", prev.EclipseCapture, na.EclipseCapture)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchdiff: REGRESSION:", r)
		}
		if len(mismatches) > 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: note: the snapshots were taken in different environments (see warnings above); re-measure on one machine before trusting these deltas")
		}
		return 1
	}
	return 0
}

// regressionTolerance is the fractional slowdown the scenario-scale
// gate tolerates before failing (wall-clock measurements are noisy;
// anything beyond 10% is treated as a real regression).
const regressionTolerance = 0.10

// optional renders a metric the snapshot may predate.
func optional(v *float64, format string) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf(format, *v)
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// latestPair returns the two highest-numbered BENCH_<pr>.json in dir.
func latestPair(dir string) (oldPath, newPath string, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	re := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	type numbered struct {
		pr   int
		path string
	}
	var found []numbered
	for _, p := range paths {
		m := re.FindStringSubmatch(p)
		if m == nil {
			continue
		}
		pr, _ := strconv.Atoi(m[1])
		found = append(found, numbered{pr, p})
	}
	if len(found) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_<pr>.json in %s, found %d", dir, len(found))
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pr < found[j].pr })
	return found[len(found)-2].path, found[len(found)-1].path, nil
}
