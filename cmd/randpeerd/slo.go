package main

import (
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/dht-sampling/randompeer/internal/cluster"
	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/slo"
)

// sloMaxWindows bounds the retained window history: at the default 5s
// window this holds an hour of live SLO context; older windows fall
// off the front so a long-lived daemon's memory stays flat.
const sloMaxWindows = 720

// sloRecorder is the wall-clock counterpart of the virtual-time
// recorder in internal/load: a background loop snapshots the daemon's
// metrics registry every window, subtracts consecutive snapshots into
// per-window deltas, and maps the wire transport's RPC series onto SLO
// window inputs. GET /v1/slo evaluates the retained windows on demand,
// so the report is always current without the daemon ever scraping
// itself over HTTP.
type sloRecorder struct {
	reg    *obs.Registry
	window time.Duration
	obj    slo.Objectives
	stop   chan struct{}

	mu     sync.Mutex
	epoch  time.Time
	prev   obs.RegistrySnapshot
	prevAt time.Time
	wins   []slo.WindowInput
}

// startSLORecorder takes the base snapshot and starts the window loop.
func startSLORecorder(reg *obs.Registry, window time.Duration) *sloRecorder {
	now := time.Now()
	r := &sloRecorder{
		reg:    reg,
		window: window,
		obj:    slo.DefaultObjectives(),
		stop:   make(chan struct{}),
		epoch:  now,
		prev:   reg.Snapshot(),
		prevAt: now,
	}
	go r.loop()
	return r
}

func (r *sloRecorder) loop() {
	t := time.NewTicker(r.window)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.mu.Lock()
			r.cutLocked(time.Now())
			r.mu.Unlock()
		}
	}
}

// cutLocked closes the window [prevAt, now): snapshot, delta, map onto
// an SLO window input, advance the cursor. Callers hold r.mu.
func (r *sloRecorder) cutLocked(now time.Time) {
	snap := r.reg.Snapshot()
	delta := snap.Delta(r.prev)
	in := slo.WindowInput{
		Start: r.prevAt.Sub(r.epoch),
		End:   now.Sub(r.epoch),
	}
	if h, ok := delta.Hist("wire_rpc_duration_seconds"); ok {
		in.Latency = h
		in.OK = h.Count
	}
	for _, key := range delta.Keys {
		if strings.HasPrefix(key, "wire_rpc_failures_total") {
			if v, ok := delta.Value(key); ok {
				in.Failed += int64(v)
			}
		}
	}
	r.wins = append(r.wins, in)
	if len(r.wins) > sloMaxWindows {
		r.wins = r.wins[len(r.wins)-sloMaxWindows:]
	}
	r.prev, r.prevAt = snap, now
}

// Stop ends the window loop.
func (r *sloRecorder) Stop() { close(r.stop) }

// handle serves GET /v1/slo: the live report over every retained
// window; ?flush=1 cuts the current partial window first.
func (r *sloRecorder) handle(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	r.mu.Lock()
	if req.URL.Query().Get("flush") != "" {
		r.cutLocked(time.Now())
	}
	wins := append([]slo.WindowInput(nil), r.wins...)
	r.mu.Unlock()
	writeJSON(w, cluster.SLOResponse{
		WindowSeconds: r.window.Seconds(),
		Windows:       len(wins),
		Report:        slo.Evaluate(r.obj, wins),
	})
}
