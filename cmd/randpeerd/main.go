// Command randpeerd is a daemon that hosts a shard of a DHT overlay
// (chord or kademlia) behind a wire transport, so a multi-process
// cluster of daemons forms one overlay over real TCP sockets.
//
// Usage:
//
//	randpeerd [-listen ADDR] [-call-timeout D] [-retries N]
//	          [-backoff-base D] [-backoff-cap D] [-jitter-seed S]
//	          [-slo-window D]
//
// The daemon serves:
//
//	POST /wire          node-to-node RPCs (wire transport protocol)
//	GET  /healthz       readiness probe with build identity
//	GET  /metrics       Prometheus text exposition (obs registry)
//	GET  /debug/pprof/  runtime profiling (pprof index, profiles)
//	POST /v1/provision  install an overlay partition (backend, points,
//	                    owned subset, point->address routes)
//	POST /v1/join       join a fresh node through a routed bootstrap
//	POST /v1/lookup     resolve the owner of a key, reporting RPC cost
//	POST /v1/next       one successor step from a peer
//	POST /v1/sample     draw K random peers with the King–Saia sampler
//	POST /v1/trace      run one traced lookup, returning its hop record
//	GET  /v1/trace?id=N spans this process retained for a trace id
//	GET  /v1/metrics    meter snapshot, served-call count, uptime
//	GET  /v1/slo        live windowed SLO report (?flush=1 cuts the
//	                    current partial window first; -slo-window sets
//	                    the cadence, 0 disables)
//
// On startup it prints "randpeerd: listening on ADDR" to stdout, which
// the cluster harness parses to discover the bound port.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/cluster"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
	"github.com/dht-sampling/randompeer/internal/wire"
)

// version and commit are stamped at build time via
//
//	-ldflags "-X main.version=... -X main.commit=..."
//
// (the Makefile's build target does this). Unstamped builds fall back
// to the VCS revision Go embeds in the build info, then to "unknown".
var (
	version = "dev"
	commit  = ""
)

// buildIdentity resolves the daemon's version and commit.
func buildIdentity() (string, string) {
	v, c := version, commit
	if c == "" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					c = s.Value
				}
			}
		}
	}
	if c == "" {
		c = "unknown"
	}
	return v, c
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("randpeerd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "host:port to listen on (port 0 picks a free port)")
	callTimeout := fs.Duration("call-timeout", wire.DefaultCallTimeout, "per-attempt RPC deadline")
	retries := fs.Int("retries", wire.DefaultMaxRetries, "RPC re-attempts after a failed network attempt")
	backoffBase := fs.Duration("backoff-base", wire.DefaultBackoffBase, "pre-jitter delay before the first retry")
	backoffCap := fs.Duration("backoff-cap", wire.DefaultBackoffCap, "pre-jitter retry delay cap")
	jitterSeed := fs.Uint64("jitter-seed", 0, "backoff jitter seed (0 seeds from entropy)")
	sloWindow := fs.Duration("slo-window", 5*time.Second, "live SLO recorder window (0 disables /v1/slo)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := []wire.Option{
		wire.WithCallTimeout(*callTimeout),
		wire.WithRetries(*retries, *backoffBase, *backoffCap),
	}
	if *jitterSeed != 0 {
		opts = append(opts, wire.WithJitterSeed(*jitterSeed))
	}
	d := newDaemon(wire.NewTransport(opts...))
	if *sloWindow > 0 {
		d.slor = startSLORecorder(d.reg, *sloWindow)
		defer d.slor.Stop()
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "randpeerd:", err)
		return 1
	}
	srv := &http.Server{Handler: d.mux()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()

	fmt.Printf("randpeerd: listening on %s\n", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "randpeerd:", err)
		return 1
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	_ = d.tr.Close()
	return 0
}

// overlayDHT is the view both backend adapters expose: the abstract
// DHT model plus the caller's own identity.
type overlayDHT interface {
	dht.DHT
	Self() dht.Peer
}

// traceLogCapacity bounds the server-side span ring: enough to hold
// every hop of many concurrent traced lookups without growing.
const traceLogCapacity = 4096

// daemon holds one provisioned overlay partition and serves the
// control API over the same HTTP server as the wire RPC endpoint.
type daemon struct {
	tr    *wire.Transport
	start time.Time
	reg   *obs.Registry
	tlog  *obs.TraceLog
	slor  *sloRecorder // nil when -slo-window is 0

	mu      sync.Mutex
	backend string
	owned   []ring.Point
	view    overlayDHT // overlay viewed from owned[0]; nil before provision
	joinVia func(id, bootstrap ring.Point) error
}

func newDaemon(tr *wire.Transport) *daemon {
	d := &daemon{
		tr:    tr,
		start: time.Now(),
		reg:   obs.NewRegistry(),
		tlog:  obs.NewTraceLog(traceLogCapacity),
	}
	tr.SetTraceLog(d.tlog)
	tr.RegisterMetrics(d.reg)
	v, c := buildIdentity()
	d.reg.Gauge("randpeerd_build_info",
		"Build identity; the value is always 1.",
		obs.Label{Name: "version", Value: v},
		obs.Label{Name: "commit", Value: c},
	).Set(1)
	d.reg.GaugeFunc("randpeerd_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return time.Since(d.start).Seconds() })
	d.reg.GaugeFunc("randpeerd_owned_nodes",
		"Overlay nodes hosted by this daemon's current partition.",
		func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(len(d.owned))
		})
	return d
}

func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle(wire.RPCPath, d.tr.RPCHandler())
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.Handle("/metrics", d.reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/v1/provision", d.handleProvision)
	mux.HandleFunc("/v1/join", d.handleJoin)
	mux.HandleFunc("/v1/lookup", d.handleLookup)
	mux.HandleFunc("/v1/next", d.handleNext)
	mux.HandleFunc("/v1/sample", d.handleSample)
	mux.HandleFunc("/v1/trace", d.handleTrace)
	mux.HandleFunc("/v1/metrics", d.handleMetrics)
	mux.HandleFunc("/v1/slo", d.handleSLO)
	return mux
}

func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v, c := buildIdentity()
	writeJSON(w, cluster.HealthResponse{Status: "ok", Version: v, Commit: c})
}

// handleTrace serves both trace operations: POST runs one traced
// lookup and returns its client-side hop record; GET ?id=N returns the
// spans this process retained for a trace id (populated when this
// daemon served RPCs belonging to a trace someone else ran).
func (d *daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "trace: bad or missing id: %v", err)
			return
		}
		writeJSON(w, cluster.TraceSpansResponse{TraceID: id, Spans: d.tlog.ByID(id)})
		return
	}
	var req cluster.TraceRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.view == nil {
		httpError(w, http.StatusConflict, "trace: daemon not provisioned")
		return
	}
	tr := obs.NewTrace()
	d.tr.SetTrace(tr)
	before := d.view.Meter().Snapshot()
	peer, err := d.view.H(ring.Point(req.Key))
	cost := d.view.Meter().Snapshot().Sub(before)
	d.tr.SetTrace(nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "trace: %v", err)
		return
	}
	writeJSON(w, cluster.TraceResponse{
		TraceID: tr.ID(),
		Owner:   uint64(peer.Point),
		Calls:   cost.Calls,
		Hops:    tr.Hops(),
	})
}

func (d *daemon) handleProvision(w http.ResponseWriter, r *http.Request) {
	var req cluster.ProvisionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "provision: empty membership")
		return
	}
	points := toPoints(req.Points)
	ownedSet := make(map[ring.Point]bool, len(req.Owned))
	for _, p := range req.Owned {
		ownedSet[ring.Point(p)] = true
	}
	routes := make(map[simnet.NodeID]string, len(req.Routes))
	for _, e := range req.Routes {
		routes[simnet.NodeID(e.Point)] = e.Addr
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	// Tear down any previous partition: fresh handlers, routes, meter.
	d.tr.DeregisterAll()
	d.tr.Meter().Reset()
	d.tr.SetRoutes(routes)
	d.view, d.joinVia, d.owned, d.backend = nil, nil, nil, ""

	owned := func(p ring.Point) bool { return ownedSet[p] }
	switch req.Backend {
	case "chord":
		net, err := chord.BuildStaticPartition(chord.Config{}, d.tr, points, owned)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "provision: %v", err)
			return
		}
		d.joinVia = func(id, bootstrap ring.Point) error {
			_, err := net.JoinVia(id, bootstrap)
			return err
		}
		if len(req.Owned) > 0 {
			view, err := net.AsDHT(ring.Point(req.Owned[0]))
			if err != nil {
				httpError(w, http.StatusInternalServerError, "provision: %v", err)
				return
			}
			d.view = view
		}
	case "kademlia":
		cfg := kademlia.Config{BucketSize: req.Bucket, Alpha: req.Alpha}
		net, err := kademlia.BuildStaticPartition(cfg, d.tr, points, owned)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "provision: %v", err)
			return
		}
		d.joinVia = func(id, bootstrap ring.Point) error {
			_, err := net.JoinVia(id, bootstrap)
			return err
		}
		if len(req.Owned) > 0 {
			view, err := net.AsDHT(ring.Point(req.Owned[0]))
			if err != nil {
				httpError(w, http.StatusInternalServerError, "provision: %v", err)
				return
			}
			d.view = view
		}
	default:
		httpError(w, http.StatusBadRequest, "provision: unknown backend %q", req.Backend)
		return
	}
	d.backend = req.Backend
	d.owned = toPoints(req.Owned)
	writeJSON(w, map[string]any{"ok": true, "backend": req.Backend, "owned": len(req.Owned)})
}

func (d *daemon) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req cluster.JoinRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.joinVia == nil {
		httpError(w, http.StatusConflict, "join: daemon not provisioned")
		return
	}
	if err := d.joinVia(ring.Point(req.ID), ring.Point(req.Bootstrap)); err != nil {
		httpError(w, http.StatusInternalServerError, "join: %v", err)
		return
	}
	d.owned = append(d.owned, ring.Point(req.ID))
	writeJSON(w, map[string]any{"ok": true})
}

func (d *daemon) handleLookup(w http.ResponseWriter, r *http.Request) {
	var req cluster.LookupRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.view == nil {
		httpError(w, http.StatusConflict, "lookup: daemon not provisioned")
		return
	}
	before := d.view.Meter().Snapshot()
	peer, err := d.view.H(ring.Point(req.Key))
	if err != nil {
		httpError(w, http.StatusInternalServerError, "lookup: %v", err)
		return
	}
	cost := d.view.Meter().Snapshot().Sub(before)
	writeJSON(w, cluster.LookupResponse{Owner: uint64(peer.Point), Calls: cost.Calls, Messages: cost.Messages})
}

func (d *daemon) handleNext(w http.ResponseWriter, r *http.Request) {
	var req cluster.NextRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.view == nil {
		httpError(w, http.StatusConflict, "next: daemon not provisioned")
		return
	}
	peer, err := d.view.Next(dht.Peer{Point: ring.Point(req.Point)})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "next: %v", err)
		return
	}
	writeJSON(w, cluster.NextResponse{Point: uint64(peer.Point)})
}

func (d *daemon) handleSample(w http.ResponseWriter, r *http.Request) {
	var req cluster.SampleRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	if req.Count > 10000 {
		httpError(w, http.StatusBadRequest, "sample: count %d too large", req.Count)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.view == nil {
		httpError(w, http.StatusConflict, "sample: daemon not provisioned")
		return
	}
	rng := rand.New(rand.NewPCG(req.Seed, req.Seed^0x2545f4914f6cdd1d))
	before := d.view.Meter().Snapshot()
	sampler, err := core.New(d.view, d.view.Self(), rng, core.Config{})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "sample: %v", err)
		return
	}
	out := make([]uint64, 0, req.Count)
	for i := 0; i < req.Count; i++ {
		peer, err := sampler.Sample()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "sample %d: %v", i, err)
			return
		}
		out = append(out, uint64(peer.Point))
	}
	cost := d.view.Meter().Snapshot().Sub(before)
	writeJSON(w, cluster.SampleResponse{Points: out, Calls: cost.Calls})
}

func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	backend := d.backend
	owned := make([]uint64, len(d.owned))
	for i, p := range d.owned {
		owned[i] = uint64(p)
	}
	d.mu.Unlock()
	cost := d.tr.Meter().Snapshot()
	writeJSON(w, cluster.MetricsResponse{
		Backend:       backend,
		Owned:         owned,
		UptimeSeconds: time.Since(d.start).Seconds(),
		ServedCalls:   d.tr.ServedCalls(),
		Calls:         cost.Calls,
		Messages:      cost.Messages,
		Failures:      cost.Failures,
	})
}

func (d *daemon) handleSLO(w http.ResponseWriter, r *http.Request) {
	if d.slor == nil {
		httpError(w, http.StatusConflict, "slo: recorder disabled (-slo-window 0)")
		return
	}
	d.slor.handle(w, r)
}

func toPoints(raw []uint64) []ring.Point {
	out := make([]ring.Point, len(raw))
	for i, p := range raw {
		out[i] = ring.Point(p)
	}
	return out
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, "randpeerd: "+fmt.Sprintf(format, args...), code)
}
