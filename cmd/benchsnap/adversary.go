package main

import (
	"fmt"
	"os"
	"time"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// AdversaryBench records the adversarial-robustness posture per overlay
// backend at a fixed Byzantine fraction: the naive sampler's bias under
// route-bias subversion, the swap mitigation's accepted bias and
// failure-rate price, and the eclipse capture the overlay concedes
// after maintenance. Every field is a pure function of the seed (the
// coalition, every lie and the sample stream are all seeded), so the
// committed snapshot is a behavioral record — benchdiff gates the
// mitigation fields where higher is worse.
type AdversaryBench struct {
	Backend        string  `json:"backend"`
	Peers          int     `json:"peers"`
	Fraction       float64 `json:"fraction"`
	Samples        int     `json:"samples"`
	NaiveTV        float64 `json:"naive_tv"`
	SwapTV         float64 `json:"swap_tv"`
	SwapFailRate   float64 `json:"swap_fail_rate"`
	EclipseCapture float64 `json:"eclipse_capture"`
	WallMS         float64 `json:"wall_ms"`
}

// measureAdversary runs the fixed adversarial scenario on both overlay
// backends: a route-bias coalition subverting 20% of a 128-peer
// network, measured with 4000 samples per sampler, plus the eclipse
// capture after 6 maintenance sweeps.
func measureAdversary(seed uint64) ([]AdversaryBench, error) {
	const (
		n       = 128
		frac    = 0.2
		samples = 4000
	)
	var out []AdversaryBench
	for _, backend := range []randompeer.Backend{randompeer.ChordBackend, randompeer.KademliaBackend} {
		fmt.Fprintf(os.Stderr, "benchsnap: adversary scenario — %s, route-bias %g over %d peers...\n",
			backend, frac, n)
		start := time.Now()
		tb, err := randompeer.New(
			randompeer.WithPeers(n),
			randompeer.WithSeed(seed^0xad),
			randompeer.WithBackend(backend),
		)
		if err != nil {
			return nil, err
		}
		vantages := tb.SwapVantages(2)
		if _, err := tb.InstallAdversary(fmt.Sprintf("route-bias:%g", frac), seed^0xad1, vantages...); err != nil {
			return nil, err
		}
		naive := tb.NaiveSampler(seed + 1)
		swap, err := tb.SwapSampler(seed+2, len(vantages))
		if err != nil {
			return nil, err
		}
		tv := func(s randompeer.Sampler) (float64, float64, error) {
			tally := make([]int64, tb.Size())
			fails := 0
			for i := 0; i < samples; i++ {
				p, err := s.Sample()
				if err != nil {
					fails++
					continue
				}
				tally[p.Owner]++
			}
			v, err := stats.TotalVariationUniform(tally)
			return v, float64(fails) / samples, err
		}
		naiveTV, _, err := tv(naive)
		if err != nil {
			return nil, err
		}
		swapTV, swapFails, err := tv(swap)
		if err != nil {
			return nil, err
		}
		// Eclipse runs on a fresh testbed: route-bias is still armed on
		// the sampling one.
		etb, err := randompeer.New(
			randompeer.WithPeers(n),
			randompeer.WithSeed(seed^0xad),
			randompeer.WithBackend(backend),
		)
		if err != nil {
			return nil, err
		}
		adv, err := etb.InstallAdversary(fmt.Sprintf("eclipse:%g", frac), seed^0xad2)
		if err != nil {
			return nil, err
		}
		switch backend {
		case randompeer.ChordBackend:
			etb.ChordNetwork().RunMaintenance(6, 8)
		case randompeer.KademliaBackend:
			etb.KademliaNetwork().RunMaintenance(6)
		}
		capture, err := adv.EclipseFraction()
		if err != nil {
			return nil, err
		}
		b := AdversaryBench{
			Backend:        backend.String(),
			Peers:          n,
			Fraction:       frac,
			Samples:        samples,
			NaiveTV:        naiveTV,
			SwapTV:         swapTV,
			SwapFailRate:   swapFails,
			EclipseCapture: capture,
			WallMS:         msF(time.Since(start)),
		}
		out = append(out, b)
		fmt.Fprintf(os.Stderr, "benchsnap: adversary %s: naive TV %.4f, swap TV %.4f (fail %.4f), eclipse %.4f\n",
			backend, b.NaiveTV, b.SwapTV, b.SwapFailRate, b.EclipseCapture)
	}
	return out, nil
}
