package main

import (
	"fmt"
	"os"
	"time"

	"github.com/dht-sampling/randompeer/internal/exp"
	"github.com/dht-sampling/randompeer/internal/sim"
)

// SLOBench records one E28 scenario run per backend: the open-loop
// sample workload under churn, windowed in virtual time and evaluated
// against the default objectives. Every field except the wall-clock
// pair is a deterministic function of the scenario (same seed, same
// numbers on any machine), so the committed snapshot doubles as a
// behavioral record: a PR that changes p99_ms or availability changed
// the system, not the benchmark box. RequestsPerSecWall is the only
// throughput-style field and carries the wall-clock noise.
type SLOBench struct {
	Backend            string  `json:"backend"`
	Peers              int     `json:"peers"`
	Requests           int64   `json:"requests"`
	Failed             int64   `json:"failed"`
	ChurnEvents        int     `json:"churn_events"`
	Windows            int     `json:"windows"`
	P50Ms              float64 `json:"p50_ms"`
	P95Ms              float64 `json:"p95_ms"`
	P99Ms              float64 `json:"p99_ms"`
	Availability       float64 `json:"availability"`
	BudgetConsumedPct  float64 `json:"budget_consumed_pct"`
	MaxBurnRate        float64 `json:"max_burn_rate"`
	FastBurnWindows    int     `json:"fast_burn_windows"`
	VnodeImbalanceOff  float64 `json:"vnode_imbalance_off"`
	VnodeImbalanceOn   float64 `json:"vnode_imbalance_on"`
	Met                bool    `json:"met"`
	VirtualMS          float64 `json:"virtual_ms"`
	RunWallMS          float64 `json:"run_wall_ms"`
	RequestsPerSecWall float64 `json:"requests_per_sec_wall"`
}

// measureSLO runs the full-size E28 scenario for each backend through
// the same internal/exp runner the experiment table uses and maps the
// results into the committed snapshot record.
func measureSLO(backends []string, seed uint64) ([]SLOBench, error) {
	var out []SLOBench
	for _, backend := range backends {
		sc := exp.DefaultSLOScenario(backend, false, sim.Constant{RTT: time.Millisecond}, seed)
		fmt.Fprintf(os.Stderr, "benchsnap: E28 SLO scenario — %s at n=%d, %d requests, %d churn events...\n",
			backend, sc.Peers, sc.Requests, sc.ChurnEvents)
		res, err := exp.RunSLOScenario(sc)
		if err != nil {
			return nil, err
		}
		rep := res.Report
		b := SLOBench{
			Backend:            backend,
			Peers:              sc.Peers,
			Requests:           rep.TotalRequests,
			Failed:             rep.TotalFailed,
			ChurnEvents:        res.ChurnEvents,
			Windows:            len(rep.Windows),
			P50Ms:              msF(res.OverallQuantile(0.50)),
			P95Ms:              msF(res.OverallQuantile(0.95)),
			P99Ms:              msF(res.OverallQuantile(0.99)),
			Availability:       rep.Availability,
			BudgetConsumedPct:  rep.BudgetConsumed * 100,
			MaxBurnRate:        rep.MaxBurnRate,
			FastBurnWindows:    rep.FastBurnWindows,
			VnodeImbalanceOff:  res.VnodeOff.Imbalance,
			VnodeImbalanceOn:   res.VnodeOn.Imbalance,
			Met:                rep.Met,
			VirtualMS:          msF(res.Virtual),
			RunWallMS:          msF(res.RunWall),
			RequestsPerSecWall: float64(rep.TotalRequests) / res.RunWall.Seconds(),
		}
		out = append(out, b)
		fmt.Fprintf(os.Stderr, "benchsnap: E28 %s: p99 %.0fms, avail %.4f, budget %.0f%%, met=%v (%.2fs wall)\n",
			backend, b.P99Ms, b.Availability, b.BudgetConsumedPct, b.Met, res.RunWall.Seconds())
	}
	return out, nil
}

// msF converts a duration to float milliseconds.
func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
