package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/churn"
	"github.com/dht-sampling/randompeer/internal/exp"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// KernelBench records the discrete-event kernel's raw scheduling cost
// across its three dispatch paths (see BenchmarkKernelEventLoop).
// PR3RefNsPerEvent is the pre-rewrite kernel's measured per-event cost
// on the reference box (container/heap plus two channel handoffs for
// every event); SpeedupVsPR3 relates the proc fast path to it.
type KernelBench struct {
	ProcNsPerEvent        float64 `json:"proc_ns_per_event"`
	ProcEventsPerSec      float64 `json:"proc_events_per_sec"`
	CallbackNsPerEvent    float64 `json:"callback_ns_per_event"`
	CallbackEventsPerSec  float64 `json:"callback_events_per_sec"`
	InterleavedNsPerEvent float64 `json:"interleaved_ns_per_event"`
	PR3RefNsPerEvent      float64 `json:"pr3_ref_ns_per_event"`
	SpeedupVsPR3          float64 `json:"speedup_vs_pr3"`
}

// BuildBench records bulk overlay construction at scale for one
// backend.
type BuildBench struct {
	Backend     string  `json:"backend"`
	Peers       int     `json:"peers"`
	WallMS      float64 `json:"wall_ms"`
	PeersPerSec float64 `json:"peers_per_sec"`
}

// ChurnBench records the asynchronous churn driver's sustained event
// rate: exponential-gap joins/crashes plus periodic parallel
// maintenance sweeps on a live Chord ring over the event kernel.
type ChurnBench struct {
	Peers         int     `json:"peers"`
	Events        int     `json:"events"`
	WallMS        float64 `json:"wall_ms"`
	EventsPerSec  float64 `json:"events_per_sec"`
	KernelEvents  uint64  `json:"kernel_events"`
	KernelPerSec  float64 `json:"kernel_events_per_sec"`
	MaintInterval string  `json:"maintenance_interval"`
}

// E27Scale records the million-peer scenario run: construction plus an
// asynchronous churn schedule with concurrent samplers (experiment E27
// at full scale). Survived means the schedule executed, samplers kept
// sampling, and the post-churn owner probes resolved.
type E27Scale struct {
	Backend       string  `json:"backend"`
	Peers         int     `json:"peers"`
	BuildWallMS   float64 `json:"build_wall_ms"`
	ChurnEvents   int     `json:"churn_events"`
	StepErrors    int     `json:"step_errors"`
	SamplesOK     int     `json:"samples_ok"`
	SampleErrs    int     `json:"sample_errs"`
	OwnerMatchPct float64 `json:"owner_match_pct"`
	VirtualMS     float64 `json:"virtual_ms"`
	RunWallMS     float64 `json:"run_wall_ms"`
	Survived      bool    `json:"survived"`
}

// MemBench records the flat-storage capacity measurement for one
// backend: the overlay built at n with the GC-settled heap cost per
// node, the build wall time, and the bytes the process obtained from
// the OS (the "peak RSS" the capacity plan budgets for). These are the
// committed numbers behind the "10M-peer rings in a few GB" claim, and
// cmd/benchdiff gates bytes/node and build time higher-is-worse.
type MemBench struct {
	Backend      string  `json:"backend"`
	Peers        int     `json:"peers"`
	BuildWallMS  float64 `json:"build_wall_ms"`
	PeersPerSec  float64 `json:"peers_per_sec"`
	BytesPerNode float64 `json:"bytes_per_node"`
	HeapMB       float64 `json:"heap_mb"`
	SysMB        float64 `json:"sys_mb"`
	Slots        int     `json:"slots"`
	ProbesOK     int     `json:"probes_ok"`
	Probes       int     `json:"probes"`
}

// measureMem runs the E30 storage-scale measurement (bulk build +
// GC-settled heap accounting + successor probes) through the same
// internal/exp runner the E30 experiment table uses, one backend at a
// time so the first overlay is collected before the second builds.
func measureMem(chordN, kadN int, seed uint64) ([]MemBench, error) {
	var out []MemBench
	for _, sc := range []struct {
		name string
		n    int
	}{{"chord", chordN}, {"kademlia", kadN}} {
		if sc.n <= 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchsnap: mem — building %s at n=%d (flat storage)...\n", sc.name, sc.n)
		res, err := exp.RunStorageScale(sc.name, sc.n, 200, seed)
		if err != nil {
			return nil, err
		}
		mb := MemBench{
			Backend: res.Backend, Peers: res.Peers,
			BuildWallMS:  float64(res.BuildWall.Microseconds()) / 1000,
			PeersPerSec:  float64(res.Peers) / res.BuildWall.Seconds(),
			BytesPerNode: res.BytesPerNode,
			HeapMB:       float64(res.HeapDelta) / (1 << 20),
			SysMB:        float64(res.SysAfter) / (1 << 20),
			Slots:        res.Slots,
			ProbesOK:     res.ProbesOK,
			Probes:       res.Probes,
		}
		out = append(out, mb)
		fmt.Fprintf(os.Stderr, "benchsnap: mem %s n=%d: built in %.2fs (%.0f peers/sec), %.0f bytes/node, heap %.0f MB, sys %.0f MB, probes %d/%d\n",
			sc.name, sc.n, res.BuildWall.Seconds(), mb.PeersPerSec, mb.BytesPerNode, mb.HeapMB, mb.SysMB, mb.ProbesOK, mb.Probes)
		// The overlay became unreachable when RunStorageScale returned;
		// collect it before the next backend builds, so measurements do
		// not stack heaps.
		runtime.GC()
	}
	return out, nil
}

// measureKernel times the three kernel dispatch paths.
func measureKernel(pr3Ref float64) *KernelBench {
	fmt.Fprintln(os.Stderr, "benchsnap: measuring kernel event-loop paths...")
	timeRun := func(events int, setup func(k *sim.Kernel, events int)) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			k := sim.NewKernel(1)
			setup(k, events)
			start := time.Now()
			k.Run()
			ns := float64(time.Since(start).Nanoseconds()) / float64(events)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	proc := timeRun(5_000_000, func(k *sim.Kernel, events int) {
		k.Go("sleeper", func() {
			for i := 0; i < events; i++ {
				if k.Sleep(time.Microsecond) != nil {
					return
				}
			}
		})
	})
	callback := timeRun(2_000_000, func(k *sim.Kernel, events int) {
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < events {
				k.Post(time.Microsecond, "tick", tick)
			}
		}
		k.Post(time.Microsecond, "tick", tick)
	})
	interleaved := timeRun(400_000, func(k *sim.Kernel, events int) {
		for p := 0; p < 2; p++ {
			k.Go("sleeper", func() {
				for i := 0; i < (events+1)/2; i++ {
					if k.Sleep(time.Microsecond) != nil {
						return
					}
				}
			})
		}
	})
	kb := &KernelBench{
		ProcNsPerEvent:        proc,
		ProcEventsPerSec:      1e9 / proc,
		CallbackNsPerEvent:    callback,
		CallbackEventsPerSec:  1e9 / callback,
		InterleavedNsPerEvent: interleaved,
		PR3RefNsPerEvent:      pr3Ref,
		SpeedupVsPR3:          pr3Ref / proc,
	}
	fmt.Fprintf(os.Stderr, "benchsnap: kernel proc %.1f ns/event (%.1fM/s), callback %.1f ns/event, interleaved %.0f ns/event (%.1fx vs PR-3 ref %.0f ns)\n",
		proc, kb.ProcEventsPerSec/1e6, callback, interleaved, kb.SpeedupVsPR3, pr3Ref)
	return kb
}

// measureBuilds times bulk construction per backend.
func measureBuilds(chordN, kadN int, seed uint64) ([]BuildBench, error) {
	var out []BuildBench
	one := func(backend string, n int, build func(points []ring.Point) error) error {
		fmt.Fprintf(os.Stderr, "benchsnap: building %s at n=%d...\n", backend, n)
		rng := rand.New(rand.NewPCG(seed, seed+uint64(n)))
		r, err := ring.Generate(rng, n)
		if err != nil {
			return err
		}
		points := r.Points()
		runtime.GC()
		start := time.Now()
		if err := build(points); err != nil {
			return err
		}
		wall := time.Since(start)
		out = append(out, BuildBench{
			Backend: backend, Peers: n,
			WallMS:      float64(wall.Microseconds()) / 1000,
			PeersPerSec: float64(n) / wall.Seconds(),
		})
		fmt.Fprintf(os.Stderr, "benchsnap: %s n=%d built in %.2fs (%.0f peers/sec, %d workers)\n",
			backend, n, wall.Seconds(), float64(n)/wall.Seconds(), runtime.GOMAXPROCS(0))
		return nil
	}
	if err := one("chord", chordN, func(points []ring.Point) error {
		_, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), points)
		return err
	}); err != nil {
		return nil, err
	}
	if err := one("kademlia", kadN, func(points []ring.Point) error {
		_, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points)
		return err
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// measureChurn times a full asynchronous churn schedule with periodic
// parallel maintenance sweeps.
func measureChurn(peers, events int, seed uint64) (*ChurnBench, error) {
	fmt.Fprintf(os.Stderr, "benchsnap: driving %d async churn events over a %d-peer chord ring...\n", events, peers)
	const maint = 10 * time.Millisecond
	rng := rand.New(rand.NewPCG(seed, seed+9))
	r, err := ring.Generate(rng, peers)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel(seed)
	tr := sim.NewTransport(
		sim.WithKernel(k),
		sim.WithModel(sim.Constant{RTT: time.Millisecond}),
		sim.WithStreamSeed(seed+2),
	)
	net, err := chord.BuildStatic(chord.Config{}, tr, r.Points())
	if err != nil {
		return nil, err
	}
	driver, err := churn.NewDriver(churn.Chord(net), rand.New(rand.NewPCG(seed+3, seed+4)), churn.Config{Events: events})
	if err != nil {
		return nil, err
	}
	if _, err := driver.Schedule(k, churn.AsyncConfig{
		MeanInterval:        time.Millisecond,
		MaintenanceInterval: maint,
	}, nil); err != nil {
		return nil, err
	}
	start := time.Now()
	k.Run()
	wall := time.Since(start)
	cb := &ChurnBench{
		Peers: peers, Events: events,
		WallMS:        float64(wall.Microseconds()) / 1000,
		EventsPerSec:  float64(events) / wall.Seconds(),
		KernelEvents:  k.Processed(),
		KernelPerSec:  float64(k.Processed()) / wall.Seconds(),
		MaintInterval: maint.String(),
	}
	fmt.Fprintf(os.Stderr, "benchsnap: churn %.0f events/sec (%d kernel events, %.0f/sec)\n",
		cb.EventsPerSec, cb.KernelEvents, cb.KernelPerSec)
	return cb, nil
}

// measureE27 runs the full-scale E27 scenario through the same
// internal/exp runner the E27 experiment table uses (one scenario
// definition, two consumers), and maps the result into the committed
// snapshot record.
func measureE27(n, events, probes int, seed uint64) (*E27Scale, error) {
	fmt.Fprintf(os.Stderr, "benchsnap: E27 scenario — chord at n=%d under async churn...\n", n)
	res, err := exp.RunScaleScenario("chord", n, events, probes,
		25*time.Millisecond, sim.Constant{RTT: time.Millisecond}, seed)
	if err != nil {
		return nil, err
	}
	e := &E27Scale{
		Backend: res.Backend, Peers: res.Peers,
		BuildWallMS:   float64(res.BuildWall.Microseconds()) / 1000,
		ChurnEvents:   res.ChurnEvents,
		StepErrors:    res.StepErrors,
		SamplesOK:     res.SamplesOK,
		SampleErrs:    res.SampleErrs + res.EstErrs,
		OwnerMatchPct: res.OwnerMatchPct(),
		VirtualMS:     float64(res.Virtual) / float64(time.Millisecond),
		RunWallMS:     float64(res.RunWall.Microseconds()) / 1000,
		Survived:      res.Survived(),
	}
	fmt.Fprintf(os.Stderr, "benchsnap: E27 chord n=%d: build %.1fs, %d churn events, %d samples ok / %d errs, owner match %.1f%%, survived=%v\n",
		n, res.BuildWall.Seconds(), e.ChurnEvents, e.SamplesOK, e.SampleErrs, e.OwnerMatchPct, e.Survived)
	return e, nil
}
