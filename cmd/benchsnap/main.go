// Command benchsnap records the batch-throughput perf trajectory: it
// runs the concurrent sampling engine over a million-peer oracle DHT at
// a sweep of worker counts, measures the virtual-clock transport's
// overhead against Direct on the Chord sampling hot path, and writes a
// JSON snapshot (committed as BENCH_<pr>.json at the repo root) so
// regressions and speedups are visible PR over PR.
//
// Usage:
//
//	benchsnap [-n 1000000] [-k 100000] [-workers 1,2,4,8] [-seed 1] [-o BENCH_1.json]
//	          [-overhead-n 1024] [-overhead-k 4000] [-overhead-reps 4]
//
// The drawn multiset is identical at every worker count (the engine
// forks per-block PCG streams), so every run measures the same work.
// The overhead measurement alternates direct/sim repetitions and keeps
// each side's minimum, which is robust to background noise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/dht-sampling/randompeer"
)

// Run is one timed configuration. NsPerSample and AllocsPerSample
// (heap allocations, measured from runtime.MemStats.Mallocs around the
// run, engine overhead included) record the per-sample constant factor
// next to the throughput, so the perf trajectory catches regressions
// in cost per op even when wall-clock noise hides them.
type Run struct {
	Workers         int     `json:"workers"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	SamplesPerSec   float64 `json:"samples_per_sec"`
	NsPerSample     float64 `json:"ns_per_sample"`
	AllocsPerSample float64 `json:"allocs_per_sample"`
	SpeedupVs1      float64 `json:"speedup_vs_1"`
}

// TransportOverhead compares the virtual-clock transport against
// Direct on the single-threaded Chord sampling hot path. The bound is
// absolute (~20 ns of extra work per RPC), not a percentage: speeding
// up the shared hot path shrinks the denominator.
type TransportOverhead struct {
	Peers             int     `json:"peers"`
	Samples           int     `json:"samples_per_rep"`
	Reps              int     `json:"reps"`
	Model             string  `json:"latency_model"`
	DirectNsPerSample float64 `json:"direct_ns_per_sample"`
	SimNsPerSample    float64 `json:"sim_ns_per_sample"`
	OverheadPct       float64 `json:"overhead_pct"`
}

// Snapshot is the committed benchmark record. The kernel, build, churn
// and E27 sections were added with the scenario-scale pass (BENCH_5),
// the adversary section with the fault-suite pass (BENCH_9), and the
// mem section with the flat-storage pass (BENCH_10); earlier snapshots
// simply lack them.
type Snapshot struct {
	Benchmark  string             `json:"benchmark"`
	Date       time.Time          `json:"date"`
	GoVersion  string             `json:"go_version"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Peers      int                `json:"peers"`
	Samples    int                `json:"samples_per_run"`
	Seed       uint64             `json:"seed"`
	Runs       []Run              `json:"runs"`
	Transport  *TransportOverhead `json:"transport_overhead,omitempty"`
	Kernel     *KernelBench       `json:"kernel,omitempty"`
	Builds     []BuildBench       `json:"builds,omitempty"`
	Churn      *ChurnBench        `json:"churn,omitempty"`
	E27        *E27Scale          `json:"e27,omitempty"`
	Mem        []MemBench         `json:"mem,omitempty"`
	SLO        []SLOBench         `json:"slo,omitempty"`
	Adversary  []AdversaryBench   `json:"adversary,omitempty"`
	Note       string             `json:"note,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1_000_000, "network size")
		k        = fs.Int("k", 100_000, "samples per timed run")
		workers  = fs.String("workers", "1,2,4,8", "comma-separated worker counts")
		seed     = fs.Uint64("seed", 1, "placement and batch seed")
		out      = fs.String("o", "", "output path (default stdout)")
		overN    = fs.Int("overhead-n", 1024, "chord ring size for the transport-overhead measurement")
		overK    = fs.Int("overhead-k", 4000, "samples per transport-overhead repetition")
		overReps = fs.Int("overhead-reps", 4, "alternating repetitions per transport")
		pr3Ref   = fs.Float64("pr3-kernel-ns", 491.8, "PR-3 kernel ns/event reference (container/heap + channel handoffs, measured on the reference box)")
		buildCh  = fs.Int("build-chord-n", 1_000_000, "chord ring size for the construction benchmark")
		buildKad = fs.Int("build-kademlia-n", 1<<17, "kademlia network size for the construction benchmark")
		churnN   = fs.Int("churn-n", 256, "chord ring size for the async-churn rate measurement")
		churnEv  = fs.Int("churn-events", 2000, "async churn events to drive")
		e27N     = fs.Int("e27-n", 1_000_000, "chord network size for the E27 scenario run (0 disables)")
		e27Ev    = fs.Int("e27-events", 48, "churn events in the E27 scenario run")
		memCh    = fs.Int("mem-chord-n", 10_000_000, "chord ring size for the flat-storage capacity measurement (0 disables)")
		memKad   = fs.Int("mem-kademlia-n", 1<<21, "kademlia network size for the flat-storage capacity measurement (0 disables)")
		sloOn    = fs.Bool("slo", true, "run the E28 SLO scenarios (open-loop load under churn, both backends)")
		advOn    = fs.Bool("adversary", true, "run the adversarial scenarios (route-bias bias + eclipse capture, both backends)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ws, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 2
	}
	snap, err := measure(*n, *k, *seed, ws)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 1
	}
	snap.Transport, err = measureOverhead(*overN, *overK, *overReps, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 1
	}
	snap.Kernel = measureKernel(*pr3Ref)
	snap.Builds, err = measureBuilds(*buildCh, *buildKad, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 1
	}
	snap.Churn, err = measureChurn(*churnN, *churnEv, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 1
	}
	if *e27N > 0 {
		snap.E27, err = measureE27(*e27N, *e27Ev, 200, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			return 1
		}
	}
	if *memCh > 0 || *memKad > 0 {
		snap.Mem, err = measureMem(*memCh, *memKad, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			return 1
		}
	}
	if *sloOn {
		snap.SLO, err = measureSLO([]string{"chord", "kademlia"}, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			return 1
		}
	}
	if *advOn {
		snap.Adversary, err = measureAdversary(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			return 1
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %s\n", *out)
	return 0
}

func parseWorkers(spec string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return ws, nil
}

func measure(n, k int, seed uint64, ws []int) (*Snapshot, error) {
	fmt.Fprintf(os.Stderr, "benchsnap: building %d-peer oracle testbed...\n", n)
	tb, err := randompeer.New(randompeer.WithPeers(n), randompeer.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	s, err := tb.UniformSampler(seed + 1)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	// Warm up caches (and fault in the ring) before timing.
	if _, err := tb.SampleN(ctx, s, min(k/10, 5000), randompeer.WithTallyOnly()); err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Benchmark:  "batch-throughput",
		Date:       time.Now().UTC(),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Peers:      n,
		Samples:    k,
		Seed:       seed,
	}
	var base float64
	for _, w := range ws {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := tb.SampleN(ctx, s, k,
			randompeer.WithWorkers(w),
			randompeer.WithBatchSeed(seed+2),
			randompeer.WithTallyOnly(),
		)
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&after)
		rate := float64(k) / res.Elapsed.Seconds()
		r := Run{
			Workers:         w,
			ElapsedMS:       float64(res.Elapsed.Microseconds()) / 1000,
			SamplesPerSec:   rate,
			NsPerSample:     float64(res.Elapsed.Nanoseconds()) / float64(k),
			AllocsPerSample: float64(after.Mallocs-before.Mallocs) / float64(k),
		}
		if base == 0 {
			base = rate
		}
		r.SpeedupVs1 = rate / base
		snap.Runs = append(snap.Runs, r)
		fmt.Fprintf(os.Stderr, "benchsnap: workers=%d  %.0f samples/sec  %.0f ns/sample  %.4f allocs/sample  (%.2fx)\n",
			w, rate, r.NsPerSample, r.AllocsPerSample, r.SpeedupVs1)
	}
	if snap.GOMAXPROCS < ws[len(ws)-1] {
		snap.Note = fmt.Sprintf("machine exposes only %d CPU(s); worker counts beyond that cannot speed up this CPU-bound workload", snap.GOMAXPROCS)
	}
	return snap, nil
}

// measureOverhead times single-threaded Chord sampling over Direct and
// over the virtual-clock transport (constant 1ms model, the E25
// default), alternating repetitions and keeping each side's minimum.
func measureOverhead(n, k, reps int, seed uint64) (*TransportOverhead, error) {
	const modelSpec = "constant:1ms"
	model, err := randompeer.ParseLatencyModel(modelSpec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "benchsnap: measuring sim-transport overhead on a %d-peer chord ring...\n", n)
	timeOne := func(simTime bool) (float64, error) {
		opts := []randompeer.Option{
			randompeer.WithPeers(n),
			randompeer.WithSeed(seed),
			randompeer.WithBackend(randompeer.ChordBackend),
		}
		if simTime {
			opts = append(opts, randompeer.WithLatencyModel(model))
		}
		tb, err := randompeer.New(opts...)
		if err != nil {
			return 0, err
		}
		s, err := tb.UniformSampler(seed + 1)
		if err != nil {
			return 0, err
		}
		// Warm up before timing.
		for i := 0; i < k/10; i++ {
			if _, err := s.Sample(); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < k; i++ {
			if _, err := s.Sample(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(k), nil
	}
	minDirect, minSim := 0.0, 0.0
	for rep := 0; rep < reps; rep++ {
		d, err := timeOne(false)
		if err != nil {
			return nil, err
		}
		s, err := timeOne(true)
		if err != nil {
			return nil, err
		}
		if minDirect == 0 || d < minDirect {
			minDirect = d
		}
		if minSim == 0 || s < minSim {
			minSim = s
		}
	}
	o := &TransportOverhead{
		Peers: n, Samples: k, Reps: reps, Model: modelSpec,
		DirectNsPerSample: minDirect,
		SimNsPerSample:    minSim,
		OverheadPct:       (minSim/minDirect - 1) * 100,
	}
	fmt.Fprintf(os.Stderr, "benchsnap: direct %.0f ns/sample, sim %.0f ns/sample (%.2f%% overhead)\n",
		minDirect, minSim, o.OverheadPct)
	return o, nil
}
