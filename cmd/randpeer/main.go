// Command randpeer is an interactive driver for the King–Saia random
// peer selection algorithm on a simulated DHT.
//
// Usage:
//
//	randpeer sample   [-n N] [-seed S] [-k K] [-workers W] [-sampler king-saia|naive|swap] [-backend oracle|chord|kademlia] [-latency MODEL]
//	                  [-drop-rate P] [-partition F] [-adversary KIND:FRAC]
//	randpeer estimate [-n N] [-seed S] [-c1 C] [-callers K]
//	randpeer verify   [-n N] [-seed S]
//	randpeer arcs     [-n N] [-seed S]
//
// sample draws K peers across W workers (the batch engine keeps the
// drawn multiset identical at any worker count) and prints the tally
// summary; with -latency (e.g. constant:1ms, uniform:500us-5ms,
// lognormal:2ms,0.6, straggler:0.1,8,constant:1ms) the testbed runs on
// simulated time and the summary adds per-RPC and per-sample virtual
// latencies. estimate runs the paper's size estimator from K callers;
// verify computes the exact Theorem 6 measure partition; arcs prints
// the structural statistics (Lemmas 1 and 4, Theorem 8).
//
// The fault flags (chord/kademlia backends only) exercise the sampler
// under injected failures and Byzantine subversion: -drop-rate drops
// each RPC with probability P, -partition cuts a random fraction F of
// peers off from the caller's side of the network, and -adversary arms
// a seeded Byzantine attack — one of route-bias:F, eclipse:F or
// censor:F with F the subverted fraction of the membership (e.g.
// -adversary route-bias:0.2). Under any fault flag the batch loop
// tolerates per-sample failures and reports the failure rate next to
// the bias of what survived; -sampler swap selects the PeerSwap-style
// audited sampler, the mitigation E29 measures against route-bias.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/arcs"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "sample":
		err = cmdSample(args[1:])
	case "estimate":
		err = cmdEstimate(args[1:])
	case "verify":
		err = cmdVerify(args[1:])
	case "arcs":
		err = cmdArcs(args[1:])
	case "help", "-h", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "randpeer: unknown command %q\n", args[0])
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "randpeer:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: randpeer <command> [flags]

commands:
  sample    draw K random peers and summarize the tally
  estimate  run the Estimate n algorithm from K callers
  verify    compute the exact Theorem 6 measure partition
  arcs      print structural ring statistics (Lemmas 1, 4; Theorem 8)`)
}

func newTestbed(n int, seed uint64, backend, latency string) (*randompeer.Testbed, error) {
	b, err := randompeer.ParseBackend(backend)
	if err != nil {
		return nil, err
	}
	opts := []randompeer.Option{
		randompeer.WithPeers(n),
		randompeer.WithSeed(seed),
		randompeer.WithBackend(b),
	}
	if latency != "" {
		model, err := randompeer.ParseLatencyModel(latency)
		if err != nil {
			return nil, err
		}
		opts = append(opts, randompeer.WithLatencyModel(model))
	}
	return randompeer.New(opts...)
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1024, "network size")
		seed     = fs.Uint64("seed", 1, "placement seed")
		k        = fs.Int("k", 10000, "samples to draw")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel sampling workers")
		sampler  = fs.String("sampler", "king-saia", "king-saia, naive or swap (audited mitigation)")
		backend  = fs.String("backend", "oracle", "DHT substrate: "+randompeer.BackendNames())
		latency  = fs.String("latency", "", "latency model for simulated time (e.g. constant:1ms); empty = off")
		trace    = fs.Bool("trace", false, "after the batch, trace one sample hop-by-hop (chord/kademlia backends)")
		dropRate = fs.Float64("drop-rate", 0, "drop each RPC with this probability (transport backends)")
		partFrac = fs.Float64("partition", 0, "cut this fraction of peers off from the caller's side (transport backends)")
		advSpec  = fs.String("adversary", "", "arm a Byzantine attack, kind:fraction with kind one of "+
			strings.Join(randompeer.AdversaryKinds(), ", ")+" (e.g. route-bias:0.2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tb, err := newTestbed(*n, *seed, *backend, *latency)
	if err != nil {
		return err
	}
	var s randompeer.Sampler
	switch *sampler {
	case "king-saia":
		s, err = tb.UniformSampler(*seed + 1)
		if err != nil {
			return err
		}
	case "naive":
		s = tb.NaiveSampler(*seed + 1)
	case "swap":
		s, err = tb.SwapSampler(*seed+1, 2)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown sampler %q", *sampler)
	}
	faulty := *dropRate > 0 || *partFrac > 0 || *advSpec != ""
	if *dropRate > 0 {
		plan := tb.FaultPlan()
		if plan == nil {
			return fmt.Errorf("-drop-rate needs a transport backend (chord or kademlia), not %s", *backend)
		}
		plan.SetDropRate(*dropRate)
		fmt.Printf("faults:    dropping each RPC with probability %v\n", *dropRate)
	}
	if *partFrac > 0 {
		if err := tb.PartitionFraction("cli", *partFrac, *seed+7); err != nil {
			return err
		}
		fmt.Printf("faults:    partitioned a random %v of peers away from the caller\n", *partFrac)
	}
	if *advSpec != "" {
		// The swap sampler's audit vantages are assumed honest by the
		// threat model; keep them out of the coalition.
		var exclude []int
		if *sampler == "swap" {
			exclude = tb.SwapVantages(2)
		}
		adv, err := tb.InstallAdversary(*advSpec, *seed+9, exclude...)
		if err != nil {
			return err
		}
		fmt.Printf("faults:    %s adversary subverting %d of %d peers\n", adv.Kind(), adv.NumNodes(), tb.Size())
	}
	if faulty {
		// Injected faults make individual samples fail by design; the
		// deterministic batch engine treats any error as fatal, so run a
		// failure-tolerant loop instead and report the failure rate.
		return sampleTolerant(tb, s, *k, *backend)
	}
	res, err := tb.SampleN(context.Background(), s, *k,
		randompeer.WithWorkers(*workers),
		randompeer.WithBatchSeed(*seed+1),
		randompeer.WithTallyOnly(),
	)
	if err != nil {
		return err
	}
	stat, pvalue, err := stats.ChiSquareUniform(res.Tally)
	if err != nil {
		return err
	}
	tvd, err := stats.TotalVariationUniform(res.Tally)
	if err != nil {
		return err
	}
	persec := float64(*k) / res.Elapsed.Seconds()
	fmt.Printf("sampler:   %s over %d peers (%s backend)\n", s.Name(), tb.Size(), *backend)
	fmt.Printf("samples:   %d (%d workers, deterministic=%v)\n", *k, res.Workers, res.Deterministic)
	fmt.Printf("chi2:      %.2f (p = %.4f)  [p >= 0.05 is consistent with uniform]\n", stat, pvalue)
	fmt.Printf("tvd:       %.4f\n", tvd)
	fmt.Printf("cost:      %.1f RPCs and %.1f messages per sample\n",
		float64(res.Cost.Calls)/float64(*k), float64(res.Cost.Messages)/float64(*k))
	if tb.SimTime() {
		lat := tb.Latency()
		fmt.Printf("latency:   model %s; per RPC mean %v p50 %v p99 %v\n",
			tb.LatencyModel().Name(), lat.Mean().Round(time.Microsecond),
			lat.Quantile(0.5).Round(time.Microsecond), lat.Quantile(0.99).Round(time.Microsecond))
		fmt.Printf("vtime:     %v total virtual time (%v per sample, sequential)\n",
			tb.VirtualTime().Round(time.Millisecond),
			(tb.VirtualTime() / time.Duration(*k)).Round(time.Microsecond))
	}
	fmt.Printf("rate:      %.0f samples/sec (%v elapsed)\n", persec, res.Elapsed.Round(time.Microsecond))
	if *trace {
		return printTrace(tb, s)
	}
	return nil
}

// sampleTolerant draws k samples sequentially, tolerating per-sample
// failures (dropped RPCs, partitioned routes, exhausted swap audits)
// and summarizing the bias of the samples that survived.
func sampleTolerant(tb *randompeer.Testbed, s randompeer.Sampler, k int, backend string) error {
	tally := make([]int64, tb.Size())
	fails := 0
	start := time.Now()
	for i := 0; i < k; i++ {
		p, err := s.Sample()
		if err != nil {
			fails++
			continue
		}
		tally[p.Owner]++
	}
	elapsed := time.Since(start)
	fmt.Printf("sampler:   %s over %d peers (%s backend, fault-tolerant loop)\n", s.Name(), tb.Size(), backend)
	fmt.Printf("samples:   %d attempted, %d failed (rate %.4f)\n", k, fails, float64(fails)/float64(k))
	if fails == k {
		fmt.Println("verdict:   no sample survived the injected faults")
		return nil
	}
	stat, pvalue, err := stats.ChiSquareUniform(tally)
	if err != nil {
		return err
	}
	tvd, err := stats.TotalVariationUniform(tally)
	if err != nil {
		return err
	}
	fmt.Printf("chi2:      %.2f (p = %.4f)  [p >= 0.05 is consistent with uniform]\n", stat, pvalue)
	fmt.Printf("tvd:       %.4f  [bias of the surviving samples]\n", tvd)
	fmt.Printf("rate:      %.0f samples/sec (%v elapsed)\n", float64(k)/elapsed.Seconds(), elapsed.Round(time.Microsecond))
	return nil
}

// printTrace draws one extra sample with hop tracing armed and prints
// the hop-by-hop record plus its reconciliation against the meter.
func printTrace(tb *randompeer.Testbed, s randompeer.Sampler) error {
	meter := tb.DHT().Meter()
	before := meter.Snapshot()
	peer, tr, err := tb.TraceSample(s)
	if err != nil {
		return err
	}
	charged := meter.Snapshot().Sub(before).Calls
	fmt.Printf("trace:     id %#x drew owner %d (point %#x): %d hops, %d ok, meter charged %d calls\n",
		tr.ID(), peer.Owner, uint64(peer.Point), tr.Len(), tr.OKHops(), charged)
	for _, h := range tr.Hops() {
		lat, unit := time.Duration(h.WallNanos), "wall"
		if tb.SimTime() {
			lat, unit = time.Duration(h.VirtualNanos), "virtual"
		}
		fmt.Printf("  hop %2d: %016x -> %016x  %-30s %-8s %v %s\n",
			h.Index, h.From, h.To, h.RPC, h.Outcome, lat, unit)
	}
	return nil
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 4096, "network size")
		seed    = fs.Uint64("seed", 1, "placement seed")
		c1      = fs.Float64("c1", 2, "walk-length constant")
		callers = fs.Int("callers", 16, "number of peers that estimate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tb, err := newTestbed(*n, *seed, "oracle", "")
	if err != nil {
		return err
	}
	fmt.Printf("true n = %d, c1 = %v\n", *n, *c1)
	ratios := make([]float64, 0, *callers)
	for i := 0; i < *callers; i++ {
		caller := i * tb.Size() / *callers
		res, err := tb.EstimateSize(caller, *c1)
		if err != nil {
			return err
		}
		ratio := res.NHat / float64(*n)
		ratios = append(ratios, ratio)
		fmt.Printf("  caller %5d: nhat1 = %10.1f  s = %3d  nhat = %10.1f  ratio = %.3f\n",
			caller, res.NHat1, res.S, res.NHat, ratio)
	}
	s := stats.Summarize(ratios)
	fmt.Printf("ratio nhat/n: min %.3f  mean %.3f  max %.3f  (Lemma 3 band: 0.286 .. 6)\n",
		s.Min, s.Mean, s.Max)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	var (
		n    = fs.Int("n", 4096, "network size")
		seed = fs.Uint64("seed", 1, "placement seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tb, err := newTestbed(*n, *seed, "oracle", "")
	if err != nil {
		return err
	}
	a, err := tb.VerifyUniformity(0)
	if err != nil {
		return err
	}
	fmt.Printf("exact Theorem 6 verification over %d peers:\n", tb.Size())
	fmt.Printf("  lambda:              %d units (1/(7n) of the circle)\n", a.Lambda)
	fmt.Printf("  walk bound:          %d steps (6 ln n')\n", a.MaxSteps)
	fmt.Printf("  max |measure-lambda|: %d units (relative %.3e)\n",
		a.MaxDeviation, float64(a.MaxDeviation)/float64(a.Lambda))
	fmt.Printf("  trial success prob:  %.4f (= n*lambda = n/(7*nhat))\n", a.SuccessProbability)
	fmt.Println("  verdict: every peer owns measure exactly lambda up to integer rounding")
	return nil
}

func cmdArcs(args []string) error {
	fs := flag.NewFlagSet("arcs", flag.ContinueOnError)
	var (
		n    = fs.Int("n", 4096, "network size")
		seed = fs.Uint64("seed", 1, "placement seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(*seed, *seed^0xdeadbeef))
	r, err := ring.Generate(rng, *n)
	if err != nil {
		return err
	}
	l1, err := arcs.CheckLemma1(r)
	if err != nil {
		return err
	}
	l4, err := arcs.CheckLemma4(r)
	if err != nil {
		return err
	}
	ext, err := arcs.Extremes(r)
	if err != nil {
		return err
	}
	fmt.Printf("ring of %d uniformly placed peers (seed %d)\n", *n, *seed)
	fmt.Printf("Lemma 1:   ln(1/arc) in [%.2f, %.2f], bounds [%.2f, %.2f], violations %d\n",
		l1.MinLogInv, l1.MaxLogInv, l1.LowerBound, l1.UpperBound, l1.Violations)
	fmt.Printf("Lemma 4:   min %d-window sum %.3e vs threshold %.3e, violations %d\n",
		l4.Window, l4.MinSumFrac, l4.Threshold, l4.Violations)
	fmt.Printf("Theorem 8: min arc %.3e (n^2-scaled %.2f), max arc %.3e ((n/ln n)-scaled %.2f)\n",
		ext.MinArcFrac, ext.MinScaled, ext.MaxArcFrac, ext.MaxScaled)
	fmt.Printf("naive bias ratio max/min = %.0f (= %.2f of n ln n)\n", ext.BiasRatio, ext.BiasVsNLogN)
	return nil
}
