package main

import "testing"

func TestRunCommands(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{name: "no args", args: nil, want: 2},
		{name: "unknown command", args: []string{"bogus"}, want: 2},
		{name: "help", args: []string{"help"}, want: 0},
		{name: "sample small", args: []string{"sample", "-n", "64", "-k", "500"}, want: 0},
		{name: "sample naive", args: []string{"sample", "-n", "64", "-k", "500", "-sampler", "naive"}, want: 0},
		{name: "sample chord backend", args: []string{"sample", "-n", "32", "-k", "100", "-backend", "chord"}, want: 0},
		{name: "sample kademlia backend", args: []string{"sample", "-n", "32", "-k", "100", "-backend", "kademlia"}, want: 0},
		{name: "sample bad sampler", args: []string{"sample", "-sampler", "bogus", "-n", "16", "-k", "1"}, want: 1},
		{name: "sample bad backend", args: []string{"sample", "-backend", "bogus"}, want: 1},
		{name: "estimate", args: []string{"estimate", "-n", "256", "-callers", "4"}, want: 0},
		{name: "verify", args: []string{"verify", "-n", "256"}, want: 0},
		{name: "arcs", args: []string{"arcs", "-n", "256"}, want: 0},
		{name: "bad flag", args: []string{"sample", "-definitely-not-a-flag"}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := run(tt.args); got != tt.want {
				t.Errorf("run(%v) = %d, want %d", tt.args, got, tt.want)
			}
		})
	}
}
