package randompeer

import (
	"testing"
)

// TestTraceSampleReconcilesWithMeter is the observability ground truth:
// on both transport-backed backends, the successful hops a trace
// records must equal the calls the meter charged for the same sample.
func TestTraceSampleReconcilesWithMeter(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name    string
		backend Backend
	}{
		{"chord", ChordBackend},
		{"kademlia", KademliaBackend},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tb, err := New(WithPeers(64), WithSeed(17), WithBackend(tc.backend))
			if err != nil {
				t.Fatal(err)
			}
			s, err := tb.UniformSampler(23)
			if err != nil {
				t.Fatal(err)
			}
			meter := tb.DHT().Meter()
			for i := 0; i < 20; i++ {
				before := meter.Snapshot()
				peer, trace, err := tb.TraceSample(s)
				if err != nil {
					t.Fatal(err)
				}
				charged := meter.Snapshot().Sub(before).Calls
				if got := int64(trace.OKHops()); got != charged {
					t.Fatalf("sample %d: trace has %d ok hops, meter charged %d calls\nhops: %+v",
						i, got, charged, trace.Hops())
				}
				if trace.Len() > 0 {
					hops := trace.Hops()
					for j, h := range hops {
						if h.Index != j {
							t.Fatalf("hop %d has index %d", j, h.Index)
						}
						if h.RPC == "" {
							t.Fatalf("hop %d has empty rpc name", j)
						}
						if h.Outcome == "" {
							t.Fatalf("hop %d has empty outcome", j)
						}
					}
				}
				if peer.Owner < 0 || peer.Owner >= tb.Size() {
					t.Fatalf("sample %d: owner %d out of range", i, peer.Owner)
				}
			}
		})
	}
}

// TestTraceSampleDisarms checks tracing is strictly per-operation: a
// sample after TraceSample must not grow the previous trace.
func TestTraceSampleDisarms(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(32), WithSeed(5), WithBackend(ChordBackend))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.UniformSampler(7)
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := tb.TraceSample(s)
	if err != nil {
		t.Fatal(err)
	}
	n := trace.Len()
	if _, err := s.Sample(); err != nil {
		t.Fatal(err)
	}
	if trace.Len() != n {
		t.Fatalf("trace grew after disarm: %d -> %d hops", n, trace.Len())
	}
}

// TestTraceSampleOracleRejected checks the oracle backend (which models
// RPC costs without executing RPCs) refuses to trace.
func TestTraceSampleOracleRejected(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(32), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.UniformSampler(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.TraceSample(s); err == nil {
		t.Fatal("oracle backend should refuse tracing")
	}
}
