# Build/test/benchmark entry points for the King–Saia random peer
# reproduction. CI (.github/workflows/ci.yml) calls these same targets.

GO ?= go
PR ?= 1

.PHONY: all build test race vet fmt-check bench bench-snapshot examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race job is the regression gate for the concurrent sampling
# engine: it runs the stress and determinism tests under the detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Key benchmarks as a smoke test (one iteration each): the headline
# single-sample cost, the batch engine at n=1e6 across worker counts,
# the cross-backend lookup-cost comparison (oracle/chord/kademlia), and
# the virtual-clock transport overhead on the sampling hot path.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkUniformSample|BenchmarkBatchThroughput|BenchmarkLookupCostBackends|BenchmarkSimTransportOverhead|BenchmarkKernelEventLoop' -benchtime=1x .

# Full throughput measurement, recorded into the committed perf
# trajectory (BENCH_$(PR).json). Override PR for later snapshots.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -o BENCH_$(PR).json

# Build and run every example program.
examples:
	@for d in examples/*/; do \
		echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	$(GO) clean ./...
