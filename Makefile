# Build/test/benchmark entry points for the King–Saia random peer
# reproduction. CI (.github/workflows/ci.yml) calls these same targets.

GO ?= go
PR ?= 1

# Build identity stamped into the binaries (reported by randpeerd's
# /healthz and its randpeerd_build_info metric).
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS  = -X main.version=$(VERSION) -X main.commit=$(COMMIT)

.PHONY: all build test race vet fmt-check bench bench-snapshot benchdiff cluster-smoke slo-report staticcheck vuln profile alloc-check storage-check examples clean

all: build test

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

test:
	$(GO) test ./...

# The race job is the regression gate for the concurrent sampling
# engine: it runs the stress and determinism tests under the detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Key benchmarks as a smoke test (one iteration each, with allocation
# counts): the headline single-sample cost, the batch engine at n=1e6
# across worker counts, the cross-backend lookup-cost comparison
# (oracle/chord/kademlia), the virtual-clock transport overhead on the
# sampling hot path, the kernel event-loop dispatch paths, bulk overlay
# construction, and the async churn driver.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkUniformSample|BenchmarkBatchThroughput|BenchmarkLookupCostBackends|BenchmarkSimTransportOverhead|BenchmarkKernelEventLoop|BenchmarkBuildStatic' -benchtime=1x -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkAsyncChurn' -benchtime=100x -benchmem ./internal/churn/

# Kernel event-loop microbenchmarks alone, at measurement benchtime:
# the proc fast path, the Post callback path and the forced coroutine
# handoff. CI runs this as the kernel perf smoke.
bench-kernel:
	$(GO) test -run '^$$' -bench 'BenchmarkKernelEventLoop' -benchtime=0.5s -benchmem .

# Full throughput measurement, recorded into the committed perf
# trajectory (BENCH_$(PR).json). Override PR for later snapshots.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -o BENCH_$(PR).json

# Compare the two most recent committed snapshots: PR-over-PR
# samples/sec, ns/sample and allocs/sample.
benchdiff:
	$(GO) run ./cmd/benchdiff

# Multi-process cluster smoke: build randpeerd, spawn a 3-daemon
# loopback cluster per backend, and run the conformance, determinism,
# control-plane and kill/restart suites over real sockets.
cluster-smoke:
	$(GO) test -run 'TestCluster' -v ./internal/cluster/

# E28 per-backend SLO report (quick mode) — the markdown artifact the
# CI slo job uploads. Drop -quick (edit here or run the command by
# hand) for the full 512-peer scenario.
slo-report:
	$(GO) run ./cmd/experiments -run E28 -quick -slo-report slo-report.md
	@echo "wrote slo-report.md"

# Static analysis beyond vet. CI installs the tool; locally run
# `go install honnef.co/go/tools/cmd/staticcheck@2024.1.1` once.
staticcheck:
	staticcheck ./...

# Known-vulnerability scan over the module and its (stdlib-only)
# dependency graph. CI installs the tool; locally run
# `go install golang.org/x/vuln/cmd/govulncheck@v1.1.3` once.
vuln:
	govulncheck ./...

# CPU and allocation profiles of the batch-sampling hot path. Inspect
# with: go tool pprof -top cpu.pprof  (or mem.pprof; -http=: for flames)
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkBatchThroughput/workers=1' -benchtime 5x \
		-cpuprofile cpu.pprof -memprofile mem.pprof -benchmem .
	@echo "wrote cpu.pprof and mem.pprof; view with: go tool pprof -top cpu.pprof"

# The allocation-budget regression gates alone (they also run as part
# of `make test`): per-op heap budgets for the oracle, chord and
# kademlia hot paths and the uniform sampler.
alloc-check:
	$(GO) test -run 'TestAllocBudget' -v ./internal/dht/ ./internal/core/ ./internal/chord/ ./internal/kademlia/

# The flat-storage invariants alone (they also run as part of `make
# test` and, counted, under the CI race matrix): GC-settled per-node
# memory budgets, slot recycling across crash/join cycles, and the
# copy-on-write membership snapshot contract.
storage-check:
	$(GO) test -v ./internal/scale/

# Build and run every example program.
examples:
	@for d in examples/*/; do \
		echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	$(GO) clean ./...
