// Package randompeer is a complete implementation and experimental
// evaluation of Valerie King and Jared Saia's "Choosing a Random Peer"
// (PODC 2004): the first fully distributed algorithm that chooses a peer
// uniformly at random — each peer with probability exactly 1/n — from
// all peers of a DHT, with O(log n) expected latency and messages.
//
// The package is the public facade; the implementation lives in the
// internal packages:
//
//   - internal/core: the paper's algorithms (Estimate n, Choose Random
//     Peer) and the exact assignment analyzer behind Theorem 6.
//   - internal/chord: a full Chord DHT over a simulated network.
//   - internal/kademlia: a full Kademlia DHT (XOR metric, k-buckets,
//     iterative FIND_NODE) proving the sampler's substrate independence.
//   - internal/dht: the abstract (h, next) DHT model and an oracle
//     backend for million-peer experiments.
//   - internal/baseline: the naive, random-walk and virtual-node
//     samplers the algorithm is evaluated against.
//   - internal/{collect,randgraph,loadbalance,agreement}: the paper's
//     motivating applications.
//   - internal/exp: the experiment harness (E1-E26, see DESIGN.md).
//
// # Quick start
//
//	tb, err := randompeer.New(randompeer.WithPeers(1024), randompeer.WithSeed(7))
//	if err != nil { ... }
//	s, err := tb.UniformSampler(42)
//	if err != nil { ... }
//	peer, err := s.Sample() // uniform over all 1024 peers
package randompeer

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"time"

	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/biased"
	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Re-exported core types. Peer identifies a sampled peer (Owner is its
// stable index); Sampler is the common sampling interface; Point is a
// position on the 2^64-unit identifier circle.
type (
	// Peer is a peer of the DHT: its point on the circle plus a stable
	// owner index used for tallies.
	Peer = dht.Peer
	// Sampler chooses peers; all samplers in this module implement it.
	Sampler = dht.Sampler
	// DHT is the paper's abstract model: h (lookup) and next (successor).
	DHT = dht.DHT
	// Point is a position on the identifier circle.
	Point = ring.Point
	// SamplerConfig tunes the King-Saia sampler's constants.
	SamplerConfig = core.Config
	// EstimateResult reports one run of the Estimate n algorithm.
	EstimateResult = core.EstimateResult
	// Assignment is the exact measure partition behind Theorem 6.
	Assignment = core.Assignment
	// WeightFunc assigns relative selection weights for biased sampling
	// (the paper's open problem 3).
	WeightFunc = biased.WeightFunc
	// LatencyModel maps each simulated RPC to a virtual round-trip
	// duration (see WithLatencyModel); build one with
	// ParseLatencyModel or the constructors in internal/sim.
	LatencyModel = sim.Model
	// LatencySnapshot is an immutable view of the per-RPC virtual
	// latency histogram a time-simulating testbed records.
	LatencySnapshot = simnet.Latency
	// Trace is a hop-level record of one traced operation (see
	// TraceSample).
	Trace = obs.Trace
	// Hop is one RPC within a Trace.
	Hop = obs.Hop
)

// ParseLatencyModel parses a -latency flag spec such as "constant:1ms",
// "uniform:500us-5ms", "lognormal:2ms,0.6" or
// "straggler:0.1,8,constant:1ms".
func ParseLatencyModel(spec string) (LatencyModel, error) {
	return sim.ParseModel(spec)
}

// Backend selects the DHT substrate of a Testbed.
type Backend int

// Available backends.
const (
	// OracleBackend resolves lookups by binary search and charges the
	// textbook O(log n) costs; it scales to millions of peers.
	OracleBackend Backend = iota + 1
	// ChordBackend runs a real Chord ring: every h is an iterative
	// finger-table lookup over the simulated network.
	ChordBackend
	// KademliaBackend runs a real Kademlia overlay: every h is an
	// iterative XOR-metric FIND_NODE lookup (alpha-parallel, k-close)
	// plus an O(1) ring-pointer verification; next is one successor RPC.
	KademliaBackend
)

// String implements fmt.Stringer; the names round-trip through
// ParseBackend and are the values commands accept for -backend flags.
func (b Backend) String() string {
	switch b {
	case OracleBackend:
		return "oracle"
	case ChordBackend:
		return "chord"
	case KademliaBackend:
		return "kademlia"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// Backends returns every available backend. Commands and experiments
// iterate it so new substrates appear in help strings, flag parsing
// and comparison tables automatically.
func Backends() []Backend {
	return []Backend{OracleBackend, ChordBackend, KademliaBackend}
}

// BackendNames returns the accepted -backend flag values, in order.
func BackendNames() string {
	names := make([]string, 0, 3)
	for _, b := range Backends() {
		names = append(names, b.String())
	}
	return strings.Join(names, ", ")
}

// ParseBackend resolves a backend name (as printed by Backend.String)
// to its constant. It is the single parser all commands share.
func ParseBackend(name string) (Backend, error) {
	for _, b := range Backends() {
		if name == b.String() {
			return b, nil
		}
	}
	if name == "" {
		return OracleBackend, nil
	}
	return 0, fmt.Errorf("randompeer: unknown backend %q (want %s)", name, BackendNames())
}

// Testbed is a simulated DHT populated with uniformly placed peers,
// ready for sampling and measurement.
type Testbed struct {
	backend Backend
	n       int
	seed    uint64

	oracle *dht.Oracle
	net    *chord.Network
	view   *chord.DHT
	knet   *kademlia.Network
	kview  *kademlia.DHT
	r      *ring.Ring

	// faults is the always-attached fault plan of transport-backed
	// backends (nil for the oracle). Empty plans cost one atomic load
	// per RPC, so attachment is unconditional.
	faults *simnet.Faults

	vnow  func() time.Duration // non-nil when simulated time is on
	model sim.Model
}

// Option configures New.
type Option func(*options)

type options struct {
	n          int
	seed       uint64
	backend    Backend
	bucketSize int
	alpha      int
	simTime    bool
	latency    sim.Model
}

// WithPeers sets the network size (default 128).
func WithPeers(n int) Option { return func(o *options) { o.n = n } }

// WithSeed sets the placement seed (default 1); equal seeds build
// identical networks.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithBackend selects the substrate (default OracleBackend).
func WithBackend(b Backend) Option { return func(o *options) { o.backend = b } }

// WithBucketSize sets Kademlia's k — the k-bucket capacity and lookup
// closeness (default 16). It applies only to KademliaBackend.
func WithBucketSize(k int) Option { return func(o *options) { o.bucketSize = k } }

// WithAlpha sets Kademlia's lookup parallelism (default 3). It applies
// only to KademliaBackend.
func WithAlpha(a int) Option { return func(o *options) { o.alpha = a } }

// WithSimTime runs the testbed on simulated time: the Chord and
// Kademlia backends are built over the virtual-clock transport
// (internal/sim), and the oracle charges per-hop virtual latencies, so
// VirtualTime advances with every RPC and the meter records per-RPC
// latency histograms. The default latency model is a constant 1ms round
// trip; override it with WithLatencyModel.
func WithSimTime() Option { return func(o *options) { o.simTime = true } }

// WithLatencyModel selects the per-link latency model and implies
// WithSimTime. Build models with ParseLatencyModel ("constant:1ms",
// "uniform:500us-5ms", "lognormal:2ms,0.6",
// "straggler:0.1,8,constant:1ms") or directly from internal/sim.
func WithLatencyModel(m LatencyModel) Option {
	return func(o *options) {
		o.latency = m
		o.simTime = true
	}
}

// New builds a Testbed.
func New(opts ...Option) (*Testbed, error) {
	cfg := options{n: 128, seed: 1, backend: OracleBackend}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.n < 1 {
		return nil, fmt.Errorf("randompeer: need at least one peer, got %d", cfg.n)
	}
	rng := rand.New(rand.NewPCG(cfg.seed, cfg.seed^0x517cc1b727220a95))
	r, err := ring.Generate(rng, cfg.n)
	if err != nil {
		return nil, fmt.Errorf("randompeer: placing peers: %w", err)
	}
	tb := &Testbed{backend: cfg.backend, n: cfg.n, seed: cfg.seed, r: r}
	if cfg.simTime && cfg.latency == nil {
		cfg.latency = sim.Constant{RTT: time.Millisecond}
	}
	// transport builds the RPC fabric the protocol backends run on:
	// virtual-clock when simulated time is requested, Direct otherwise.
	// Either carries the testbed's fault plan (see FaultPlan).
	transport := func() simnet.Transport {
		tb.faults = simnet.NewFaults(nil)
		if !cfg.simTime {
			return simnet.NewDirect(simnet.WithFaults(tb.faults))
		}
		st := sim.NewTransport(
			sim.WithModel(cfg.latency),
			sim.WithStreamSeed(cfg.seed^0x71e0),
			sim.WithFaults(tb.faults),
		)
		tb.vnow = st.Now
		tb.model = cfg.latency
		return st
	}
	switch cfg.backend {
	case OracleBackend:
		tb.oracle = dht.NewOracle(r)
		if cfg.simTime {
			clk := new(sim.Clock)
			tb.vnow = clk.Now
			tb.model = cfg.latency
			tb.oracle.SimulateLatency(clk, cfg.latency, cfg.seed^0x71e0)
		}
	case ChordBackend:
		net, err := chord.BuildStatic(chord.Config{}, transport(), r.Points())
		if err != nil {
			return nil, fmt.Errorf("randompeer: building chord ring: %w", err)
		}
		view, err := net.AsDHT(r.At(0))
		if err != nil {
			return nil, err
		}
		tb.net = net
		tb.view = view
	case KademliaBackend:
		net, err := kademlia.BuildStatic(kademlia.Config{
			BucketSize: cfg.bucketSize,
			Alpha:      cfg.alpha,
		}, transport(), r.Points())
		if err != nil {
			return nil, fmt.Errorf("randompeer: building kademlia overlay: %w", err)
		}
		view, err := net.AsDHT(r.At(0))
		if err != nil {
			return nil, err
		}
		tb.knet = net
		tb.kview = view
	default:
		return nil, fmt.Errorf("randompeer: unknown backend %d", cfg.backend)
	}
	return tb, nil
}

// Size returns the number of peers.
func (tb *Testbed) Size() int { return tb.n }

// Backend returns the substrate the testbed was built on.
func (tb *Testbed) Backend() Backend { return tb.backend }

// SimTime reports whether the testbed runs on simulated time.
func (tb *Testbed) SimTime() bool { return tb.vnow != nil }

// VirtualTime returns the virtual clock's reading: the cumulative
// simulated latency of every RPC issued so far (sequential time — with
// concurrent workers it is the total across workers). It is zero when
// simulated time is off. Snapshot it before and after an operation to
// measure the operation's virtual latency.
func (tb *Testbed) VirtualTime() time.Duration {
	if tb.vnow == nil {
		return 0
	}
	return tb.vnow()
}

// LatencyModel returns the active latency model (nil when simulated
// time is off).
func (tb *Testbed) LatencyModel() LatencyModel { return tb.model }

// Latency returns the per-RPC virtual latency histogram recorded so far
// (zero-valued when simulated time is off).
func (tb *Testbed) Latency() LatencySnapshot { return tb.DHT().Meter().Latency() }

// DHT returns the testbed's DHT view (from peer 0 for the Chord and
// Kademlia backends, which initiates all lookups).
func (tb *Testbed) DHT() DHT {
	switch tb.backend {
	case ChordBackend:
		return tb.view
	case KademliaBackend:
		return tb.kview
	default:
		return tb.oracle
	}
}

// Peer returns the peer with the given owner index.
func (tb *Testbed) Peer(i int) (Peer, error) {
	if i < 0 || i >= tb.n {
		return Peer{}, fmt.Errorf("randompeer: peer %d outside [0, %d)", i, tb.n)
	}
	return Peer{Point: tb.r.At(i), Owner: i}, nil
}

// UniformSampler builds the King-Saia uniform sampler, run from peer 0:
// it estimates the network size with Estimate n and then chooses peers
// with probability exactly 1/n each (Theorem 6).
func (tb *Testbed) UniformSampler(seed uint64) (Sampler, error) {
	return tb.UniformSamplerFrom(0, seed, SamplerConfig{})
}

// UniformSamplerFrom builds the uniform sampler run from the given peer
// with explicit configuration.
func (tb *Testbed) UniformSamplerFrom(caller int, seed uint64, cfg SamplerConfig) (Sampler, error) {
	p, err := tb.Peer(caller)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x2545f4914f6cdd1d))
	s, err := core.New(tb.DHT(), p, rng, cfg)
	if err != nil {
		return nil, fmt.Errorf("randompeer: building uniform sampler: %w", err)
	}
	return s, nil
}

// AutoUniformSampler builds the deployment variant of the uniform
// sampler: it re-runs Estimate n every refreshEvery samples (and after
// any sampling failure), keeping lambda fresh as the network churns.
func (tb *Testbed) AutoUniformSampler(seed uint64, refreshEvery int64) (Sampler, error) {
	p, err := tb.Peer(0)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xa07a))
	s, err := core.NewAuto(tb.DHT(), p, rng, core.Config{}, refreshEvery)
	if err != nil {
		return nil, fmt.Errorf("randompeer: building auto sampler: %w", err)
	}
	return s, nil
}

// NaiveSampler builds the biased baseline "return h(x) for random x"
// that the paper's Section 1 analyzes.
func (tb *Testbed) NaiveSampler(seed uint64) Sampler {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return baseline.NewNaive(tb.DHT(), rng)
}

// EstimateSize runs the paper's Estimate n algorithm from the given
// peer. The result is a constant-factor approximation of the true size
// (Lemma 3) obtained from O(log n) messages.
func (tb *Testbed) EstimateSize(caller int, c1 float64) (EstimateResult, error) {
	p, err := tb.Peer(caller)
	if err != nil {
		return EstimateResult{}, err
	}
	return core.EstimateN(tb.DHT(), p, c1)
}

// VerifyUniformity computes the exact measure the Figure 1 partition
// assigns to every peer for the given (or, when nHat <= 0, the true)
// size estimate, turning Theorem 6 into a checkable identity. The
// returned Assignment reports the per-peer measure, the maximum
// deviation from lambda, and the per-trial success probability.
func (tb *Testbed) VerifyUniformity(nHat float64) (*Assignment, error) {
	if nHat <= 0 {
		nHat = float64(tb.n)
	}
	params, err := core.DeriveParams(nHat, 1, 6)
	if err != nil {
		return nil, err
	}
	return core.Analyze(tb.r, params.Lambda, params.MaxSteps)
}

// traceableTransport returns the testbed's transport as an
// obs.Traceable, or an error for backends with no real transport.
func (tb *Testbed) traceableTransport() (obs.Traceable, error) {
	var t simnet.Transport
	switch tb.backend {
	case ChordBackend:
		t = tb.net.Transport()
	case KademliaBackend:
		t = tb.knet.Transport()
	default:
		return nil, fmt.Errorf("randompeer: tracing requires a transport-backed backend (chord or kademlia), not %s", tb.backend)
	}
	tr, ok := t.(obs.Traceable)
	if !ok {
		return nil, fmt.Errorf("randompeer: transport %T does not support hop tracing", t)
	}
	return tr, nil
}

// TraceSample draws one peer with hop tracing armed on the testbed's
// transport: the returned Trace records every RPC the sample issued —
// hop order, endpoints, RPC name, latency and outcome. The trace's
// successful hop count equals the meter's charged calls for the same
// operation. Tracing is available on the Chord and Kademlia backends
// (the oracle models RPCs without executing them).
//
// Tracing is strictly per-operation: TraceSample arms the transport,
// samples once and disarms, so do not call it concurrently with other
// work on the same testbed.
func (tb *Testbed) TraceSample(s Sampler) (Peer, *Trace, error) {
	tr, err := tb.traceableTransport()
	if err != nil {
		return Peer{}, nil, err
	}
	trace := obs.NewTrace()
	tr.SetTrace(trace)
	defer tr.SetTrace(nil)
	peer, err := s.Sample()
	if err != nil {
		return Peer{}, trace, err
	}
	return peer, trace, nil
}

// ChordNetwork exposes the underlying Chord network for protocol-level
// experiments (nil for other backends).
func (tb *Testbed) ChordNetwork() *chord.Network { return tb.net }

// KademliaNetwork exposes the underlying Kademlia network for
// protocol-level experiments (nil for other backends).
func (tb *Testbed) KademliaNetwork() *kademlia.Network { return tb.knet }

// BiasedSampler builds a sampler choosing peers with probability
// proportional to weight(p), by rejection over the uniform sampler —
// the paper's open problem 3. maxWeight must upper-bound the weight
// function; the expected number of uniform draws per sample is
// maxWeight divided by the mean weight.
func (tb *Testbed) BiasedSampler(seed uint64, weight WeightFunc, maxWeight float64) (Sampler, error) {
	uniform, err := tb.UniformSampler(seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed^0xb1a5, seed))
	s, err := biased.New(uniform, weight, maxWeight, rng)
	if err != nil {
		return nil, fmt.Errorf("randompeer: building biased sampler: %w", err)
	}
	return s, nil
}

// InverseDistanceWeight returns the paper's example bias for
// BiasedSampler: selection probability inversely proportional to
// clockwise distance from the given peer, saturating below floorFrac of
// the circle. It returns the weight function and its upper bound.
func (tb *Testbed) InverseDistanceWeight(caller int, floorFrac float64) (WeightFunc, float64, error) {
	p, err := tb.Peer(caller)
	if err != nil {
		return nil, 0, err
	}
	return biased.InverseDistance(p, floorFrac)
}

// MetropolisSampler builds the degree-corrected random-walk sampler
// over the symmetrized overlay graph — the approximate answer to the
// paper's open problem 2 for networks with less structure than a DHT.
// It is only available on the oracle backend, where the symmetrized
// adjacency is precomputed.
func (tb *Testbed) MetropolisSampler(seed uint64, steps int) (Sampler, error) {
	if tb.backend != OracleBackend {
		return nil, fmt.Errorf("randompeer: metropolis sampler requires the oracle backend")
	}
	g := baseline.NewUndirectedOracleGraph(tb.oracle)
	rng := rand.New(rand.NewPCG(seed^0x3e7a, seed))
	s, err := baseline.NewMetropolisWalk(tb.oracle, g, tb.oracle.PeerByIndex(0), steps, rng)
	if err != nil {
		return nil, fmt.Errorf("randompeer: building metropolis sampler: %w", err)
	}
	return s, nil
}
