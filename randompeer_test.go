package randompeer

import (
	"math"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/stats"
)

func TestNewDefaults(t *testing.T) {
	t.Parallel()
	tb, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Size() != 128 {
		t.Errorf("Size = %d, want default 128", tb.Size())
	}
	if tb.DHT() == nil {
		t.Fatal("nil DHT")
	}
	if tb.ChordNetwork() != nil {
		t.Error("oracle backend should have no chord network")
	}
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(WithPeers(0)); err == nil {
		t.Error("zero peers should fail")
	}
	if _, err := New(WithBackend(Backend(99))); err == nil {
		t.Error("unknown backend should fail")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	t.Parallel()
	a, err := New(WithPeers(64), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithPeers(64), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		pa, err := a.Peer(i)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Peer(i)
		if err != nil {
			t.Fatal(err)
		}
		if pa != pb {
			t.Fatalf("peer %d differs across identical seeds", i)
		}
	}
}

func TestUniformSamplerOnBothBackends(t *testing.T) {
	t.Parallel()
	for _, backend := range []Backend{OracleBackend, ChordBackend} {
		tb, err := New(WithPeers(64), WithSeed(3), WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		s, err := tb.UniformSampler(11)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, tb.Size())
		for i := 0; i < 30*tb.Size(); i++ {
			p, err := s.Sample()
			if err != nil {
				t.Fatal(err)
			}
			counts[p.Owner]++
		}
		_, pvalue, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if pvalue < 1e-4 {
			t.Errorf("backend %d: uniformity rejected (p = %v)", backend, pvalue)
		}
	}
}

func TestNaiveSamplerBiased(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(64), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	s := tb.NaiveSampler(13)
	counts := make([]int64, tb.Size())
	for i := 0; i < 100*tb.Size(); i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Owner]++
	}
	_, pvalue, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if pvalue > 1e-3 {
		t.Errorf("naive sampler unexpectedly uniform (p = %v)", pvalue)
	}
}

func TestEstimateSize(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(2048), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.EstimateSize(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.NHat / 2048
	if ratio < 2.0/7.0-0.05 || ratio > 6.05 {
		t.Errorf("estimate ratio %v outside Lemma 3 band", ratio)
	}
	if _, err := tb.EstimateSize(-1, 2); err == nil {
		t.Error("bad caller should fail")
	}
}

func TestVerifyUniformity(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(512), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	a, err := tb.VerifyUniformity(0) // true n
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Measure) != 512 {
		t.Fatalf("measure over %d peers", len(a.Measure))
	}
	rel := float64(a.MaxDeviation) / float64(a.Lambda)
	if rel > math.Pow(2, -30) {
		t.Errorf("relative deviation %v breaks the exactness claim", rel)
	}
	// With an overestimate the partition still assigns exactly lambda.
	a2, err := tb.VerifyUniformity(3 * 512)
	if err != nil {
		t.Fatal(err)
	}
	if rel := float64(a2.MaxDeviation) / float64(a2.Lambda); rel > math.Pow(2, -30) {
		t.Errorf("overestimate run deviation %v", rel)
	}
}

func TestPeerAccessor(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(8))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tb.Peer(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner != 3 {
		t.Errorf("Owner = %d", p.Owner)
	}
	if _, err := tb.Peer(8); err == nil {
		t.Error("out-of-range peer should fail")
	}
}

func TestAutoUniformSamplerFacade(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(64), WithSeed(29))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.AutoUniformSampler(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, tb.Size())
	for i := 0; i < 30*tb.Size(); i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Owner]++
	}
	_, pvalue, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if pvalue < 1e-4 {
		t.Errorf("auto sampler rejected (p = %v)", pvalue)
	}
	if s.Name() != "king-saia-auto" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestBiasedSamplerFacade(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(128), WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	w, maxW, err := tb.InverseDistanceWeight(0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.BiasedSampler(9, w, maxW)
	if err != nil {
		t.Fatal(err)
	}
	caller, err := tb.Peer(0)
	if err != nil {
		t.Fatal(err)
	}
	near, total := 0, 3000
	for i := 0; i < total; i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if float64(p.Point-caller.Point)/(1<<63)/2 < 0.5 {
			near++
		}
	}
	if frac := float64(near) / float64(total); frac < 0.6 {
		t.Errorf("near-half mass = %v, inverse-distance bias missing", frac)
	}
	if _, _, err := tb.InverseDistanceWeight(-1, 0.05); err == nil {
		t.Error("bad caller should fail")
	}
	if _, err := tb.BiasedSampler(9, nil, 1); err == nil {
		t.Error("nil weight should fail")
	}
}

func TestMetropolisSamplerFacade(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(64), WithSeed(33))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.MetropolisSampler(3, 24)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, tb.Size())
	for i := 0; i < 60*tb.Size(); i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Owner]++
	}
	_, pvalue, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if pvalue < 1e-4 {
		t.Errorf("metropolis sampler rejected (p = %v)", pvalue)
	}
	// Chord backend refuses.
	cb, err := New(WithPeers(16), WithBackend(ChordBackend))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.MetropolisSampler(1, 4); err == nil {
		t.Error("chord backend should refuse metropolis sampler")
	}
}

func TestUniformSamplerFromOtherCaller(t *testing.T) {
	t.Parallel()
	tb, err := New(WithPeers(256), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	s, err := tb.UniformSamplerFrom(100, 5, SamplerConfig{C1: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.UniformSamplerFrom(-1, 5, SamplerConfig{}); err == nil {
		t.Error("bad caller index should fail")
	}
}

// TestSimTimePreservesSamplingAcrossBackends: turning on the virtual
// clock must be cost-model-only — the same seeds draw the identical
// peer sequence with and without simulated time on every backend —
// while virtual time and the latency histogram actually advance.
func TestSimTimePreservesSamplingAcrossBackends(t *testing.T) {
	t.Parallel()
	const n, draws = 64, 20
	for _, b := range Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			t.Parallel()
			model, err := ParseLatencyModel("constant:1ms")
			if err != nil {
				t.Fatal(err)
			}
			plain, err := New(WithPeers(n), WithSeed(5), WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			timed, err := New(WithPeers(n), WithSeed(5), WithBackend(b), WithLatencyModel(model))
			if err != nil {
				t.Fatal(err)
			}
			if plain.SimTime() || !timed.SimTime() {
				t.Fatalf("SimTime() = %v/%v, want false/true", plain.SimTime(), timed.SimTime())
			}
			ps, err := plain.UniformSampler(9)
			if err != nil {
				t.Fatal(err)
			}
			ts, err := timed.UniformSampler(9)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < draws; i++ {
				pp, err := ps.Sample()
				if err != nil {
					t.Fatal(err)
				}
				tp, err := ts.Sample()
				if err != nil {
					t.Fatal(err)
				}
				if pp != tp {
					t.Fatalf("draw %d: plain %v, timed %v — sim time changed sampling", i, pp, tp)
				}
			}
			if plain.VirtualTime() != 0 {
				t.Errorf("plain testbed advanced virtual time: %v", plain.VirtualTime())
			}
			elapsed := timed.VirtualTime()
			lat := timed.Latency()
			if elapsed <= 0 || lat.Count <= 0 {
				t.Fatalf("timed testbed: virtual time %v, latency count %d — want both positive", elapsed, lat.Count)
			}
			// Constant model: total virtual time == RPC count x 1ms.
			if want := time.Duration(lat.Count) * time.Millisecond; elapsed != want {
				t.Errorf("virtual time %v, want %v (%d RPCs x 1ms)", elapsed, want, lat.Count)
			}
			if mean := lat.Mean(); mean != time.Millisecond {
				t.Errorf("mean RPC latency %v, want 1ms", mean)
			}
		})
	}
}
