// Robust links: the paper's third motivation. Every node draws k links
// to randomly chosen peers; an adversary then deletes the most-connected
// nodes. Links drawn with the uniform sampler form an expander-like
// graph that keeps a giant component; links drawn with the biased naive
// heuristic concentrate on long-arc peers, which the adversary removes
// cheaply, fragmenting the network.
package main

import (
	"fmt"
	"log"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/randgraph"
)

func main() {
	const (
		n = 2000
		k = 5
	)
	tb, err := randompeer.New(randompeer.WithPeers(n), randompeer.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := tb.UniformSampler(11)
	if err != nil {
		log.Fatal(err)
	}
	gUniform, err := randgraph.Build(uniform, n, k)
	if err != nil {
		log.Fatal(err)
	}
	gBiased, err := randgraph.Build(tb.NaiveSampler(13), n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d nodes, %d sampled links each\n", n, k)
	fmt.Printf("max degree: uniform links %d, biased links %d (hubs!)\n\n",
		gUniform.MaxDegree(), gBiased.MaxDegree())
	fmt.Println("deleted  uniform-giant  biased-giant")
	for _, frac := range []float64{0.10, 0.20, 0.30, 0.40, 0.50} {
		gu, err := rebuild(tb, n, k, true)
		if err != nil {
			log.Fatal(err)
		}
		gb, err := rebuild(tb, n, k, false)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := gu.DeleteAdversarial(frac); err != nil {
			log.Fatal(err)
		}
		if _, err := gb.DeleteAdversarial(frac); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f%%        %6.3f        %6.3f\n",
			frac*100, gu.LargestComponentFraction(), gb.LargestComponentFraction())
	}
	fmt.Println("\nuniform random links stay near 1.0 (well-connected) while biased")
	fmt.Println("links collapse — the robustness argument of Section 1.")
}

func rebuild(tb *randompeer.Testbed, n, k int, uniform bool) (*randgraph.Graph, error) {
	var s randompeer.Sampler
	var err error
	if uniform {
		s, err = tb.UniformSampler(uint64(n) + uint64(k))
		if err != nil {
			return nil, err
		}
	} else {
		s = tb.NaiveSampler(uint64(n) * 3)
	}
	return randgraph.Build(s, n, k)
}
