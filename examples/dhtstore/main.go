// DHT storage: the Chord substrate as an actual hash table. Stores
// key/value pairs with 3-way replication, then demonstrates that data
// survives abrupt node crashes (replica fallback + stabilization) and
// graceful departures (key handoff), exactly the environment the
// King–Saia sampler is designed to run inside.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"slices"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/ring"
)

func main() {
	const n = 128
	tb, err := randompeer.New(
		randompeer.WithPeers(n),
		randompeer.WithSeed(3),
		randompeer.WithBackend(randompeer.ChordBackend),
	)
	if err != nil {
		log.Fatal(err)
	}
	net := tb.ChordNetwork()
	reader, err := tb.Peer(0)
	if err != nil {
		log.Fatal(err)
	}
	home := reader.Point

	// Store 500 items with 3-way replication.
	rng := rand.New(rand.NewPCG(9, 9))
	keys := make([]ring.Point, 500)
	for i := range keys {
		keys[i] = ring.Point(rng.Uint64())
		value := fmt.Sprintf("item-%04d", i)
		if err := net.Put(home, keys[i], []byte(value), 3); err != nil {
			log.Fatalf("put %d: %v", i, err)
		}
	}
	fmt.Printf("stored %d items across %d nodes (3 replicas each)\n", len(keys), n)

	// Crash 20 nodes chosen uniformly at random (none of them the
	// reader). Random failures are what the successor-list replication
	// tolerates; a run of >= SuccListLen consecutive crashes between two
	// maintenance rounds is the designed-in loss boundary, as in real
	// Chord.
	// Members returns a shared immutable snapshot; clone before shuffling.
	members := slices.Clone(net.Members())
	rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	crashed := 0
	for _, id := range members {
		if id == home || crashed >= 20 {
			continue
		}
		if err := net.Crash(id); err != nil {
			log.Fatal(err)
		}
		crashed++
	}
	net.RunMaintenance(10, 16)
	fmt.Printf("crashed %d nodes abruptly, ring repaired: %v\n",
		crashed, net.VerifyRing() == nil)

	lost := 0
	for _, key := range keys {
		if _, err := net.Get(home, key); err != nil {
			lost++
		}
	}
	fmt.Printf("items still readable after crashes: %d/%d\n", len(keys)-lost, len(keys))

	// Ten more nodes leave gracefully: zero loss by design.
	left := 0
	for _, id := range net.Members() {
		if id == home || left >= 10 {
			continue
		}
		if err := net.Leave(id); err != nil {
			log.Fatal(err)
		}
		net.RunMaintenance(1, 16)
		left++
	}
	lost = 0
	for _, key := range keys {
		if _, err := net.Get(home, key); err != nil {
			lost++
		}
	}
	fmt.Printf("items readable after %d graceful departures: %d/%d\n",
		left, len(keys)-lost, len(keys))
	fmt.Printf("network now has %d live nodes\n", net.NumAlive())
}
