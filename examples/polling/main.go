// Polling: the paper's data-collection motivation. A population of
// peers holds values correlated with their hash-space share (think
// bandwidth measurements in a measurement study, where well-connected
// peers also own more key space). Polling through the biased naive
// heuristic produces a confidently wrong answer; polling through the
// King–Saia uniform sampler produces a calibrated one.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/collect"
	"github.com/dht-sampling/randompeer/internal/ring"
)

func main() {
	const n = 4096
	tb, err := randompeer.New(randompeer.WithPeers(n), randompeer.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	// Rebuild the same ring the testbed placed so the population can be
	// correlated with arc lengths (peer i's value is its hash-space
	// share scaled to mean exactly 1).
	rng := rand.New(rand.NewPCG(2024, 2024^0x517cc1b727220a95))
	r, err := ring.Generate(rng, n)
	if err != nil {
		log.Fatal(err)
	}
	pop, err := collect.ArcCorrelated(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population of %d peers, true mean = %.4f\n\n", pop.Len(), pop.TrueMean())

	const k = 3000
	uniform, err := tb.UniformSampler(1)
	if err != nil {
		log.Fatal(err)
	}
	uniRes, err := collect.PollMean(uniform, pop, k, 1.96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform poll (%d samples): %.4f  [95%% CI %.4f .. %.4f]  covers truth: %v\n",
		k, uniRes.Estimate, uniRes.Lo, uniRes.Hi, uniRes.Covers(pop.TrueMean()))

	naive := tb.NaiveSampler(2)
	naiveRes, err := collect.PollMean(naive, pop, k, 1.96)
	if err != nil {
		log.Fatal(err)
	}
	expect, err := collect.NaiveExpectedMean(r, pop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive poll   (%d samples): %.4f  [95%% CI %.4f .. %.4f]  covers truth: %v\n",
		k, naiveRes.Estimate, naiveRes.Lo, naiveRes.Hi, naiveRes.Covers(pop.TrueMean()))
	fmt.Printf("\nthe naive estimator converges to %.4f — about double the truth —\n", expect)
	fmt.Println("and its narrow CI makes the wrong answer look precise. More samples")
	fmt.Println("cannot fix a biased sampler; a uniform one is required (Section 1).")
}
