// Quickstart: build a simulated DHT, estimate its size from one peer,
// and draw uniform random peers — the complete King–Saia pipeline in a
// few lines of the public API.
package main

import (
	"fmt"
	"log"

	"github.com/dht-sampling/randompeer"
)

func main() {
	// A 10,000-peer DHT with peers placed uniformly on the identifier
	// circle, as the random-oracle hash assumption prescribes.
	tb, err := randompeer.New(randompeer.WithPeers(10000), randompeer.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (Section 2 of the paper): peer 0 estimates the network
	// size using only local arc lengths and O(log n) successor hops.
	est, err := tb.EstimateSize(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true n = %d, estimated nhat = %.0f (ratio %.2f)\n",
		tb.Size(), est.NHat, est.NHat/float64(tb.Size()))

	// Step 2 (Section 3): choose peers uniformly at random. Theorem 6:
	// every peer has probability exactly 1/n.
	s, err := tb.UniformSampler(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ten uniform random peers:")
	for i := 0; i < 10; i++ {
		p, err := s.Sample()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  peer #%d at circle position %v\n", p.Owner, p.Point)
	}

	// Step 3: verify Theorem 6 exactly — the measure of starting points
	// assigned to every peer equals lambda to within integer rounding.
	a, err := tb.VerifyUniformity(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exactness check: max deviation %d units out of lambda = %d (relative %.1e)\n",
		a.MaxDeviation, a.Lambda, float64(a.MaxDeviation)/float64(a.Lambda))
}
