// Load balancing: the paper's second motivation (Karger & Ruhl's
// randomized load-balancing needs a random-peer primitive). Assign
// m = n ln n tasks, each to a sampled peer, and compare the load
// distribution across samplers.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/loadbalance"
)

func main() {
	const n = 2048
	tasks := int(float64(n) * math.Log(n))
	tb, err := randompeer.New(randompeer.WithPeers(n), randompeer.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := tb.UniformSampler(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assigning %d tasks across %d peers (m = n ln n)\n\n", tasks, n)
	fmt.Println("sampler     maxLoad  mean  imbalance  idlePeers")
	for _, s := range []randompeer.Sampler{uniform, tb.NaiveSampler(5)} {
		res, err := loadbalance.Assign(s, n, tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %7d  %4.1f  %9.2f  %9d\n",
			s.Name(), res.MaxLoad, res.MeanLoad, res.Imbalance, res.Idle)
	}
	fmt.Println("\nuniform assignment matches the balls-into-bins optimum; the naive")
	fmt.Println("heuristic overloads long-arc peers by an extra Theta(log n) factor")
	fmt.Println("and starves short-arc peers entirely.")
}
