// Committee election: the paper's Byzantine-agreement motivation
// (Lewis & Saia). An adversary controls 20% of the peers — specifically
// the ones owning the longest arcs, which maximizes its selection mass
// under the biased heuristic. Committees drawn with the uniform sampler
// track the true 20%; committees drawn naively hand the adversary
// routine majorities.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/agreement"
	"github.com/dht-sampling/randompeer/internal/ring"
)

func main() {
	const (
		n          = 1024
		byzFrac    = 0.20
		size       = 64
		committees = 300
	)
	tb, err := randompeer.New(randompeer.WithPeers(n), randompeer.WithSeed(61))
	if err != nil {
		log.Fatal(err)
	}
	// Rebuild the placement to derive the adversary's optimal positions.
	rng := rand.New(rand.NewPCG(61, 61^0x517cc1b727220a95))
	r, err := ring.Generate(rng, n)
	if err != nil {
		log.Fatal(err)
	}
	bad, mass, err := agreement.LongestArcAttack(r, byzFrac)
	if err != nil {
		log.Fatal(err)
	}
	isBad := func(owner int) bool { return bad[owner] }
	fmt.Printf("%d peers, %.0f%% Byzantine (on the longest arcs)\n", n, byzFrac*100)
	fmt.Printf("adversary's selection mass under naive sampling: %.1f%%\n\n", mass*100)

	uniform, err := tb.UniformSampler(7)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []randompeer.Sampler{uniform, tb.NaiveSampler(9)} {
		res, err := agreement.ElectCommittees(s, isBad, size, committees, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %d-seat committees: %3d/%d captured (majority bad), mean Byzantine share %.1f%%\n",
			s.Name(), size, res.Bad, res.Committees, res.MeanByzFrac*100)
	}
	fmt.Println("\nChernoff bounds protect the uniform committees: capture probability")
	fmt.Println("is exponentially small in the committee size while the Byzantine")
	fmt.Println("fraction stays below the threshold. The naive sampler hands the")
	fmt.Println("adversary an inflated share and loses outright.")
}
