// Biased sampling: the paper's third open problem, solved by rejection
// over the uniform sampler. Choose peers with probability inversely
// proportional to their clockwise distance from the caller — useful for
// building latency-aware random links — while keeping the exactness
// guarantee of the underlying uniform primitive.
package main

import (
	"fmt"
	"log"

	"github.com/dht-sampling/randompeer"
)

func main() {
	const n = 2048
	tb, err := randompeer.New(randompeer.WithPeers(n), randompeer.WithSeed(17))
	if err != nil {
		log.Fatal(err)
	}
	// Weight peers by inverse clockwise distance from peer 0, saturating
	// below 2% of the circle.
	w, maxW, err := tb.InverseDistanceWeight(0, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	s, err := tb.BiasedSampler(5, w, maxW)
	if err != nil {
		log.Fatal(err)
	}
	caller, err := tb.Peer(0)
	if err != nil {
		log.Fatal(err)
	}
	// Bucket samples by clockwise distance from the caller.
	const buckets = 10
	counts := make([]int, buckets)
	const samples = 20000
	for i := 0; i < samples; i++ {
		p, err := s.Sample()
		if err != nil {
			log.Fatal(err)
		}
		d := float64(p.Point-caller.Point) / (1 << 63) / 2 // distance as circle fraction
		b := int(d * buckets)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	fmt.Printf("%d samples biased by inverse distance from peer 0:\n\n", samples)
	fmt.Println("distance   share  (uniform would be 10% per bucket)")
	for b := 0; b < buckets; b++ {
		share := float64(counts[b]) / samples
		bar := ""
		for i := 0; i < int(share*100); i++ {
			bar += "#"
		}
		fmt.Printf("%3d-%3d%%  %5.1f%%  %s\n", b*10, (b+1)*10, share*100, bar)
	}
	fmt.Println("\nnearby peers dominate, yet every peer remains reachable with its")
	fmt.Println("prescribed probability — the distribution is exact, not heuristic.")
}
