package randompeer

import (
	"context"
	"time"

	"github.com/dht-sampling/randompeer/internal/engine"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Cost is a snapshot of the testbed's transport cost counters (RPC
// round trips, messages, failures).
type Cost = simnet.Cost

// ForkableSampler is a sampler that can produce independent clones for
// parallel work: Fork returns a sampler whose random stream is a pure
// function of seed and which shares no mutable state with its parent.
// Every sampler built by a Testbed implements it except AutoUniformSampler
// (whose refresh schedule is inherently shared state); SampleN uses it
// to keep batch results deterministic at any worker count.
type ForkableSampler = engine.Forker

// BatchResult reports one SampleN run.
type BatchResult struct {
	// Peers is the sampled peer at every index 0..k-1 (nil with
	// WithTallyOnly).
	Peers []Peer
	// Tally counts samples per owner index; it always sums to k.
	Tally []int64
	// Workers is the number of workers that ran.
	Workers int
	// Deterministic reports whether the result is a pure function of
	// the batch seed and k (true whenever the sampler is forkable).
	Deterministic bool
	// Cost is the testbed-wide transport cost charged during the run.
	// It is exact when nothing else used the testbed concurrently.
	Cost Cost
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// BatchOption configures SampleN.
type BatchOption func(*batchOptions)

type batchOptions struct {
	workers   int
	seed      uint64
	seedSet   bool
	tallyOnly bool
}

// WithWorkers sets the worker pool size (default: GOMAXPROCS).
func WithWorkers(w int) BatchOption { return func(o *batchOptions) { o.workers = w } }

// WithBatchSeed roots the per-block sampler forks. With a forkable
// sampler, equal batch seeds and sample counts reproduce identical
// results at any worker count. The default is the testbed seed.
func WithBatchSeed(seed uint64) BatchOption {
	return func(o *batchOptions) { o.seed = seed; o.seedSet = true }
}

// WithTallyOnly drops the per-index peer log, keeping only the tally —
// the right choice for uniformity measurements with very large k.
func WithTallyOnly() BatchOption { return func(o *batchOptions) { o.tallyOnly = true } }

// SampleN draws k samples from s across a worker pool and returns the
// merged peers, per-owner tally and cost. If s implements
// ForkableSampler (all Testbed samplers except AutoUniformSampler do),
// each fixed-size block of sample indices runs on a private fork seeded
// deterministically from the batch seed and the block index, so the
// result is bit-for-bit reproducible regardless of the worker count.
// Otherwise all workers share s — still safe, but the interleaving of
// RNG draws (and hence the exact result) depends on scheduling, and
// throughput is limited by the sampler's own serialization:
// AutoUniformSampler serializes every call, so batches over it do not
// speed up with workers.
//
// ctx cancellation is observed between blocks; the first sampling error
// aborts the run.
func (tb *Testbed) SampleN(ctx context.Context, s Sampler, k int, opts ...BatchOption) (*BatchResult, error) {
	cfg := batchOptions{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.seedSet {
		cfg.seed = tb.seed
	}
	meter := tb.DHT().Meter()
	before := meter.Snapshot()
	start := time.Now()
	res, err := engine.SampleN(ctx, s, k, engine.Config{
		Workers:   cfg.workers,
		Seed:      cfg.seed,
		Owners:    tb.DHT().Owners(),
		TallyOnly: cfg.tallyOnly,
	})
	if err != nil {
		return nil, err
	}
	return &BatchResult{
		Peers:         res.Peers,
		Tally:         res.Tally,
		Workers:       res.Workers,
		Deterministic: res.Deterministic,
		Cost:          meter.Snapshot().Sub(before),
		Elapsed:       time.Since(start),
	}, nil
}
