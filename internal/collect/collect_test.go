package collect

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

func setup(t *testing.T, seed uint64, n int) (*dht.Oracle, *ring.Ring) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+100))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	return dht.NewOracle(r), r
}

func uniformSampler(t *testing.T, o *dht.Oracle, seed uint64) dht.Sampler {
	t.Helper()
	s, err := core.New(o, o.PeerByIndex(0), rand.New(rand.NewPCG(seed, seed^7)), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewPopulationValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewPopulation(nil); err == nil {
		t.Error("empty population should fail")
	}
	p, err := NewPopulation([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if m := p.TrueMean(); math.Abs(m-2) > 1e-12 {
		t.Errorf("TrueMean = %v", m)
	}
	if _, err := p.Value(5); err == nil {
		t.Error("out-of-range value should fail")
	}
}

func TestArcCorrelatedMeanIsOne(t *testing.T) {
	t.Parallel()
	_, r := setup(t, 3, 256)
	pop, err := ArcCorrelated(r)
	if err != nil {
		t.Fatal(err)
	}
	// Arc fractions sum to 1, so scaled by n their mean is exactly 1.
	if m := pop.TrueMean(); math.Abs(m-1) > 1e-9 {
		t.Errorf("TrueMean = %v, want 1", m)
	}
	single, err := ring.New([]ring.Point{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ArcCorrelated(single); err == nil {
		t.Error("single peer should fail")
	}
}

func TestPollMeanUnbiasedWithUniformSampler(t *testing.T) {
	t.Parallel()
	o, r := setup(t, 7, 256)
	pop, err := ArcCorrelated(r)
	if err != nil {
		t.Fatal(err)
	}
	s := uniformSampler(t, o, 11)
	res, err := PollMean(s, pop, 3000, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-1) > 0.2 {
		t.Errorf("uniform poll estimate = %v, want ~1", res.Estimate)
	}
	if !(res.Lo < res.Estimate && res.Estimate < res.Hi) {
		t.Errorf("CI ordering broken: %v %v %v", res.Lo, res.Estimate, res.Hi)
	}
}

func TestPollMeanBiasedWithNaiveSampler(t *testing.T) {
	t.Parallel()
	o, r := setup(t, 7, 256)
	pop, err := ArcCorrelated(r)
	if err != nil {
		t.Fatal(err)
	}
	s := baseline.NewNaive(o, rand.New(rand.NewPCG(13, 13)))
	res, err := PollMean(s, pop, 3000, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	// The naive estimator converges to n*sum(arc^2) ~ 2, double truth.
	if res.Estimate < 1.5 {
		t.Errorf("naive poll estimate = %v, expected substantial upward bias (> 1.5)", res.Estimate)
	}
	want, err := NaiveExpectedMean(r, pop)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-want) > 0.35 {
		t.Errorf("naive estimate %v far from exact expectation %v", res.Estimate, want)
	}
}

func TestNaiveExpectedMeanExact(t *testing.T) {
	t.Parallel()
	_, r := setup(t, 19, 512)
	pop, err := ArcCorrelated(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NaiveExpectedMean(r, pop)
	if err != nil {
		t.Fatal(err)
	}
	// Exact: n * sum over peers of arcFrac^2. For i.i.d. uniform peers
	// the expectation is ~2 (exponential spacings second moment).
	var want float64
	for i := 0; i < r.Len(); i++ {
		f := ring.UnitsToFrac(r.Arc(r.PrevIndex(i)))
		want += float64(r.Len()) * f * f
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("NaiveExpectedMean = %v, want %v", got, want)
	}
	if got < 1.3 || got > 3 {
		t.Errorf("expected naive bias around 2, got %v", got)
	}
	other, err := NewPopulation([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NaiveExpectedMean(r, other); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestPollProportion(t *testing.T) {
	t.Parallel()
	o, _ := setup(t, 23, 128)
	s := uniformSampler(t, o, 29)
	// Predicate true for owners < 32: quarter of the population.
	res, err := PollProportion(s, func(owner int) bool { return owner < 32 }, 2000, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-0.25) > 0.05 {
		t.Errorf("proportion estimate = %v, want ~0.25", res.Estimate)
	}
	if !res.Covers(0.25) {
		t.Errorf("CI [%v, %v] misses 0.25", res.Lo, res.Hi)
	}
}

func TestPollValidation(t *testing.T) {
	t.Parallel()
	o, r := setup(t, 31, 16)
	pop, err := ArcCorrelated(r)
	if err != nil {
		t.Fatal(err)
	}
	s := uniformSampler(t, o, 1)
	if _, err := PollMean(s, pop, 1, 1.96); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := PollProportion(s, nil, 10, 1.96); err == nil {
		t.Error("nil predicate should fail")
	}
	if _, err := PollProportion(s, func(int) bool { return true }, 0, 1.96); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestCoverageRateCalibrated(t *testing.T) {
	t.Parallel()
	o, r := setup(t, 37, 128)
	pop, err := ArcCorrelated(r)
	if err != nil {
		t.Fatal(err)
	}
	var seed uint64 = 1000
	mk := func() (dht.Sampler, error) {
		seed++
		return core.New(o, o.PeerByIndex(0), rand.New(rand.NewPCG(seed, seed)), core.Config{})
	}
	rate, err := CoverageRate(mk, pop, 60, 400, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	// A 95% interval under unbiased sampling: allow wide tolerance at 60
	// polls (binomial noise), but far above the near-zero coverage that
	// biased sampling yields.
	if rate < 0.75 {
		t.Errorf("coverage rate = %v, want >= 0.75 for calibrated CIs", rate)
	}
	if _, err := CoverageRate(mk, pop, 0, 10, 1.96); err == nil {
		t.Error("zero polls should fail")
	}
}

func TestCoverageCollapsesUnderNaive(t *testing.T) {
	t.Parallel()
	o, r := setup(t, 41, 256)
	pop, err := ArcCorrelated(r)
	if err != nil {
		t.Fatal(err)
	}
	var seed uint64 = 2000
	mk := func() (dht.Sampler, error) {
		seed++
		return baseline.NewNaive(o, rand.New(rand.NewPCG(seed, seed))), nil
	}
	rate, err := CoverageRate(mk, pop, 40, 1000, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 0.2 {
		t.Errorf("naive coverage rate = %v, expected collapse (< 0.2)", rate)
	}
}
