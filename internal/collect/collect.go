// Package collect implements the paper's first motivating application:
// data collection by statistically rigorous sampling. Peers hold values
// (opinions, measurements, sensor readings); polling a uniform sample of
// peers yields unbiased estimates with honest confidence intervals,
// while polling through the biased naive heuristic systematically
// over-weights peers that own long arcs.
package collect

import (
	"fmt"
	"math"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// Population maps each peer (by owner index) to the value it holds.
type Population struct {
	values []float64
}

// NewPopulation wraps per-peer values (copied).
func NewPopulation(values []float64) (*Population, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("collect: empty population")
	}
	vs := make([]float64, len(values))
	copy(vs, values)
	return &Population{values: vs}, nil
}

// ArcCorrelated builds the adversarial population for exposing naive-
// sampler bias: peer i holds the value n*arcFrac(i), its relative share
// of hash space. The true mean is exactly 1 for every ring, while the
// naive estimator converges to n*sum(arcFrac^2), which concentrates
// around 2 — a 100% relative error that no amount of sampling fixes.
func ArcCorrelated(r *ring.Ring) (*Population, error) {
	n := r.Len()
	if n < 2 {
		return nil, fmt.Errorf("collect: need >= 2 peers, got %d", n)
	}
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(n) * ring.UnitsToFrac(r.Arc(r.PrevIndex(i)))
	}
	return &Population{values: values}, nil
}

// Len returns the population size.
func (p *Population) Len() int { return len(p.values) }

// Value returns the value held by peer i.
func (p *Population) Value(i int) (float64, error) {
	if i < 0 || i >= len(p.values) {
		return 0, fmt.Errorf("collect: peer %d outside population of %d", i, len(p.values))
	}
	return p.values[i], nil
}

// TrueMean returns the exact population mean.
func (p *Population) TrueMean() float64 {
	return stats.Mean(p.values)
}

// PollResult reports one poll.
type PollResult struct {
	Estimate float64
	Lo, Hi   float64 // confidence interval at the requested z
	Samples  int
}

// Covers reports whether the confidence interval contains v.
func (r PollResult) Covers(v float64) bool { return r.Lo <= v && v <= r.Hi }

// PollMean estimates the population mean by sampling k peers through the
// sampler and querying their values, with a normal-approximation
// confidence interval at the given z (1.96 for 95%).
func PollMean(s dht.Sampler, pop *Population, k int, z float64) (PollResult, error) {
	if k < 2 {
		return PollResult{}, fmt.Errorf("collect: need >= 2 samples, got %d", k)
	}
	xs := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		peer, err := s.Sample()
		if err != nil {
			return PollResult{}, fmt.Errorf("collect: sampling peer %d: %w", i, err)
		}
		v, err := pop.Value(peer.Owner)
		if err != nil {
			return PollResult{}, err
		}
		xs = append(xs, v)
	}
	mean, lo, hi := stats.MeanCI(xs, z)
	return PollResult{Estimate: mean, Lo: lo, Hi: hi, Samples: k}, nil
}

// PollProportion estimates the fraction of peers satisfying pred, with a
// Wilson confidence interval.
func PollProportion(s dht.Sampler, pred func(owner int) bool, k int, z float64) (PollResult, error) {
	if k < 1 {
		return PollResult{}, fmt.Errorf("collect: need >= 1 sample, got %d", k)
	}
	if pred == nil {
		return PollResult{}, fmt.Errorf("collect: nil predicate")
	}
	hits := 0
	for i := 0; i < k; i++ {
		peer, err := s.Sample()
		if err != nil {
			return PollResult{}, fmt.Errorf("collect: sampling peer %d: %w", i, err)
		}
		if pred(peer.Owner) {
			hits++
		}
	}
	lo, hi := stats.WilsonCI(hits, k, z)
	return PollResult{
		Estimate: float64(hits) / float64(k),
		Lo:       lo,
		Hi:       hi,
		Samples:  k,
	}, nil
}

// CoverageRate runs repeated polls and reports how often the confidence
// interval covered the true mean — the calibration check that separates
// a rigorous sampling method from a biased one (a 95% interval should
// cover about 95% of the time; under biased sampling coverage collapses).
func CoverageRate(mk func() (dht.Sampler, error), pop *Population, polls, k int, z float64) (float64, error) {
	if polls < 1 {
		return 0, fmt.Errorf("collect: need >= 1 poll, got %d", polls)
	}
	truth := pop.TrueMean()
	covered := 0
	for i := 0; i < polls; i++ {
		s, err := mk()
		if err != nil {
			return 0, fmt.Errorf("collect: building sampler for poll %d: %w", i, err)
		}
		res, err := PollMean(s, pop, k, z)
		if err != nil {
			return 0, err
		}
		if res.Covers(truth) {
			covered++
		}
	}
	return float64(covered) / float64(polls), nil
}

// NaiveExpectedMean returns the exact expectation of the naive
// estimator on this population over the given ring: sum_i p_i * v_i
// where p_i is the naive selection probability (the arc ending at peer
// i). Comparing it to TrueMean quantifies the estimator's asymptotic
// bias without sampling noise.
func NaiveExpectedMean(r *ring.Ring, pop *Population) (float64, error) {
	if r.Len() != pop.Len() {
		return 0, fmt.Errorf("collect: ring size %d != population size %d", r.Len(), pop.Len())
	}
	var sum float64
	for i := 0; i < r.Len(); i++ {
		pi := ring.UnitsToFrac(r.Arc(r.PrevIndex(i)))
		sum += pi * pop.values[i]
	}
	if math.IsNaN(sum) {
		return 0, fmt.Errorf("collect: NaN in expectation")
	}
	return sum, nil
}
