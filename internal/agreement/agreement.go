// Package agreement implements the paper's second motivating
// application (Lewis & Saia's scalable Byzantine agreement): electing
// committees by repeatedly choosing random peers. A committee is good
// when fewer than a threshold fraction of its members are Byzantine.
// Under uniform sampling, Chernoff bounds make bad committees
// exponentially rare as long as the Byzantine population fraction is
// below the threshold; under the naive heuristic an adversary that
// occupies the peers owning the longest arcs inflates its selection
// probability far beyond its population fraction and routinely captures
// committees.
package agreement

import (
	"fmt"
	"sort"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// LongestArcAttack returns the Byzantine set an adversary controlling a
// frac fraction of peers would pick to maximize naive-sampler selection
// mass: the peers owning the longest arcs. The returned set is keyed by
// owner index; the second result is the total naive selection
// probability the set captures.
func LongestArcAttack(r *ring.Ring, frac float64) (map[int]bool, float64, error) {
	n := r.Len()
	if n < 2 {
		return nil, 0, fmt.Errorf("agreement: need >= 2 peers, got %d", n)
	}
	if frac < 0 || frac > 1 {
		return nil, 0, fmt.Errorf("agreement: byzantine fraction %v outside [0, 1]", frac)
	}
	type peerArc struct {
		owner int
		arc   uint64
	}
	peers := make([]peerArc, n)
	for i := 0; i < n; i++ {
		// The arc governing peer i's naive selection probability is the
		// one ending at its point.
		peers[i] = peerArc{owner: i, arc: r.Arc(r.PrevIndex(i))}
	}
	sort.Slice(peers, func(a, b int) bool {
		if peers[a].arc != peers[b].arc {
			return peers[a].arc > peers[b].arc
		}
		return peers[a].owner < peers[b].owner
	})
	take := int(frac * float64(n))
	bad := make(map[int]bool, take)
	var mass float64
	for i := 0; i < take; i++ {
		bad[peers[i].owner] = true
		mass += ring.UnitsToFrac(peers[i].arc)
	}
	return bad, mass, nil
}

// Result reports a committee-election experiment.
type Result struct {
	// Committees is the number of committees elected.
	Committees int
	// Bad is the number of committees whose Byzantine fraction reached
	// the threshold.
	Bad int
	// BadRate is Bad/Committees.
	BadRate float64
	// MeanByzFrac is the mean Byzantine fraction across committees.
	MeanByzFrac float64
}

// ElectCommittees repeatedly elects committees of the given size (with
// replacement, one sampler call per seat) and reports how often the
// Byzantine members reach the threshold fraction (for example 1/2 for
// majority capture, 1/3 for BFT failure).
func ElectCommittees(s dht.Sampler, isBad func(owner int) bool, size, committees int, threshold float64) (Result, error) {
	if size < 1 {
		return Result{}, fmt.Errorf("agreement: committee size must be >= 1, got %d", size)
	}
	if committees < 1 {
		return Result{}, fmt.Errorf("agreement: need >= 1 committee, got %d", committees)
	}
	if threshold <= 0 || threshold > 1 {
		return Result{}, fmt.Errorf("agreement: threshold %v outside (0, 1]", threshold)
	}
	if isBad == nil {
		return Result{}, fmt.Errorf("agreement: nil adversary predicate")
	}
	res := Result{Committees: committees}
	var fracSum float64
	for c := 0; c < committees; c++ {
		badSeats := 0
		for seat := 0; seat < size; seat++ {
			peer, err := s.Sample()
			if err != nil {
				return Result{}, fmt.Errorf("agreement: electing seat %d of committee %d: %w", seat, c, err)
			}
			if isBad(peer.Owner) {
				badSeats++
			}
		}
		frac := float64(badSeats) / float64(size)
		fracSum += frac
		if frac >= threshold {
			res.Bad++
		}
	}
	res.BadRate = float64(res.Bad) / float64(committees)
	res.MeanByzFrac = fracSum / float64(committees)
	return res, nil
}
