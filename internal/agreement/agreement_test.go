package agreement

import (
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

func setup(t *testing.T, seed uint64, n int) (*dht.Oracle, *ring.Ring) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed*9+1))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	return dht.NewOracle(r), r
}

func TestLongestArcAttackMass(t *testing.T) {
	t.Parallel()
	_, r := setup(t, 3, 512)
	bad, mass, err := LongestArcAttack(r, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 102 {
		t.Errorf("attack set size = %d, want 102", len(bad))
	}
	// For exponential spacings the top 20% of arcs hold roughly half the
	// circle — far more than the adversary's population share.
	if mass < 0.35 {
		t.Errorf("captured naive mass = %v, expected >= 0.35", mass)
	}
	if mass >= 1 {
		t.Errorf("mass = %v out of range", mass)
	}
}

func TestLongestArcAttackValidation(t *testing.T) {
	t.Parallel()
	_, r := setup(t, 5, 64)
	if _, _, err := LongestArcAttack(r, -0.1); err == nil {
		t.Error("negative fraction should fail")
	}
	if _, _, err := LongestArcAttack(r, 1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
	single, err := ring.New([]ring.Point{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LongestArcAttack(single, 0.2); err == nil {
		t.Error("single peer should fail")
	}
}

func TestUniformCommitteesResistAttack(t *testing.T) {
	t.Parallel()
	const n = 512
	o, r := setup(t, 7, n)
	bad, _, err := LongestArcAttack(r, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(o, o.PeerByIndex(0), rand.New(rand.NewPCG(6, 6)), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ElectCommittees(s, func(owner int) bool { return bad[owner] }, 64, 200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 20% Byzantine, majority threshold: Chernoff makes capture of a
	// 64-seat committee astronomically unlikely under uniform sampling.
	if res.Bad != 0 {
		t.Errorf("uniform sampling lost %d/%d committees to a 20%% adversary", res.Bad, res.Committees)
	}
	if res.MeanByzFrac < 0.1 || res.MeanByzFrac > 0.3 {
		t.Errorf("mean byzantine fraction = %v, want ~0.2", res.MeanByzFrac)
	}
}

func TestNaiveCommitteesFallToAttack(t *testing.T) {
	t.Parallel()
	const n = 512
	o, r := setup(t, 7, n)
	bad, mass, err := LongestArcAttack(r, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s := baseline.NewNaive(o, rand.New(rand.NewPCG(8, 8)))
	res, err := ElectCommittees(s, func(owner int) bool { return bad[owner] }, 64, 200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The adversary's selection mass under naive sampling is ~0.5, so
	// roughly half of each committee is Byzantine and many committees
	// cross the majority threshold.
	if mass > 0.45 && res.BadRate < 0.1 {
		t.Errorf("naive sampling bad-committee rate = %v with adversary mass %v; expected frequent capture",
			res.BadRate, mass)
	}
	if res.MeanByzFrac < 0.3 {
		t.Errorf("naive mean byzantine fraction = %v, expected inflation well above 0.2", res.MeanByzFrac)
	}
}

func TestElectCommitteesValidation(t *testing.T) {
	t.Parallel()
	o, _ := setup(t, 9, 32)
	s := baseline.NewNaive(o, rand.New(rand.NewPCG(9, 9)))
	pred := func(int) bool { return false }
	if _, err := ElectCommittees(s, pred, 0, 10, 0.5); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := ElectCommittees(s, pred, 8, 0, 0.5); err == nil {
		t.Error("zero committees should fail")
	}
	if _, err := ElectCommittees(s, pred, 8, 10, 0); err == nil {
		t.Error("zero threshold should fail")
	}
	if _, err := ElectCommittees(s, nil, 8, 10, 0.5); err == nil {
		t.Error("nil predicate should fail")
	}
}

func TestElectCommitteesNoAdversary(t *testing.T) {
	t.Parallel()
	o, _ := setup(t, 11, 64)
	s := baseline.NewNaive(o, rand.New(rand.NewPCG(10, 10)))
	res, err := ElectCommittees(s, func(int) bool { return false }, 16, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bad != 0 || res.MeanByzFrac != 0 {
		t.Errorf("no adversary but Bad=%d MeanByzFrac=%v", res.Bad, res.MeanByzFrac)
	}
}
