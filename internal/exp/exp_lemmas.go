package exp

import (
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/arcs"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// ringSeeds generates seeded rings for repeated structural measurements.
func ringSeeds(seed uint64, n, count int) ([]*ring.Ring, error) {
	rings := make([]*ring.Ring, 0, count)
	for s := 0; s < count; s++ {
		rng := rand.New(rand.NewPCG(seed+uint64(s)*0x9e37, uint64(n)))
		r, err := ring.Generate(rng, n)
		if err != nil {
			return nil, err
		}
		rings = append(rings, r)
	}
	return rings, nil
}

// expE4 measures Lemma 1's successor-arc bounds.
func expE4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Successor-arc bounds (Lemma 1)",
		Claim: "ln n - ln ln n - 2 <= ln(1/arc) <= 3 ln n for every peer, w.h.p.",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E4",
				Title:   "Lemma 1: bounds on ln(1/d(p, next(p)))",
				Claim:   "all peers inside the band with probability >= 1 - 1/n",
				Columns: []string{"n", "seeds", "lower", "upper", "minObserved", "maxObserved", "violations"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096, 16384)
			seedCount := 10
			if cfg.Quick {
				seedCount = 3
			}
			for _, n := range ns {
				rings, err := ringSeeds(cfg.Seed^0x66, n, seedCount)
				if err != nil {
					return nil, err
				}
				var agg arcs.Lemma1Result
				first := true
				for _, r := range rings {
					res, err := arcs.CheckLemma1(r)
					if err != nil {
						return nil, err
					}
					if first {
						agg = res
						first = false
						continue
					}
					if res.MinLogInv < agg.MinLogInv {
						agg.MinLogInv = res.MinLogInv
					}
					if res.MaxLogInv > agg.MaxLogInv {
						agg.MaxLogInv = res.MaxLogInv
					}
					agg.Violations += res.Violations
				}
				if err := t.AddRow(
					fmtI(n), fmtI(seedCount), fmtF(agg.LowerBound), fmtF(agg.UpperBound),
					fmtF(agg.MinLogInv), fmtF(agg.MaxLogInv), fmtI(agg.Violations),
				); err != nil {
					return nil, err
				}
			}
			return t, nil
		},
	}
}

// expE5 measures Lemma 2's anchored-interval concentration.
func expE5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Anchored-interval concentration (Lemma 2)",
		Claim: "intervals with Theta(log n) peers have length Theta(log n / n) within (1±eps) constants",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E5",
				Title:   "Lemma 2: anchored interval lengths vs peer counts",
				Claim:   "qualifying interval lengths inside [C(1-eps)a1, C(1+eps)a2]*(log n / n)",
				Columns: []string{"n", "kRange", "lowerLen", "upperLen", "minLen", "maxLen", "violations"},
			}
			params := arcs.Lemma2Params{C: 8, Alpha1: 1, Alpha2: 3, Eps: 0.5}
			ns := sweep(cfg.Quick, 512, 2048, 8192)
			for _, n := range ns {
				rings, err := ringSeeds(cfg.Seed^0x77, n, 3)
				if err != nil {
					return nil, err
				}
				violations := 0
				var last arcs.Lemma2Result
				minLen, maxLen := 1.0, 0.0
				for _, r := range rings {
					res, err := arcs.CheckLemma2(r, params)
					if err != nil {
						return nil, err
					}
					violations += res.Violations
					if res.MinLenFrac < minLen {
						minLen = res.MinLenFrac
					}
					if res.MaxLenFrac > maxLen {
						maxLen = res.MaxLenFrac
					}
					last = res
				}
				if err := t.AddRow(
					fmtI(n),
					fmtI(last.KLow)+"-"+fmtI(last.KHigh),
					fmtF(last.LowerFrac), fmtF(last.UpperFrac),
					fmtF(minLen), fmtF(maxLen), fmtI(violations),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("params C=%v alpha1=%v alpha2=%v eps=%v (log base 2, per the Lemma 2 proof)",
				params.C, params.Alpha1, params.Alpha2, params.Eps)
			return t, nil
		},
	}
}

// expE6 measures Lemma 4's window-sum lower bound, the property that
// guarantees every needy interval finds supplementary measure within
// 6 ln n steps.
func expE6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Peerless-interval window sums (Lemma 4)",
		Claim: "any 6 ln n consecutive maximally peerless intervals sum to >= (ln n)/n",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E6",
				Title:   "Lemma 4: minimum window sums over consecutive arcs",
				Claim:   "min window sum >= (ln n)/n across all windows and seeds",
				Columns: []string{"n", "window", "threshold", "minSum", "minSum/threshold", "violations"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096, 16384)
			seedCount := 10
			if cfg.Quick {
				seedCount = 3
			}
			for _, n := range ns {
				rings, err := ringSeeds(cfg.Seed^0x88, n, seedCount)
				if err != nil {
					return nil, err
				}
				violations := 0
				minSum := 1.0
				var window int
				var threshold float64
				for _, r := range rings {
					res, err := arcs.CheckLemma4(r)
					if err != nil {
						return nil, err
					}
					violations += res.Violations
					if res.MinSumFrac < minSum {
						minSum = res.MinSumFrac
					}
					window = res.Window
					threshold = res.Threshold
				}
				if err := t.AddRow(
					fmtI(n), fmtI(window), fmtF(threshold), fmtF(minSum),
					fmtF(minSum/threshold), fmtI(violations),
				); err != nil {
					return nil, err
				}
			}
			return t, nil
		},
	}
}

// expE7 measures Theorem 8: the minimum arc is Theta(1/n^2), plus the
// cited Theta(log n / n) maximum arc.
func expE7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Arc-length extremes (Theorem 8)",
		Claim: "min arc is Theta(1/n^2); max arc is Theta(log n / n)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E7",
				Title:   "Theorem 8: scaled arc extremes across seeds",
				Claim:   "n^2 * minArc and (n/ln n) * maxArc are Theta(1)",
				Columns: []string{"n", "seeds", "n2minArc_mean", "n2minArc_p95", "maxArcScaled_mean", "maxArcScaled_p95"},
			}
			ns := sweep(cfg.Quick, 1024, 4096, 16384, 65536)
			seedCount := 20
			if cfg.Quick {
				seedCount = 5
			}
			var nsF, minMeans []float64
			for _, n := range ns {
				rings, err := ringSeeds(cfg.Seed^0x99, n, seedCount)
				if err != nil {
					return nil, err
				}
				minScaled := make([]float64, 0, seedCount)
				maxScaled := make([]float64, 0, seedCount)
				for _, r := range rings {
					res, err := arcs.Extremes(r)
					if err != nil {
						return nil, err
					}
					minScaled = append(minScaled, res.MinScaled)
					maxScaled = append(maxScaled, res.MaxScaled)
				}
				minSum := stats.Summarize(minScaled)
				maxSum := stats.Summarize(maxScaled)
				nsF = append(nsF, float64(n))
				minMeans = append(minMeans, minSum.Mean)
				if err := t.AddRow(
					fmtI(n), fmtI(seedCount),
					fmtF(minSum.Mean), fmtF(minSum.P95),
					fmtF(maxSum.Mean), fmtF(maxSum.P95),
				); err != nil {
					return nil, err
				}
			}
			if len(ns) >= 2 {
				intNs := make([]int, len(ns))
				copy(intNs, ns)
				logRatioNote(t, "n^2*minArc", intNs, minMeans)
			}
			t.AddNote("Theta(1) scaled statistics across a %dx range of n confirm both exponents", ns[len(ns)-1]/ns[0])
			return t, nil
		},
	}
}
