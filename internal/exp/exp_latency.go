package exp

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/churn"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// LatencyModel resolves the run's latency model: the -latency flag spec
// when given, else a constant 1ms round trip — the model under which
// per-sample virtual latency is exactly (sequential RPCs) x 1ms, making
// the O(log n) latency bound directly readable.
func (cfg RunConfig) LatencyModel() (sim.Model, error) {
	if cfg.Latency == "" {
		return sim.Constant{RTT: time.Millisecond}, nil
	}
	return sim.ParseModel(cfg.Latency)
}

// quantileOf returns the q-quantile of a sorted sample.
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// expE25 measures the latency CDF of Choose Random Peer on simulated
// time: every backend runs over a virtual clock, each sample's latency
// is the virtual time it consumed, and the mean must grow
// logarithmically in n — Theorem 7's O(t_h + log n) latency bound
// measured in time units rather than inferred from hop counts.
func expE25() Experiment {
	return Experiment{
		ID:    "E25",
		Title: "Latency CDF of choose-random-peer on simulated time (Theorem 7, in time units)",
		Claim: "per-sample virtual latency is O(log n) on every backend under a constant-latency link model",
		Run: func(cfg RunConfig) (*Table, error) {
			model, err := cfg.LatencyModel()
			if err != nil {
				return nil, err
			}
			t := &Table{
				ID:      "E25",
				Title:   "Per-sample virtual latency by backend and size (model " + model.Name() + ")",
				Claim:   "mean choose-latency grows ~logarithmically in n; tail quantiles stay near the mean",
				Columns: []string{"backend", "n", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "meanTrials", "mean/log2n"},
			}
			ns := sweep(cfg.Quick, 128, 512, 2048, 8192)
			// Average over several callers: each peer derives its own size
			// estimate, so per-caller latency varies by the (7*nhat/n)
			// trial multiplier; pooling callers measures the expectation
			// Theorem 7 bounds (same discipline and caller count as E2).
			// meanTrials is reported so a skewed realized multiplier is
			// visible rather than read as a latency anomaly.
			samplesPerCaller, callers := 60, 12
			if cfg.Quick {
				samplesPerCaller, callers = 30, 4
			}
			samples := samplesPerCaller * callers
			backends := randompeer.Backends()
			type point struct {
				cells []string
				mean  float64 // milliseconds
				logN  float64
			}
			points := make([]point, len(backends)*len(ns))
			err = forEach(cfg.workerCount(), len(points), func(idx int) error {
				backend := backends[idx/len(ns)]
				n := ns[idx%len(ns)]
				tb, err := randompeer.New(
					randompeer.WithPeers(n),
					randompeer.WithSeed(cfg.Seed^uint64(n)),
					randompeer.WithBackend(backend),
					randompeer.WithLatencyModel(model),
				)
				if err != nil {
					return err
				}
				rng := rand.New(rand.NewPCG(cfg.Seed^0x25, uint64(n)))
				lats := make([]float64, 0, samples)
				var totalTrials, totalSamples int64
				for c := 0; c < callers; c++ {
					p, err := tb.Peer(c * (n / callers))
					if err != nil {
						return err
					}
					s, err := core.New(tb.DHT(), p, rng, core.Config{})
					if err != nil {
						return err
					}
					for i := 0; i < samplesPerCaller; i++ {
						before := tb.VirtualTime()
						if _, err := s.Sample(); err != nil {
							return err
						}
						lats = append(lats, float64(tb.VirtualTime()-before)/float64(time.Millisecond))
					}
					st := s.Stats()
					totalTrials += st.Trials
					totalSamples += st.Samples
				}
				sort.Float64s(lats)
				var sum float64
				for _, l := range lats {
					sum += l
				}
				mean := sum / float64(len(lats))
				logN := math.Log2(float64(n))
				points[idx] = point{
					cells: []string{
						backend.String(), fmtI(n),
						fmtF(mean),
						fmtF(quantileOf(lats, 0.50)),
						fmtF(quantileOf(lats, 0.90)),
						fmtF(quantileOf(lats, 0.99)),
						fmtF(float64(totalTrials) / float64(totalSamples)),
						fmtF(mean / logN),
					},
					mean: mean,
					logN: logN,
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				if err := t.AddRow(p.cells...); err != nil {
					return nil, err
				}
			}
			// Per-backend log fit: latency must be linear in log n.
			for bi, backend := range backends {
				var logNs, means []float64
				for _, p := range points[bi*len(ns) : (bi+1)*len(ns)] {
					logNs = append(logNs, p.logN)
					means = append(means, p.mean)
				}
				if len(logNs) < 2 {
					continue
				}
				slope, intercept, r2, err := stats.LinearFit(logNs, means)
				if err != nil {
					return nil, err
				}
				t.AddNote("%s: mean latency = %.3f*log2(n) + %.3f ms (r^2 = %.3f); linearity in log n is the O(log n) latency bound",
					backend, slope, intercept, r2)
			}
			t.AddNote("latency = virtual time per sample; RPCs issue sequentially, so kademlia's alpha-parallel waves are charged serially here (an upper bound on its latency)")
			return t, nil
		},
	}
}

// churnDHT is the slice of a backend adapter E26 needs: the abstract
// DHT model plus the caller identity and owner-index refresh for
// post-churn tallying. Both chord.DHT and kademlia.DHT satisfy it.
type churnDHT interface {
	dht.DHT
	Self() dht.Peer
	RefreshOwners()
}

// expE26 measures sampling under asynchronous churn: joins, crashes and
// maintenance run as timed events on the discrete-event kernel,
// concurrent in virtual time with a sampler process, at a sweep of
// event rates. It reports the in-churn success/failure split and the
// post-churn uniformity — on Chord and on Kademlia, through the same
// generic driver.
func expE26() Experiment {
	return Experiment{
		ID:    "E26",
		Title: "Sampling under asynchronous churn at varying event rates (kernel-driven)",
		Claim: "failures grow as events outpace repair, yet uniformity over survivors is restored once churn stops",
		Run: func(cfg RunConfig) (*Table, error) {
			model, err := cfg.LatencyModel()
			if err != nil {
				return nil, err
			}
			t := &Table{
				ID:      "E26",
				Title:   "Asynchronous churn: in-flight sampling and post-churn uniformity (model " + model.Name() + ")",
				Claim:   "graceful degradation under concurrent topology change; chi-square recovers post-churn",
				Columns: []string{"backend", "meanGap_ms", "events", "stepErrs", "samplesOK", "estErrs", "sampleErrs", "postChi2p", "ringOK", "vtime_ms"},
			}
			n := 96
			events := 40
			postSamples := 30
			gaps := []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 80 * time.Millisecond}
			if cfg.Quick {
				n, events, postSamples = 48, 20, 20
				gaps = gaps[:2]
			}
			type substrate struct {
				name  string
				build func(tr *sim.Transport, points []ring.Point) (churn.Overlay, churnDHT, error)
			}
			substrates := []substrate{
				{"chord", func(tr *sim.Transport, points []ring.Point) (churn.Overlay, churnDHT, error) {
					net, err := chord.BuildStatic(chord.Config{}, tr, points)
					if err != nil {
						return nil, nil, err
					}
					d, err := net.AsDHT(points[0])
					if err != nil {
						return nil, nil, err
					}
					return churn.Chord(net), d, nil
				}},
				{"kademlia", func(tr *sim.Transport, points []ring.Point) (churn.Overlay, churnDHT, error) {
					net, err := kademlia.BuildStatic(kademlia.Config{}, tr, points)
					if err != nil {
						return nil, nil, err
					}
					d, err := net.AsDHT(points[0])
					if err != nil {
						return nil, nil, err
					}
					return churn.Kademlia(net), d, nil
				}},
			}
			type result struct{ cells []string }
			results := make([]result, len(substrates)*len(gaps))
			err = forEach(cfg.workerCount(), len(results), func(idx int) error {
				sub := substrates[idx/len(gaps)]
				gap := gaps[idx%len(gaps)]
				seed := cfg.Seed ^ 0x26 ^ uint64(gap)
				rng := rand.New(rand.NewPCG(seed, seed+1))
				r, err := ring.Generate(rng, n)
				if err != nil {
					return err
				}
				k := sim.NewKernel(seed)
				tr := sim.NewTransport(
					sim.WithKernel(k),
					sim.WithModel(model),
					sim.WithStreamSeed(seed+2),
				)
				ov, d, err := sub.build(tr, r.Points())
				if err != nil {
					return err
				}
				caller := r.At(0)
				driver, err := churn.NewDriver(ov, rand.New(rand.NewPCG(seed+3, seed+4)), churn.Config{
					Events:    events,
					Protected: map[ring.Point]bool{caller: true},
				})
				if err != nil {
					return err
				}
				run, err := driver.Schedule(k, churn.AsyncConfig{
					MeanInterval:        gap,
					MaintenanceInterval: 5 * time.Millisecond,
				}, nil)
				if err != nil {
					return err
				}
				// Several sampler processes run concurrently in virtual
				// time — clients do not take turns — each rebuilding its
				// sampler (a fresh size estimate) per draw, the honest
				// mode while the network size is changing.
				const samplers = 4
				var oks, estErrs, sampErrs int
				for w := 0; w < samplers; w++ {
					srng := rand.New(rand.NewPCG(seed+5+uint64(w), seed+6))
					k.Go("sampler", func() {
						for !run.Done() {
							s, err := core.New(d, d.Self(), srng, core.Config{})
							if err != nil {
								estErrs++
								if k.Sleep(time.Millisecond) != nil {
									return
								}
								continue
							}
							if _, err := s.Sample(); err != nil {
								sampErrs++
							} else {
								oks++
							}
						}
					})
				}
				k.Run()
				vtime := k.Now()
				// Settle synchronously, then measure uniformity over the
				// survivors with fresh owner indices.
				ov.Maintain(12, 16)
				ringOK := "yes"
				if err := ov.VerifyRing(); err != nil {
					ringOK = "no"
				}
				d.RefreshOwners()
				s, err := core.New(d, d.Self(), rand.New(rand.NewPCG(seed+99, seed+100)), core.Config{})
				if err != nil {
					return err
				}
				owners := d.Size()
				counts := make([]int64, owners)
				for i := 0; i < postSamples*owners; i++ {
					p, err := s.Sample()
					if err != nil {
						return err
					}
					if p.Owner >= 0 && p.Owner < owners {
						counts[p.Owner]++
					}
				}
				_, pvalue, err := stats.ChiSquareUniform(counts)
				if err != nil {
					return err
				}
				results[idx] = result{cells: []string{
					sub.name,
					fmtF(float64(gap) / float64(time.Millisecond)),
					fmtI(len(run.Events)),
					fmtI(run.StepErrors),
					fmtI(oks), fmtI(estErrs), fmtI(sampErrs),
					fmt.Sprintf("%.4f", pvalue),
					ringOK,
					fmtF(float64(vtime) / float64(time.Millisecond)),
				}}
				return nil
			})
			if err != nil {
				return nil, err
			}
			for _, r := range results {
				if err := t.AddRow(r.cells...); err != nil {
					return nil, err
				}
			}
			t.AddNote("start n = %d; events are joins/crashes at exponential gaps, maintenance sweeps every 5ms run all nodes in parallel kernel processes, samples run concurrently in virtual time", n)
			t.AddNote("4 sampler processes draw concurrently; smaller gaps put more topology changes inside each in-flight sample — the paper's stable-ring assumption under stress")
			t.AddNote("estErrs are failed size estimates, sampleErrs failed draws; kademlia errors more than chord mid-churn because its h has no backup-route retry — a lookup touching a fresh crash aborts, where chord falls through its candidate list")
			return t, nil
		},
	}
}
