// Package exp is the experiment harness that regenerates every
// quantitative claim of King & Saia's paper as a table or figure-series.
// DESIGN.md carries the experiment index (E1-E28); EXPERIMENTS.md records
// paper-claim versus measured output for each. Each experiment supports
// a Quick mode (small sweeps, used by tests and smoke runs) and a Full
// mode (the sweeps recorded in EXPERIMENTS.md).
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Table is a rendered experiment result: a paper-style table or the data
// series behind a figure.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test
	Columns []string
	Rows    [][]string
	Notes   []string // free-form findings (fit slopes, verdicts)
}

// AddRow appends a formatted row; the value count must match Columns.
func (t *Table) AddRow(values ...string) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("exp: row has %d values for %d columns", len(values), len(t.Columns))
	}
	t.Rows = append(t.Rows, values)
	return nil
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "claim: %s\n", t.Claim); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, v := range row {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, v := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], v)
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table data as CSV (columns header plus rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunConfig selects the sweep size and seeds an experiment run.
type RunConfig struct {
	// Seed roots all randomness of the run; equal seeds reproduce equal
	// tables.
	Seed uint64
	// Quick selects reduced sweeps for tests and smoke runs.
	Quick bool
	// Workers bounds the goroutines an experiment may use in total
	// across its sweep points and any batch sampling inside them
	// (default GOMAXPROCS). Experiments divide the budget between
	// nesting levels rather than multiplying it. Every sweep point is
	// seeded independently, so the worker count never changes a
	// table's contents.
	Workers int
	// Latency is the -latency flag spec (sim.ParseModel syntax) used by
	// the simulated-time experiments (E25-E27); empty selects their
	// default constant 1ms round trip.
	Latency string
}

// workerCount resolves the effective worker budget.
func (cfg RunConfig) workerCount() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the first error (remaining iterations are
// skipped once an error is observed). Iterations must be independent;
// experiments use it to spread sweep points over cores while writing
// results into per-index slots so row order stays deterministic.
func forEach(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || firstErr.Load() != nil {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return *errp
	}
	return nil
}

// RunResult is one experiment's outcome from RunAll.
type RunResult struct {
	Experiment Experiment
	Table      *Table
	Err        error
	Elapsed    time.Duration
}

// RunAll executes the experiments across at most workers goroutines
// (default GOMAXPROCS when workers <= 0) and returns their results in
// input order. The budget is divided, not multiplied: with c
// experiments in flight, each runs with Workers = workers/c for its own
// sweep points, so the whole run stays within the overall bound.
// Experiments are independent by construction — each seeds its own
// generators from cfg.Seed — so concurrent execution reproduces exactly
// the tables a sequential run would.
func RunAll(cfg RunConfig, exps []Experiment, workers int) []RunResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	concurrent := min(workers, max(len(exps), 1))
	cfg.Workers = max(1, workers/concurrent)
	results := make([]RunResult, len(exps))
	_ = forEach(concurrent, len(exps), func(i int) error {
		start := time.Now()
		table, err := exps[i].Run(cfg)
		results[i] = RunResult{Experiment: exps[i], Table: table, Err: err, Elapsed: time.Since(start)}
		return nil // a failed experiment must not cancel its siblings
	})
	return results
}

// Experiment is one reproducible claim check.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg RunConfig) (*Table, error)
}

// All returns every registered experiment, ordered by ID.
func All() []Experiment {
	exps := []Experiment{
		expE1(),
		expE2(),
		expE3(),
		expE4(),
		expE5(),
		expE6(),
		expE7(),
		expE8(),
		expE9(),
		expE10(),
		expE11(),
		expE12(),
		expE13(),
		expE14(),
		expE15(),
		expE16(),
		expE17(),
		expE18(),
		expE19(),
		expE20(),
		expE21(),
		expE22(),
		expE23(),
		expE24(),
		expE25(),
		expE26(),
		expE27(),
		expE28(),
		expE29(),
		expE30(),
	}
	sort.Slice(exps, func(i, j int) bool { return idOrder(exps[i].ID) < idOrder(exps[j].ID) })
	return exps
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

func idOrder(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "E"))
	if err != nil {
		return 1 << 30
	}
	return n
}

// sweep returns the experiment's n values.
func sweep(quick bool, full ...int) []int {
	if !quick {
		return full
	}
	if len(full) <= 2 {
		return full
	}
	return full[:2]
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 5, 64) }

// fmtI renders an int.
func fmtI(v int) string { return strconv.Itoa(v) }

// fmtI64 renders an int64.
func fmtI64(v int64) string { return strconv.FormatInt(v, 10) }

// fmtU renders a uint64.
func fmtU(v uint64) string { return strconv.FormatUint(v, 10) }
