package exp

import (
	"strconv"
	"testing"
)

// TestE29MitigationHoldsUnderAttack pins the adversarial headline: at a
// 20% Byzantine fraction the swap-audit mitigation's TV distance from
// uniform stays below the naive sampler's on both overlay backends, and
// the naive sampler's bias under attack clearly exceeds its honest
// floor. The quick-mode table is a pure function of the seed, so these
// are exact gates, not flaky statistical ones — this is the CI smoke
// test of the whole adversarial pipeline (attack plan, interceptors,
// bias statistics, mitigation sampler).
func TestE29MitigationHoldsUnderAttack(t *testing.T) {
	t.Parallel()
	e, err := ByID("E29")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Run(RunConfig{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	col := func(name string) int {
		for i, c := range table.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing from %v", name, table.Columns)
		return -1
	}
	bCol, fCol, sCol, tvCol, failCol := col("backend"), col("frac"), col("sampler"), col("tv"), col("fail_rate")
	tv := make(map[string]float64)    // "backend/frac/sampler" -> tv
	fails := make(map[string]float64) // same key -> fail_rate
	for _, row := range table.Rows {
		if row[sCol] == "eclipse-capture" {
			continue
		}
		v, err := strconv.ParseFloat(row[tvCol], 64)
		if err != nil {
			t.Fatalf("bad tv %q: %v", row[tvCol], err)
		}
		f, err := strconv.ParseFloat(row[failCol], 64)
		if err != nil {
			t.Fatalf("bad fail_rate %q: %v", row[failCol], err)
		}
		key := row[bCol] + "/" + row[fCol] + "/" + row[sCol]
		tv[key] = v
		fails[key] = f
	}
	for _, backend := range []string{"chord", "kademlia"} {
		naive, ok := tv[backend+"/0.2/naive"]
		if !ok {
			t.Fatalf("%s: no naive row at frac 0.2", backend)
		}
		swap, ok := tv[backend+"/0.2/swap"]
		if !ok {
			t.Fatalf("%s: no swap row at frac 0.2", backend)
		}
		honest := tv[backend+"/0/naive"]
		// (a) the attack measurably biases the naive sampler.
		if naive < honest+0.02 {
			t.Errorf("%s: naive TV %.4f under 20%% subversion vs honest floor %.4f; attack signal missing", backend, naive, honest)
		}
		// (b) the mitigation holds strictly below the attacked baseline.
		if swap >= naive {
			t.Errorf("%s: swap TV %.4f not below naive TV %.4f at 20%% subversion", backend, swap, naive)
		}
		// The mitigation's price stays bounded: it must not degrade
		// into rejecting most samples to win the bias comparison.
		if rate := fails[backend+"/0.2/swap"]; rate > 0.25 {
			t.Errorf("%s: swap failure rate %.4f at 20%% subversion, want <= 0.25", backend, rate)
		}
	}
}

// TestE29Deterministic re-runs the quick table under the same seed and
// requires cell-identical output: every lie, coalition pick and
// bootstrap replicate must be a pure function of the seed.
func TestE29Deterministic(t *testing.T) {
	t.Parallel()
	e, err := ByID("E29")
	if err != nil {
		t.Fatal(err)
	}
	run := func() [][]string {
		table, err := e.Run(RunConfig{Seed: 77, Quick: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return table.Rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Errorf("row %d cell %d: %q vs %q", i, j, a[i][j], b[i][j])
			}
		}
	}
}
