package exp

import (
	"math"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// expE3 measures Lemma 3: the Estimate n output is a (2/7-eps, 6+eps)
// approximation of n for every peer, w.h.p.
func expE3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Accuracy of Estimate n (Lemma 3)",
		Claim: "nhat/n lies in (2/7 - eps, 6 + eps) for all peers w.h.p.",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E3",
				Title:   "Estimate n accuracy across all peers",
				Claim:   "ratio nhat/n within (2/7, 6) band",
				Columns: []string{"n", "c1", "minRatio", "meanRatio", "maxRatio", "p95Ratio", "inBandFrac"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096, 16384)
			const (
				bandLo = 2.0/7.0 - 0.05
				bandHi = 6.0 + 0.05
			)
			for _, n := range ns {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x44, uint64(n)))
				o, err := newOracleRing(rng, n)
				if err != nil {
					return nil, err
				}
				callers := n
				if callers > 1024 {
					callers = 1024
				}
				for _, c1 := range []float64{1, 2, 4} {
					ratios := make([]float64, 0, callers)
					inBand := 0
					for i := 0; i < callers; i++ {
						res, err := core.EstimateN(o, o.PeerByIndex(i*(n/callers)), c1)
						if err != nil {
							return nil, err
						}
						ratio := res.NHat / float64(n)
						ratios = append(ratios, ratio)
						if ratio > bandLo && ratio < bandHi {
							inBand++
						}
					}
					sum := stats.Summarize(ratios)
					if err := t.AddRow(
						fmtI(n), fmtF(c1), fmtF(sum.Min), fmtF(sum.Mean), fmtF(sum.Max),
						fmtF(sum.P95), fmtF(float64(inBand)/float64(callers)),
					); err != nil {
						return nil, err
					}
				}
			}
			t.AddNote("paper: Lemma 3 proves the (2/7-eps, 6+eps) band; measured ratios concentrate near 1")
			return t, nil
		},
	}
}

// expE16 ablates the two constants the paper leaves open: the estimate
// walk factor c1 and the per-trial step bound factor ("6 ln n'").
func expE16() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "Ablation: c1 and the 6 ln n' walk bound",
		Claim: "paper's constants trade cost against failure probability",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E16",
				Title:   "Constant ablation: walk bound versus truncated mass",
				Claim:   "small walk bounds truncate the partition (breaking exactness); the paper's 6 ln n' bound is conservative",
				Columns: []string{"n", "maxSteps", "truncatedMass", "maxDevRel", "deepestStep"},
			}
			ns := sweep(cfg.Quick, 1024, 4096)
			for _, n := range ns {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x55, uint64(n)))
				r, err := ring.Generate(rng, n)
				if err != nil {
					return nil, err
				}
				params, err := core.DeriveParams(float64(n), 1, 6)
				if err != nil {
					return nil, err
				}
				// Ideal unassigned mass is 1 - n*lambda (no truncation).
				ideal := 1 - float64(n)*ring.UnitsToFrac(params.Lambda)
				for _, steps := range []int{0, 1, 2, 3, 4, 6, 10, params.MaxSteps} {
					a, err := core.Analyze(r, params.Lambda, steps)
					if err != nil {
						return nil, err
					}
					unassigned := 1 - a.SuccessProbability
					if err := t.AddRow(
						fmtI(n), fmtI(steps),
						fmtF(unassigned-ideal),
						fmtF(float64(a.MaxDeviation)/float64(params.Lambda)),
						fmtI(a.DeepestStep),
					); err != nil {
						return nil, err
					}
				}
			}
			t.AddNote("truncatedMass > 0 means starting points fail by walk truncation rather than by rejection design; exact uniformity breaks (maxDevRel jumps)")
			t.AddNote("the deepest step that assigns measure is far below the paper's 6 ln n' bound: the bound is safe but very conservative (its open problem 1)")
			return t, nil
		},
	}
}

// logRatioNote annotates a table with the growth rate of a column pair.
func logRatioNote(t *Table, label string, ns []int, vals []float64) {
	if len(ns) < 2 || len(vals) != len(ns) {
		return
	}
	first, last := vals[0], vals[len(vals)-1]
	nRatio := float64(ns[len(ns)-1]) / float64(ns[0])
	if first <= 0 || last <= 0 || nRatio <= 1 {
		return
	}
	growth := math.Log(last/first) / math.Log(nRatio)
	t.AddNote("%s grows like n^%.2f over the sweep", label, growth)
}
