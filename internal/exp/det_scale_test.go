package exp

import (
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/sim"
)

// TestScaleScenarioDeterminism pins the E27 scenario runner as a pure
// function of its seed: two identical invocations must agree on every
// simulation-derived quantity (virtual time, kernel event count, churn
// and sampler outcomes, owner probes) — only the wall-clock fields may
// differ. Note the scenario's virtual time is captured before the
// post-churn owner probes, whose free-running RPCs advance the clock.
func TestScaleScenarioDeterminism(t *testing.T) {
	run := func() *ScaleResult {
		res, err := RunScaleScenario("chord", 4096, 16, 50, 10*time.Millisecond, sim.Constant{RTT: time.Millisecond}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Virtual != b.Virtual || a.KernelEvents != b.KernelEvents ||
		a.ChurnEvents != b.ChurnEvents || a.StepErrors != b.StepErrors ||
		a.SamplesOK != b.SamplesOK || a.EstErrs != b.EstErrs || a.SampleErrs != b.SampleErrs ||
		a.OwnerMatches != b.OwnerMatches {
		t.Fatalf("scenario not deterministic:\n a=%+v\n b=%+v", a, b)
	}
}
