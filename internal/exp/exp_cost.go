package exp

import (
	"math"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// newOracleRing generates an n-peer oracle DHT.
func newOracleRing(rng *rand.Rand, n int) (*dht.Oracle, error) {
	r, err := ring.Generate(rng, n)
	if err != nil {
		return nil, err
	}
	return dht.NewOracle(r), nil
}

// expE2 measures Theorem 7 on the real Chord substrate: latency
// (sequential RPCs) and messages per sample, with the O(log n) fit.
func expE2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Latency and message cost over Chord (Theorem 7)",
		Claim: "expected latency O(t_h + log n) and O(m_h + log n) messages per sample",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E2",
				Title:   "Cost per sample over a real Chord ring",
				Claim:   "hops and messages per sample grow as O(log n)",
				Columns: []string{"n", "meanHops", "meanMsgs", "meanTrials", "meanSteps", "hops/log2n"},
			}
			ns := sweep(cfg.Quick, 64, 256, 1024, 4096)
			samplesPerCaller := 60
			callers := 12
			if cfg.Quick {
				samplesPerCaller, callers = 30, 4
			}
			var logNs, hops []float64
			for _, n := range ns {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x22, uint64(n)))
				r, err := ring.Generate(rng, n)
				if err != nil {
					return nil, err
				}
				net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), r.Points())
				if err != nil {
					return nil, err
				}
				// Average over several callers: each peer derives its own
				// size estimate and lambda, so per-caller costs vary by the
				// (7*nhat/n) trial multiplier; the mean over callers is the
				// quantity Theorem 7 bounds.
				var totalCalls, totalMsgs int64
				var totalTrials, totalSteps, totalSamples int64
				for c := 0; c < callers; c++ {
					d, err := net.AsDHT(r.At(c * (n / callers)))
					if err != nil {
						return nil, err
					}
					s, err := core.New(d, d.Self(), rng, core.Config{})
					if err != nil {
						return nil, err
					}
					before := d.Meter().Snapshot()
					for i := 0; i < samplesPerCaller; i++ {
						if _, err := s.Sample(); err != nil {
							return nil, err
						}
					}
					cost := d.Meter().Snapshot().Sub(before)
					totalCalls += cost.Calls
					totalMsgs += cost.Messages
					st := s.Stats()
					totalTrials += st.Trials
					totalSteps += st.Steps
					totalSamples += st.Samples
				}
				samples := float64(totalSamples)
				meanHops := float64(totalCalls) / samples
				meanMsgs := float64(totalMsgs) / samples
				logN := math.Log2(float64(n))
				logNs = append(logNs, logN)
				hops = append(hops, meanHops)
				if err := t.AddRow(
					fmtI(n), fmtF(meanHops), fmtF(meanMsgs),
					fmtF(float64(totalTrials)/samples),
					fmtF(float64(totalSteps)/samples),
					fmtF(meanHops/logN),
				); err != nil {
					return nil, err
				}
			}
			if len(ns) >= 2 {
				slope, intercept, r2, err := stats.LinearFit(logNs, hops)
				if err != nil {
					return nil, err
				}
				t.AddNote("fit meanHops = %.2f*log2(n) + %.2f (r^2 = %.3f); linearity in log n confirms O(log n)",
					slope, intercept, r2)
			}
			return t, nil
		},
	}
}

// expE10 compares per-sample message cost across all samplers as n
// grows — the cost side of the accuracy/cost trade-off figure.
func expE10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Cost per sample versus n, all samplers (figure series)",
		Claim: "King-Saia pays O(log n) per sample; naive pays one lookup; walks pay their length",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E10",
				Title:   "Messages per sample versus n",
				Claim:   "all samplers are O(log n) messages; constants differ",
				Columns: []string{"n", "king-saia", "naive", "walk-log2n", "walk-3log2n"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096, 16384)
			samples := 300
			if cfg.Quick {
				samples = 100
			}
			for _, n := range ns {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x33, uint64(n)))
				o, err := newOracleRing(rng, n)
				if err != nil {
					return nil, err
				}
				logN := int(math.Log2(float64(n)))
				ks, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
				if err != nil {
					return nil, err
				}
				graph := baseline.NewOracleGraph(o)
				w1, err := baseline.NewWalk(o, graph, o.PeerByIndex(0), logN, rng)
				if err != nil {
					return nil, err
				}
				w3, err := baseline.NewWalk(o, graph, o.PeerByIndex(0), 3*logN, rng)
				if err != nil {
					return nil, err
				}
				samplers := []dht.Sampler{ks, baseline.NewNaive(o, rng), w1, w3}
				row := make([]string, 0, len(samplers)+1)
				row = append(row, fmtI(n))
				for _, s := range samplers {
					before := o.Meter().Snapshot()
					for i := 0; i < samples; i++ {
						if _, err := s.Sample(); err != nil {
							return nil, err
						}
					}
					cost := o.Meter().Snapshot().Sub(before)
					row = append(row, fmtF(float64(cost.Messages)/float64(samples)))
				}
				if err := t.AddRow(row...); err != nil {
					return nil, err
				}
			}
			t.AddNote("oracle backend: h charged ceil(log2 n) RPCs, next 1 RPC, walk steps 1 RPC each")
			return t, nil
		},
	}
}
