package exp

import (
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/churn"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// expE15 measures sampling behaviour while the Chord ring churns with
// its maintenance protocol running — the deployment regime the paper
// leaves as an assumption (a stable ring).
func expE15() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Sampling under churn (stability assumption stress test)",
		Claim: "the algorithm degrades gracefully: errors stay rare and uniformity recovers after stabilization",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E15",
				Title:   "Sampling during churn at varying maintenance rates",
				Claim:   "sample failures rare; post-churn distribution passes chi-square",
				Columns: []string{"roundsPerEvent", "events", "sampleErrs", "samplesOK", "postChi2p", "ringRepaired"},
			}
			n := 128
			events := 60
			samplesDuring := 4
			postSamples := 40
			if cfg.Quick {
				n, events, samplesDuring, postSamples = 64, 30, 2, 25
			}
			for _, rounds := range []int{1, 2, 4} {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x1515, uint64(rounds)))
				r, err := ring.Generate(rng, n)
				if err != nil {
					return nil, err
				}
				net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), r.Points())
				if err != nil {
					return nil, err
				}
				caller := r.At(0)
				d, err := net.AsDHT(caller)
				if err != nil {
					return nil, err
				}
				driver, err := churn.NewDriver(churn.Chord(net), rng, churn.Config{
					Events:         events,
					RoundsPerEvent: rounds,
					Protected:      map[ring.Point]bool{caller: true},
				})
				if err != nil {
					return nil, err
				}
				var errCount, okCount int
				if err := driver.Run(func(ev churn.Event) error {
					for i := 0; i < samplesDuring; i++ {
						s, err := core.New(d, d.Self(), rng, core.Config{})
						if err != nil {
							errCount++
							continue
						}
						if _, err := s.Sample(); err != nil {
							errCount++
						} else {
							okCount++
						}
					}
					return nil
				}); err != nil {
					return nil, err
				}
				// Settle, then verify uniformity is restored among survivors.
				net.RunMaintenance(12, 16)
				repaired := net.VerifyRing() == nil
				d.RefreshOwners()
				s, err := core.New(d, d.Self(), rng, core.Config{})
				if err != nil {
					return nil, err
				}
				owners := d.Size()
				counts := make([]int64, owners)
				for i := 0; i < postSamples*owners; i++ {
					p, err := s.Sample()
					if err != nil {
						return nil, err
					}
					if p.Owner >= 0 && p.Owner < owners {
						counts[p.Owner]++
					}
				}
				_, pvalue, err := stats.ChiSquareUniform(counts)
				if err != nil {
					return nil, err
				}
				repairedStr := "yes"
				if !repaired {
					repairedStr = "no"
				}
				if err := t.AddRow(
					fmtI(rounds), fmtI(events), fmtI(errCount), fmtI(okCount),
					fmtF(pvalue), repairedStr,
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("start n = %d; each event is a join or crash followed by the given maintenance rounds", n)
			return t, nil
		},
	}
}
