package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestAllRegistered(t *testing.T) {
	t.Parallel()
	exps := All()
	if len(exps) != 30 {
		t.Fatalf("registered %d experiments, want 30", len(exps))
	}
	seen := make(map[string]bool, len(exps))
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Ordered by numeric ID.
	for i := 1; i < len(exps); i++ {
		if idOrder(exps[i-1].ID) >= idOrder(exps[i].ID) {
			t.Errorf("experiments out of order: %s before %s", exps[i-1].ID, exps[i].ID)
		}
	}
}

func TestByID(t *testing.T) {
	t.Parallel()
	e, err := ByID("E1")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "E1" {
		t.Errorf("ByID returned %q", e.ID)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown id should fail")
	}
}

// TestExperimentsRunQuick executes every experiment in Quick mode and
// validates the table structure. This is the end-to-end integration test
// of the whole reproduction pipeline.
func TestExperimentsRunQuick(t *testing.T) {
	t.Parallel()
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			table, err := e.Run(RunConfig{Seed: 12345, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if table.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", table.ID, e.ID)
			}
			if len(table.Columns) < 2 {
				t.Errorf("%s: only %d columns", e.ID, len(table.Columns))
			}
			if len(table.Rows) == 0 {
				t.Errorf("%s: no rows", e.ID)
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Errorf("%s row %d: %d cells for %d columns", e.ID, i, len(row), len(table.Columns))
				}
			}
			var buf bytes.Buffer
			if err := table.Render(&buf); err != nil {
				t.Fatalf("%s render: %v", e.ID, err)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Errorf("%s: render missing id", e.ID)
			}
			var csvBuf bytes.Buffer
			if err := table.WriteCSV(&csvBuf); err != nil {
				t.Fatalf("%s csv: %v", e.ID, err)
			}
		})
	}
}

// cell parses table cell (row, col-name) as float.
func cell(t *testing.T, table *Table, row int, col string) float64 {
	t.Helper()
	for i, c := range table.Columns {
		if c == col {
			v, err := strconv.ParseFloat(table.Rows[row][i], 64)
			if err != nil {
				t.Fatalf("cell %s[%d]: %v", col, row, err)
			}
			return v
		}
	}
	t.Fatalf("no column %q", col)
	return 0
}

func TestE1ClaimHolds(t *testing.T) {
	t.Parallel()
	e, err := ByID("E1")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Run(RunConfig{Seed: 777, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for row := range table.Rows {
		if rel := cell(t, table, row, "relDev"); rel > 1e-9 {
			t.Errorf("row %d: relative deviation %v too large for exact uniformity", row, rel)
		}
		if p := cell(t, table, row, "chi2_p"); p < 1e-4 {
			t.Errorf("row %d: chi-square rejected uniformity (p = %v)", row, p)
		}
	}
}

func TestE4E6ClaimsHold(t *testing.T) {
	t.Parallel()
	for _, id := range []string{"E4", "E6"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		table, err := e.Run(RunConfig{Seed: 99, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		for row := range table.Rows {
			if v := cell(t, table, row, "violations"); v != 0 {
				t.Errorf("%s row %d: %v violations", id, row, v)
			}
		}
	}
}

func TestE8BiasGrows(t *testing.T) {
	t.Parallel()
	e, err := ByID("E8")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Run(RunConfig{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 2 {
		t.Fatal("need at least two rows")
	}
	first := cell(t, table, 0, "biasRatio")
	last := cell(t, table, len(table.Rows)-1, "biasRatio")
	if last <= first {
		t.Errorf("bias ratio did not grow: %v -> %v", first, last)
	}
}

func TestE14UniformResists(t *testing.T) {
	t.Parallel()
	e, err := ByID("E14")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Run(RunConfig{Seed: 31, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for row := range table.Rows {
		uni := cell(t, table, row, "uniform_badRate")
		naive := cell(t, table, row, "naive_badRate")
		if uni > naive {
			t.Errorf("row %d: uniform bad rate %v exceeds naive %v", row, uni, naive)
		}
	}
	// At 30% byzantine the naive sampler must lose committees.
	lastNaive := cell(t, table, len(table.Rows)-1, "naive_badRate")
	if lastNaive == 0 {
		t.Error("naive sampler lost no committees at 30% adversary; attack model broken")
	}
}

func TestE16TruncationMonotone(t *testing.T) {
	t.Parallel()
	e, err := ByID("E16")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Run(RunConfig{Seed: 41, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Within each n block, truncated mass must be non-increasing in the
	// step bound and reach ~0 at the paper's bound (the final row).
	prevSteps := -1
	prevMass := 1.0
	for row := range table.Rows {
		steps := int(cell(t, table, row, "maxSteps"))
		mass := cell(t, table, row, "truncatedMass")
		if steps > prevSteps && prevSteps >= 0 {
			if mass > prevMass+1e-12 {
				t.Errorf("row %d: truncated mass grew with more steps (%v -> %v)", row, prevMass, mass)
			}
		}
		prevSteps, prevMass = steps, mass
		if steps < 0 {
			t.Errorf("row %d: negative steps", row)
		}
	}
	last := len(table.Rows) - 1
	if mass := cell(t, table, last, "truncatedMass"); mass > 1e-9 {
		t.Errorf("paper bound still truncates mass %v", mass)
	}
}

func TestE18MatchesPrediction(t *testing.T) {
	t.Parallel()
	e, err := ByID("E18")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Run(RunConfig{Seed: 43, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for row := range table.Rows {
		got := cell(t, table, row, "meanDraws")
		want := cell(t, table, row, "predictedDraws")
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("row %d: mean draws %v far from predicted %v", row, got, want)
		}
		tvd := cell(t, table, row, "tvdToTarget")
		floor := cell(t, table, row, "noiseFloor")
		if tvd > 2*floor {
			t.Errorf("row %d: TVD %v above twice the noise floor %v", row, tvd, floor)
		}
	}
}

func TestE20VirtualFlattens(t *testing.T) {
	t.Parallel()
	e, err := ByID("E20")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Run(RunConfig{Seed: 47, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for row := range table.Rows {
		plain := cell(t, table, row, "plainMax*n")
		virt := cell(t, table, row, "virtMax*n")
		if virt >= plain {
			t.Errorf("row %d: virtual nodes did not flatten load (%v vs %v)", row, virt, plain)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	t.Parallel()
	table := &Table{ID: "X", Title: "t", Columns: []string{"a", "b"}}
	if err := table.AddRow("1"); err == nil {
		t.Error("short row should fail")
	}
	if err := table.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	table.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "note 7") {
		t.Errorf("render missing note: %s", out)
	}
	var csvBuf bytes.Buffer
	if err := table.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(csvBuf.String()); got != "a,b\n1,2" {
		t.Errorf("csv = %q", got)
	}
}

// TestE25LatencyGrowsWithN spot-checks the acceptance criterion behind
// E25: under a constant-latency model, mean per-sample virtual latency
// rises with n on every backend (the log-n growth measured in time
// units), and the quantile columns are ordered.
func TestE25LatencyGrowsWithN(t *testing.T) {
	t.Parallel()
	table, err := expE25().Run(RunConfig{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: 3 backends x 2 sizes, grouped by backend.
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(table.Rows))
	}
	for b := 0; b < 3; b++ {
		small := cell(t, table, 2*b, "mean_ms")
		large := cell(t, table, 2*b+1, "mean_ms")
		backend := table.Rows[2*b][0]
		if large <= small {
			t.Errorf("%s: mean latency %v at larger n <= %v at smaller n", backend, large, small)
		}
		p50 := cell(t, table, 2*b, "p50_ms")
		p99 := cell(t, table, 2*b, "p99_ms")
		if p99 < p50 {
			t.Errorf("%s: p99 %v below p50 %v", backend, p99, p50)
		}
	}
}

// TestE26RunsBothSubstrates checks E26's structural promises: both
// overlays appear, some samples complete during churn on each, and the
// overlay ring is repaired after settling.
func TestE26RunsBothSubstrates(t *testing.T) {
	t.Parallel()
	table, err := expE26().Run(RunConfig{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]bool{}
	for i, row := range table.Rows {
		backends[row[0]] = true
		if ok := cell(t, table, i, "samplesOK"); ok <= 0 {
			t.Errorf("row %d (%s): no sample completed during churn", i, row[0])
		}
		if ringOK := row[len(row)-2]; ringOK != "yes" {
			t.Errorf("row %d (%s): ring not repaired after settling", i, row[0])
		}
	}
	if !backends["chord"] || !backends["kademlia"] {
		t.Errorf("substrates covered = %v, want chord and kademlia", backends)
	}
}
