package exp

import (
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// expE23 demonstrates Theorem 7's t_h dependence: the algorithm's cost
// is O(t_h + log n), so the sampler inherits whatever lookup cost the
// substrate provides. On finger-routed Chord t_h = O(log n); on a
// successor-list-only ring t_h = Theta(n/r), and per-sample cost scales
// accordingly while correctness (which never depends on routing) is
// untouched.
func expE23() Experiment {
	return Experiment{
		ID:    "E23",
		Title: "Substrate ablation: sampler cost over finger-routed vs successor-only rings (Theorem 7)",
		Claim: "per-sample cost = O(t_h + log n): linear-routing substrates pay their t_h, uniformity is unaffected",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E23",
				Title:   "Per-sample hops: O(log n) routing versus Theta(n/r) routing",
				Claim:   "cost tracks the substrate's t_h; both substrates sample correctly",
				Columns: []string{"n", "finger_hops", "succOnly_hops", "ratio", "succOnly/(n/r)"},
			}
			ns := sweep(cfg.Quick, 64, 256, 1024, 2048)
			samples := 150
			if cfg.Quick {
				samples = 60
			}
			const r = 8 // successor-list length
			for _, n := range ns {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x2323, uint64(n)))
				rg, err := ring.Generate(rng, n)
				if err != nil {
					return nil, err
				}
				perSample := func(disableFingers bool) (float64, error) {
					net, err := chord.BuildStatic(chord.Config{
						SuccListLen:    r,
						MaxLookupHops:  4 * n,
						DisableFingers: disableFingers,
					}, simnet.NewDirect(), rg.Points())
					if err != nil {
						return 0, err
					}
					d, err := net.AsDHT(rg.At(0))
					if err != nil {
						return 0, err
					}
					s, err := core.New(d, d.Self(), rng, core.Config{})
					if err != nil {
						return 0, err
					}
					before := d.Meter().Snapshot()
					for i := 0; i < samples; i++ {
						if _, err := s.Sample(); err != nil {
							return 0, err
						}
					}
					cost := d.Meter().Snapshot().Sub(before)
					return float64(cost.Calls) / float64(samples), nil
				}
				fingerHops, err := perSample(false)
				if err != nil {
					return nil, err
				}
				succHops, err := perSample(true)
				if err != nil {
					return nil, err
				}
				if err := t.AddRow(
					fmtI(n), fmtF(fingerHops), fmtF(succHops),
					fmtF(succHops/fingerHops),
					fmtF(succHops/(float64(n)/r)),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("successor-only routing resolves h by hopping %d peers at a time: t_h = Theta(n/r) dominates the cost as n grows", r)
			t.AddNote("the walk term (6 ln n' next-steps per trial) is identical on both substrates; only the h term differs, exactly as the O(t_h + log n) bound predicts")
			return t, nil
		},
	}
}
