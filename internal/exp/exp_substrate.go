package exp

import (
	"fmt"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// expE23 demonstrates Theorem 7's t_h dependence: the algorithm's cost
// is O(t_h + log n), so the sampler inherits whatever lookup cost the
// substrate provides. On finger-routed Chord t_h = O(log n); on a
// successor-list-only ring t_h = Theta(n/r), and per-sample cost scales
// accordingly while correctness (which never depends on routing) is
// untouched.
func expE23() Experiment {
	return Experiment{
		ID:    "E23",
		Title: "Substrate ablation: sampler cost over finger-routed vs successor-only rings (Theorem 7)",
		Claim: "per-sample cost = O(t_h + log n): linear-routing substrates pay their t_h, uniformity is unaffected",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E23",
				Title:   "Per-sample hops: O(log n) routing versus Theta(n/r) routing",
				Claim:   "cost tracks the substrate's t_h; both substrates sample correctly",
				Columns: []string{"n", "finger_hops", "succOnly_hops", "ratio", "succOnly/(n/r)"},
			}
			ns := sweep(cfg.Quick, 64, 256, 1024, 2048)
			samples := 150
			if cfg.Quick {
				samples = 60
			}
			const r = 8 // successor-list length
			for _, n := range ns {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x2323, uint64(n)))
				rg, err := ring.Generate(rng, n)
				if err != nil {
					return nil, err
				}
				perSample := func(disableFingers bool) (float64, error) {
					net, err := chord.BuildStatic(chord.Config{
						SuccListLen:    r,
						MaxLookupHops:  4 * n,
						DisableFingers: disableFingers,
					}, simnet.NewDirect(), rg.Points())
					if err != nil {
						return 0, err
					}
					d, err := net.AsDHT(rg.At(0))
					if err != nil {
						return 0, err
					}
					s, err := core.New(d, d.Self(), rng, core.Config{})
					if err != nil {
						return 0, err
					}
					before := d.Meter().Snapshot()
					for i := 0; i < samples; i++ {
						if _, err := s.Sample(); err != nil {
							return 0, err
						}
					}
					cost := d.Meter().Snapshot().Sub(before)
					return float64(cost.Calls) / float64(samples), nil
				}
				fingerHops, err := perSample(false)
				if err != nil {
					return nil, err
				}
				succHops, err := perSample(true)
				if err != nil {
					return nil, err
				}
				if err := t.AddRow(
					fmtI(n), fmtF(fingerHops), fmtF(succHops),
					fmtF(succHops/fingerHops),
					fmtF(succHops/(float64(n)/r)),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("successor-only routing resolves h by hopping %d peers at a time: t_h = Theta(n/r) dominates the cost as n grows", r)
			t.AddNote("the walk term (6 ln n' next-steps per trial) is identical on both substrates; only the h term differs, exactly as the O(t_h + log n) bound predicts")
			return t, nil
		},
	}
}

// expE24 is the substrate matrix: the same sampler, seeds and peer
// placements over every backend the facade offers (oracle, Chord,
// Kademlia). Uniformity must be substrate-invariant — the sampler sees
// only h and next — while the per-lookup t_h/m_h distributions expose
// each overlay's routing geometry: binary-search costs on the oracle,
// finger hops on Chord, alpha-parallel XOR waves plus an O(1) ring
// verification on Kademlia. Backends are enumerated via
// randompeer.Backends(), so new substrates join the table (and its
// uniformity gate) automatically.
func expE24() Experiment {
	return Experiment{
		ID:    "E24",
		Title: "Substrate matrix: uniformity and lookup costs over oracle, Chord and Kademlia",
		Claim: "uniformity is substrate-invariant; per-sample cost is O(t_h + log n) with each overlay's own t_h and m_h",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E24",
				Title:   "Per-lookup and per-sample costs by DHT substrate",
				Claim:   "the sampler runs unmodified over any (h, next) DHT; only costs change",
				Columns: []string{"backend", "n", "h_rpc_mean", "h_rpc_max", "h_msg_mean", "next_rpc", "sample_rpc", "chi2_p"},
			}
			ns := []int{256, 1024}
			lookups, chiSamples := 150, 2048
			if !cfg.Quick {
				ns = []int{1024, 4096, 16384}
				lookups, chiSamples = 400, 8192
			}
			backends := randompeer.Backends()
			type row struct{ cells []string }
			rows := make([]row, len(ns)*len(backends))
			err := forEach(cfg.workerCount(), len(rows), func(idx int) error {
				n := ns[idx/len(backends)]
				backend := backends[idx%len(backends)]
				// One seed per n, shared by every backend: identical
				// placements, lookup targets and sampler streams, so a
				// backend resolving ownership differently shows up as a
				// diverging row, not as noise.
				seed := cfg.Seed ^ uint64(n)<<8
				tb, err := randompeer.New(
					randompeer.WithPeers(n),
					randompeer.WithSeed(cfg.Seed^uint64(n)), // same placement for every backend
					randompeer.WithBackend(backend),
				)
				if err != nil {
					return err
				}
				d := tb.DHT()
				rng := rand.New(rand.NewPCG(seed, seed^0x24))
				// Per-lookup t_h (RPC round trips) and m_h (messages).
				hRPC := make([]float64, lookups)
				hMsg := make([]float64, lookups)
				for i := range hRPC {
					before := d.Meter().Snapshot()
					if _, err := d.H(ring.Point(rng.Uint64())); err != nil {
						return err
					}
					cost := d.Meter().Snapshot().Sub(before)
					hRPC[i] = float64(cost.Calls)
					hMsg[i] = float64(cost.Messages)
				}
				// Per-next cost (one pointer chase).
				p, err := d.H(ring.Point(rng.Uint64()))
				if err != nil {
					return err
				}
				before := d.Meter().Snapshot()
				const nextSteps = 64
				for i := 0; i < nextSteps; i++ {
					if p, err = d.Next(p); err != nil {
						return err
					}
				}
				nextRPC := float64(d.Meter().Snapshot().Sub(before).Calls) / nextSteps
				// Sampler cost and uniformity with identical seeds.
				s, err := tb.UniformSampler(seed + 1)
				if err != nil {
					return err
				}
				tally := make([]int64, tb.Size())
				before = d.Meter().Snapshot()
				for i := 0; i < chiSamples; i++ {
					peer, err := s.Sample()
					if err != nil {
						return err
					}
					tally[peer.Owner]++
				}
				sampleRPC := float64(d.Meter().Snapshot().Sub(before).Calls) / float64(chiSamples)
				_, pvalue, err := stats.ChiSquareUniform(tally)
				if err != nil {
					return err
				}
				hs := stats.Summarize(hRPC)
				ms := stats.Summarize(hMsg)
				rows[idx] = row{cells: []string{
					backend.String(), fmtI(n),
					fmtF(hs.Mean), fmtF(hs.Max), fmtF(ms.Mean),
					fmtF(nextRPC), fmtF(sampleRPC),
					fmt.Sprintf("%.4f", pvalue),
				}}
				return nil
			})
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if err := t.AddRow(r.cells...); err != nil {
					return nil, err
				}
			}
			t.AddNote("placements, lookup targets and sampler seeds are shared per n, so every backend draws the identical sample sequence: chi2_p must be equal across backends at each n (>= 0.05 is consistent with uniform)")
			t.AddNote("kademlia h = iterative FIND_NODE (alpha=3, k=16) + O(1) ring verification; chord h = finger hops; oracle h = synthetic ceil(log2 n)")
			return t, nil
		},
	}
}
