package exp

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"slices"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/churn"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// ScaleResult is one E27 scenario outcome: the overlay built at n,
// asynchronous churn run concurrent with sampler processes on the
// event kernel, and post-churn owner probes. Wall durations are
// measured, not simulated.
type ScaleResult struct {
	Backend      string
	Peers        int
	BuildWall    time.Duration
	RunWall      time.Duration
	KernelEvents uint64
	ChurnEvents  int
	StepErrors   int
	SamplesOK    int
	EstErrs      int
	SampleErrs   int
	OwnerMatches int
	OwnerProbes  int
	Virtual      time.Duration
}

// scaleSamplers is the number of concurrent sampler processes a scale
// scenario runs beside the churn stream.
const scaleSamplers = 4

// RunScaleScenario executes the E27 scenario once: build the backend
// ("chord" or "kademlia") at n over a kernel-bound transport with the
// given latency model, run `events` asynchronous churn events
// (exponential gaps of mean `gap`) concurrent in virtual time with
// sampler processes, then probe `probes` random keys through the
// overlay against the clockwise successor over the true membership.
// Maintenance sweeps are disabled: a global sweep visits every member,
// which is exactly the kind of O(n)-per-tick machinery a million-peer
// scenario cannot afford, so repair comes only from the local splices
// joins and crashes perform — the owner-match rate quantifies the
// residual damage. Both the E27 experiment table and cmd/benchsnap's
// committed `e27` section are produced by this one function.
func RunScaleScenario(backend string, n, events, probes int, gap time.Duration, model sim.Model, seed uint64) (*ScaleResult, error) {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	r, err := ring.Generate(rng, n)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel(seed)
	tr := sim.NewTransport(
		sim.WithKernel(k),
		sim.WithModel(model),
		sim.WithStreamSeed(seed+2),
	)
	buildStart := time.Now()
	var ov churn.Overlay
	var d churnDHT
	switch backend {
	case "chord":
		net, err := chord.BuildStatic(chord.Config{}, tr, r.Points())
		if err != nil {
			return nil, err
		}
		dd, err := net.AsDHT(r.At(0))
		if err != nil {
			return nil, err
		}
		ov, d = churn.Chord(net), dd
	case "kademlia":
		net, err := kademlia.BuildStatic(kademlia.Config{}, tr, r.Points())
		if err != nil {
			return nil, err
		}
		dd, err := net.AsDHT(r.At(0))
		if err != nil {
			return nil, err
		}
		ov, d = churn.Kademlia(net), dd
	default:
		return nil, fmt.Errorf("exp: unknown scale backend %q", backend)
	}
	buildWall := time.Since(buildStart)
	caller := r.At(0)
	driver, err := churn.NewDriver(ov, rand.New(rand.NewPCG(seed+3, seed+4)), churn.Config{
		Events:    events,
		Protected: map[ring.Point]bool{caller: true},
	})
	if err != nil {
		return nil, err
	}
	run, err := driver.Schedule(k, churn.AsyncConfig{
		MeanInterval: gap,
		// MaintenanceInterval 0: global sweeps disabled (see above).
	}, nil)
	if err != nil {
		return nil, err
	}
	res := &ScaleResult{Backend: backend, Peers: n, BuildWall: buildWall, OwnerProbes: probes}
	for w := 0; w < scaleSamplers; w++ {
		srng := rand.New(rand.NewPCG(seed+5+uint64(w), seed+6))
		k.Go("sampler", func() {
			for !run.Done() {
				s, err := core.New(d, d.Self(), srng, core.Config{})
				if err != nil {
					res.EstErrs++
					if k.Sleep(time.Millisecond) != nil {
						return
					}
					continue
				}
				if _, err := s.Sample(); err != nil {
					res.SampleErrs++
				} else {
					res.SamplesOK++
				}
			}
		})
	}
	runStart := time.Now()
	k.Run()
	res.RunWall = time.Since(runStart)
	res.KernelEvents = k.Processed()
	res.Virtual = k.Now()
	res.ChurnEvents = len(run.Events)
	res.StepErrors = run.StepErrors
	// Post-churn correctness probe, no repair: resolve random keys
	// through the overlay and compare against the clockwise successor
	// over the true live membership.
	members := ov.Members()
	prng := rand.New(rand.NewPCG(seed+99, seed+100))
	for i := 0; i < probes; i++ {
		x := ring.Point(prng.Uint64())
		p, err := d.H(x)
		if err != nil {
			continue
		}
		j, found := slices.BinarySearch(members, x)
		if !found && j == len(members) {
			j = 0
		}
		if p.Point == members[j] {
			res.OwnerMatches++
		}
	}
	return res, nil
}

// Survived reports whether the scenario completed usefully: churn
// executed, samplers kept drawing, and post-churn owner probes
// resolved.
func (r *ScaleResult) Survived() bool {
	return r.ChurnEvents > 0 && r.SamplesOK > 0 && r.OwnerMatches > 0
}

// OwnerMatchPct is the post-churn owner-probe match rate in percent.
func (r *ScaleResult) OwnerMatchPct() float64 {
	if r.OwnerProbes == 0 {
		return 0
	}
	return 100 * float64(r.OwnerMatches) / float64(r.OwnerProbes)
}

// StorageScaleResult is one E30 measurement: the overlay built at n on
// the flat index-based storage, with the steady-state heap cost and
// arena occupancy recorded around the build. BytesPerNode is the
// GC-settled heap growth attributable to the overlay (membership
// snapshot included, the pre-generated ring excluded), the number the
// 10M-peer capacity projection multiplies.
type StorageScaleResult struct {
	Backend      string
	Peers        int
	BuildWall    time.Duration
	HeapDelta    uint64 // GC-settled heap growth across the build, bytes
	HeapAfter    uint64 // total live heap after the build, bytes
	SysAfter     uint64 // bytes obtained from the OS (runtime.MemStats.Sys)
	Slots        int    // arena slots (one per node ever seen)
	FreeSlots    int
	ProbesOK     int // successor probes that matched the sorted ring
	Probes       int
	BytesPerNode float64
}

// RunStorageScale builds one backend at n over the Direct transport and
// measures what the flat storage actually costs: GC-settled heap bytes
// per node, build wall time on however many cores the machine has, and
// the slot-arena occupancy. A handful of successor probes check the
// built overlay against the sorted ring, so a layout bug cannot hide
// behind a fast build. Both the E30 experiment table and cmd/benchsnap's
// committed `mem` section are produced by this one function.
func RunStorageScale(backend string, n, probes int, seed uint64) (*StorageScaleResult, error) {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	r, err := ring.Generate(rng, n)
	if err != nil {
		return nil, err
	}
	points := r.Points()
	res := &StorageScaleResult{Backend: backend, Peers: n, Probes: probes}
	// Settle the heap so the delta measures the overlay, not garbage
	// left over from ring generation.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var succAt func(p ring.Point) (ring.Point, error)
	var stats func() (slots, free int)
	switch backend {
	case "chord":
		net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), points)
		if err != nil {
			return nil, err
		}
		res.BuildWall = time.Since(start)
		succAt = func(p ring.Point) (ring.Point, error) {
			nd, err := net.Node(p)
			if err != nil {
				return 0, err
			}
			return nd.Successor(), nil
		}
		stats = func() (int, int) {
			s := net.StorageStats()
			return s.Slots, s.Free
		}
	case "kademlia":
		net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points)
		if err != nil {
			return nil, err
		}
		res.BuildWall = time.Since(start)
		succAt = func(p ring.Point) (ring.Point, error) {
			nd, err := net.Node(p)
			if err != nil {
				return 0, err
			}
			return nd.Successor(), nil
		}
		stats = func() (int, int) {
			s := net.StorageStats()
			return s.Slots, s.Free
		}
	default:
		return nil, fmt.Errorf("exp: unknown storage backend %q", backend)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		res.HeapDelta = after.HeapAlloc - before.HeapAlloc
	}
	res.HeapAfter = after.HeapAlloc
	res.SysAfter = after.Sys
	res.BytesPerNode = float64(res.HeapDelta) / float64(n)
	res.Slots, res.FreeSlots = stats()
	prng := rand.New(rand.NewPCG(seed+7, seed+8))
	for i := 0; i < probes; i++ {
		j := prng.IntN(n)
		succ, err := succAt(points[j])
		if err != nil {
			continue
		}
		if succ == points[(j+1)%n] {
			res.ProbesOK++
		}
	}
	return res, nil
}

// expE30 is the flat-storage scale experiment, E27's capacity
// counterpart: where E27 asks how much scenario (churn + sampling) the
// machinery sustains at large n, E30 asks how large n itself can get —
// it builds each backend above E27's sizes on the index-based slot
// arenas and records the measured bytes per node and build wall time
// that the 10M-peer projection in DESIGN.md extrapolates from.
func expE30() Experiment {
	return Experiment{
		ID:    "E30",
		Title: "Flat storage scale: bytes/node and build wall time above E27's sizes",
		Claim: "index-based arenas hold a chord peer in a few hundred bytes, putting 10M-peer rings in a few GB with sub-minute builds",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E30",
				Title:   "Flat storage scale: heap bytes/node and bulk build time (GC-settled)",
				Claim:   "per-node storage is flat and small: capacity scales linearly in n with no per-node heap objects",
				Columns: []string{"backend", "n", "build_s", "peers/s", "bytes/node", "heap_MB", "slots", "probesOK"},
			}
			chordN, kadN, probes := 1<<22, 1<<19, 200
			if cfg.Quick {
				chordN, kadN, probes = 1<<15, 1<<13, 60
			}
			for _, sc := range []struct {
				name string
				n    int
			}{{"chord", chordN}, {"kademlia", kadN}} {
				seed := cfg.Seed ^ 0x30 ^ uint64(sc.n)
				res, err := RunStorageScale(sc.name, sc.n, probes, seed)
				if err != nil {
					return nil, err
				}
				if err := t.AddRow(
					res.Backend, fmtI(res.Peers),
					fmtF(res.BuildWall.Seconds()),
					fmtF(float64(res.Peers)/res.BuildWall.Seconds()),
					fmtF(res.BytesPerNode),
					fmtF(float64(res.HeapDelta)/(1<<20)),
					fmtI(res.Slots), fmtI(res.ProbesOK),
				); err != nil {
					return nil, err
				}
				if res.ProbesOK != res.Probes {
					t.AddNote("%s n=%d: only %d/%d successor probes matched the sorted ring", res.Backend, res.Peers, res.ProbesOK, res.Probes)
				}
			}
			t.AddNote("bytes/node is the GC-settled heap growth across the build (membership snapshot included, the pre-generated ring excluded)")
			t.AddNote("kademlia carries its k-buckets in a shared region pool: ~log2(n) regions of 1+k+4 words per node, so its per-node cost grows with log n while chord's stays constant")
			t.AddNote("wall times are measured on this machine (%d cores); the committed BENCH trajectory records the same numbers via cmd/benchsnap's mem section", runtime.GOMAXPROCS(0))
			return t, nil
		},
	}
}

// expE27 is the scenario-scale experiment: each backend is built at the
// largest n the machinery comfortably sustains, then runs asynchronous
// churn concurrent — in virtual time — with sampler processes, under a
// latency model, on the discrete-event kernel (see RunScaleScenario).
// It exercises the whole scenario stack at once: bulk parallel
// construction, incremental membership snapshots under churn, and the
// kernel's run-to-completion event loop.
func expE27() Experiment {
	return Experiment{
		ID:    "E27",
		Title: "Scenario scale: churn + latency at the largest feasible n per backend (kernel-driven)",
		Claim: "million-peer scenarios build in seconds and sustain concurrent churn + sampling on the event kernel",
		Run: func(cfg RunConfig) (*Table, error) {
			model, err := cfg.LatencyModel()
			if err != nil {
				return nil, err
			}
			t := &Table{
				ID:      "E27",
				Title:   "Scenario scale: async churn + concurrent sampling at large n (model " + model.Name() + ")",
				Claim:   "the scenario machinery, not the overlay, bounds feasible n; sampling degrades gracefully with repair disabled",
				Columns: []string{"backend", "n", "events", "stepErrs", "samplesOK", "estErrs", "sampleErrs", "ownerMatch%", "vtime_ms"},
			}
			chordN, kadN, events, probes := 1<<20, 1<<17, 48, 200
			gap := 25 * time.Millisecond
			if cfg.Quick {
				chordN, kadN, events, probes = 1<<13, 1<<12, 12, 60
				gap = 10 * time.Millisecond
			}
			// The sweep points are too heavy to run concurrently (each
			// holds a full overlay); run them sequentially regardless of
			// the worker budget.
			for _, sc := range []struct {
				name string
				n    int
			}{{"chord", chordN}, {"kademlia", kadN}} {
				seed := cfg.Seed ^ 0x27 ^ uint64(sc.n)
				res, err := RunScaleScenario(sc.name, sc.n, events, probes, gap, model, seed)
				if err != nil {
					return nil, err
				}
				if err := t.AddRow(
					res.Backend, fmtI(res.Peers),
					fmtI(res.ChurnEvents), fmtI(res.StepErrors),
					fmtI(res.SamplesOK), fmtI(res.EstErrs), fmtI(res.SampleErrs),
					fmtF(res.OwnerMatchPct()),
					fmtF(float64(res.Virtual)/float64(time.Millisecond)),
				); err != nil {
					return nil, err
				}
				t.AddNote("%s n=%d: built in %.2fs (parallel shards), kernel ran %d events in %.2fs wall (%.0f events/sec)",
					res.Backend, res.Peers, res.BuildWall.Seconds(), res.KernelEvents, res.RunWall.Seconds(),
					float64(res.KernelEvents)/res.RunWall.Seconds())
			}
			t.AddNote("maintenance sweeps disabled: repair is only the local splicing of joins/crashes; ownerMatch%% measures the residual damage a global sweep would have healed")
			t.AddNote("%d sampler processes draw concurrently with the churn stream in virtual time; wall times are measured, not simulated, and vary by machine", scaleSamplers)
			return t, nil
		},
	}
}
