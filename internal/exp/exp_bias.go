package exp

import (
	"math"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// expE8 measures the naive heuristic's bias exactly (no sampling noise):
// the most likely peer is Theta(n log n) more likely than the least.
func expE8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Bias of the naive heuristic h(random x) (Section 1)",
		Claim: "max/min selection probability ratio is Theta(n log n)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E8",
				Title:   "Exact naive-selection bias ratio versus n",
				Claim:   "bias ratio grows as Theta(n log n)",
				Columns: []string{"n", "seeds", "maxProb*n", "minProb*n", "biasRatio", "ratio/(n ln n)"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096, 16384, 65536)
			seedCount := 10
			if cfg.Quick {
				seedCount = 3
			}
			var nsInt []int
			var ratios []float64
			for _, n := range ns {
				rings, err := ringSeeds(cfg.Seed^0xaa, n, seedCount)
				if err != nil {
					return nil, err
				}
				var maxPn, minPn, ratio, ratioNorm float64
				for _, r := range rings {
					probs, err := core.NaiveDistribution(r)
					if err != nil {
						return nil, err
					}
					minP, maxP := math.Inf(1), 0.0
					for _, p := range probs {
						minP = math.Min(minP, p)
						maxP = math.Max(maxP, p)
					}
					nf := float64(n)
					maxPn += maxP * nf
					minPn += minP * nf
					ratio += maxP / minP
					ratioNorm += (maxP / minP) / (nf * math.Log(nf))
				}
				s := float64(seedCount)
				nsInt = append(nsInt, n)
				ratios = append(ratios, ratio/s)
				if err := t.AddRow(
					fmtI(n), fmtI(seedCount), fmtF(maxPn/s), fmtF(minPn/s),
					fmtF(ratio/s), fmtF(ratioNorm/s),
				); err != nil {
					return nil, err
				}
			}
			logRatioNote(t, "bias ratio", nsInt, ratios)
			t.AddNote("paper: longest arc Theta(log n/n), shortest Theta(1/n^2) -> ratio Theta(n log n)")
			return t, nil
		},
	}
}

// expE9 is the accuracy figure: total-variation distance from uniform
// versus number of samples, for every sampler.
func expE9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Sampling accuracy versus sample count (figure series)",
		Claim: "King-Saia's TVD falls as sampling noise 1/sqrt(k); biased samplers plateau at their bias floor",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E9",
				Title:   "TVD from uniform versus number of samples",
				Claim:   "uniform sampler converges to 0; naive/walk/virtual plateau",
				Columns: []string{"samples", "king-saia", "naive", "walk-log2n", "walk-3log2n", "virtual-naive", "noiseFloor"},
			}
			n := 1024
			sampleCounts := []int{2048, 8192, 32768, 131072}
			if cfg.Quick {
				n = 256
				sampleCounts = []int{1024, 4096, 16384}
			}
			rng := rand.New(rand.NewPCG(cfg.Seed^0xbb, uint64(n)))
			r, err := ring.Generate(rng, n)
			if err != nil {
				return nil, err
			}
			o := dht.NewOracle(r)
			biasFloor, err := naiveDistributionTVD(r)
			if err != nil {
				return nil, err
			}
			logN := int(math.Log2(float64(n)))
			virt, err := dht.NewVirtualOracle(rng, n, logN)
			if err != nil {
				return nil, err
			}
			ks, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
			if err != nil {
				return nil, err
			}
			graph := baseline.NewOracleGraph(o)
			w1, err := baseline.NewWalk(o, graph, o.PeerByIndex(0), logN, rng)
			if err != nil {
				return nil, err
			}
			w3, err := baseline.NewWalk(o, graph, o.PeerByIndex(0), 3*logN, rng)
			if err != nil {
				return nil, err
			}
			samplers := []dht.Sampler{
				ks,
				baseline.NewNaive(o, rng),
				w1,
				w3,
				baseline.NewVirtualNaive(virt, rng),
			}
			for _, k := range sampleCounts {
				row := make([]string, 0, len(samplers)+2)
				row = append(row, fmtI(k))
				for _, s := range samplers {
					counts, err := sampleCounts2(s, n, k)
					if err != nil {
						return nil, err
					}
					tvd, err := stats.TotalVariationUniform(counts)
					if err != nil {
						return nil, err
					}
					row = append(row, fmtF(tvd))
				}
				// The expected TVD of k perfect uniform draws over n bins
				// (finite-sample noise floor): ~sqrt(n/(2*pi*k)).
				row = append(row, fmtF(math.Sqrt(float64(n)/(2*math.Pi*float64(k)))))
				if err := t.AddRow(row...); err != nil {
					return nil, err
				}
			}
			t.AddNote("n = %d; king-saia should track the noise floor, biased samplers flatten above it", n)
			t.AddNote("exact naive bias floor (TVD of the arc distribution, no sampling noise): %.4f", biasFloor)
			return t, nil
		},
	}
}

// sampleCounts2 draws k samples and tallies owners (the exp_uniformity
// helper is reused where the owner count differs from the point count).
func sampleCounts2(s dht.Sampler, owners, k int) ([]int64, error) {
	return sampleCounts(s, owners, k)
}

// naiveDistributionTVD computes the exact TVD of the naive heuristic on
// a ring (its bias floor, with no sampling noise).
func naiveDistributionTVD(r *ring.Ring) (float64, error) {
	probs, err := core.NaiveDistribution(r)
	if err != nil {
		return 0, err
	}
	return stats.TotalVariation(probs)
}
