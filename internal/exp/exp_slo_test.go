package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/sim"
)

// TestSLOScenarioDeterminism pins the E28 scenario runner as a pure
// function of its scenario: two identical invocations must agree on the
// full evaluated report, every recorded window, the vnode comparison
// and all simulation-derived counters — only the wall-clock field may
// differ. This is the end-to-end composition of the per-layer
// determinism tests (kernel trace, load windows, vnode grouping).
func TestSLOScenarioDeterminism(t *testing.T) {
	run := func() *SLOResult {
		sc := DefaultSLOScenario("chord", true, sim.Constant{RTT: time.Millisecond}, 11)
		res, err := RunSLOScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		res.RunWall = 0 // measured, not simulated
		return res
	}
	a, b := run(), run()
	if a.Virtual != b.Virtual || a.KernelEvents != b.KernelEvents ||
		a.Completed != b.Completed || a.Failed != b.Failed ||
		a.ChurnEvents != b.ChurnEvents || a.StepErrors != b.StepErrors ||
		a.Refreshes != b.Refreshes || a.RefreshErrs != b.RefreshErrs {
		t.Fatalf("scenario counters not deterministic:\n a=%+v\n b=%+v", a, b)
	}
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Fatalf("reports differ:\n a=%+v\n b=%+v", a.Report, b.Report)
	}
	if !reflect.DeepEqual(a.Windows, b.Windows) {
		t.Fatalf("window series differ:\n a=%+v\n b=%+v", a.Windows, b.Windows)
	}
	if a.VnodeOff != b.VnodeOff || a.VnodeOn != b.VnodeOn {
		t.Fatalf("vnode comparison differs: %+v/%+v vs %+v/%+v", a.VnodeOff, a.VnodeOn, b.VnodeOff, b.VnodeOn)
	}
}

// TestSLOScenarioReportShape sanity-checks one quick run end to end:
// the workload completes, the recorder cut multiple windows, the
// overall quantiles are ordered, and the markdown artifact carries the
// sections CI uploads.
func TestSLOScenarioReportShape(t *testing.T) {
	sc := DefaultSLOScenario("chord", true, sim.Constant{RTT: time.Millisecond}, 3)
	res, err := RunSLOScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Completed + res.Failed; got != int64(sc.Requests) {
		t.Fatalf("completed %d + failed %d != requests %d", res.Completed, res.Failed, sc.Requests)
	}
	if len(res.Windows) < 2 {
		t.Fatalf("only %d windows; want the horizon split into several", len(res.Windows))
	}
	p50, p99 := res.OverallQuantile(0.50), res.OverallQuantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles out of order: p50=%v p99=%v", p50, p99)
	}
	var md bytes.Buffer
	if err := res.WriteMarkdownReport(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"E28 SLO report", "availability", "| window |", "Vnode load variance", "vnodes off", "vnodes on"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}
