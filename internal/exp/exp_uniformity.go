package exp

import (
	"context"
	"fmt"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/engine"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// expE1 verifies Theorem 6 two ways: exactly, via the assignment
// analyzer (per-peer measure == lambda up to integer rounding), and
// empirically, via a chi-square test over sampler draws.
func expE1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Uniformity of Choose Random Peer (Theorem 6)",
		Claim: "every peer is chosen with probability exactly 1/n",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E1",
				Title:   "Uniformity of Choose Random Peer",
				Claim:   "per-peer assigned measure is exactly lambda; empirical draws pass chi-square",
				Columns: []string{"n", "lambda(units)", "maxSteps", "maxDev(units)", "relDev", "successProb", "chi2_p"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096, 16384)
			samplesPerPeer := 40
			if cfg.Quick {
				samplesPerPeer = 20
			}
			// Sweep points are independent (each seeds its own PCG from
			// (Seed, n)) and the empirical draws run through the batch
			// engine, whose per-block forks make the tally a pure
			// function of the seed — so the table is identical at any
			// worker count. The worker budget is split between the two
			// levels (outer sweep points times inner engine workers
			// stays within cfg.Workers), not multiplied.
			rows := make([][]string, len(ns))
			outer := min(cfg.workerCount(), len(ns))
			inner := max(1, cfg.workerCount()/outer)
			if err := forEach(outer, len(ns), func(i int) error {
				n := ns[i]
				rng := rand.New(rand.NewPCG(cfg.Seed, uint64(n)))
				r, err := ring.Generate(rng, n)
				if err != nil {
					return err
				}
				params, err := core.DeriveParams(float64(n), 1, 6)
				if err != nil {
					return err
				}
				a, err := core.Analyze(r, params.Lambda, params.MaxSteps)
				if err != nil {
					return err
				}
				o := dht.NewOracle(r)
				s, err := core.NewWithParams(o, rng, params, core.Config{})
				if err != nil {
					return err
				}
				res, err := engine.SampleN(context.Background(), s, samplesPerPeer*n, engine.Config{
					Workers:   inner,
					Seed:      cfg.Seed ^ uint64(n),
					Owners:    o.Owners(),
					TallyOnly: true,
				})
				if err != nil {
					return err
				}
				_, pvalue, err := stats.ChiSquareUniform(res.Tally)
				if err != nil {
					return err
				}
				relDev := float64(a.MaxDeviation) / float64(params.Lambda)
				rows[i] = []string{
					fmtI(n), fmtU(params.Lambda), fmtI(params.MaxSteps),
					fmtU(a.MaxDeviation), fmtF(relDev), fmtF(a.SuccessProbability), fmtF(pvalue),
				}
				return nil
			}); err != nil {
				return nil, err
			}
			for _, row := range rows {
				if err := t.AddRow(row...); err != nil {
					return nil, err
				}
			}
			t.AddNote("paper: measure per peer exactly lambda (Thm 6); measured relDev is integer-rounding only")
			return t, nil
		},
	}
}

// expE17 isolates the integer-keyspace rounding error of the exact-
// lambda identity across n and walk bounds.
func expE17() Experiment {
	return Experiment{
		ID:    "E17",
		Title: "Integer keyspace rounding of the exact-lambda identity",
		Claim: "deviation from exact lambda is a few units out of ~2^64/(7n)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E17",
				Title:   "Rounding error of integer lambda",
				Claim:   "max |measure - lambda| stays bounded by the walk step count",
				Columns: []string{"n", "maxSteps", "lambda(units)", "maxDev(units)", "relDev", "unassignedFrac"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096, 16384, 65536)
			// Each sweep point seeds its own generator, so the analyzer
			// runs are spread over cfg workers with deterministic rows.
			rows := make([][][]string, len(ns))
			if err := forEach(cfg.workerCount(), len(ns), func(i int) error {
				n := ns[i]
				rng := rand.New(rand.NewPCG(cfg.Seed^0x11, uint64(n)))
				r, err := ring.Generate(rng, n)
				if err != nil {
					return err
				}
				params, err := core.DeriveParams(float64(n), 1, 6)
				if err != nil {
					return err
				}
				for _, steps := range []int{params.MaxSteps, 2 * params.MaxSteps} {
					a, err := core.Analyze(r, params.Lambda, steps)
					if err != nil {
						return err
					}
					rows[i] = append(rows[i], []string{
						fmtI(n), fmtI(steps), fmtU(params.Lambda), fmtU(a.MaxDeviation),
						fmtF(float64(a.MaxDeviation) / float64(params.Lambda)),
						fmtF(1 - a.SuccessProbability),
					})
				}
				return nil
			}); err != nil {
				return nil, err
			}
			for _, group := range rows {
				for _, row := range group {
					if err := t.AddRow(row...); err != nil {
						return nil, err
					}
				}
			}
			t.AddNote("substitution: real-valued circle -> 2^64-unit integer circle (DESIGN.md section 2)")
			return t, nil
		},
	}
}

// expE21 closes the loop on Theorem 6: E1 verifies exactness for a
// perfect size estimate; here every caller derives its own lambda from
// its own Estimate n run (the deployed configuration), and the analyzer
// verifies the per-caller partition is still exactly lambda-per-peer.
// The theorem guarantees exactly this: uniformity holds for any lambda
// <= 1/(7n), with only the trial success probability varying.
func expE21() Experiment {
	return Experiment{
		ID:    "E21",
		Title: "End-to-end uniformity with per-caller estimated parameters",
		Claim: "exactness is independent of the estimate: every caller's partition assigns exactly its lambda",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E21",
				Title:   "Per-caller exactness under real Estimate n runs",
				Claim:   "max relative deviation stays at integer rounding for every caller's lambda",
				Columns: []string{"n", "callers", "minNHatRatio", "maxNHatRatio", "worstRelDev", "minSuccess", "maxSuccess"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096)
			callers := 8
			rows := make([][]string, len(ns))
			if err := forEach(cfg.workerCount(), len(ns), func(i int) error {
				n := ns[i]
				rng := rand.New(rand.NewPCG(cfg.Seed^0x2121, uint64(n)))
				r, err := ring.Generate(rng, n)
				if err != nil {
					return err
				}
				o := dht.NewOracle(r)
				minRatio, maxRatio := 1e18, 0.0
				minSucc, maxSucc := 1.0, 0.0
				worstRel := 0.0
				for c := 0; c < callers; c++ {
					est, err := core.EstimateN(o, o.PeerByIndex(c*(n/callers)), 2)
					if err != nil {
						return err
					}
					params, err := core.DeriveParams(est.NHat, 2.0/7.0, 6)
					if err != nil {
						return err
					}
					a, err := core.Analyze(r, params.Lambda, params.MaxSteps)
					if err != nil {
						return err
					}
					ratio := est.NHat / float64(n)
					if ratio < minRatio {
						minRatio = ratio
					}
					if ratio > maxRatio {
						maxRatio = ratio
					}
					if rel := float64(a.MaxDeviation) / float64(params.Lambda); rel > worstRel {
						worstRel = rel
					}
					if a.SuccessProbability < minSucc {
						minSucc = a.SuccessProbability
					}
					if a.SuccessProbability > maxSucc {
						maxSucc = a.SuccessProbability
					}
				}
				rows[i] = []string{
					fmtI(n), fmtI(callers), fmtF(minRatio), fmtF(maxRatio),
					fmtF(worstRel), fmtF(minSucc), fmtF(maxSucc),
				}
				return nil
			}); err != nil {
				return nil, err
			}
			for _, row := range rows {
				if err := t.AddRow(row...); err != nil {
					return nil, err
				}
			}
			t.AddNote("underestimates raise the per-trial success probability, overestimates lower it; neither perturbs exactness")
			return t, nil
		},
	}
}

// sampleCounts draws k samples from a sampler and tallies by owner.
func sampleCounts(s dht.Sampler, owners, k int) ([]int64, error) {
	counts := make([]int64, owners)
	for i := 0; i < k; i++ {
		p, err := s.Sample()
		if err != nil {
			return nil, fmt.Errorf("exp: drawing sample %d from %s: %w", i, s.Name(), err)
		}
		if p.Owner < 0 || p.Owner >= owners {
			return nil, fmt.Errorf("exp: sampler %s returned owner %d outside [0, %d)", s.Name(), p.Owner, owners)
		}
		counts[p.Owner]++
	}
	return counts, nil
}
