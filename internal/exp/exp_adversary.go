package exp

import (
	"fmt"

	"github.com/dht-sampling/randompeer"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// expE29 is the adversarial matrix: sampling bias (total-variation
// distance from uniform, with bootstrap CIs) and failure rate versus
// the Byzantine fraction, per overlay backend, for the naive h(x)
// sampler, the paper's uniform sampler, and the PeerSwap-style
// swap-audit mitigation — plus the eclipse capture each overlay
// concedes at the same fractions. Everything is a pure function of the
// run seed: coalition selection and every per-call lie are splitmix
// hashes, so the table is bit-identical at any GOMAXPROCS.
func expE29() Experiment {
	return Experiment{
		ID:    "E29",
		Title: "Adversarial fault matrix: sampling bias, mitigation and eclipse capture vs Byzantine fraction",
		Claim: "route-bias grows naive-sampler TV with the adversarial fraction on both overlays; swap auditing holds accepted bias near the honest floor at a measured failure-rate price",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E29",
				Title:   "Bias and failure vs adversarial fraction, by backend and sampler",
				Claim:   "TV(naive) rises with the Byzantine fraction; TV(swap) stays below it at 10%+ subversion",
				Columns: []string{"backend", "frac", "sampler", "tv", "tv_lo", "tv_hi", "chi2_p", "fail_rate"},
			}
			// ~60 samples per owner keeps the empirical-TV noise floor
			// (~sqrt(2n/(pi*samples))) near 0.1, well under the attack
			// signal.
			n, samples, boot := 128, 8000, 200
			fracs := []float64{0, 0.05, 0.1, 0.2, 0.3}
			if cfg.Quick {
				n, samples, boot = 64, 600, 100
				fracs = []float64{0, 0.2}
			}
			backends := []randompeer.Backend{randompeer.ChordBackend, randompeer.KademliaBackend}
			const samplersPerCell = 3
			type cellOut struct {
				rows    [][]string
				eclipse float64
			}
			cells := make([]cellOut, len(backends)*len(fracs))
			err := forEach(cfg.workerCount(), len(cells), func(idx int) error {
				backend := backends[idx/len(fracs)]
				frac := fracs[idx%len(fracs)]
				// One placement seed per backend cell; the fraction folds
				// in so coalitions differ across columns of the sweep.
				seed := cfg.Seed ^ 0x2900 ^ uint64(idx+1)<<16
				tb, err := randompeer.New(
					randompeer.WithPeers(n),
					randompeer.WithSeed(cfg.Seed^0x29^uint64(idx/len(fracs))), // same placement across fractions
					randompeer.WithBackend(backend),
				)
				if err != nil {
					return err
				}
				vantages := tb.SwapVantages(2)
				if frac > 0 {
					if _, err := tb.InstallAdversary(fmt.Sprintf("route-bias:%g", frac), seed, vantages...); err != nil {
						return err
					}
				}
				naive := tb.NaiveSampler(seed + 1)
				uniform, err := tb.UniformSampler(seed + 2)
				if err != nil {
					return err
				}
				swap, err := tb.SwapSampler(seed+3, len(vantages))
				if err != nil {
					return err
				}
				out := &cells[idx]
				for _, s := range []randompeer.Sampler{naive, uniform, swap} {
					tally := make([]int64, tb.Size())
					fails := 0
					for i := 0; i < samples; i++ {
						p, err := s.Sample()
						if err != nil {
							fails++
							continue
						}
						tally[p.Owner]++
					}
					rep, err := stats.BiasAgainstUniform(tally, stats.BiasOptions{Bootstrap: boot, Seed: seed + 4})
					if err != nil {
						return fmt.Errorf("E29 %s/%s frac %g: %w", tb.Backend(), s.Name(), frac, err)
					}
					out.rows = append(out.rows, []string{
						tb.Backend().String(), fmtF(frac), s.Name(),
						fmtF(rep.TV), fmtF(rep.TVLo), fmtF(rep.TVHi),
						fmt.Sprintf("%.4f", rep.PValue),
						fmtF(float64(fails) / float64(samples)),
					})
				}
				// Eclipse capture on a fresh testbed (route-bias is still
				// armed on the sampling one): subvert, run maintenance
				// sweeps, measure the victim's captured routing state.
				etb, err := randompeer.New(
					randompeer.WithPeers(n),
					randompeer.WithSeed(cfg.Seed^0x29^uint64(idx/len(fracs))),
					randompeer.WithBackend(backend),
				)
				if err != nil {
					return err
				}
				adv, err := etb.InstallAdversary(fmt.Sprintf("eclipse:%g", frac), seed+5)
				if err != nil {
					return err
				}
				switch backend {
				case randompeer.ChordBackend:
					etb.ChordNetwork().RunMaintenance(6, 8)
				case randompeer.KademliaBackend:
					etb.KademliaNetwork().RunMaintenance(6)
				}
				capture, err := adv.EclipseFraction()
				if err != nil {
					return err
				}
				out.eclipse = capture
				return nil
			})
			if err != nil {
				return nil, err
			}
			for _, c := range cells {
				for _, r := range c.rows {
					if err := t.AddRow(r...); err != nil {
						return nil, err
					}
				}
			}
			for i, c := range cells {
				backend := backends[i/len(fracs)]
				frac := fracs[i%len(fracs)]
				if err := t.AddRow(
					backend.String(), fmtF(frac), "eclipse-capture",
					fmtF(c.eclipse), "-", "-", "-", "-",
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("route-bias steers every subverted chord routing/pointer reply to the coalition's magnet node (key-independent lies concentrate mass, maximizing TV and evading key-split audits), so naive chord TV tracks the subversion probability 1-(1-f)^hops; kademlia's two-phase owner verification (XOR lookup + ring-pointer check) limits the adversary to widest-interval pointer forgeries and bounds the lift")
			t.AddNote("swap = PeerSwap-style cross-audit hardened three ways: the audit vantage resolves a skewed key and conflicts repair to the nearer claim (the true owner is the first node clockwise of the key, so one honest route wins), implausibly wide claims are bisection-probed then capped at one mean arc (catching magnet and widest-interval lies), and fail_rate is the mitigation's price; its floor at high f is the mass of arcs whose predecessor colludes — keys there are honestly unreachable from any vantage")
			t.AddNote("eclipse-capture rows: fraction of the victim's successor/finger entries (chord) or k-bucket contacts (kademlia) pointing at colluders after 6 maintenance sweeps; kademlia's keep-oldest bucket rule resists capture in a static network, chord's stabilize-adopts-replies does not")
			return t, nil
		},
	}
}
