package exp

import (
	"math"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// expE20 reproduces the related-work claim the paper builds on
// (Section 1.2): a standard DHT maps Theta(log n / n) of the key space
// to the unluckiest peer, and virtual nodes (O(log n) points per peer)
// flatten the skew — at the maintenance cost the paper cites as the
// reason not to assume them. The same skew is what biases the naive
// sampler, so this experiment ties the storage-load view to E8.
func expE20() Experiment {
	return Experiment{
		ID:    "E20",
		Title: "Hash-space load: standard DHT versus virtual nodes (related work)",
		Claim: "max key-space share is Theta(log n / n) per peer; virtual nodes flatten it toward 1/n",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E20",
				Title:   "Key-space load imbalance (max owner share x n)",
				Claim:   "plain imbalance grows like ln n; virtual-node imbalance stays near constant",
				Columns: []string{"n", "plainMax*n", "plainMax/(ln n)", "virtMax*n", "virtPoints", "keysMaxImbalance"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096, 16384)
			keysPerPeer := 50
			if cfg.Quick {
				keysPerPeer = 20
			}
			for _, n := range ns {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x2020, uint64(n)))
				r, err := ring.Generate(rng, n)
				if err != nil {
					return nil, err
				}
				// Plain DHT: owner share = arc ending at its point.
				var plainMax float64
				for i := 0; i < n; i++ {
					share := ring.UnitsToFrac(r.Arc(i))
					if share > plainMax {
						plainMax = share
					}
				}
				// Virtual nodes: log2(n) points per owner.
				v := int(math.Log2(float64(n)))
				virt, err := dht.NewVirtualOracle(rng, n, v)
				if err != nil {
					return nil, err
				}
				vr := virt.Ring()
				ownerShare := make([]float64, n)
				for i := 0; i < vr.Len(); i++ {
					ownerShare[virt.PeerByIndex(i).Owner] += ring.UnitsToFrac(vr.Arc(i))
				}
				var virtMax float64
				for _, share := range ownerShare {
					if share > virtMax {
						virtMax = share
					}
				}
				// Empirical check with actual keys on the plain ring.
				counts := make([]int, n)
				for k := 0; k < keysPerPeer*n; k++ {
					counts[r.Successor(ring.Point(rng.Uint64()))]++
				}
				maxKeys := 0
				for _, c := range counts {
					if c > maxKeys {
						maxKeys = c
					}
				}
				nf := float64(n)
				if err := t.AddRow(
					fmtI(n),
					fmtF(plainMax*nf),
					fmtF(plainMax*nf/math.Log(nf)),
					fmtF(virtMax*nf),
					fmtI(v),
					fmtF(float64(maxKeys)/float64(keysPerPeer)),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("plainMax*n tracks ln n (the Theta(log n/n) arc); virtual nodes hold max share near a small constant")
			t.AddNote("this skew is simultaneously the storage imbalance and the naive sampler's bias (E8)")
			return t, nil
		},
	}
}

// expE22 measures the other side of the virtual-nodes trade-off the
// paper cites for *not* assuming them (Section 1.2, quoting [4] and
// [6]): each peer must maintain O(log n) ring positions, multiplying
// the background maintenance bandwidth. Measured on the real Chord
// protocol: messages per maintenance round, per physical peer.
func expE22() Experiment {
	return Experiment{
		ID:    "E22",
		Title: "Maintenance bandwidth: plain Chord versus virtual nodes (related work)",
		Claim: "virtual nodes multiply per-peer maintenance traffic by about the points-per-peer factor",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E22",
				Title:   "Maintenance messages per physical peer per round",
				Claim:   "virtual-node maintenance costs ~v times the plain ring's",
				Columns: []string{"n", "virtPoints", "plainMsgs/peer", "virtMsgs/peer", "ratio"},
			}
			ns := sweep(cfg.Quick, 64, 128, 256)
			const rounds, fingersPerRound = 3, 4
			for _, n := range ns {
				rng := rand.New(rand.NewPCG(cfg.Seed^0x2222, uint64(n)))
				v := int(math.Log2(float64(n)))
				perPeer := func(points int) (float64, error) {
					r, err := ring.Generate(rng, points)
					if err != nil {
						return 0, err
					}
					net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), r.Points())
					if err != nil {
						return 0, err
					}
					before := net.Meter().Snapshot()
					net.RunMaintenance(rounds, fingersPerRound)
					cost := net.Meter().Snapshot().Sub(before)
					return float64(cost.Messages) / float64(n) / rounds, nil
				}
				plain, err := perPeer(n)
				if err != nil {
					return nil, err
				}
				virt, err := perPeer(n * v)
				if err != nil {
					return nil, err
				}
				if err := t.AddRow(
					fmtI(n), fmtI(v), fmtF(plain), fmtF(virt), fmtF(virt/plain),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("each physical peer operates log2(n) virtual ring positions; every position stabilizes and fixes fingers independently")
			t.AddNote("with E20 this completes the trade-off: virtual nodes buy load balance at ~v times the maintenance bandwidth — the paper's stated reason to solve sampling on the plain DHT")
			return t, nil
		},
	}
}
