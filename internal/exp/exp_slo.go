package exp

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/churn"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/load"
	"github.com/dht-sampling/randompeer/internal/loadbalance"
	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/slo"
)

// SLOScenario parameterizes one E28 run: an open-loop sample workload
// against one backend, concurrent with asynchronous churn, recorded in
// virtual-time windows and evaluated against SLO objectives.
type SLOScenario struct {
	Backend       string        // "chord" or "kademlia"
	Peers         int           // overlay size (must divide by VnodesPerHost)
	Requests      int           // open-loop arrivals
	Clients       int           // virtual client population
	ChurnEvents   int           // concurrent join/crash events
	ChurnGap      time.Duration // mean churn gap (0 = spread events over the load horizon)
	MeanGap       time.Duration // mean interarrival gap (offered rate = 1/MeanGap)
	GapSigma      float64       // lognormal interarrival sigma
	ZipfS         float64       // client popularity exponent
	Window        time.Duration // recorder window Δt (virtual)
	Refresh       time.Duration // size-estimate refresh period (0 = 100ms)
	VnodesPerHost int           // vnode-on grouping for the load-variance comparison
	Objectives    slo.Objectives
	Model         sim.Model
	Seed          uint64
}

// SLOResult is one completed scenario: the evaluated report, the
// recorded windows behind it, the vnode load-variance comparison, and
// run metadata. Everything except the wall-clock fields is a
// deterministic function of the scenario (TestSLOScenarioDeterminism).
type SLOResult struct {
	Scenario     SLOScenario
	Report       slo.Report
	Windows      []slo.WindowInput
	VnodeOff     loadbalance.Spread
	VnodeOn      loadbalance.Spread
	Completed    int64
	Failed       int64
	ChurnEvents  int
	StepErrors   int
	Refreshes    int // background size-estimate rebuilds that succeeded
	RefreshErrs  int // background rebuilds that failed (estimate kept stale)
	Virtual      time.Duration
	KernelEvents uint64
	RunWall      time.Duration // measured, not simulated — excluded from determinism
}

// sloMetricKeys are the workload series the scenario extracts from each
// recorder window (the op label is load.Config.Op's default).
const (
	sloKeyOK      = `load_requests_total{op="sample"}`
	sloKeyFailed  = `load_request_failures_total{op="sample"}`
	sloKeyLatency = `load_request_latency_nanoseconds{op="sample"}`
)

// RunSLOScenario executes one E28 scenario: build the backend over a
// kernel-bound transport, schedule churn, run the open-loop workload
// with a windowed recorder, then evaluate the windows against the
// objectives and compare vnode-off/on load spread on the per-owner
// request tally. Both the E28 experiment table and cmd/benchsnap's
// `slo` section call this one function.
func RunSLOScenario(sc SLOScenario) (*SLOResult, error) {
	if sc.VnodesPerHost < 1 {
		sc.VnodesPerHost = 8
	}
	if sc.Peers%sc.VnodesPerHost != 0 {
		return nil, fmt.Errorf("exp: peers %d not divisible by vnodes per host %d", sc.Peers, sc.VnodesPerHost)
	}
	rng := rand.New(rand.NewPCG(sc.Seed, sc.Seed+1))
	r, err := ring.Generate(rng, sc.Peers)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel(sc.Seed)
	tr := sim.NewTransport(
		sim.WithKernel(k),
		sim.WithModel(sc.Model),
		sim.WithStreamSeed(sc.Seed+2),
	)
	var ov churn.Overlay
	var d churnDHT
	switch sc.Backend {
	case "chord":
		net, err := chord.BuildStatic(chord.Config{}, tr, r.Points())
		if err != nil {
			return nil, err
		}
		dd, err := net.AsDHT(r.At(0))
		if err != nil {
			return nil, err
		}
		ov, d = churn.Chord(net), dd
	case "kademlia":
		net, err := kademlia.BuildStatic(kademlia.Config{}, tr, r.Points())
		if err != nil {
			return nil, err
		}
		dd, err := net.AsDHT(r.At(0))
		if err != nil {
			return nil, err
		}
		ov, d = churn.Kademlia(net), dd
	default:
		return nil, fmt.Errorf("exp: unknown SLO backend %q", sc.Backend)
	}
	caller := r.At(0)
	var churnRun *churn.AsyncRun
	if sc.ChurnEvents > 0 {
		driver, err := churn.NewDriver(ov, rand.New(rand.NewPCG(sc.Seed+3, sc.Seed+4)), churn.Config{
			Events:    sc.ChurnEvents,
			Protected: map[ring.Point]bool{caller: true},
		})
		if err != nil {
			return nil, err
		}
		churnGap := sc.ChurnGap
		if churnGap <= 0 {
			// Spread the events across the load horizon so maintenance
			// (which runs only while churn is live) covers the whole
			// request stream, and churn-degraded windows appear
			// throughout rather than as one early cliff.
			churnGap = time.Duration(int64(sc.MeanGap) * int64(sc.Requests) / int64(sc.ChurnEvents+1))
		}
		churnRun, err = driver.Schedule(k, churn.AsyncConfig{
			MeanInterval:        churnGap,
			MaintenanceInterval: 5 * time.Millisecond,
		}, nil)
		if err != nil {
			return nil, err
		}
	}
	// The serving path is production-shaped: the expensive Estimate-n
	// run stays off the request path. One long-lived base sampler is
	// rebuilt by a background refresher process every Refresh of virtual
	// time (and kept stale on a failed rebuild), and each request Forks
	// it — no DHT calls — so a request pays only its own sampling walk.
	base, err := core.New(d, d.Self(), rand.New(rand.NewPCG(sc.Seed+7, sc.Seed+8)), core.Config{})
	if err != nil {
		return nil, err
	}
	refresh := sc.Refresh
	if refresh <= 0 {
		refresh = 100 * time.Millisecond
	}
	res := &SLOResult{Scenario: sc}
	loadDone := false
	k.Go("estimator", func() {
		rng := rand.New(rand.NewPCG(sc.Seed+9, sc.Seed+10))
		for !loadDone {
			if k.Sleep(refresh) != nil {
				return
			}
			if loadDone {
				return
			}
			s, err := core.New(d, d.Self(), rng, core.Config{})
			if err != nil {
				res.RefreshErrs++ // keep serving from the stale estimate
				continue
			}
			base = s
			res.Refreshes++
		}
	})
	reg := obs.NewRegistry()
	var rec *load.Recorder
	run, err := load.Start(k, load.Config{
		Clients:  sc.Clients,
		Requests: sc.Requests,
		MeanGap:  sc.MeanGap,
		GapSigma: sc.GapSigma,
		ZipfS:    sc.ZipfS,
		Seed:     sc.Seed + 5,
		Registry: reg,
		Owners:   sc.Peers,
		// One bounded retry after a short backoff: a sample that dies on
		// a just-crashed node usually succeeds once a maintenance sweep
		// has spliced around it, so the retry converts a failure burst
		// into a latency bump — the tradeoff the windowed report is
		// built to show.
		Do: func(req load.Request) (int, error) {
			var lastErr error
			for attempt := 0; attempt < 2; attempt++ {
				if attempt > 0 {
					if err := k.Sleep(10 * time.Millisecond); err != nil {
						return -1, err
					}
				}
				s, err := base.Fork(req.Rand.Uint64())
				if err != nil {
					return -1, err
				}
				p, err := s.Sample()
				if err == nil {
					return p.Owner, nil
				}
				lastErr = err
			}
			return -1, lastErr
		},
		OnDone: func() {
			loadDone = true
			rec.Flush(k.Now())
		},
	})
	if err != nil {
		return nil, err
	}
	rec = load.StartRecorder(k, reg, sc.Window)
	wallStart := time.Now()
	k.Run()
	res.RunWall = time.Since(wallStart)
	res.Virtual = k.Now()
	res.KernelEvents = k.Processed()
	res.Completed = run.Completed()
	res.Failed = run.Failed()
	if churnRun != nil {
		res.ChurnEvents = len(churnRun.Events)
		res.StepErrors = churnRun.StepErrors
	}
	for _, w := range rec.Windows() {
		in := slo.WindowInput{Start: w.Start, End: w.End}
		if v, ok := w.Delta.Value(sloKeyOK); ok {
			in.OK = int64(v)
		}
		if v, ok := w.Delta.Value(sloKeyFailed); ok {
			in.Failed = int64(v)
		}
		if h, ok := w.Delta.Hist(sloKeyLatency); ok {
			in.Latency = h
		}
		res.Windows = append(res.Windows, in)
	}
	res.Report = slo.Evaluate(sc.Objectives, res.Windows)
	res.VnodeOff, res.VnodeOn, err = loadbalance.VnodeCompare(run.OwnerLoads(), sc.VnodesPerHost, sc.Seed+6)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// DefaultSLOScenario is the E28 configuration for one backend: the
// objectives are set where a healthy run passes with budget to spare
// and a churn-degraded run visibly burns it. The window is ~100x the
// mean request latency under the default constant-1ms model, so each
// window holds a useful latency sample (see DESIGN.md §12).
// Both the E28 table and cmd/benchsnap's `slo` section start from it.
func DefaultSLOScenario(backend string, quick bool, model sim.Model, seed uint64) SLOScenario {
	sc := SLOScenario{
		Backend:       backend,
		Peers:         512,
		Requests:      1500,
		Clients:       1 << 20, // a million virtual clients; Zipf keeps the hot set small
		ChurnEvents:   24,
		MeanGap:       2 * time.Millisecond,
		GapSigma:      1.0,
		ZipfS:         1.1,
		Window:        250 * time.Millisecond,
		VnodesPerHost: 8,
		Objectives: slo.Objectives{
			LatencyQuantile: 0.99,
			LatencyTarget:   2 * time.Second,
			Availability:    0.95,
		},
		Model: model,
		Seed:  seed,
	}
	if quick {
		sc.Peers, sc.Requests, sc.ChurnEvents = 128, 400, 10
		sc.Clients = 1 << 14
	}
	return sc
}

// WriteMarkdownReport writes the scenario's full SLO report (summary,
// objectives, per-window series, vnode comparison) — the artifact the
// CI smoke job uploads and the README sample reproduces.
func (res *SLOResult) WriteMarkdownReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# E28 SLO report — backend %s, n=%d, %d requests, %d churn events\n\n",
		res.Scenario.Backend, res.Scenario.Peers, res.Scenario.Requests, res.ChurnEvents); err != nil {
		return err
	}
	if err := res.Report.WriteMarkdown(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\n### Vnode load variance (%d vnodes/host)\n\n| view | hosts | imbalance | cv |\n|---|---|---|---|\n| vnodes off | %d | %.3f | %.3f |\n| vnodes on | %d | %.3f | %.3f |\n",
		res.Scenario.VnodesPerHost,
		res.VnodeOff.Hosts, res.VnodeOff.Imbalance, res.VnodeOff.CV,
		res.VnodeOn.Hosts, res.VnodeOn.Imbalance, res.VnodeOn.CV)
	return err
}

// expE28 is the SLO experiment: per-backend open-loop load under churn
// with windowed recording, reported as error budgets and burn rates —
// the production-shaped reading of the paper's "serve lookup traffic
// while nodes come and go" claim.
func expE28() Experiment {
	return Experiment{
		ID:    "E28",
		Title: "SLO report: open-loop load under churn, windowed in virtual time",
		Claim: "per-backend p50/p95/p99, availability and error-budget burn under a fixed offered rate concurrent with churn",
		Run: func(cfg RunConfig) (*Table, error) {
			model, err := cfg.LatencyModel()
			if err != nil {
				return nil, err
			}
			t := &Table{
				ID:      "E28",
				Title:   "Open-loop workload SLOs under churn (model " + model.Name() + ")",
				Claim:   "the sampler serves a fixed offered rate within latency and availability objectives while the overlay churns",
				Columns: []string{"backend", "n", "requests", "failed", "p50_ms", "p95_ms", "p99_ms", "avail", "budget%", "maxBurn", "fastWin", "vnodeOffImb", "vnodeOnImb", "met"},
			}
			for _, backend := range []string{"chord", "kademlia"} {
				sc := DefaultSLOScenario(backend, cfg.Quick, model, cfg.Seed^0x28^uint64(len(backend)))
				res, err := RunSLOScenario(sc)
				if err != nil {
					return nil, err
				}
				rep := res.Report
				met := "yes"
				if !rep.Met {
					met = "no"
				}
				if err := t.AddRow(
					backend, fmtI(sc.Peers),
					fmtI64(rep.TotalRequests), fmtI64(rep.TotalFailed),
					fmtF(ms(res.OverallQuantile(0.50))),
					fmtF(ms(res.OverallQuantile(0.95))),
					fmtF(ms(res.OverallQuantile(0.99))),
					fmt.Sprintf("%.4f", rep.Availability),
					fmtF(rep.BudgetConsumed*100),
					fmtF(rep.MaxBurnRate),
					fmtI(rep.FastBurnWindows),
					fmtF(res.VnodeOff.Imbalance),
					fmtF(res.VnodeOn.Imbalance),
					met,
				); err != nil {
					return nil, err
				}
				t.AddNote("%s: %s", backend, rep.String())
				t.AddNote("%s: %d windows of %v virtual; vnode grouping (V=%d) cut load CV %.3f -> %.3f; churn %d events (%d step errors); kernel ran %d events (%.0fms virtual) in %.2fs wall",
					backend, len(rep.Windows), sc.Window, sc.VnodesPerHost,
					res.VnodeOff.CV, res.VnodeOn.CV,
					res.ChurnEvents, res.StepErrors,
					res.KernelEvents, ms(res.Virtual), res.RunWall.Seconds())
			}
			t.AddNote("open-loop: arrivals keep their lognormal/Zipf schedule regardless of completions, so queueing under churn shows up as latency, not as a reduced offered rate")
			t.AddNote("a request is bad if it failed or breached the latency target; budget%% is bad events over (1-availability objective) x requests")
			return t, nil
		},
	}
}

// OverallQuantile merges the run's window histograms and reads one
// quantile — the whole-horizon distribution, not an average of windows.
func (res *SLOResult) OverallQuantile(q float64) time.Duration {
	var total obs.HistSnapshot
	for _, w := range res.Windows {
		total.Count += w.Latency.Count
		total.SumNanos += w.Latency.SumNanos
		for i := range total.Buckets {
			total.Buckets[i] += w.Latency.Buckets[i]
		}
	}
	return total.Quantile(q)
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
