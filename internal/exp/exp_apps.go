package exp

import (
	"math"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/agreement"
	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/collect"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/loadbalance"
	"github.com/dht-sampling/randompeer/internal/randgraph"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// appSetup builds the shared oracle + ring for application experiments.
func appSetup(seed uint64, n int) (*dht.Oracle, *ring.Ring, *rand.Rand, error) {
	rng := rand.New(rand.NewPCG(seed, uint64(n)))
	r, err := ring.Generate(rng, n)
	if err != nil {
		return nil, nil, nil, err
	}
	return dht.NewOracle(r), r, rng, nil
}

// expE11 runs the data-collection application: estimator bias and
// confidence-interval coverage, uniform versus naive.
func expE11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Application: data collection by sampling (Section 1)",
		Claim: "uniform sampling gives unbiased estimates with calibrated CIs; naive sampling is inconsistent",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E11",
				Title:   "Polling an arc-correlated population (true mean = 1)",
				Claim:   "uniform estimate -> 1 with ~95% CI coverage; naive converges to ~2 with collapsing coverage",
				Columns: []string{"sampler", "estimate", "ciLo", "ciHi", "coverage", "exactExpectation"},
			}
			n := 1024
			polls, k := 40, 2000
			if cfg.Quick {
				n, polls, k = 256, 15, 500
			}
			o, r, rng, err := appSetup(cfg.Seed^0xcc, n)
			if err != nil {
				return nil, err
			}
			pop, err := collect.ArcCorrelated(r)
			if err != nil {
				return nil, err
			}
			naiveExpect, err := collect.NaiveExpectedMean(r, pop)
			if err != nil {
				return nil, err
			}
			type entry struct {
				name   string
				mk     func() (dht.Sampler, error)
				expect float64
			}
			entries := []entry{
				{
					name: "king-saia",
					mk: func() (dht.Sampler, error) {
						return core.New(o, o.PeerByIndex(0), rng, core.Config{})
					},
					expect: 1,
				},
				{
					name: "naive",
					mk: func() (dht.Sampler, error) {
						return baseline.NewNaive(o, rng), nil
					},
					expect: naiveExpect,
				},
			}
			for _, e := range entries {
				s, err := e.mk()
				if err != nil {
					return nil, err
				}
				res, err := collect.PollMean(s, pop, k, 1.96)
				if err != nil {
					return nil, err
				}
				coverage, err := collect.CoverageRate(e.mk, pop, polls, k, 1.96)
				if err != nil {
					return nil, err
				}
				if err := t.AddRow(
					e.name, fmtF(res.Estimate), fmtF(res.Lo), fmtF(res.Hi),
					fmtF(coverage), fmtF(e.expect),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("population: peer value = n * (its arc share); true mean exactly 1; n = %d", n)
			return t, nil
		},
	}
}

// expE12 runs the random-links application: giant component survival
// under adversarial deletion.
func expE12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Application: random links robustness (Section 1)",
		Claim: "uniform random links keep a giant component under massive adversarial deletion",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E12",
				Title:   "Giant component after adversarial hub deletion (k links/node)",
				Claim:   "uniform-links graph stays connected; biased-links graph fragments",
				Columns: []string{"deleteFrac", "uniform_giant", "naive_giant", "uniform_maxDeg", "naive_maxDeg"},
			}
			n, k := 1000, 5
			if cfg.Quick {
				n, k = 300, 4
			}
			fracs := []float64{0.1, 0.3, 0.5}
			for _, frac := range fracs {
				o, _, rng, err := appSetup(cfg.Seed^0xdd, n)
				if err != nil {
					return nil, err
				}
				uni, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
				if err != nil {
					return nil, err
				}
				gUni, err := randgraph.Build(uni, n, k)
				if err != nil {
					return nil, err
				}
				gBias, err := randgraph.Build(baseline.NewNaive(o, rng), n, k)
				if err != nil {
					return nil, err
				}
				uniMax, biasMax := gUni.MaxDegree(), gBias.MaxDegree()
				if _, err := gUni.DeleteAdversarial(frac); err != nil {
					return nil, err
				}
				if _, err := gBias.DeleteAdversarial(frac); err != nil {
					return nil, err
				}
				if err := t.AddRow(
					fmtF(frac),
					fmtF(gUni.LargestComponentFraction()),
					fmtF(gBias.LargestComponentFraction()),
					fmtI(uniMax), fmtI(biasMax),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("n = %d, k = %d; adversary deletes highest-degree nodes (hubs)", n, k)
			return t, nil
		},
	}
}

// expE13 runs the load-balancing application: max load of sampled task
// assignment.
func expE13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Application: load balancing by random assignment (Section 1)",
		Claim: "uniform sampling achieves balls-into-bins balance; naive overloads long-arc peers",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E13",
				Title:   "Task assignment load (m = n ln n tasks)",
				Claim:   "uniform imbalance stays near balls-into-bins; naive imbalance grows with log n",
				Columns: []string{"n", "tasks", "sampler", "maxLoad", "imbalance", "idlePeers"},
			}
			ns := sweep(cfg.Quick, 256, 1024, 4096)
			for _, n := range ns {
				tasks := int(float64(n) * math.Log(float64(n)))
				o, _, rng, err := appSetup(cfg.Seed^0xee, n)
				if err != nil {
					return nil, err
				}
				virt, err := dht.NewVirtualOracle(rng, n, int(math.Log2(float64(n))))
				if err != nil {
					return nil, err
				}
				uni, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
				if err != nil {
					return nil, err
				}
				samplers := []dht.Sampler{
					uni,
					baseline.NewNaive(o, rng),
					baseline.NewVirtualNaive(virt, rng),
				}
				for _, s := range samplers {
					res, err := loadbalance.Assign(s, n, tasks)
					if err != nil {
						return nil, err
					}
					if err := t.AddRow(
						fmtI(n), fmtI(tasks), s.Name(),
						fmtI(res.MaxLoad), fmtF(res.Imbalance), fmtI(res.Idle),
					); err != nil {
						return nil, err
					}
				}
			}
			return t, nil
		},
	}
}

// expE14 runs the committee-election application: bad-committee rates
// under the longest-arc adversary.
func expE14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Application: Byzantine committee election (Section 1)",
		Claim: "uniform sampling keeps adversarial capture exponentially rare; naive sampling hands majorities to a 20% adversary",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E14",
				Title:   "Bad-committee rate under a longest-arc adversary (size 64, majority threshold)",
				Claim:   "uniform: ~0 capture below threshold; naive: capture tracks inflated selection mass",
				Columns: []string{"byzFrac", "naiveMass", "uniform_badRate", "naive_badRate", "uniform_meanByz", "naive_meanByz"},
			}
			n := 1024
			committees := 400
			if cfg.Quick {
				n, committees = 256, 120
			}
			const size = 64
			for _, byz := range []float64{0.1, 0.2, 0.3} {
				o, r, rng, err := appSetup(cfg.Seed^0xff, n)
				if err != nil {
					return nil, err
				}
				bad, mass, err := agreement.LongestArcAttack(r, byz)
				if err != nil {
					return nil, err
				}
				isBad := func(owner int) bool { return bad[owner] }
				uni, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
				if err != nil {
					return nil, err
				}
				uniRes, err := agreement.ElectCommittees(uni, isBad, size, committees, 0.5)
				if err != nil {
					return nil, err
				}
				naiveRes, err := agreement.ElectCommittees(
					baseline.NewNaive(o, rng), isBad, size, committees, 0.5)
				if err != nil {
					return nil, err
				}
				if err := t.AddRow(
					fmtF(byz), fmtF(mass),
					fmtF(uniRes.BadRate), fmtF(naiveRes.BadRate),
					fmtF(uniRes.MeanByzFrac), fmtF(naiveRes.MeanByzFrac),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("n = %d, committee size %d, %d committees; adversary occupies longest arcs", n, size, committees)
			return t, nil
		},
	}
}
