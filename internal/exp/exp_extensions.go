package exp

import (
	"math"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/biased"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

// expE18 evaluates the extension answering the paper's open problem 3:
// sampling with specifically biased probabilities, built by rejection on
// top of the provably uniform sampler.
func expE18() Experiment {
	return Experiment{
		ID:    "E18",
		Title: "Extension: biased sampling by rejection (open problem 3)",
		Claim: "target distributions are matched exactly; cost scales with the weight dynamic range",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E18",
				Title:   "Biased sampling accuracy and cost",
				Claim:   "TVD to the target distribution -> sampling noise; mean uniform draws = maxW/E[w]",
				Columns: []string{"weighting", "samples", "tvdToTarget", "noiseFloor", "meanDraws", "predictedDraws"},
			}
			n := 512
			samples := 40000
			if cfg.Quick {
				n, samples = 128, 8000
			}
			rng := rand.New(rand.NewPCG(cfg.Seed^0x1818, uint64(n)))
			r, err := ring.Generate(rng, n)
			if err != nil {
				return nil, err
			}
			o := dht.NewOracle(r)
			caller := o.PeerByIndex(0)
			uniform, err := core.New(o, caller, rng, core.Config{})
			if err != nil {
				return nil, err
			}
			invW, invMax, err := biased.InverseDistance(caller, 0.05)
			if err != nil {
				return nil, err
			}
			stepW, stepMax, err := biased.Step(func(owner int) bool { return owner < n/4 }, 1, 0.2)
			if err != nil {
				return nil, err
			}
			cases := []struct {
				name string
				w    biased.WeightFunc
				maxW float64
			}{
				{name: "inverse-distance", w: invW, maxW: invMax},
				{name: "step-4x", w: stepW, maxW: stepMax},
			}
			for _, c := range cases {
				s, err := biased.New(uniform, c.w, c.maxW, rng)
				if err != nil {
					return nil, err
				}
				// Target distribution from the weights.
				target := make([]float64, n)
				var totalW float64
				for i := 0; i < n; i++ {
					target[i] = c.w(o.PeerByIndex(i))
					totalW += target[i]
				}
				counts := make([]int64, n)
				for i := 0; i < samples; i++ {
					p, err := s.Sample()
					if err != nil {
						return nil, err
					}
					counts[p.Owner]++
				}
				var tvd float64
				for i := 0; i < n; i++ {
					tvd += math.Abs(float64(counts[i])/float64(samples) - target[i]/totalW)
				}
				tvd /= 2
				predicted := c.maxW * float64(n) / totalW
				if err := t.AddRow(
					c.name, fmtI(samples), fmtF(tvd),
					fmtF(math.Sqrt(float64(n)/(2*math.Pi*float64(samples)))),
					fmtF(s.MeanDraws()), fmtF(predicted),
				); err != nil {
					return nil, err
				}
			}
			t.AddNote("n = %d; rejection over the uniform sampler inherits its exactness: TVD is pure sampling noise", n)
			return t, nil
		},
	}
}

// expE19 evaluates the extension answering the paper's open problem 2:
// approximate uniform selection on less-structured overlays via
// Metropolis-Hastings walks, compared to the plain walk the paper cites.
func expE19() Experiment {
	return Experiment{
		ID:    "E19",
		Title: "Extension: Metropolis-Hastings walks (open problem 2)",
		Claim: "degree correction removes the plain walk's stationary bias at 2x the per-step cost",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				ID:      "E19",
				Title:   "Walk samplers on the symmetrized overlay: TVD versus walk length",
				Claim:   "MH walk converges to uniform; plain walk plateaus at its degree bias",
				Columns: []string{"steps", "plainTVD", "mhTVD", "plainChi2p", "mhChi2p"},
			}
			n := 256
			samples := 80 * n
			if cfg.Quick {
				n = 64
				samples = 60 * n
			}
			rng := rand.New(rand.NewPCG(cfg.Seed^0x1919, uint64(n)))
			r, err := ring.Generate(rng, n)
			if err != nil {
				return nil, err
			}
			o := dht.NewOracle(r)
			g := baseline.NewUndirectedOracleGraph(o)
			start := o.PeerByIndex(0)
			logN := int(math.Log2(float64(n)))
			for _, mult := range []int{1, 2, 4, 8} {
				steps := mult * logN
				plain, err := baseline.NewWalk(o, g, start, steps, rng)
				if err != nil {
					return nil, err
				}
				mh, err := baseline.NewMetropolisWalk(o, g, start, steps, rng)
				if err != nil {
					return nil, err
				}
				row := []string{fmtI(steps)}
				var tvds, ps []float64
				for _, sampleOwner := range []func() (int, error){
					func() (int, error) { p, err := plain.Sample(); return p.Owner, err },
					func() (int, error) { p, err := mh.Sample(); return p.Owner, err },
				} {
					counts := make([]int64, n)
					for i := 0; i < samples; i++ {
						owner, err := sampleOwner()
						if err != nil {
							return nil, err
						}
						counts[owner]++
					}
					tvd, err := stats.TotalVariationUniform(counts)
					if err != nil {
						return nil, err
					}
					_, p, err := stats.ChiSquareUniform(counts)
					if err != nil {
						return nil, err
					}
					tvds = append(tvds, tvd)
					ps = append(ps, p)
				}
				row = append(row, fmtF(tvds[0]), fmtF(tvds[1]), fmtF(ps[0]), fmtF(ps[1]))
				if err := t.AddRow(row...); err != nil {
					return nil, err
				}
			}
			t.AddNote("n = %d, %d samples per cell; MH pays 2 RPCs per step versus 1 for the plain walk", n, samples)
			t.AddNote("answers open problem 2 for unstructured overlays: works from neighbor lists alone, but remains approximate — unlike the exact DHT algorithm")
			return t, nil
		},
	}
}
