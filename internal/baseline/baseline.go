// Package baseline implements the sampling strategies King & Saia's
// algorithm is evaluated against:
//
//   - Naive: return h(x) for a uniformly random point x. The paper's
//     Section 1 shows its bias is Theta(n log n) between the most and
//     least likely peers.
//   - Walk: a fixed-length random walk on the DHT overlay graph
//     (Gkantsidis, Mihail, Saberi — INFOCOM 2004), the only prior work
//     the paper cites for peer sampling. It approximates uniformity but
//     its stationary distribution is proportional to node degree.
//   - Naive over a virtual-nodes DHT (built with dht.NewVirtualOracle):
//     the classic load-balancing extension discussed in the paper's
//     related work; it reduces but does not remove the bias.
package baseline

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// Naive samples h(x) at a uniformly random x: one lookup per sample.
//
// Concurrency contract: safe for unsynchronized concurrent use; the
// mutex guards only the RNG draw and is never held across the lookup.
// For reproducible parallel batches give each goroutine its own Fork.
type Naive struct {
	d    dht.DHT
	name string

	mu  sync.Mutex
	rng *rand.Rand
}

var _ dht.Sampler = (*Naive)(nil)

// NewNaive builds the naive sampler over any DHT backend.
func NewNaive(d dht.DHT, rng *rand.Rand) *Naive {
	return &Naive{d: d, rng: rng, name: "naive"}
}

// NewVirtualNaive builds the naive sampler labelled as the virtual-node
// baseline; pass a DHT with multiple points per owner (for example
// dht.NewVirtualOracle).
func NewVirtualNaive(d dht.DHT, rng *rand.Rand) *Naive {
	return &Naive{d: d, rng: rng, name: "virtual-naive"}
}

// Sample implements dht.Sampler.
func (s *Naive) Sample() (dht.Peer, error) {
	s.mu.Lock()
	x := ring.Point(s.rng.Uint64())
	s.mu.Unlock()
	p, err := s.d.H(x)
	if err != nil {
		return dht.Peer{}, fmt.Errorf("baseline: naive h(%v): %w", x, err)
	}
	return p, nil
}

// Name implements dht.Sampler.
func (s *Naive) Name() string { return s.name }

// Fork returns an independent naive sampler over the same DHT with its
// own PCG stream seeded from seed. It makes no DHT calls.
func (s *Naive) Fork(seed uint64) (dht.Sampler, error) {
	return &Naive{d: s.d, name: s.name, rng: rand.New(rand.NewPCG(seed, seed^0xbb67ae8584caa73b))}, nil
}

// Graph exposes a DHT overlay's edges for random walks. The Chord
// adapter's underlying network satisfies it via NeighborsOf; the oracle
// satisfies it via OracleGraph.
type Graph interface {
	// Neighbors returns the distinct overlay neighbors of p.
	Neighbors(p dht.Peer) ([]dht.Peer, error)
}

// Walk samples by running a fixed-length random walk on the overlay
// graph from a fixed start peer and returning the endpoint. Each step
// costs one RPC (charged to the DHT's meter).
//
// Concurrency contract: safe for unsynchronized concurrent use, but a
// shared Walk serializes whole walks under its mutex (each step's RNG
// draw depends on the neighbor list just fetched, so the lock must span
// the walk). Concurrent throughput comes from Fork: per-goroutine
// clones walk in parallel with no shared state.
type Walk struct {
	g     Graph
	d     dht.DHT
	start dht.Peer
	steps int

	mu  sync.Mutex
	rng *rand.Rand
}

var _ dht.Sampler = (*Walk)(nil)

// NewWalk builds a random-walk sampler taking the given number of steps
// per sample.
func NewWalk(d dht.DHT, g Graph, start dht.Peer, steps int, rng *rand.Rand) (*Walk, error) {
	if steps < 1 {
		return nil, fmt.Errorf("baseline: walk length must be >= 1, got %d", steps)
	}
	return &Walk{g: g, d: d, start: start, steps: steps, rng: rng}, nil
}

// Sample implements dht.Sampler.
func (s *Walk) Sample() (dht.Peer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.start
	for i := 0; i < s.steps; i++ {
		nbrs, err := s.g.Neighbors(cur)
		if err != nil {
			return dht.Peer{}, fmt.Errorf("baseline: walk step %d at %v: %w", i, cur.Point, err)
		}
		if len(nbrs) == 0 {
			return dht.Peer{}, fmt.Errorf("baseline: walk stranded at %v with no neighbors", cur.Point)
		}
		cur = nbrs[s.rng.IntN(len(nbrs))]
		// One message to fetch the neighbor's identity, one to move on.
		s.d.Meter().Charge(1, 2)
	}
	return cur, nil
}

// Name implements dht.Sampler.
func (s *Walk) Name() string { return fmt.Sprintf("walk-%d", s.steps) }

// Fork returns an independent walk sampler with the same graph, start
// peer and walk length but its own PCG stream seeded from seed. It
// makes no DHT calls.
func (s *Walk) Fork(seed uint64) (dht.Sampler, error) {
	return &Walk{
		g: s.g, d: s.d, start: s.start, steps: s.steps,
		rng: rand.New(rand.NewPCG(seed, seed^0x3c6ef372fe94f82b)),
	}, nil
}

// Steps returns the per-sample walk length.
func (s *Walk) Steps() int { return s.steps }
