package baseline

import (
	"fmt"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// OracleGraph presents the Chord overlay topology implied by an oracle
// DHT: each peer's neighbors are its successor and the successors of the
// finger targets point+2^k, deduplicated — exactly the edges a real
// Chord node holds, synthesized from global knowledge.
type OracleGraph struct {
	o *dht.Oracle
}

var _ Graph = (*OracleGraph)(nil)

// NewOracleGraph wraps an oracle DHT as a walkable overlay graph.
func NewOracleGraph(o *dht.Oracle) *OracleGraph {
	return &OracleGraph{o: o}
}

// Neighbors implements Graph.
func (g *OracleGraph) Neighbors(p dht.Peer) ([]dht.Peer, error) {
	r := g.o.Ring()
	self := r.IndexOf(p.Point)
	if self < 0 {
		return nil, fmt.Errorf("baseline: %w: no peer at %v", dht.ErrUnknownPeer, p.Point)
	}
	seen := make(map[int]struct{}, 65)
	out := make([]dht.Peer, 0, 65)
	add := func(idx int) {
		if idx == self {
			return
		}
		if _, dup := seen[idx]; dup {
			return
		}
		seen[idx] = struct{}{}
		out = append(out, g.o.PeerByIndex(idx))
	}
	add(r.NextIndex(self))
	for k := 0; k < 64; k++ {
		target := ring.Add(p.Point, uint64(1)<<uint(k))
		add(r.Successor(target))
	}
	return out, nil
}

// UndirectedOracleGraph is the symmetrized Chord overlay: u and v are
// neighbors when either holds the other in its successor or finger set.
// Metropolis-Hastings walks require this symmetry for detailed balance
// (the directed finger graph has no uniform stationary distribution);
// real deployments obtain it by having nodes track their in-links. The
// adjacency is precomputed once from global knowledge.
type UndirectedOracleGraph struct {
	o   *dht.Oracle
	adj [][]int
}

var _ Graph = (*UndirectedOracleGraph)(nil)

// NewUndirectedOracleGraph precomputes the symmetrized overlay
// adjacency for all peers of the oracle.
func NewUndirectedOracleGraph(o *dht.Oracle) *UndirectedOracleGraph {
	r := o.Ring()
	n := r.Len()
	sets := make([]map[int]struct{}, n)
	for i := 0; i < n; i++ {
		sets[i] = make(map[int]struct{}, 2*65)
	}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		sets[u][v] = struct{}{}
		sets[v][u] = struct{}{}
	}
	for i := 0; i < n; i++ {
		addEdge(i, r.NextIndex(i))
		for k := 0; k < 64; k++ {
			target := ring.Add(r.At(i), uint64(1)<<uint(k))
			addEdge(i, r.Successor(target))
		}
	}
	g := &UndirectedOracleGraph{o: o, adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		g.adj[i] = make([]int, 0, len(sets[i]))
		for j := range sets[i] {
			g.adj[i] = append(g.adj[i], j)
		}
	}
	return g
}

// Neighbors implements Graph.
func (g *UndirectedOracleGraph) Neighbors(p dht.Peer) ([]dht.Peer, error) {
	idx := g.o.Ring().IndexOf(p.Point)
	if idx < 0 {
		return nil, fmt.Errorf("baseline: %w: no peer at %v", dht.ErrUnknownPeer, p.Point)
	}
	out := make([]dht.Peer, len(g.adj[idx]))
	for i, j := range g.adj[idx] {
		out[i] = g.o.PeerByIndex(j)
	}
	return out, nil
}

// NetworkGraph adapts any implementation with a NeighborsOf method (the
// Chord network adapter provides one) to the Graph interface.
type NetworkGraph struct {
	neighbors func(p dht.Peer) ([]dht.Peer, error)
}

var _ Graph = (*NetworkGraph)(nil)

// NewNetworkGraph wraps a neighbor-resolution function as a Graph.
func NewNetworkGraph(neighbors func(p dht.Peer) ([]dht.Peer, error)) *NetworkGraph {
	return &NetworkGraph{neighbors: neighbors}
}

// Neighbors implements Graph.
func (g *NetworkGraph) Neighbors(p dht.Peer) ([]dht.Peer, error) {
	return g.neighbors(p)
}
