package baseline

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"github.com/dht-sampling/randompeer/internal/dht"
)

// MetropolisWalk addresses the paper's second open problem — random
// peer selection in networks with less structure than a DHT — with the
// classic degree-corrected random walk: from u, propose a uniform
// neighbor v and move there with probability min(1, deg(u)/deg(v)),
// otherwise stay. The walk's stationary distribution is exactly uniform
// on any connected non-bipartite *undirected* graph, unlike the plain
// walk whose stationary distribution is proportional to degree. The
// supplied Graph must be symmetric (use NewUndirectedOracleGraph for the
// Chord overlay); on a directed graph no such guarantee holds.
//
// Each step costs two RPCs (fetch the proposal's neighbor count, then
// move), charged to the DHT's meter. The result is approximate —
// accuracy depends on the mixing time — but it needs no ring structure
// at all, only neighbor lists.
//
// Concurrency contract: safe for unsynchronized concurrent use, but a
// shared MetropolisWalk serializes whole walks under its mutex (every
// accept/reject draw depends on the degrees just fetched). Concurrent
// throughput comes from Fork: per-goroutine clones walk in parallel
// with no shared state.
type MetropolisWalk struct {
	g     Graph
	d     dht.DHT
	start dht.Peer
	steps int

	mu  sync.Mutex
	rng *rand.Rand
}

var _ dht.Sampler = (*MetropolisWalk)(nil)

// NewMetropolisWalk builds a Metropolis-Hastings walk sampler taking
// the given number of steps per sample.
func NewMetropolisWalk(d dht.DHT, g Graph, start dht.Peer, steps int, rng *rand.Rand) (*MetropolisWalk, error) {
	if steps < 1 {
		return nil, fmt.Errorf("baseline: metropolis walk length must be >= 1, got %d", steps)
	}
	return &MetropolisWalk{g: g, d: d, start: start, steps: steps, rng: rng}, nil
}

// Sample implements dht.Sampler.
func (s *MetropolisWalk) Sample() (dht.Peer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.start
	curNbrs, err := s.g.Neighbors(cur)
	if err != nil {
		return dht.Peer{}, fmt.Errorf("baseline: metropolis start: %w", err)
	}
	for i := 0; i < s.steps; i++ {
		if len(curNbrs) == 0 {
			return dht.Peer{}, fmt.Errorf("baseline: metropolis walk stranded at %v", cur.Point)
		}
		proposal := curNbrs[s.rng.IntN(len(curNbrs))]
		propNbrs, err := s.g.Neighbors(proposal)
		if err != nil {
			return dht.Peer{}, fmt.Errorf("baseline: metropolis step %d at %v: %w", i, proposal.Point, err)
		}
		// One RPC to learn the proposal's degree, one to move (or the
		// equivalent single probe when the move is rejected).
		s.d.Meter().Charge(2, 4)
		if len(propNbrs) == 0 {
			continue // never step into a dead end
		}
		accept := float64(len(curNbrs)) / float64(len(propNbrs))
		if accept >= 1 || s.rng.Float64() < accept {
			cur = proposal
			curNbrs = propNbrs
		}
	}
	return cur, nil
}

// Name implements dht.Sampler.
func (s *MetropolisWalk) Name() string { return fmt.Sprintf("mh-walk-%d", s.steps) }

// Fork returns an independent Metropolis walk sampler with the same
// graph, start peer and walk length but its own PCG stream seeded from
// seed. It makes no DHT calls.
func (s *MetropolisWalk) Fork(seed uint64) (dht.Sampler, error) {
	return &MetropolisWalk{
		g: s.g, d: s.d, start: s.start, steps: s.steps,
		rng: rand.New(rand.NewPCG(seed, seed^0xa54ff53a5f1d36f1)),
	}, nil
}

// Steps returns the per-sample walk length.
func (s *MetropolisWalk) Steps() int { return s.steps }
