package baseline

import (
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// lyingView wraps an honest oracle view and forges h(x) for the keys
// its lie function claims; everything else stays honest. It stands in
// for a vantage whose route is Byzantine-subverted.
type lyingView struct {
	*dht.Oracle
	lie func(x ring.Point) (dht.Peer, bool)
}

func (v *lyingView) H(x ring.Point) (dht.Peer, error) {
	if p, ok := v.lie(x); ok {
		return p, nil
	}
	return v.Oracle.H(x)
}

func swapViews(o *dht.Oracle, lies ...func(x ring.Point) (dht.Peer, bool)) []dht.DHT {
	views := make([]dht.DHT, len(lies))
	for i, lie := range lies {
		if lie == nil {
			views[i] = o
		} else {
			views[i] = &lyingView{Oracle: o, lie: lie}
		}
	}
	return views
}

func swapCfg(n int) SwapConfig {
	meanArc := ^uint64(0) / uint64(n)
	return SwapConfig{Skew: meanArc/64 + 1, MaxOwnerDist: meanArc, Bisect: 4}
}

func TestSwapHonestFloor(t *testing.T) {
	t.Parallel()
	// Two honest vantages: the audit must stay out of the way. The
	// one-mean-arc cap rejects an e^-1 share of attempts (keys landing
	// in wide arcs), so with the default 4 attempts the failure rate is
	// about e^-4 — well under 5%.
	const n = 64
	o := newOracle(t, 91, n)
	s, err := NewSwap(swapViews(o, nil, nil), swapCfg(n), rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	const samples = 4000
	fails := 0
	for i := 0; i < samples; i++ {
		p, err := s.Sample()
		if err != nil {
			fails++
			continue
		}
		if p.Owner < 0 || p.Owner >= n {
			t.Fatalf("owner %d out of range", p.Owner)
		}
	}
	if rate := float64(fails) / samples; rate > 0.05 {
		t.Errorf("honest failure rate %.4f, want < 0.05", rate)
	}
	if s.Failed() != int64(fails) {
		t.Errorf("Failed() = %d, observed %d", s.Failed(), fails)
	}
}

func TestSwapRepairsOneSidedLies(t *testing.T) {
	t.Parallel()
	// One vantage always forges the coalition magnet; the other is
	// honest. Nearest-claim repair must side with the honest claim (the
	// true owner is the first peer clockwise of the key, so it is the
	// nearer of the two except when the key lands just below the
	// magnet), keeping the magnet's share of accepted samples near its
	// honest arc share instead of the ~50% a trusting pick would give.
	const n = 64
	o := newOracle(t, 92, n)
	magnet := o.PeerByIndex(17)
	alwaysMagnet := func(ring.Point) (dht.Peer, bool) { return magnet, true }
	s, err := NewSwap(swapViews(o, alwaysMagnet, nil), swapCfg(n), rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	const samples = 3000
	got, hits := 0, 0
	for i := 0; i < samples; i++ {
		p, err := s.Sample()
		if err != nil {
			continue
		}
		got++
		if p.Owner == magnet.Owner {
			hits++
		}
	}
	if got < samples/2 {
		t.Fatalf("only %d/%d samples accepted", got, samples)
	}
	if rate := float64(hits) / float64(got); rate > 0.05 {
		t.Errorf("magnet claimed %.4f of accepted samples despite an honest vantage", rate)
	}
}

func TestSwapCapStopsConsistentLies(t *testing.T) {
	t.Parallel()
	// Both vantages forge the same magnet for every key — the
	// key-independent lie a cross-resolution audit cannot see (the
	// claims agree). Only the distance-plausibility cap catches it:
	// every accepted sample must sit within MaxOwnerDist of its key,
	// so the forgery survives only on the sliver of keys just below
	// the magnet and almost every Sample call must fail instead.
	const n = 64
	o := newOracle(t, 93, n)
	magnet := o.PeerByIndex(3)
	alwaysMagnet := func(ring.Point) (dht.Peer, bool) { return magnet, true }
	s, err := NewSwap(swapViews(o, alwaysMagnet, alwaysMagnet), swapCfg(n), rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	const samples = 2000
	fails, accepted := 0, 0
	for i := 0; i < samples; i++ {
		p, err := s.Sample()
		if err != nil {
			fails++
			continue
		}
		accepted++
		if p.Owner != magnet.Owner {
			t.Fatalf("accepted non-magnet peer %d from two magnet-forging views", p.Owner)
		}
	}
	// Keys within one mean arc below the magnet are 1/n of the circle;
	// per-attempt acceptance is ~1/64, so over 4 attempts ~6% of calls
	// slip through and the rest must fail.
	if rate := float64(fails) / samples; rate < 0.80 {
		t.Errorf("failure rate %.4f under a total consistent forgery, want > 0.80", rate)
	}
	if accepted > samples/5 {
		t.Errorf("%d/%d consistent lies accepted; the cap should reject implausibly wide claims", accepted, samples)
	}
}

func TestSwapKeySplitDetectsPerKeyForgery(t *testing.T) {
	t.Parallel()
	// Both vantages forge a lie that depends only on the exact key
	// queried. With key-splitting the two vantages resolve different
	// keys, their forged claims conflict, and the audit registers a
	// repair on nearly every draw; with Skew=0 both resolve the same
	// key, receive the same forged claim, and the audit is blind. The
	// cap and probing are disabled to isolate the key-split mechanism.
	const n = 64
	o := newOracle(t, 94, n)
	perKey := func(x ring.Point) (dht.Peer, bool) {
		h := uint64(x) * 0x9e3779b97f4a7c15
		return o.PeerByIndex(int(h % n)), true
	}
	meanArc := ^uint64(0) / uint64(n)
	run := func(skew uint64, seed uint64) (*Swap, int) {
		s, err := NewSwap(swapViews(o, perKey, perKey), SwapConfig{Skew: skew}, rand.New(rand.NewPCG(seed, seed)))
		if err != nil {
			t.Fatal(err)
		}
		const samples = 1000
		for i := 0; i < samples; i++ {
			if _, err := s.Sample(); err != nil {
				t.Fatalf("with the cap disabled every sample is accepted: %v", err)
			}
		}
		return s, samples
	}
	split, samples := run(meanArc/64+1, 4)
	if got := split.Rejected(); got < int64(samples)/2 {
		t.Errorf("key-split audit flagged %d/%d per-key forgeries, want a majority", got, samples)
	}
	blind, _ := run(0, 5)
	if got := blind.Rejected(); got != 0 {
		t.Errorf("same-key double resolution flagged %d forgeries; identical lies should agree", got)
	}
}

func TestSwapForkSharesCounters(t *testing.T) {
	t.Parallel()
	const n = 32
	o := newOracle(t, 95, n)
	s, err := NewSwap(swapViews(o, nil, nil), swapCfg(n), rand.New(rand.NewPCG(6, 6)))
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Fork(7)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "swap" {
		t.Errorf("fork Name = %q", f.Name())
	}
	for i := 0; i < 200; i++ {
		if _, err := f.Sample(); err != nil {
			// Rare cap-exhaustion failures are fine; the counter check
			// below is what this test pins.
			continue
		}
	}
	if s.Failed() == 0 && s.Rejected() == 0 {
		// Statistically the cap rejects ~37% of attempts, so 200
		// samples leave a trace in the shared counters.
		t.Error("fork activity not visible in parent counters")
	}
}

func TestSwapValidation(t *testing.T) {
	t.Parallel()
	o := newOracle(t, 96, 8)
	if _, err := NewSwap(swapViews(o, nil), SwapConfig{}, rand.New(rand.NewPCG(8, 8))); err == nil {
		t.Error("one vantage should fail")
	}
	s, err := NewSwap(swapViews(o, nil, nil), SwapConfig{}, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "swap" {
		t.Errorf("Name = %q", s.Name())
	}
}
