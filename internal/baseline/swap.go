package baseline

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// Swap is a PeerSwap-style mitigation sampler (Aradhya, Gouissem &
// Eugster's PeerSwap motivates the design: peers exchange sampling
// duties so no single subverted path decides a sample). Each sample
// draws one uniform key and resolves it from two distinct vantage
// peers drawn from a pool — the vantages "swap" audit duty — and the
// candidate is accepted only when both vantages agree on the owner.
//
// Plain double-resolution is not enough on a routed overlay, so the
// audit stacks two defenses on top of it:
//
//   - Key-splitting with nearest-claim repair. Lookups for the same
//     key from any two vantages converge on a shared route tail near
//     the key, so one subverted node on that tail serves the same
//     forged answer to both auditors and the audit agrees on a lie.
//     The second vantage therefore resolves a skewed key y = x -
//     delta, with delta drawn uniformly from [1, Skew] and Skew far
//     below the mean owner arc: honest resolutions still agree — x
//     and y fall in the same owner's arc except for a ~Skew*n/2^65
//     boundary-crossing tax — while a per-key forged reply names a
//     different peer for y than for x and the claims conflict.
//     Conflicts are repaired, not rejected: the true owner is the
//     first node clockwise of x, so the nearer of two conflicting
//     claims is the honest one whenever either resolution was honest.
//     (Rejecting outright would shadow every key whose route is
//     deterministically subverted, skewing the accepted distribution
//     worse than the lies themselves — keys owned through a subverted
//     route tail would simply never be sampled.)
//   - A distance-plausibility cap. Key-splitting cannot reject a lie
//     that is consistent across keys, such as a coalition member just
//     clockwise of x claiming ownership through widest-interval ring-
//     pointer forgeries. Those lies share a statistical fingerprint:
//     the claimed owner sits much farther clockwise of the key than
//     the ~2^64/n mean arc (the nearest colluder is ~1/f mean arcs
//     away). With MaxOwnerDist set to a small multiple of the mean arc
//     — calibrated from the paper's own Estimate n in a deployment —
//     the audit rejects implausibly wide ownership claims, at an
//     honest false-rejection rate of e^-t for a cap of t mean arcs.
//
// Against Byzantine routing that subverts a lookup with probability q,
// the accepted bias falls from the naive sampler's q toward the floor
// the caps leave, at the cost of rejected samples (disagreements
// surface as retries and, eventually, sample failures — the failure
// rate the adversarial experiments measure as the mitigation's price).
//
// Concurrency contract: safe for unsynchronized concurrent use; the
// mutex guards only RNG draws. For reproducible parallel batches give
// each goroutine its own Fork.
type Swap struct {
	views []dht.DHT
	cfg   SwapConfig

	mu  sync.Mutex
	rng *rand.Rand

	rejected atomic.Int64
	failed   atomic.Int64
}

var _ dht.Sampler = (*Swap)(nil)

// SwapConfig tunes the audit.
type SwapConfig struct {
	// Retries bounds how many fresh keys one Sample may try after
	// audit rejections or lookup failures before giving up (0 selects
	// the default of 3).
	Retries int
	// Skew is the maximum key perturbation of the key-split audit; it
	// should sit well below the mean owner arc 2^64/n (a small
	// multiple of 2^64/(64*n) keeps the honest false-rejection rate
	// around 1%). 0 disables key-splitting and degrades the audit to
	// same-key double-resolution.
	Skew uint64
	// MaxOwnerDist caps the clockwise distance from the drawn key to
	// the accepted owner; candidates claiming a wider arc are
	// rejected. A few multiples of the mean arc 2^64/n catches
	// widest-interval pointer lies at a small e^-t honest cost. 0
	// disables the cap.
	MaxOwnerDist uint64
	// Bisect bounds the probe lookups spent narrowing a wide
	// ownership claim before the cap is applied: each probe resolves
	// a key halfway into the claimed interval, and any honest probe
	// resolution surfaces a nearer node when the claim skipped one.
	// Misses and lies are key-specific, so probing distinct keys
	// converges on the true owner instead of shadowing the key. 0
	// disables probing.
	Bisect int
}

// NewSwap builds the swap sampler over at least two vantage views of
// the same DHT (for routed overlays, per-caller adapters rooted at
// different peers — distinct vantages keep the audits' route prefixes
// independent).
func NewSwap(views []dht.DHT, cfg SwapConfig, rng *rand.Rand) (*Swap, error) {
	if len(views) < 2 {
		return nil, fmt.Errorf("baseline: swap needs >= 2 vantage views, got %d", len(views))
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	return &Swap{views: views, cfg: cfg, rng: rng}, nil
}

// Sample implements dht.Sampler: draw a key, resolve it and its
// skewed twin from two distinct vantages, accept on agreement, redraw
// on disagreement or failure.
func (s *Swap) Sample() (dht.Peer, error) { return s.sample(&s.mu, s.rng) }

// sample runs the audit loop over the given RNG (the parent's or a
// fork's), guarding draws with its matching mutex.
func (s *Swap) sample(mu *sync.Mutex, rng *rand.Rand) (dht.Peer, error) {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.Retries; attempt++ {
		mu.Lock()
		x := ring.Point(rng.Uint64())
		y := x
		if s.cfg.Skew > 0 {
			y = x - ring.Point(1+rng.Uint64N(s.cfg.Skew)) // wraps on the circle
		}
		i := rng.IntN(len(s.views))
		j := rng.IntN(len(s.views) - 1)
		mu.Unlock()
		if j >= i {
			j++
		}
		p1, err1 := s.views[i].H(x)
		p2, err2 := s.views[j].H(y)
		if err1 != nil || err2 != nil {
			lastErr = err1
			if lastErr == nil {
				lastErr = err2
			}
			continue
		}
		// On disagreement, repair rather than reject: the true owner is
		// the first node clockwise of x, so of two conflicting claims
		// the nearer one is the honest one whenever either resolution
		// was honest. Rejecting outright would shadow every key with a
		// deterministically subverted route, skewing the accepted
		// distribution worse than the lies themselves.
		best := p1
		if d2 := uint64(p2.Point - x); p1.Point != p2.Point && d2 < uint64(p1.Point-x) {
			best = p2
		}
		// A claim spanning more than half the plausibility cap gets
		// bisection-probed: resolve keys successively deeper inside
		// the claimed interval, adopting any nearer node a probe
		// surfaces. A lie or a lookup miss is specific to the probed
		// key, so distinct probes converge on the true owner.
		if s.cfg.MaxOwnerDist > 0 {
			probe := uint64(best.Point - x)
			for step := 0; step < s.cfg.Bisect && probe > s.cfg.MaxOwnerDist/2; step++ {
				probe /= 2
				pm, err := s.views[(i+step)%len(s.views)].H(x + ring.Point(probe))
				if err != nil {
					break
				}
				if dm := uint64(pm.Point - x); dm < uint64(best.Point-x) {
					best = pm
				}
			}
		}
		if d := uint64(best.Point - x); s.cfg.MaxOwnerDist > 0 && d > s.cfg.MaxOwnerDist {
			s.rejected.Add(1)
			lastErr = fmt.Errorf("baseline: swap owner %v implausibly far from key %v (%d > %d)",
				best.Point, x, d, s.cfg.MaxOwnerDist)
			continue
		}
		if p1.Point != p2.Point {
			s.rejected.Add(1) // the audit caught and repaired a lie
		}
		return best, nil
	}
	s.failed.Add(1)
	return dht.Peer{}, fmt.Errorf("baseline: swap exhausted %d attempts: %w", s.cfg.Retries+1, lastErr)
}

// Name implements dht.Sampler.
func (s *Swap) Name() string { return "swap" }

// Rejected returns how many candidate samples the cross-audit has
// rejected (disagreeing vantages) across this sampler and every Fork.
func (s *Swap) Rejected() int64 { return s.rejected.Load() }

// Failed returns how many Sample calls exhausted their retries.
func (s *Swap) Failed() int64 { return s.failed.Load() }

// Fork returns an independent swap sampler over the same vantage views
// with its own PCG stream seeded from seed. Audit counters stay shared
// with the parent, so whole-batch totals accumulate in one place. It
// makes no DHT calls.
func (s *Swap) Fork(seed uint64) (dht.Sampler, error) {
	return &swapFork{
		Swap: s,
		rng:  rand.New(rand.NewPCG(seed, seed^0xa54ff53a5f1d36f1)),
	}, nil
}

// swapFork is a per-goroutine clone: it shares the parent's views and
// counters but draws from its own stream.
type swapFork struct {
	*Swap
	mu  sync.Mutex
	rng *rand.Rand
}

// Sample mirrors Swap.Sample over the fork's private stream.
func (f *swapFork) Sample() (dht.Peer, error) { return f.Swap.sample(&f.mu, f.rng) }
