package baseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/stats"
)

func TestMetropolisWalkValidation(t *testing.T) {
	t.Parallel()
	o := newOracle(t, 91, 16)
	g := NewUndirectedOracleGraph(o)
	if _, err := NewMetropolisWalk(o, g, o.PeerByIndex(0), 0, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("zero steps should fail")
	}
	w, err := NewMetropolisWalk(o, g, o.PeerByIndex(0), 5, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "mh-walk-5" {
		t.Errorf("Name = %q", w.Name())
	}
	if w.Steps() != 5 {
		t.Errorf("Steps = %d", w.Steps())
	}
}

func TestMetropolisWalkApproachesUniform(t *testing.T) {
	t.Parallel()
	// A long MH walk on the Chord overlay must pass a chi-square
	// uniformity test — the degree correction removes the plain walk's
	// stationary bias.
	const n = 64
	o := newOracle(t, 93, n)
	g := NewUndirectedOracleGraph(o)
	steps := 6 * int(math.Log2(n))
	w, err := NewMetropolisWalk(o, g, o.PeerByIndex(0), steps, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, n)
	for i := 0; i < 120*n; i++ {
		p, err := w.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Owner]++
	}
	_, pvalue, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if pvalue < 1e-3 {
		t.Errorf("long MH walk rejected as non-uniform (p = %v)", pvalue)
	}
}

func TestMetropolisBeatsPlainWalkAtSameLength(t *testing.T) {
	t.Parallel()
	const n = 64
	o := newOracle(t, 95, n)
	g := NewUndirectedOracleGraph(o)
	steps := 4 * int(math.Log2(n))
	const samples = 70 * n
	mh, err := NewMetropolisWalk(o, g, o.PeerByIndex(0), steps, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewWalk(o, g, o.PeerByIndex(0), steps, rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	tvd := func(sampleFn func() (int, error)) float64 {
		counts := make([]int64, n)
		for i := 0; i < samples; i++ {
			owner, err := sampleFn()
			if err != nil {
				t.Fatal(err)
			}
			counts[owner]++
		}
		v, err := stats.TotalVariationUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	mhTVD := tvd(func() (int, error) {
		p, err := mh.Sample()
		return p.Owner, err
	})
	plainTVD := tvd(func() (int, error) {
		p, err := plain.Sample()
		return p.Owner, err
	})
	if mhTVD >= plainTVD {
		t.Errorf("MH walk TVD %.4f should beat plain walk TVD %.4f at equal length", mhTVD, plainTVD)
	}
}

func TestMetropolisWalkCostCharged(t *testing.T) {
	t.Parallel()
	o := newOracle(t, 97, 32)
	g := NewUndirectedOracleGraph(o)
	w, err := NewMetropolisWalk(o, g, o.PeerByIndex(0), 10, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	before := o.Meter().Snapshot()
	if _, err := w.Sample(); err != nil {
		t.Fatal(err)
	}
	cost := o.Meter().Snapshot().Sub(before)
	if cost.Calls != 20 {
		t.Errorf("10 MH steps charged %d calls, want 20 (2 per step)", cost.Calls)
	}
}
