package baseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

func newOracle(t *testing.T, seed uint64, n int) *dht.Oracle {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed*3+1))
	o, err := dht.GenerateOracle(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNaiveMatchesArcDistribution(t *testing.T) {
	t.Parallel()
	// The naive sampler's selection probability for peer i is exactly
	// the fraction of the circle in the arc ending at its point.
	const n = 32
	o := newOracle(t, 5, n)
	s := NewNaive(o, rand.New(rand.NewPCG(1, 1)))
	const samples = 50000
	counts := make([]int64, n)
	for i := 0; i < samples; i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Owner]++
	}
	r := o.Ring()
	for i := 0; i < n; i++ {
		want := ring.UnitsToFrac(r.Arc(r.PrevIndex(i)))
		got := float64(counts[i]) / samples
		sigma := math.Sqrt(want*(1-want)/samples) + 1e-9
		if math.Abs(got-want) > 5*sigma {
			t.Errorf("peer %d: empirical %.5f vs arc %.5f", i, got, want)
		}
	}
}

func TestNaiveIsBiased(t *testing.T) {
	t.Parallel()
	// With enough samples the naive sampler must fail a chi-square
	// uniformity test on a random ring — that is the paper's motivation.
	const n = 64
	o := newOracle(t, 11, n)
	s := NewNaive(o, rand.New(rand.NewPCG(2, 2)))
	counts := make([]int64, n)
	for i := 0; i < 100*n; i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Owner]++
	}
	_, pvalue, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if pvalue > 1e-4 {
		t.Errorf("naive sampler passed uniformity (p = %v); bias should be detectable", pvalue)
	}
}

func TestNaiveName(t *testing.T) {
	t.Parallel()
	o := newOracle(t, 1, 8)
	rng := rand.New(rand.NewPCG(1, 2))
	if got := NewNaive(o, rng).Name(); got != "naive" {
		t.Errorf("Name = %q", got)
	}
	if got := NewVirtualNaive(o, rng).Name(); got != "virtual-naive" {
		t.Errorf("virtual Name = %q", got)
	}
}

func TestVirtualNaiveReducesBias(t *testing.T) {
	t.Parallel()
	// Virtual nodes (log n points per peer) shrink the spread of
	// per-owner hash space, so the TVD from uniform must drop.
	const owners = 64
	rng := rand.New(rand.NewPCG(21, 22))
	plain, err := dht.GenerateOracle(rng, owners)
	if err != nil {
		t.Fatal(err)
	}
	virt, err := dht.NewVirtualOracle(rng, owners, 8)
	if err != nil {
		t.Fatal(err)
	}
	tvd := func(d dht.DHT, seed uint64) float64 {
		s := NewNaive(d, rand.New(rand.NewPCG(seed, seed)))
		counts := make([]int64, owners)
		for i := 0; i < 200*owners; i++ {
			p, err := s.Sample()
			if err != nil {
				t.Fatal(err)
			}
			counts[p.Owner]++
		}
		v, err := stats.TotalVariationUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	plainTVD := tvd(plain, 7)
	virtTVD := tvd(virt, 8)
	if virtTVD >= plainTVD {
		t.Errorf("virtual nodes did not reduce bias: plain TVD %.4f, virtual TVD %.4f", plainTVD, virtTVD)
	}
}

func TestWalkVisitsAllPeers(t *testing.T) {
	t.Parallel()
	const n = 32
	o := newOracle(t, 31, n)
	g := NewOracleGraph(o)
	start := o.PeerByIndex(0)
	w, err := NewWalk(o, g, start, 3*int(math.Log2(n)), rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool, n)
	for i := 0; i < 200*n; i++ {
		p, err := w.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if p.Owner < 0 || p.Owner >= n {
			t.Fatalf("owner %d out of range", p.Owner)
		}
		seen[p.Owner] = true
	}
	if len(seen) != n {
		t.Errorf("walk reached %d/%d peers", len(seen), n)
	}
}

func TestWalkLongerIsCloserToUniform(t *testing.T) {
	t.Parallel()
	// TVD from uniform should shrink as walks lengthen (mixing).
	const n = 64
	o := newOracle(t, 41, n)
	g := NewOracleGraph(o)
	start := o.PeerByIndex(0)
	tvdFor := func(steps int, seed uint64) float64 {
		w, err := NewWalk(o, g, start, steps, rand.New(rand.NewPCG(seed, seed)))
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, n)
		for i := 0; i < 100*n; i++ {
			p, err := w.Sample()
			if err != nil {
				t.Fatal(err)
			}
			counts[p.Owner]++
		}
		v, err := stats.TotalVariationUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	short := tvdFor(1, 5)
	long := tvdFor(20, 6)
	if long >= short {
		t.Errorf("longer walks did not mix better: 1 step TVD %.4f, 20 steps TVD %.4f", short, long)
	}
}

func TestWalkCostCharged(t *testing.T) {
	t.Parallel()
	const n = 64
	o := newOracle(t, 51, n)
	g := NewOracleGraph(o)
	w, err := NewWalk(o, g, o.PeerByIndex(0), 10, rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	before := o.Meter().Snapshot()
	if _, err := w.Sample(); err != nil {
		t.Fatal(err)
	}
	cost := o.Meter().Snapshot().Sub(before)
	if cost.Calls != 10 {
		t.Errorf("walk of 10 steps charged %d calls, want 10", cost.Calls)
	}
}

func TestWalkValidation(t *testing.T) {
	t.Parallel()
	o := newOracle(t, 61, 8)
	g := NewOracleGraph(o)
	if _, err := NewWalk(o, g, o.PeerByIndex(0), 0, rand.New(rand.NewPCG(5, 5))); err == nil {
		t.Error("zero steps should fail")
	}
	if got := mustWalk(t, o, g).Name(); got != "walk-4" {
		t.Errorf("Name = %q", got)
	}
}

func mustWalk(t *testing.T, o *dht.Oracle, g Graph) *Walk {
	t.Helper()
	w, err := NewWalk(o, g, o.PeerByIndex(0), 4, rand.New(rand.NewPCG(6, 6)))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOracleGraphNeighbors(t *testing.T) {
	t.Parallel()
	const n = 128
	o := newOracle(t, 71, n)
	g := NewOracleGraph(o)
	nbrs, err := g.Neighbors(o.PeerByIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) < 5 {
		t.Errorf("got %d neighbors, expected around log2(n)", len(nbrs))
	}
	seen := make(map[int]bool, len(nbrs))
	for _, p := range nbrs {
		if p.Owner == 0 {
			t.Error("self in neighbor list")
		}
		if seen[p.Owner] {
			t.Errorf("duplicate neighbor %d", p.Owner)
		}
		seen[p.Owner] = true
	}
	if _, err := g.Neighbors(dht.Peer{Point: 999}); err == nil {
		t.Error("unknown peer should fail")
	}
}

func TestNetworkGraph(t *testing.T) {
	t.Parallel()
	o := newOracle(t, 81, 16)
	inner := NewOracleGraph(o)
	g := NewNetworkGraph(inner.Neighbors)
	nbrs, err := g.Neighbors(o.PeerByIndex(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) == 0 {
		t.Error("no neighbors through adapter")
	}
}
