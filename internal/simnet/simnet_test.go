package simnet

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

// echoHandler replies with its request payload.
func echoHandler(_ NodeID, msg Message) (Message, error) {
	return msg, nil
}

// transports under test, constructed fresh per case.
func newTransports() map[string]func() Transport {
	return map[string]func() Transport{
		"direct": func() Transport { return NewDirect() },
		"chan":   func() Transport { return NewChan() },
	}
}

func TestTransportRoundTrip(t *testing.T) {
	t.Parallel()
	for name, mk := range newTransports() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := mk()
			defer tr.Close()
			if err := tr.Register(1, echoHandler); err != nil {
				t.Fatal(err)
			}
			resp, err := tr.Call(2, 1, "hello")
			if err != nil {
				t.Fatal(err)
			}
			if resp != "hello" {
				t.Errorf("resp = %v, want hello", resp)
			}
			cost := tr.Meter().Snapshot()
			if cost.Calls != 1 || cost.Messages != 2 {
				t.Errorf("cost = %+v, want 1 call / 2 messages", cost)
			}
		})
	}
}

func TestTransportUnknownNode(t *testing.T) {
	t.Parallel()
	for name, mk := range newTransports() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := mk()
			defer tr.Close()
			if _, err := tr.Call(1, 99, "x"); !errors.Is(err, ErrUnknownNode) {
				t.Errorf("err = %v, want ErrUnknownNode", err)
			}
			if got := tr.Meter().Snapshot().Failures; got != 1 {
				t.Errorf("failures = %d, want 1", got)
			}
		})
	}
}

func TestTransportDuplicateRegister(t *testing.T) {
	t.Parallel()
	for name, mk := range newTransports() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := mk()
			defer tr.Close()
			if err := tr.Register(1, echoHandler); err != nil {
				t.Fatal(err)
			}
			if err := tr.Register(1, echoHandler); !errors.Is(err, ErrDuplicateID) {
				t.Errorf("err = %v, want ErrDuplicateID", err)
			}
			if err := tr.Register(2, nil); err == nil {
				t.Error("nil handler should fail")
			}
		})
	}
}

func TestTransportDeregister(t *testing.T) {
	t.Parallel()
	for name, mk := range newTransports() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := mk()
			defer tr.Close()
			if err := tr.Register(1, echoHandler); err != nil {
				t.Fatal(err)
			}
			tr.Deregister(1)
			if _, err := tr.Call(2, 1, "x"); !errors.Is(err, ErrUnknownNode) {
				t.Errorf("err = %v, want ErrUnknownNode", err)
			}
			// Re-registering after deregister succeeds.
			if err := tr.Register(1, echoHandler); err != nil {
				t.Errorf("re-register: %v", err)
			}
		})
	}
}

func TestTransportClose(t *testing.T) {
	t.Parallel()
	for name, mk := range newTransports() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := mk()
			if err := tr.Register(1, echoHandler); err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Call(2, 1, "x"); !errors.Is(err, ErrClosed) {
				t.Errorf("Call after close: err = %v, want ErrClosed", err)
			}
			if err := tr.Register(3, echoHandler); !errors.Is(err, ErrClosed) {
				t.Errorf("Register after close: err = %v, want ErrClosed", err)
			}
		})
	}
}

func TestTransportHandlerError(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("handler exploded")
	for name, mk := range newTransports() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := mk()
			defer tr.Close()
			err := tr.Register(1, func(NodeID, Message) (Message, error) {
				return nil, sentinel
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Call(2, 1, "x"); !errors.Is(err, sentinel) {
				t.Errorf("err = %v, want wrapped sentinel", err)
			}
		})
	}
}

func TestFaultsDeadNode(t *testing.T) {
	t.Parallel()
	faults := NewFaults(nil)
	tr := NewDirect(WithFaults(faults))
	defer tr.Close()
	if err := tr.Register(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	faults.SetDead(1, true)
	if _, err := tr.Call(2, 1, "x"); !errors.Is(err, ErrNodeDead) {
		t.Errorf("err = %v, want ErrNodeDead", err)
	}
	faults.SetDead(1, false)
	if _, err := tr.Call(2, 1, "x"); err != nil {
		t.Errorf("revived node call failed: %v", err)
	}
}

func TestFaultsDropRate(t *testing.T) {
	t.Parallel()
	faults := NewFaults(rand.New(rand.NewPCG(1, 1)))
	faults.SetDropRate(0.5)
	tr := NewChan(WithChanFaults(faults))
	defer tr.Close()
	if err := tr.Register(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	drops := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if _, err := tr.Call(2, 1, "x"); errors.Is(err, ErrDropped) {
			drops++
		}
	}
	if drops < trials/3 || drops > 2*trials/3 {
		t.Errorf("drops = %d out of %d, want about half", drops, trials)
	}
	// Clamping.
	faults.SetDropRate(-1)
	if _, err := tr.Call(2, 1, "x"); err != nil {
		t.Errorf("rate clamped to 0 but call failed: %v", err)
	}
}

func TestDirectConcurrentCalls(t *testing.T) {
	t.Parallel()
	tr := NewDirect()
	defer tr.Close()
	for id := NodeID(0); id < 8; id++ {
		if err := tr.Register(id, echoHandler); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const perWorker = 500
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				to := NodeID(i % 8)
				if _, err := tr.Call(NodeID(w), to, i); err != nil {
					t.Errorf("call failed: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	cost := tr.Meter().Snapshot()
	if cost.Calls != 8*perWorker {
		t.Errorf("calls = %d, want %d", cost.Calls, 8*perWorker)
	}
}

func TestChanSerializesPerNode(t *testing.T) {
	t.Parallel()
	tr := NewChan()
	defer tr.Close()
	// A handler that is not internally synchronized: the transport's
	// per-node serialization must protect it.
	counter := 0
	err := tr.Register(1, func(NodeID, Message) (Message, error) {
		counter++
		return counter, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const calls = 200
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := tr.Call(NodeID(100+w), 1, nil); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if counter != 4*calls {
		t.Errorf("counter = %d, want %d (lost updates imply races)", counter, 4*calls)
	}
}

func TestChanDeregisterDuringCalls(t *testing.T) {
	t.Parallel()
	tr := NewChan()
	defer tr.Close()
	if err := tr.Register(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_, err := tr.Call(2, 1, i)
			if err != nil && !errors.Is(err, ErrUnknownNode) {
				t.Errorf("unexpected error: %v", err)
				return
			}
		}
	}()
	tr.Deregister(1)
	wg.Wait()
}

func TestMeterChargeAndReset(t *testing.T) {
	t.Parallel()
	var m Meter
	m.Charge(3, 7)
	c := m.Snapshot()
	if c.Calls != 3 || c.Messages != 7 {
		t.Errorf("snapshot = %+v", c)
	}
	delta := m.Snapshot().Sub(c)
	if delta.Calls != 0 || delta.Messages != 0 {
		t.Errorf("delta = %+v, want zero", delta)
	}
	m.Reset()
	if c := m.Snapshot(); c.Calls != 0 || c.Messages != 0 || c.Failures != 0 {
		t.Errorf("after reset = %+v", c)
	}
}

func TestMeterConcurrentCharge(t *testing.T) {
	t.Parallel()
	var m Meter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Charge(1, 2)
			}
		}()
	}
	wg.Wait()
	c := m.Snapshot()
	if c.Calls != 8000 || c.Messages != 16000 {
		t.Errorf("concurrent charge lost updates: %+v", c)
	}
}

func TestChanCloseIdempotent(t *testing.T) {
	t.Parallel()
	tr := NewChan()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func ExampleDirect() {
	tr := NewDirect()
	defer tr.Close()
	_ = tr.Register(7, func(from NodeID, msg Message) (Message, error) {
		return fmt.Sprintf("pong from 7 to %d", from), nil
	})
	resp, _ := tr.Call(3, 7, "ping")
	fmt.Println(resp)
	// Output: pong from 7 to 3
}
