package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Chan is a goroutine-per-node transport: every registered node runs a
// server goroutine that processes its inbox sequentially, so a node's
// handler executions are serialized exactly as a single-threaded peer
// process would be. It is used by the churn experiments, where many
// driver goroutines (stabilizers, samplers, the churn schedule) issue
// RPCs concurrently.
//
// Handlers must not issue nested RPCs that can form a call cycle; the
// Chord handlers issue none at all, so no deadlock is possible.
type Chan struct {
	mu      sync.RWMutex
	inboxes map[NodeID]chan envelope
	closed  bool
	wg      sync.WaitGroup
	meter   Meter
	faults  *Faults
	bufSize int
	byz     atomic.Pointer[Interceptor]
}

var (
	_ Transport     = (*Chan)(nil)
	_ Interceptable = (*Chan)(nil)
)

type envelope struct {
	from  NodeID
	msg   Message
	reply chan result
}

type result struct {
	msg Message
	err error
}

// ChanOption configures a Chan transport.
type ChanOption func(*Chan)

// WithChanFaults attaches a fault-injection plan.
func WithChanFaults(f *Faults) ChanOption {
	return func(c *Chan) { c.faults = f }
}

// WithInboxSize overrides the per-node inbox capacity (default 64).
func WithInboxSize(n int) ChanOption {
	return func(c *Chan) {
		if n > 0 {
			c.bufSize = n
		}
	}
}

// NewChan returns a ready-to-use goroutine-per-node transport. Callers
// must Close it to stop the server goroutines.
func NewChan(opts ...ChanOption) *Chan {
	c := &Chan{inboxes: make(map[NodeID]chan envelope), bufSize: 64}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Register implements Transport: it starts the node's server goroutine.
func (c *Chan) Register(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("simnet: nil handler for node %d", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.inboxes[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	inbox := make(chan envelope, c.bufSize)
	c.inboxes[id] = inbox
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for env := range inbox {
			resp, err := h(env.from, env.msg)
			env.reply <- result{msg: resp, err: err}
		}
	}()
	return nil
}

// Deregister implements Transport: it stops the node's server goroutine.
// In-flight requests already queued are still answered before shutdown.
func (c *Chan) Deregister(id NodeID) {
	c.mu.Lock()
	inbox, ok := c.inboxes[id]
	if ok {
		delete(c.inboxes, id)
	}
	c.mu.Unlock()
	if ok {
		close(inbox)
	}
}

// Call implements Transport.
func (c *Chan) Call(from, to NodeID, msg Message) (Message, error) {
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, ErrClosed
	}
	inbox, ok := c.inboxes[to]
	c.mu.RUnlock()
	if !ok {
		c.meter.ChargeFailure()
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	if err := c.faults.Check(from, to, msg); err != nil {
		c.meter.ChargeFailure()
		return nil, fmt.Errorf("call %d->%d: %w", from, to, err)
	}
	reply := make(chan result, 1)
	// The inbox may have been closed by a concurrent Deregister; sending
	// to a closed channel panics, so recover that specific case into an
	// unknown-node error.
	if err := c.send(inbox, envelope{from: from, msg: msg, reply: reply}); err != nil {
		c.meter.ChargeFailure()
		return nil, fmt.Errorf("call %d->%d: %w", from, to, err)
	}
	res := <-reply
	if bz := c.byz.Load(); bz != nil {
		res.msg, res.err = (*bz)(from, to, msg, res.msg, res.err)
	}
	if res.err != nil {
		c.meter.ChargeFailure()
		return nil, fmt.Errorf("call %d->%d: %w", from, to, res.err)
	}
	c.meter.ChargeSuccess()
	return res.msg, nil
}

// send delivers env to inbox, converting a send-on-closed-channel panic
// (a Deregister race) into ErrUnknownNode.
func (c *Chan) send(inbox chan envelope, env envelope) (err error) {
	defer func() {
		if recover() != nil {
			err = ErrUnknownNode
		}
	}()
	inbox <- env
	return nil
}

// SetInterceptor arms (nil disarms) the Byzantine hook. The hook runs
// in the calling goroutine once the destination's reply arrives, so a
// node's serialized handler order is unaffected; disarmed it costs one
// atomic pointer load per call.
func (c *Chan) SetInterceptor(ic Interceptor) {
	if ic == nil {
		c.byz.Store(nil)
		return
	}
	c.byz.Store(&ic)
}

// Meter implements Transport.
func (c *Chan) Meter() *Meter { return &c.meter }

// Close implements Transport: it stops all server goroutines and waits
// for them to drain.
func (c *Chan) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	inboxes := c.inboxes
	c.inboxes = make(map[NodeID]chan envelope)
	c.mu.Unlock()
	for _, inbox := range inboxes {
		close(inbox)
	}
	c.wg.Wait()
	return nil
}
