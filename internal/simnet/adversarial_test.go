package simnet

import (
	"errors"
	"fmt"
	"testing"
)

// This file covers the adversarial fault families — named partitions,
// asymmetric per-link drops, message-class loss — and the Byzantine
// interceptor hook on both in-process transports. The sim.Transport
// equivalents (virtual time, heal events on the kernel) live in
// internal/sim.

func TestFaultsPartition(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"direct", "chan"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			faults := NewFaults(nil)
			tr := faultTransports(faults)[name]
			defer tr.Close()
			for id := NodeID(1); id <= 4; id++ {
				if err := tr.Register(id, echoHandler); err != nil {
					t.Fatal(err)
				}
			}
			// Cut {1,2} from {3}; node 4 is in no group and unaffected.
			faults.Partition("split", []NodeID{1, 2}, []NodeID{3})
			for _, c := range []struct {
				from, to NodeID
				blocked  bool
			}{
				{1, 3, true}, {3, 1, true}, {2, 3, true},
				{1, 2, false}, {4, 1, false}, {4, 3, false}, {3, 4, false},
			} {
				_, err := tr.Call(c.from, c.to, "x")
				if c.blocked && !errors.Is(err, ErrPartitioned) {
					t.Errorf("%d->%d: err = %v, want ErrPartitioned", c.from, c.to, err)
				}
				if !c.blocked && err != nil {
					t.Errorf("%d->%d: err = %v, want nil", c.from, c.to, err)
				}
				if got := faults.Partitioned(c.from, c.to); got != c.blocked {
					t.Errorf("Partitioned(%d,%d) = %v, want %v", c.from, c.to, got, c.blocked)
				}
			}
			// Healing restores full connectivity.
			faults.Heal("split")
			if _, err := tr.Call(1, 3, "x"); err != nil {
				t.Errorf("after heal: %v", err)
			}
			// Healing an unknown partition is a no-op.
			faults.Heal("no-such-partition")
		})
	}
}

// TestFaultsPartitionsCompose: two named partitions block independently;
// an RPC passes only when no installed partition separates it.
func TestFaultsPartitionsCompose(t *testing.T) {
	t.Parallel()
	faults := NewFaults(nil)
	faults.Partition("a", []NodeID{1}, []NodeID{2})
	faults.Partition("b", []NodeID{1}, []NodeID{3})
	if err := faults.Check(1, 2, "x"); !errors.Is(err, ErrPartitioned) {
		t.Errorf("partition a: %v", err)
	}
	if err := faults.Check(1, 3, "x"); !errors.Is(err, ErrPartitioned) {
		t.Errorf("partition b: %v", err)
	}
	faults.Heal("a")
	if err := faults.Check(1, 2, "x"); err != nil {
		t.Errorf("after healing a: %v", err)
	}
	if err := faults.Check(1, 3, "x"); !errors.Is(err, ErrPartitioned) {
		t.Errorf("b must survive healing a: %v", err)
	}
	// Replacing a partition by name drops its old groups.
	faults.Partition("b", []NodeID{2}, []NodeID{3})
	if err := faults.Check(1, 3, "x"); err != nil {
		t.Errorf("after replacing b: %v", err)
	}
	if err := faults.Check(2, 3, "x"); !errors.Is(err, ErrPartitioned) {
		t.Errorf("replaced b: %v", err)
	}
}

// TestFaultsLinkDropAsymmetric: a per-link rule kills one direction of
// one edge and nothing else.
func TestFaultsLinkDropAsymmetric(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"direct", "chan"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			faults := NewFaults(nil)
			faults.SetLinkDropRate(1, 2, 1)
			tr := faultTransports(faults)[name]
			defer tr.Close()
			for id := NodeID(1); id <= 3; id++ {
				if err := tr.Register(id, echoHandler); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := tr.Call(1, 2, "x"); !errors.Is(err, ErrDropped) {
				t.Errorf("1->2: err = %v, want ErrDropped", err)
			}
			if _, err := tr.Call(2, 1, "x"); err != nil {
				t.Errorf("reverse direction 2->1: %v", err)
			}
			if _, err := tr.Call(1, 3, "x"); err != nil {
				t.Errorf("other link 1->3: %v", err)
			}
			faults.SetLinkDropRate(1, 2, 0)
			if _, err := tr.Call(1, 2, "x"); err != nil {
				t.Errorf("after removing rule: %v", err)
			}
		})
	}
}

type pingMsg struct{}
type dataMsg struct{}

// TestFaultsMessageClassDrop: class-targeted loss drops only the named
// payload type.
func TestFaultsMessageClassDrop(t *testing.T) {
	t.Parallel()
	faults := NewFaults(nil)
	faults.SetMessageDropRate(MessageName(pingMsg{}), 1)
	tr := NewDirect(WithFaults(faults))
	defer tr.Close()
	if err := tr.Register(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(2, 1, pingMsg{}); !errors.Is(err, ErrDropped) {
		t.Errorf("targeted class: err = %v, want ErrDropped", err)
	}
	if _, err := tr.Call(2, 1, dataMsg{}); err != nil {
		t.Errorf("other class: %v", err)
	}
	faults.SetMessageDropRate(MessageName(pingMsg{}), 0)
	if _, err := tr.Call(2, 1, pingMsg{}); err != nil {
		t.Errorf("after removing rule: %v", err)
	}
}

// TestInterceptorBothTransports: an armed interceptor can rewrite a
// reply or inject a failure; disarming restores honest delivery.
func TestInterceptorBothTransports(t *testing.T) {
	t.Parallel()
	type iTransport interface {
		Transport
		Interceptable
	}
	for name, mk := range map[string]func() iTransport{
		"direct": func() iTransport { return NewDirect() },
		"chan":   func() iTransport { return NewChan() },
	} {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := mk()
			defer tr.Close()
			if err := tr.Register(1, echoHandler); err != nil {
				t.Fatal(err)
			}
			// Rewrite: node 1's replies to node 2 are forged.
			tr.SetInterceptor(func(from, to NodeID, msg, resp Message, err error) (Message, error) {
				if from == 2 && to == 1 {
					return "forged", nil
				}
				return resp, err
			})
			resp, err := tr.Call(2, 1, "honest")
			if err != nil || resp != "forged" {
				t.Errorf("intercepted call = (%v, %v), want (forged, nil)", resp, err)
			}
			resp, err = tr.Call(3, 1, "honest")
			if err != nil || resp != "honest" {
				t.Errorf("unintercepted call = (%v, %v), want (honest, nil)", resp, err)
			}
			// Inject a failure: the meter must charge it as a failure.
			before := tr.Meter().Snapshot().Failures
			tr.SetInterceptor(func(from, to NodeID, msg, resp Message, err error) (Message, error) {
				return nil, fmt.Errorf("censored")
			})
			if _, err := tr.Call(2, 1, "x"); err == nil {
				t.Error("injected failure did not surface")
			}
			if got := tr.Meter().Snapshot().Failures; got != before+1 {
				t.Errorf("failures = %d, want %d", got, before+1)
			}
			// Disarm: honest again.
			tr.SetInterceptor(nil)
			if resp, err := tr.Call(2, 1, "x"); err != nil || resp != "x" {
				t.Errorf("disarmed call = (%v, %v), want (x, nil)", resp, err)
			}
		})
	}
}

// TestFaultsCheckFastPath: an attached-but-empty plan must not disturb
// calls, and emptying a plan re-disarms it.
func TestFaultsCheckFastPath(t *testing.T) {
	t.Parallel()
	faults := NewFaults(nil)
	if faults.active.Load() {
		t.Error("fresh plan is active")
	}
	faults.SetDropRate(0.5)
	if !faults.active.Load() {
		t.Error("plan with a drop rate is inactive")
	}
	faults.SetDropRate(0)
	if faults.active.Load() {
		t.Error("cleared plan still active")
	}
	faults.Partition("p", []NodeID{1}, []NodeID{2})
	if !faults.active.Load() {
		t.Error("partitioned plan is inactive")
	}
	faults.Heal("p")
	if faults.active.Load() {
		t.Error("healed plan still active")
	}
}
