package simnet

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// Faults injects failures into a transport. The zero value injects
// nothing. A plan composes four fault families, checked in this order
// for every RPC:
//
//  1. dead nodes (SetDead) — ErrNodeDead,
//  2. named partitions (Partition/Heal) — ErrPartitioned when source and
//     destination sit in different groups of any installed partition,
//  3. targeted drops — per-link rates (SetLinkDropRate) and
//     message-class rates (SetMessageDropRate) — ErrDropped,
//  4. the global drop rate (SetDropRate) — ErrDropped.
//
// All methods are safe for concurrent use. When no fault is installed,
// Check costs one atomic load, so a plan can stay permanently attached
// to a hot transport.
type Faults struct {
	mu       sync.Mutex
	dead     map[NodeID]bool
	dropRate float64
	linkDrop map[link]float64
	msgDrop  map[string]float64
	parts    map[string]partition
	rng      *rand.Rand

	// active is false while the plan injects nothing, letting Check
	// return before taking the mutex. Every mutator refreshes it.
	active atomic.Bool
}

// link keys a directed edge for per-link drop rates.
type link struct{ from, to NodeID }

// partition maps each member node to its group index; nodes absent from
// the map are not isolated by this partition.
type partition map[NodeID]int

// NewFaults returns a fault plan using rng for drop decisions. A nil
// rng is valid: the first probabilistic decision lazily seeds a fixed
// deterministic PCG, so NewFaults(nil) followed by SetDropRate drops
// messages reproducibly. Pass an explicit rng to control the decision
// stream (e.g. to fork it per scenario).
func NewFaults(rng *rand.Rand) *Faults {
	return &Faults{dead: make(map[NodeID]bool), rng: rng}
}

// refresh recomputes the fast-path flag (caller holds f.mu).
func (f *Faults) refresh() {
	f.active.Store(len(f.dead) > 0 || f.dropRate > 0 ||
		len(f.linkDrop) > 0 || len(f.msgDrop) > 0 || len(f.parts) > 0)
}

// SetDead marks a node dead or alive. RPCs to a dead node fail with
// ErrNodeDead without reaching its handler.
func (f *Faults) SetDead(id NodeID, dead bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead == nil {
		f.dead = make(map[NodeID]bool)
	}
	if dead {
		f.dead[id] = true
	} else {
		delete(f.dead, id)
	}
	f.refresh()
}

// SetDropRate sets the probability that any RPC is dropped in flight
// (failing with ErrDropped). Rates outside [0,1] are clamped. Drop
// decisions use the plan's rng, lazily seeded with a fixed PCG when
// NewFaults was given nil — a non-zero rate always drops.
func (f *Faults) SetDropRate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropRate = clampRate(rate)
	f.refresh()
}

// SetLinkDropRate sets the drop probability for the directed link
// from -> to only; rate 0 removes the rule. Links are asymmetric:
// dropping A->B at 1.0 leaves B->A untouched.
func (f *Faults) SetLinkDropRate(from, to NodeID, rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rate = clampRate(rate)
	key := link{from, to}
	if rate == 0 {
		delete(f.linkDrop, key)
	} else {
		if f.linkDrop == nil {
			f.linkDrop = make(map[link]float64)
		}
		f.linkDrop[key] = rate
	}
	f.refresh()
}

// SetMessageDropRate sets the drop probability for one message class,
// named as MessageName names it (e.g. "chord.nextHopReq"); rate 0
// removes the rule. Class rules let a plan censor one RPC type (say,
// routing requests) while heartbeats flow untouched.
func (f *Faults) SetMessageDropRate(class string, rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rate = clampRate(rate)
	if rate == 0 {
		delete(f.msgDrop, class)
	} else {
		if f.msgDrop == nil {
			f.msgDrop = make(map[string]float64)
		}
		f.msgDrop[class] = rate
	}
	f.refresh()
}

// Partition installs (or replaces) a named partition: nodes in
// different groups cannot exchange RPCs (both directions fail with
// ErrPartitioned) until Heal removes it. Nodes listed in no group are
// unaffected by this partition. Multiple named partitions compose: an
// RPC is blocked if any installed partition separates its endpoints.
// Schedule Partition/Heal from sim.Kernel callbacks to cut and heal the
// network at chosen virtual times.
func (f *Faults) Partition(name string, groups ...[]NodeID) {
	p := make(partition)
	for g, nodes := range groups {
		for _, id := range nodes {
			p[id] = g
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.parts == nil {
		f.parts = make(map[string]partition)
	}
	f.parts[name] = p
	f.refresh()
}

// Heal removes the named partition; unknown names are a no-op.
func (f *Faults) Heal(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.parts, name)
	f.refresh()
}

// Partitioned reports whether an installed partition currently
// separates from and to.
func (f *Faults) Partitioned(from, to NodeID) bool {
	if f == nil || !f.active.Load() {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned(from, to)
}

// partitioned is the lock-held separation check.
func (f *Faults) partitioned(from, to NodeID) bool {
	for _, p := range f.parts {
		gf, okf := p[from]
		gt, okt := p[to]
		if okf && okt && gf != gt {
			return true
		}
	}
	return false
}

// Check returns the error the fault plan injects for an RPC from
// "from" to "to" carrying msg, or nil to let it through. Transports
// call it once per RPC; it is exported so that transports outside this
// package (internal/sim, tests) share the same fault plans. A nil or
// empty plan costs one nil check plus one atomic load.
func (f *Faults) Check(from, to NodeID, msg Message) error {
	if f == nil || !f.active.Load() {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[to] {
		return ErrNodeDead
	}
	if len(f.parts) > 0 && f.partitioned(from, to) {
		return ErrPartitioned
	}
	if len(f.linkDrop) > 0 && f.roll(f.linkDrop[link{from, to}]) {
		return ErrDropped
	}
	if len(f.msgDrop) > 0 && f.roll(f.msgDrop[MessageName(msg)]) {
		return ErrDropped
	}
	if f.roll(f.dropRate) {
		return ErrDropped
	}
	return nil
}

// roll decides one drop with probability rate (caller holds f.mu). It
// lazily seeds the deterministic fallback PCG so plans built with
// NewFaults(nil) still drop — the bug class where a configured rate
// silently did nothing.
func (f *Faults) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	if f.rng == nil {
		f.rng = rand.New(rand.NewPCG(0x6b696e67, 0x73616961))
	}
	return f.rng.Float64() < rate
}

// clampRate clamps a probability into [0,1].
func clampRate(rate float64) float64 {
	if rate < 0 {
		return 0
	}
	if rate > 1 {
		return 1
	}
	return rate
}
