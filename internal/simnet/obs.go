package simnet

import (
	"errors"
	"reflect"
)

// ErrorClass classifies an RPC outcome into the transport error
// taxonomy: "ok" for success, "unknown" / "dead" / "dropped" /
// "partitioned" / "closed" for the transport errors, and "app" for errors the
// destination handler returned. The strings are stable: the wire codec
// carries them in error envelopes and the obs layer uses them as
// metric label values and trace hop outcomes.
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrUnknownNode):
		return "unknown"
	case errors.Is(err, ErrNodeDead):
		return "dead"
	case errors.Is(err, ErrDropped):
		return "dropped"
	case errors.Is(err, ErrPartitioned):
		return "partitioned"
	case errors.Is(err, ErrClosed):
		return "closed"
	default:
		return "app"
	}
}

// MessageName names an RPC payload type for trace records (e.g.
// "chord.nextHopReq"). It reflects on the payload, so transports call
// it only on traced paths.
func MessageName(msg Message) string {
	if msg == nil {
		return "<nil>"
	}
	t := reflect.TypeOf(msg)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.String()
}
