package simnet

import (
	"sync"
	"testing"
	"time"
)

// Edge cases of the latency histogram: empty snapshots, saturation of a
// single bucket, and Reset racing the constant-latency fast lane.

func TestLatencyEmptyQuantiles(t *testing.T) {
	t.Parallel()
	var m Meter
	l := m.Latency()
	if l.Count != 0 || l.SumNanos != 0 {
		t.Fatalf("empty histogram: count %d sum %d", l.Count, l.SumNanos)
	}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := l.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if l.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", l.Mean())
	}
}

func TestLatencySingleBucketSaturation(t *testing.T) {
	t.Parallel()
	var m Meter
	// 1500ns lands in bucket [1024, 2048); with every record identical
	// all quantiles must interpolate inside that one bucket.
	const d = 1500 * time.Nanosecond
	const n = 10_000
	for i := 0; i < n; i++ {
		m.RecordLatency(d)
	}
	l := m.Latency()
	if l.Count != n {
		t.Fatalf("count = %d, want %d", l.Count, n)
	}
	if l.SumNanos != n*int64(d) {
		t.Fatalf("sum = %d, want %d", l.SumNanos, n*int64(d))
	}
	var nonzero int
	for b, c := range l.Buckets {
		if c == 0 {
			continue
		}
		nonzero++
		if c != n {
			t.Fatalf("bucket %d holds %d records, want all %d", b, c, n)
		}
	}
	if nonzero != 1 {
		t.Fatalf("%d buckets populated, want exactly 1", nonzero)
	}
	lo, hi := time.Duration(1024), time.Duration(2048)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := l.Quantile(q); got < lo || got >= hi {
			t.Errorf("Quantile(%v) = %v outside saturated bucket [%v, %v)", q, got, lo, hi)
		}
	}
	if mean := l.Mean(); mean != d {
		t.Errorf("Mean = %v, want %v", mean, d)
	}
}

func TestLatencyZeroAndNegativeRecords(t *testing.T) {
	t.Parallel()
	var m Meter
	m.RecordLatency(0)
	m.RecordLatency(-5 * time.Second) // clamped to zero
	l := m.Latency()
	if l.Count != 2 || l.SumNanos != 0 {
		t.Fatalf("count %d sum %d, want 2 and 0", l.Count, l.SumNanos)
	}
	if l.Buckets[0] != 2 {
		t.Fatalf("zero bucket holds %d, want 2", l.Buckets[0])
	}
	if got := l.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %v, want 0", got)
	}
}

// TestLatencyResetDuringConstLane races Reset against the
// constant-latency fast lane. The invariant under the race: snapshots
// never tear into inconsistency worse than the documented per-counter
// linearizability — counts stay non-negative and within the number of
// charges issued — and after the chargers quiesce, one final Reset
// leaves the meter truly empty (Reset must clear the lane's counter,
// not just the explicit histogram).
func TestLatencyResetDuringConstLane(t *testing.T) {
	t.Parallel()
	var m Meter
	const d = time.Millisecond
	m.ArmConstLatency(d)

	const chargers = 4
	const perCharger = 5_000
	var chargeWG sync.WaitGroup
	chargeWG.Add(chargers)
	for i := 0; i < chargers; i++ {
		go func() {
			defer chargeWG.Done()
			for j := 0; j < perCharger; j++ {
				m.ChargeConstSuccess()
			}
		}()
	}
	stop := make(chan struct{})
	resetDone := make(chan struct{})
	go func() {
		defer close(resetDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Reset()
			l := m.Latency()
			if l.Count < 0 || l.Count > chargers*perCharger {
				t.Errorf("snapshot count %d out of range [0, %d]", l.Count, chargers*perCharger)
				return
			}
			if want := l.Count * int64(d); l.SumNanos != want {
				t.Errorf("const lane sum %d != count %d x %v", l.SumNanos, l.Count, d)
				return
			}
		}
	}()
	chargeWG.Wait()
	close(stop)
	<-resetDone

	// Quiesced: a final reset must leave nothing behind, including the
	// fast lane's derived records.
	m.Reset()
	l := m.Latency()
	if l.Count != 0 || l.SumNanos != 0 {
		t.Fatalf("after quiesced reset: count %d sum %d, want 0", l.Count, l.SumNanos)
	}
	if n := m.Snapshot(); n.Calls != 0 || n.Messages != 0 {
		t.Fatalf("after quiesced reset: snapshot %+v, want zeros", n)
	}
}

func TestLatencyWindowPartitionsHistory(t *testing.T) {
	t.Parallel()
	var m Meter
	var cursor Latency

	m.RecordLatency(time.Millisecond)
	m.RecordLatency(2 * time.Millisecond)
	w1 := m.LatencyWindow(&cursor)
	if w1.Count != 2 || w1.SumNanos != int64(3*time.Millisecond) {
		t.Fatalf("window 1: count %d sum %d; want the first two records", w1.Count, w1.SumNanos)
	}

	m.RecordLatency(8 * time.Millisecond)
	w2 := m.LatencyWindow(&cursor)
	if w2.Count != 1 || w2.SumNanos != int64(8*time.Millisecond) {
		t.Fatalf("window 2: count %d sum %d; want only the third record", w2.Count, w2.SumNanos)
	}

	// Quiet window: no records between reads.
	w3 := m.LatencyWindow(&cursor)
	if w3.Count != 0 || w3.SumNanos != 0 {
		t.Fatalf("quiet window: count %d sum %d; want zeros", w3.Count, w3.SumNanos)
	}

	// Windows must sum back to the full history.
	total := m.Latency()
	if got := w1.Count + w2.Count + w3.Count; got != total.Count {
		t.Fatalf("window counts sum to %d; meter holds %d", got, total.Count)
	}
	if got := w1.SumNanos + w2.SumNanos + w3.SumNanos; got != total.SumNanos {
		t.Fatalf("window sums total %d; meter holds %d", got, total.SumNanos)
	}
}

func TestLatencyWindowIndependentCursors(t *testing.T) {
	t.Parallel()
	var m Meter
	var a, b Latency
	m.RecordLatency(time.Millisecond)
	if w := m.LatencyWindow(&a); w.Count != 1 {
		t.Fatalf("cursor a window 1: count %d; want 1", w.Count)
	}
	m.RecordLatency(time.Millisecond)
	// Cursor b never read, so its window spans the whole history.
	if w := m.LatencyWindow(&b); w.Count != 2 {
		t.Fatalf("cursor b window: count %d; want full history (2)", w.Count)
	}
	if w := m.LatencyWindow(&a); w.Count != 1 {
		t.Fatalf("cursor a window 2: count %d; want 1", w.Count)
	}
}

func TestLatencyWindowConstLane(t *testing.T) {
	t.Parallel()
	var m Meter
	const d = 250 * time.Microsecond
	m.ArmConstLatency(d)
	var cursor Latency
	m.ChargeConstSuccess()
	m.ChargeConstSuccess()
	w := m.LatencyWindow(&cursor)
	if w.Count != 2 || w.SumNanos != 2*int64(d) {
		t.Fatalf("const-lane window: count %d sum %d; want 2 records of %v", w.Count, w.SumNanos, d)
	}
	m.ChargeConstSuccess()
	w = m.LatencyWindow(&cursor)
	if w.Count != 1 || w.SumNanos != int64(d) {
		t.Fatalf("const-lane window 2: count %d sum %d; want 1 record of %v", w.Count, w.SumNanos, d)
	}
}
