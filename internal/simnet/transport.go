package simnet

import (
	"errors"
)

// NodeID identifies a node on the simulated network. Chord uses the
// node's ring point as its NodeID.
type NodeID uint64

// Message is an opaque RPC payload. Transports never inspect it.
type Message any

// Handler processes one RPC at its destination and produces the reply.
// Handlers must not block indefinitely; they may issue further RPCs
// through the transport provided the resulting call graph is acyclic
// (the Chord handlers issue none).
type Handler func(from NodeID, msg Message) (Message, error)

// Transport is a synchronous RPC fabric between simulated nodes.
type Transport interface {
	// Call performs one RPC from node "from" to node "to" and returns the
	// destination handler's reply.
	Call(from, to NodeID, msg Message) (Message, error)
	// Register attaches a node's handler to the network.
	Register(id NodeID, h Handler) error
	// Deregister detaches a node. Subsequent calls to it fail with
	// ErrUnknownNode.
	Deregister(id NodeID)
	// Meter exposes the transport's cost counters.
	Meter() *Meter
	// Close releases transport resources. Calls after Close fail with
	// ErrClosed.
	Close() error
}

// MultiHandler processes one RPC on behalf of any node its registrant
// owns: unlike Handler it receives the destination id, so one handler
// (and one registration) can serve an entire overlay. Implementations
// resolve "to" against their own membership; the transport never sees
// a per-node handler table for multi-registered nodes.
type MultiHandler func(to, from NodeID, msg Message) (Message, error)

// MultiRegistrar is implemented by transports that can bind a single
// handler to a dynamic set of nodes at once. owns reports whether the
// registrant currently hosts a live node with the given id; the
// transport consults it where it would consult its per-node handler
// table, so calls to ids the registrant does not own fail with
// ErrUnknownNode exactly as calls to unregistered nodes do. Per-node
// Register/Deregister keeps working alongside (and is checked first);
// overlays fall back to it on transports without this interface.
//
// Bulk registration exists for scale: a 10^7-node overlay would
// otherwise pay a 10^7-entry handler map plus one method-value closure
// per node just to route messages back into a single Network.
type MultiRegistrar interface {
	RegisterMulti(owns func(NodeID) bool, h MultiHandler) error
}

// Transport error conditions.
var (
	ErrUnknownNode = errors.New("simnet: unknown node")
	ErrNodeDead    = errors.New("simnet: node is dead")
	ErrDropped     = errors.New("simnet: message dropped")
	ErrPartitioned = errors.New("simnet: network partitioned")
	ErrClosed      = errors.New("simnet: transport closed")
	ErrDuplicateID = errors.New("simnet: node id already registered")
)

// Interceptor is a Byzantine hook: it observes every RPC after the
// destination handler has produced (resp, err) and may replace either —
// modelling nodes that lie rather than crash. from, to and msg identify
// the call; the returned pair is what the caller sees (and what the
// meter charges). Implementations run on every transport goroutine
// concurrently, so they must be safe for concurrent use, and for
// reproducible simulations they must be stateless: decide from hashes
// of the call's own arguments, never from a shared rng, so the outcome
// is independent of goroutine interleaving.
type Interceptor func(from, to NodeID, msg Message, resp Message, err error) (Message, error)

// Interceptable is implemented by transports whose RPCs a Byzantine
// adversary can intercept (all three in-process transports: Direct,
// Chan and sim.Transport). SetInterceptor arms (nil disarms) the hook;
// disarmed it costs one atomic pointer load per call, keeping the
// honest hot path allocation-free.
type Interceptable interface {
	SetInterceptor(Interceptor)
}
