package simnet

import (
	"errors"
	"math/rand/v2"
	"sync"
)

// NodeID identifies a node on the simulated network. Chord uses the
// node's ring point as its NodeID.
type NodeID uint64

// Message is an opaque RPC payload. Transports never inspect it.
type Message any

// Handler processes one RPC at its destination and produces the reply.
// Handlers must not block indefinitely; they may issue further RPCs
// through the transport provided the resulting call graph is acyclic
// (the Chord handlers issue none).
type Handler func(from NodeID, msg Message) (Message, error)

// Transport is a synchronous RPC fabric between simulated nodes.
type Transport interface {
	// Call performs one RPC from node "from" to node "to" and returns the
	// destination handler's reply.
	Call(from, to NodeID, msg Message) (Message, error)
	// Register attaches a node's handler to the network.
	Register(id NodeID, h Handler) error
	// Deregister detaches a node. Subsequent calls to it fail with
	// ErrUnknownNode.
	Deregister(id NodeID)
	// Meter exposes the transport's cost counters.
	Meter() *Meter
	// Close releases transport resources. Calls after Close fail with
	// ErrClosed.
	Close() error
}

// Transport error conditions.
var (
	ErrUnknownNode = errors.New("simnet: unknown node")
	ErrNodeDead    = errors.New("simnet: node is dead")
	ErrDropped     = errors.New("simnet: message dropped")
	ErrClosed      = errors.New("simnet: transport closed")
	ErrDuplicateID = errors.New("simnet: node id already registered")
)

// Faults injects failures into a transport. The zero value injects
// nothing. All methods are safe for concurrent use.
type Faults struct {
	mu       sync.Mutex
	dead     map[NodeID]bool
	dropRate float64
	rng      *rand.Rand
}

// NewFaults returns a fault plan using rng for drop decisions. A nil rng
// disables probabilistic drops (only explicit dead nodes fail).
func NewFaults(rng *rand.Rand) *Faults {
	return &Faults{dead: make(map[NodeID]bool), rng: rng}
}

// SetDead marks a node dead or alive. RPCs to a dead node fail with
// ErrNodeDead without reaching its handler.
func (f *Faults) SetDead(id NodeID, dead bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead == nil {
		f.dead = make(map[NodeID]bool)
	}
	if dead {
		f.dead[id] = true
	} else {
		delete(f.dead, id)
	}
}

// SetDropRate sets the probability that any RPC is dropped in flight
// (failing with ErrDropped). Requires a rng; rates outside [0,1] are
// clamped.
func (f *Faults) SetDropRate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	f.dropRate = rate
}

// Check returns the error the fault plan injects for an RPC to "to", or
// nil to let it through. Transports call it once per RPC; it is exported
// so that transports outside this package (internal/sim) share the same
// fault plans.
func (f *Faults) Check(to NodeID) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[to] {
		return ErrNodeDead
	}
	if f.dropRate > 0 && f.rng != nil && f.rng.Float64() < f.dropRate {
		return ErrDropped
	}
	return nil
}
