package simnet

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Virtual-time latency accounting. The counters in Meter measure cost in
// RPC round trips; transports that simulate time (internal/sim) also
// know how long each round trip took on the virtual clock. RecordLatency
// folds those durations into a log-scaled histogram carried by the same
// Meter, so experiments snapshot hop counts and latencies through one
// object with the same before/after discipline.

// latencyBuckets is the number of power-of-two histogram buckets. Bucket
// b counts round trips with duration in [2^(b-1), 2^b) nanoseconds
// (bucket 0 counts exact zeros), so 64 buckets cover every int64
// duration.
const latencyBuckets = 64

// latencyHist is the mutable histogram inside a Meter. Latencies are
// recorded only by time-simulating transports — single-threaded under
// the event kernel, lightly concurrent in free-running mode — so plain
// atomics without striping are contention-appropriate here. The record
// count is not stored separately: it is the sum of the buckets,
// computed at snapshot time, keeping the hot path at two atomic adds.
type latencyHist struct {
	sum     atomic.Int64 // nanoseconds
	buckets [latencyBuckets]atomic.Int64
}

// RecordLatency records one RPC round trip of virtual duration d.
// Negative durations are clamped to zero. Safe for concurrent use.
func (m *Meter) RecordLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.lat.sum.Add(int64(d))
	m.lat.buckets[latencyBucket(int64(d))].Add(1)
}

// latencyBucket maps nanoseconds to a histogram bucket index.
func latencyBucket(nanos int64) int {
	return bits.Len64(uint64(nanos)) % latencyBuckets
}

// LatencySumNanos returns the total recorded virtual time without
// snapshotting the buckets — the read behind free-running virtual
// clocks (internal/sim derives "now" from it: with one record per RPC,
// total recorded latency is exactly the sequential virtual time). It
// includes the constant-latency fast lane (count x armed constant).
func (m *Meter) LatencySumNanos() int64 {
	sum := m.lat.sum.Load()
	if c := m.constNanos.Load(); c > 0 {
		sum += c * m.constLaneCount()
	}
	return sum
}

// Latency is an immutable snapshot of a Meter's latency histogram.
type Latency struct {
	// Count is the number of recorded round trips.
	Count int64
	// SumNanos is the total recorded virtual time in nanoseconds.
	SumNanos int64
	// Buckets[b] counts round trips in [2^(b-1), 2^b) nanoseconds
	// (Buckets[0] counts exact zeros).
	Buckets [latencyBuckets]int64
}

// Latency returns the current latency histogram. Like Cost snapshots, a
// reading taken while records are in flight is linearizable per counter
// but not an atomic cut across them; measure quiesced operations with a
// before/after pair.
func (m *Meter) Latency() Latency {
	var l Latency
	l.SumNanos = m.lat.sum.Load()
	for i := range l.Buckets {
		l.Buckets[i] = m.lat.buckets[i].Load()
		l.Count += l.Buckets[i]
	}
	// Fold in the constant-latency fast lane: n records of exactly the
	// armed constant.
	if c := m.constNanos.Load(); c >= 0 {
		if n := m.constLaneCount(); n > 0 {
			l.SumNanos += c * n
			l.Buckets[latencyBucket(c)] += n
			l.Count += n
		}
	}
	return l
}

// LatencyWindow returns the latency recorded since the cursor's last
// reading and advances the cursor to the current snapshot. Starting
// from a zero-valued cursor, successive calls partition the meter's
// history into contiguous windows — the read behind the windowed
// recorder's per-window quantiles. Each caller must own its cursor;
// distinct cursors window the same meter independently.
func (m *Meter) LatencyWindow(cursor *Latency) Latency {
	cur := m.Latency()
	delta := cur.Sub(*cursor)
	*cursor = cur
	return delta
}

// Sub returns the component-wise difference l - prev, used to measure
// the latency distribution of one operation between two snapshots.
func (l Latency) Sub(prev Latency) Latency {
	out := Latency{Count: l.Count - prev.Count, SumNanos: l.SumNanos - prev.SumNanos}
	for i := range l.Buckets {
		out.Buckets[i] = l.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Mean returns the mean recorded round-trip duration (zero when empty).
func (l Latency) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return time.Duration(l.SumNanos / l.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) of the
// recorded durations, interpolating linearly inside the matching
// power-of-two bucket. The estimate's relative error is bounded by the
// bucket width (a factor of two).
func (l Latency) Quantile(q float64) time.Duration {
	if l.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(l.Count-1))
	var seen int64
	for b, c := range l.Buckets {
		if c == 0 {
			continue
		}
		if rank < seen+c {
			if b == 0 {
				return 0
			}
			lo := int64(1) << (b - 1)
			hi := lo << 1
			frac := float64(rank-seen) / float64(c)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		seen += c
	}
	return time.Duration(l.SumNanos / l.Count) // unreachable when counts are consistent
}
