package simnet

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// This file covers every fault-injection error path — ErrNodeDead,
// ErrDropped, ErrClosed — across both transports directly, rather than
// incidentally through the churn experiments.

// faultTransports builds each transport kind wired to the given plan.
func faultTransports(f *Faults) map[string]Transport {
	return map[string]Transport{
		"direct": NewDirect(WithFaults(f)),
		"chan":   NewChan(WithChanFaults(f)),
	}
}

func TestFaultsDeadNodeBothTransports(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"direct", "chan"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			faults := NewFaults(nil)
			tr := faultTransports(faults)[name]
			defer tr.Close()
			if err := tr.Register(1, echoHandler); err != nil {
				t.Fatal(err)
			}
			faults.SetDead(1, true)
			_, err := tr.Call(2, 1, "x")
			if !errors.Is(err, ErrNodeDead) {
				t.Fatalf("err = %v, want ErrNodeDead", err)
			}
			// The failed attempt is charged: one failure, one message
			// (the request), no completed call.
			cost := tr.Meter().Snapshot()
			if cost.Failures != 1 || cost.Messages != 1 || cost.Calls != 0 {
				t.Errorf("cost after dead call = %+v, want 1 failure / 1 message / 0 calls", cost)
			}
			// The handler must never have run: revive and verify the
			// node answers normally.
			faults.SetDead(1, false)
			if _, err := tr.Call(2, 1, "x"); err != nil {
				t.Errorf("revived node: %v", err)
			}
		})
	}
}

func TestFaultsDropRateBothTransports(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"direct", "chan"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			faults := NewFaults(rand.New(rand.NewPCG(7, 7)))
			faults.SetDropRate(1) // certain drop
			tr := faultTransports(faults)[name]
			defer tr.Close()
			if err := tr.Register(1, echoHandler); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := tr.Call(2, 1, i); !errors.Is(err, ErrDropped) {
					t.Fatalf("call %d: err = %v, want ErrDropped", i, err)
				}
			}
			if got := tr.Meter().Snapshot().Failures; got != 5 {
				t.Errorf("failures = %d, want 5", got)
			}
			// Clamp above 1 still means certain drop; rate 0 lets
			// everything through again.
			faults.SetDropRate(2)
			if _, err := tr.Call(2, 1, "x"); !errors.Is(err, ErrDropped) {
				t.Errorf("rate clamped to 1: err = %v, want ErrDropped", err)
			}
			faults.SetDropRate(0)
			if _, err := tr.Call(2, 1, "x"); err != nil {
				t.Errorf("rate 0: %v", err)
			}
		})
	}
}

// TestFaultsDropRateNilRNG: a plan built with a nil generator lazily
// seeds a deterministic PCG, so a configured drop rate always drops —
// NewFaults(nil) + SetDropRate silently dropping nothing was a bug.
func TestFaultsDropRateNilRNG(t *testing.T) {
	t.Parallel()
	faults := NewFaults(nil)
	faults.SetDropRate(1)
	tr := NewDirect(WithFaults(faults))
	defer tr.Close()
	if err := tr.Register(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(2, 1, "x"); !errors.Is(err, ErrDropped) {
		t.Errorf("nil-rng plan with rate 1: err = %v, want ErrDropped", err)
	}
	// Fractional rates must drop too, and reproducibly: two fresh
	// nil-rng plans see identical decision streams.
	decisions := func() []bool {
		f := NewFaults(nil)
		f.SetDropRate(0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = f.Check(1, 2, "x") != nil
		}
		return out
	}
	a, b := decisions(), decisions()
	var drops int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical plans", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Errorf("rate 0.5 dropped %d/%d, want a mix", drops, len(a))
	}
}

// TestFaultsCheckDirectly exercises the Check method itself, including
// the nil-plan fast path transports rely on.
func TestFaultsCheckDirectly(t *testing.T) {
	t.Parallel()
	var nilPlan *Faults
	if err := nilPlan.Check(0, 1, "x"); err != nil {
		t.Errorf("nil plan injected %v", err)
	}
	faults := NewFaults(nil)
	if err := faults.Check(0, 1, "x"); err != nil {
		t.Errorf("empty plan injected %v", err)
	}
	faults.SetDead(1, true)
	if err := faults.Check(0, 1, "x"); !errors.Is(err, ErrNodeDead) {
		t.Errorf("Check(dead) = %v, want ErrNodeDead", err)
	}
	if err := faults.Check(0, 2, "x"); err != nil {
		t.Errorf("Check(other) = %v, want nil", err)
	}
}

func TestErrClosedBothTransports(t *testing.T) {
	t.Parallel()
	for name, mk := range newTransports() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tr := mk()
			if err := tr.Register(1, echoHandler); err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Call(2, 1, "x"); !errors.Is(err, ErrClosed) {
				t.Errorf("Call: err = %v, want ErrClosed", err)
			}
			if err := tr.Register(9, echoHandler); !errors.Is(err, ErrClosed) {
				t.Errorf("Register: err = %v, want ErrClosed", err)
			}
			// Deregister after close must not panic.
			tr.Deregister(1)
		})
	}
}
