// Package simnet provides the simulated message-passing network beneath
// the Chord DHT: synchronous RPC transports with exact message and hop
// accounting, plus fault injection (dead nodes, message drops).
//
// The paper's cost model measures two quantities per operation: latency
// (the number of sequential RPC round trips, since every protocol here
// issues its RPCs one after another) and messages (each RPC is one
// request plus one reply). Meter counts both.
package simnet

import "sync/atomic"

// Meter accumulates transport costs. All methods are safe for concurrent
// use. The zero value is ready to use.
type Meter struct {
	calls    atomic.Int64 // completed RPC round trips (latency proxy)
	messages atomic.Int64 // individual messages (request + reply each count 1)
	failures atomic.Int64 // RPCs that failed (dropped or dead destination)
}

// Cost is an immutable snapshot of a Meter.
type Cost struct {
	Calls    int64
	Messages int64
	Failures int64
}

// Snapshot returns the current counter values.
func (m *Meter) Snapshot() Cost {
	return Cost{
		Calls:    m.calls.Load(),
		Messages: m.messages.Load(),
		Failures: m.failures.Load(),
	}
}

// Charge records an arbitrary cost. It is used by synthetic backends
// (such as the oracle DHT) that model rather than execute RPCs.
func (m *Meter) Charge(calls, messages int64) {
	m.calls.Add(calls)
	m.messages.Add(messages)
}

// chargeSuccess records one completed RPC: one round trip, two messages.
func (m *Meter) chargeSuccess() {
	m.calls.Add(1)
	m.messages.Add(2)
}

// chargeFailure records a failed RPC attempt. The request message still
// crossed the network (or was lost in it), so it is counted.
func (m *Meter) chargeFailure() {
	m.failures.Add(1)
	m.messages.Add(1)
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.calls.Store(0)
	m.messages.Store(0)
	m.failures.Store(0)
}

// Sub returns the component-wise difference c - prev, used to measure the
// cost of a single operation between two snapshots.
func (c Cost) Sub(prev Cost) Cost {
	return Cost{
		Calls:    c.Calls - prev.Calls,
		Messages: c.Messages - prev.Messages,
		Failures: c.Failures - prev.Failures,
	}
}
