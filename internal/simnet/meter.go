// Package simnet provides the simulated message-passing network beneath
// the Chord DHT: synchronous RPC transports with exact message and hop
// accounting, plus fault injection (dead nodes, message drops).
//
// The paper's cost model measures two quantities per operation: latency
// (the number of sequential RPC round trips, since every protocol here
// issues its RPCs one after another) and messages (each RPC is one
// request plus one reply). Meter counts both. Transports that model
// virtual time (internal/sim) additionally record each RPC's simulated
// round-trip duration into the meter's latency histogram, so hop counts
// and wall-clock-style latencies live side by side on one meter.
package simnet

import (
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// meterShards is the number of independently updated counter shards in a
// Meter. It must be a power of two (shard selection masks a random
// word). 16 shards keep charge contention negligible up to dozens of
// concurrently sampling goroutines.
const meterShards = 16

// meterShard is one stripe of counters, padded out to two cache lines so
// that concurrent writers on different shards never share a line (false
// sharing is exactly the contention the striping exists to remove).
//
// Messages are not stored directly: every completed RPC is exactly one
// request plus one reply (2 messages per call) and every failed RPC
// costs one request, so messages = 2*calls + failures + extraMsg, with
// extraMsg absorbing the rare synthetic Charge whose message count
// deviates from the 2-per-call baseline. Deriving the count at snapshot
// time halves the atomic traffic of the hot charges, which profiling
// showed was a double-digit share of per-sample cost.
type meterShard struct {
	calls    atomic.Int64 // completed RPC round trips (latency proxy)
	extraMsg atomic.Int64 // messages beyond the 2-per-call baseline
	failures atomic.Int64 // RPCs that failed (dropped or dead destination)
	constOK  atomic.Int64 // successes in the constant-latency fast lane
	_        [128 - 4*8]byte
}

// Meter accumulates transport costs. Besides the striped counters it
// carries an optional constant-latency fast lane (ArmConstLatency): a
// time-simulating transport whose every successful RPC would record the
// same round-trip duration charges call count and latency with the one
// atomic add of ChargeConstSuccess — the same per-RPC atomic traffic as
// a transport with no latency accounting at all — and Snapshot, Latency
// and LatencySumNanos fold the lane back into the derived totals.
//
// It is the hot-path cost sink of the
// whole testbed: every h lookup, successor chase and simulated RPC
// charges it, so under a concurrent sampling engine it is written from
// many goroutines at once. Counters are striped across meterShards
// cache-line-padded shards updated with atomics; a charge picks a shard
// with a cheap per-thread random draw, so concurrent writers almost
// never contend on a cache line.
//
// Concurrency contract: all methods are safe for unsynchronized
// concurrent use. Snapshot and Reset sum (respectively zero) the shards
// one atomic word at a time, so a snapshot taken while charges are in
// flight is a linearizable per-counter reading but not an atomic cut
// across counters — exactly the guarantee the previous single-counter
// implementation gave. Measure the cost of a quiesced operation by
// snapshotting before and after it, as all experiments do.
//
// The zero value is ready to use.
type Meter struct {
	shards [meterShards]meterShard
	// constNanos is the armed constant-latency lane's round-trip time
	// (0 = lane unarmed). Written once by ArmConstLatency before the
	// transport goes hot; read by the snapshot methods.
	constNanos atomic.Int64
	lat        latencyHist
}

// Cost is an immutable snapshot of a Meter.
type Cost struct {
	Calls    int64
	Messages int64
	Failures int64
}

// shard picks a stripe for the calling goroutine. math/rand/v2's global
// functions draw from a lock-free per-thread generator, so this costs a
// few nanoseconds and never serializes callers.
func (m *Meter) shard() *meterShard {
	return &m.shards[rand.Uint32()&(meterShards-1)]
}

// Snapshot returns the current counter values.
func (m *Meter) Snapshot() Cost {
	var c Cost
	var extra int64
	for i := range m.shards {
		s := &m.shards[i]
		c.Calls += s.calls.Load() + s.constOK.Load()
		extra += s.extraMsg.Load()
		c.Failures += s.failures.Load()
	}
	c.Messages = 2*c.Calls + c.Failures + extra
	return c
}

// constLaneCount sums the constant-latency lane's success counter.
func (m *Meter) constLaneCount() int64 {
	var n int64
	for i := range m.shards {
		n += m.shards[i].constOK.Load()
	}
	return n
}

// ArmConstLatency arms the constant-latency fast lane: every subsequent
// ChargeConstSuccess records one completed RPC of round-trip duration d
// with a single atomic add. Arm it once, before the meter goes hot;
// both lanes may be used side by side (a transport falls back to
// ChargeSuccess+RecordLatency whenever a call's latency deviates from
// the constant — shaped links, non-constant models, failures).
func (m *Meter) ArmConstLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.constNanos.Store(int64(d))
}

// ChargeConstSuccess records one completed RPC whose round trip took
// exactly the armed constant latency: one round trip, two messages, one
// latency record — all in a single atomic add, derived at snapshot
// time.
func (m *Meter) ChargeConstSuccess() {
	m.shard().constOK.Add(1)
}

// Charge records an arbitrary cost. It is used by synthetic backends
// (such as the oracle DHT) that model rather than execute RPCs. The
// common shape — messages exactly twice calls, the request+reply cost
// every synthetic backend charges — costs a single atomic add.
func (m *Meter) Charge(calls, messages int64) {
	s := m.shard()
	s.calls.Add(calls)
	if extra := messages - 2*calls; extra != 0 {
		s.extraMsg.Add(extra)
	}
}

// ChargeSuccess records one completed RPC: one round trip, two messages.
// It is called by every transport implementation (including ones outside
// this package, such as the virtual-clock transport in internal/sim).
func (m *Meter) ChargeSuccess() {
	m.shard().calls.Add(1)
}

// ChargeFailure records a failed RPC attempt. The request message still
// crossed the network (or was lost in it), so it is counted (at snapshot
// time: each failure contributes one message).
func (m *Meter) ChargeFailure() {
	m.shard().failures.Add(1)
}

// Reset zeroes all counters, including the latency histogram.
func (m *Meter) Reset() {
	for i := range m.shards {
		s := &m.shards[i]
		s.calls.Store(0)
		s.extraMsg.Store(0)
		s.failures.Store(0)
		s.constOK.Store(0)
	}
	m.lat.sum.Store(0)
	for i := range m.lat.buckets {
		m.lat.buckets[i].Store(0)
	}
}

// Sub returns the component-wise difference c - prev, used to measure the
// cost of a single operation between two snapshots.
func (c Cost) Sub(prev Cost) Cost {
	return Cost{
		Calls:    c.Calls - prev.Calls,
		Messages: c.Messages - prev.Messages,
		Failures: c.Failures - prev.Failures,
	}
}
