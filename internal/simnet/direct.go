package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
)

// Direct is a synchronous in-process transport: Call invokes the
// destination handler in the caller's goroutine. It is deterministic,
// allocation-light and safe for concurrent use, which makes it the
// default backend for experiments.
type Direct struct {
	mu       sync.RWMutex
	handlers map[NodeID]Handler
	multis   []multiReg
	closed   bool
	meter    Meter
	faults   *Faults
	trace    atomic.Pointer[obs.Trace]
	byz      atomic.Pointer[Interceptor]
}

// multiReg is one bulk registration: an ownership predicate plus the
// handler serving every owned node.
type multiReg struct {
	owns func(NodeID) bool
	h    MultiHandler
}

var (
	_ Transport      = (*Direct)(nil)
	_ obs.Traceable  = (*Direct)(nil)
	_ Interceptable  = (*Direct)(nil)
	_ MultiRegistrar = (*Direct)(nil)
)

// DirectOption configures a Direct transport.
type DirectOption func(*Direct)

// WithFaults attaches a fault-injection plan.
func WithFaults(f *Faults) DirectOption {
	return func(d *Direct) { d.faults = f }
}

// NewDirect returns a ready-to-use synchronous transport.
func NewDirect(opts ...DirectOption) *Direct {
	d := &Direct{handlers: make(map[NodeID]Handler)}
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// Register implements Transport.
func (d *Direct) Register(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("simnet: nil handler for node %d", id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, ok := d.handlers[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	d.handlers[id] = h
	return nil
}

// RegisterMulti implements MultiRegistrar: h serves every node owns
// reports as hosted here, with no per-node table entry. Per-node
// registrations take precedence for ids present in both.
func (d *Direct) RegisterMulti(owns func(NodeID) bool, h MultiHandler) error {
	if owns == nil || h == nil {
		return fmt.Errorf("simnet: nil multi registration")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.multis = append(d.multis, multiReg{owns: owns, h: h})
	return nil
}

// Deregister implements Transport.
func (d *Direct) Deregister(id NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.handlers, id)
}

// SetTrace arms (nil disarms) hop tracing: while armed, every Call
// records one obs.Hop. Disarmed, the hook costs one atomic pointer
// load, keeping the sampling hot path allocation-free.
func (d *Direct) SetTrace(t *obs.Trace) { d.trace.Store(t) }

// SetInterceptor arms (nil disarms) the Byzantine hook: while armed,
// every RPC's handler outcome passes through ic before metering and
// delivery. Disarmed, the hook costs one atomic pointer load.
func (d *Direct) SetInterceptor(ic Interceptor) {
	if ic == nil {
		d.byz.Store(nil)
		return
	}
	d.byz.Store(&ic)
}

// Call implements Transport. The handler runs synchronously with no
// transport locks held, so handlers may call back into the transport.
func (d *Direct) Call(from, to NodeID, msg Message) (Message, error) {
	if tr := d.trace.Load(); tr != nil {
		return d.callTraced(tr, from, to, msg)
	}
	return d.call(from, to, msg)
}

// callTraced wraps call with wall timing and a hop record.
func (d *Direct) callTraced(tr *obs.Trace, from, to NodeID, msg Message) (Message, error) {
	start := time.Now()
	resp, err := d.call(from, to, msg)
	tr.Record(obs.Hop{
		From:      uint64(from),
		To:        uint64(to),
		RPC:       MessageName(msg),
		WallNanos: time.Since(start).Nanoseconds(),
		Outcome:   ErrorClass(err),
	})
	return resp, err
}

func (d *Direct) call(from, to NodeID, msg Message) (Message, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, ErrClosed
	}
	h, ok := d.handlers[to]
	var mh MultiHandler
	if !ok {
		for i := range d.multis {
			if d.multis[i].owns(to) {
				mh, ok = d.multis[i].h, true
				break
			}
		}
	}
	d.mu.RUnlock()
	if !ok {
		d.meter.ChargeFailure()
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	if err := d.faults.Check(from, to, msg); err != nil {
		d.meter.ChargeFailure()
		return nil, fmt.Errorf("call %d->%d: %w", from, to, err)
	}
	var resp Message
	var err error
	if mh != nil {
		resp, err = mh(to, from, msg)
	} else {
		resp, err = h(from, msg)
	}
	if bz := d.byz.Load(); bz != nil {
		resp, err = (*bz)(from, to, msg, resp, err)
	}
	if err != nil {
		d.meter.ChargeFailure()
		return nil, fmt.Errorf("call %d->%d: %w", from, to, err)
	}
	d.meter.ChargeSuccess()
	return resp, nil
}

// Meter implements Transport.
func (d *Direct) Meter() *Meter { return &d.meter }

// Close implements Transport.
func (d *Direct) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.handlers = make(map[NodeID]Handler)
	return nil
}
