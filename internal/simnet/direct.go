package simnet

import (
	"fmt"
	"sync"
)

// Direct is a synchronous in-process transport: Call invokes the
// destination handler in the caller's goroutine. It is deterministic,
// allocation-light and safe for concurrent use, which makes it the
// default backend for experiments.
type Direct struct {
	mu       sync.RWMutex
	handlers map[NodeID]Handler
	closed   bool
	meter    Meter
	faults   *Faults
}

var _ Transport = (*Direct)(nil)

// DirectOption configures a Direct transport.
type DirectOption func(*Direct)

// WithFaults attaches a fault-injection plan.
func WithFaults(f *Faults) DirectOption {
	return func(d *Direct) { d.faults = f }
}

// NewDirect returns a ready-to-use synchronous transport.
func NewDirect(opts ...DirectOption) *Direct {
	d := &Direct{handlers: make(map[NodeID]Handler)}
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// Register implements Transport.
func (d *Direct) Register(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("simnet: nil handler for node %d", id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, ok := d.handlers[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	d.handlers[id] = h
	return nil
}

// Deregister implements Transport.
func (d *Direct) Deregister(id NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.handlers, id)
}

// Call implements Transport. The handler runs synchronously with no
// transport locks held, so handlers may call back into the transport.
func (d *Direct) Call(from, to NodeID, msg Message) (Message, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, ErrClosed
	}
	h, ok := d.handlers[to]
	d.mu.RUnlock()
	if !ok {
		d.meter.ChargeFailure()
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	if err := d.faults.Check(to); err != nil {
		d.meter.ChargeFailure()
		return nil, fmt.Errorf("call %d->%d: %w", from, to, err)
	}
	resp, err := h(from, msg)
	if err != nil {
		d.meter.ChargeFailure()
		return nil, fmt.Errorf("call %d->%d: %w", from, to, err)
	}
	d.meter.ChargeSuccess()
	return resp, nil
}

// Meter implements Transport.
func (d *Direct) Meter() *Meter { return &d.meter }

// Close implements Transport.
func (d *Direct) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.handlers = make(map[NodeID]Handler)
	return nil
}
