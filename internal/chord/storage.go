package chord

import (
	"errors"
	"fmt"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Storage RPCs. As with all Chord handlers, these touch only the
// destination node's state: replication and fallback are driven by the
// initiator, so no handler ever issues a nested RPC.

// putReq stores a key/value pair at the destination.
type putReq struct {
	Key   ring.Point
	Value []byte
}

// getReq fetches a key from the destination.
type getReq struct {
	Key ring.Point
}

// getResp carries a fetched value.
type getResp struct {
	Value []byte
	Found bool
}

// rangeReq asks the destination for all items with keys in the
// clockwise interval (From, To] — the key transfer on node join.
type rangeReq struct {
	From ring.Point
	To   ring.Point
}

// rangeResp carries transferred items.
type rangeResp struct {
	Items []Item
}

// Item is one stored key/value pair.
type Item struct {
	Key   ring.Point
	Value []byte
}

// handleStorage dispatches the storage RPCs for the node in slot s; it
// is called from handleRPC. Stored items live in the network-level side
// map keyed by slot: most nodes store nothing, so the flat arena
// carries no per-slot store field at all.
func (n *Network) handleStorage(s uint32, msg simnet.Message) (simnet.Message, bool) {
	switch m := msg.(type) {
	case putReq:
		val := make([]byte, len(m.Value))
		copy(val, m.Value)
		n.storeMu.Lock()
		st := n.stores[s]
		if st == nil {
			st = make(map[ring.Point][]byte)
			n.stores[s] = st
		}
		st[m.Key] = val
		n.storeMu.Unlock()
		return ackResp{}, true
	case getReq:
		n.storeMu.RLock()
		val, ok := n.stores[s][m.Key]
		n.storeMu.RUnlock()
		if !ok {
			return getResp{}, true
		}
		out := make([]byte, len(val))
		copy(out, val)
		return getResp{Value: out, Found: true}, true
	case rangeReq:
		iv := ring.NewInterval(m.From, m.To)
		n.storeMu.RLock()
		var items []Item
		for k, v := range n.stores[s] {
			if iv.Contains(k) {
				val := make([]byte, len(v))
				copy(val, v)
				items = append(items, Item{Key: k, Value: val})
			}
		}
		n.storeMu.RUnlock()
		return rangeResp{Items: items}, true
	default:
		return nil, false
	}
}

// dropStore discards slot s's stored items (slot recycled or reset).
func (n *Network) dropStore(s uint32) {
	n.storeMu.Lock()
	delete(n.stores, s)
	n.storeMu.Unlock()
}

// Put stores value under key: the initiator resolves the owner with a
// lookup, writes to it, and replicates to replicas-1 of the owner's
// successors (client-driven replication, so crash of up to replicas-1
// consecutive nodes loses no data).
func (n *Network) Put(from, key ring.Point, value []byte, replicas int) error {
	if replicas < 1 {
		return fmt.Errorf("chord: replicas must be >= 1, got %d", replicas)
	}
	owner, err := n.Lookup(from, key)
	if err != nil {
		return fmt.Errorf("chord: put %v: %w", key, err)
	}
	if _, err := n.call(from, owner, putReq{Key: key, Value: value}); err != nil {
		return fmt.Errorf("chord: put %v at owner %v: %w", key, owner, err)
	}
	if replicas == 1 {
		return nil
	}
	raw, err := n.call(from, owner, succListReq{})
	if err != nil {
		return fmt.Errorf("chord: put %v: fetching replica set: %w", key, err)
	}
	stored := 1
	for _, succ := range raw.(succListResp).List {
		if stored >= replicas {
			break
		}
		if succ == owner {
			continue
		}
		if _, err := n.call(from, succ, putReq{Key: key, Value: value}); err != nil {
			continue // dead replica target; the rest still count
		}
		stored++
	}
	if stored < replicas {
		return fmt.Errorf("chord: put %v: stored %d of %d replicas", key, stored, replicas)
	}
	return nil
}

// Get fetches the value under key. If the owner is unreachable or lost
// the key (it may have just joined and not pulled its range yet), the
// initiator falls back to the owner's successors, where replicas live.
func (n *Network) Get(from, key ring.Point) ([]byte, error) {
	owner, err := n.Lookup(from, key)
	if err != nil {
		return nil, fmt.Errorf("chord: get %v: %w", key, err)
	}
	candidates := []ring.Point{owner}
	if raw, err := n.call(from, owner, succListReq{}); err == nil {
		candidates = append(candidates, raw.(succListResp).List...)
	} else if nd, err := n.Node(from); err == nil {
		// Owner unreachable: consult our own successor list overlap.
		candidates = append(candidates, nd.SuccessorList()...)
	}
	for _, c := range candidates {
		raw, err := n.call(from, c, getReq{Key: key})
		if err != nil {
			continue
		}
		if resp := raw.(getResp); resp.Found {
			return resp.Value, nil
		}
	}
	return nil, fmt.Errorf("chord: get %v: %w", key, ErrKeyNotFound)
}

// ErrKeyNotFound is returned by Get when no reachable replica holds the
// key.
var ErrKeyNotFound = errors.New("chord: key not found")

// PullKeys makes node id fetch the key range it now owns from its
// successor — the data-transfer step of the Chord join protocol. It
// returns the number of items transferred.
func (n *Network) PullKeys(id ring.Point) (int, error) {
	nd, err := n.Node(id)
	if err != nil {
		return 0, err
	}
	succ := nd.Successor()
	if succ == id {
		return 0, nil
	}
	pred, hasPred := nd.Predecessor()
	if !hasPred {
		pred = succ // without a predecessor, claim (succ, id]: our full range
	}
	raw, err := n.call(id, succ, rangeReq{From: pred, To: id})
	if err != nil {
		return 0, fmt.Errorf("chord: pulling keys for %v: %w", id, err)
	}
	items := raw.(rangeResp).Items
	n.storeMu.Lock()
	st := n.stores[nd.slot]
	if st == nil {
		st = make(map[ring.Point][]byte, len(items))
		n.stores[nd.slot] = st
	}
	for _, item := range items {
		st[item.Key] = item.Value
	}
	n.storeMu.Unlock()
	return len(items), nil
}

// StoredKeys returns the number of keys node id currently holds
// (primaries plus replicas).
func (n *Network) StoredKeys(id ring.Point) (int, error) {
	nd, err := n.Node(id)
	if err != nil {
		return 0, err
	}
	n.storeMu.RLock()
	defer n.storeMu.RUnlock()
	return len(n.stores[nd.slot]), nil
}

// Leave removes node id gracefully: it hands its stored items to its
// successor, splices its predecessor and successor together, and only
// then departs. Unlike Crash, successor pointers and stored data are
// correct immediately, with no stabilization round. Finger tables of
// other nodes still reference the departed node until fix-fingers
// refreshes them, so sustained departures need maintenance running just
// as in real Chord.
func (n *Network) Leave(id ring.Point) error {
	nd, err := n.Node(id)
	if err != nil {
		return err
	}
	succ := nd.Successor()
	if succ != id {
		// Hand over stored items (initiator-driven, one put per item; a
		// production system would batch, which the simulator's cost
		// model would count identically per item).
		n.storeMu.RLock()
		items := make([]Item, 0, len(n.stores[nd.slot]))
		for k, v := range n.stores[nd.slot] {
			items = append(items, Item{Key: k, Value: v})
		}
		n.storeMu.RUnlock()
		for _, item := range items {
			if _, err := n.call(id, succ, putReq{Key: item.Key, Value: item.Value}); err != nil {
				return fmt.Errorf("chord: leave %v: handing key %v to %v: %w", id, item.Key, succ, err)
			}
		}
		// Splice the ring: successor adopts our predecessor; predecessor
		// adopts our successor. (Chord's notify would reject a candidate
		// counterclockwise of the leaver, so the splice sets the pointers
		// directly — the real protocol ships a dedicated leave message.)
		if pred, has := nd.Predecessor(); has && pred != id {
			if succNode, err := n.Node(succ); err == nil {
				n.adoptPredAfterLeave(succNode.slot, id, pred)
			}
			if predNode, err := n.Node(pred); err == nil {
				tail := []ring.Point(nil)
				if raw, err := n.call(pred, succ, succListReq{}); err == nil {
					tail = raw.(succListResp).List
				}
				predNode.setSuccessors(succ, tail)
			}
		}
	}
	return n.Crash(id) // departure itself: deregister and mark dead
}

// adoptPredAfterLeave makes the leaver's successor (slot s) adopt the
// leaver's predecessor, unless it already learned a closer one.
func (n *Network) adoptPredAfterLeave(s uint32, leaver, pred ring.Point) {
	ps := n.intern(pred) // before the stripe: intern takes network.mu
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	defer st.Unlock()
	if p := a.preds[s]; p == noSlot || a.id(p) == leaver {
		a.preds[s] = ps
	}
}
