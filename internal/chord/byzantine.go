package chord

import (
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Byzantine reply forging. The chord RPC payloads are unexported (and
// pooled), so the adversary package cannot synthesize lies itself; this
// file exports the minimal surface a Byzantine interceptor needs:
// recognize the protocol's subvertible RPCs and rewrite their replies
// toward attacker-chosen peers. Policy — which calls to subvert, and
// toward whom — stays in internal/adversary.

// IsRoutingRPC reports whether msg is a routed-lookup step
// (the next-hop request h(x) resolution consists of).
func IsRoutingRPC(msg simnet.Message) bool {
	_, ok := msg.(nextHopReq)
	return ok
}

// IsPointerRPC reports whether msg is a ring-pointer query (the
// successor/predecessor chases behind the paper's next primitive and
// the stabilization protocol).
func IsPointerRPC(msg simnet.Message) bool {
	switch msg.(type) {
	case getSuccessorReq, getPredecessorReq:
		return true
	}
	return false
}

// ByzantineReply forges the reply a lying chord node substitutes for
// the genuine handler outcome (resp, err) it produced for req. pick
// chooses the peer the lie steers toward: pick(key, i) returns the
// attacker's i-th choice for the given key (routing requests pass
// their lookup key; key-less pointer queries pass the zero point —
// whether a policy keys its choices on the lookup key at all is the
// caller's call). The third return is false when req is not a subvertible
// chord RPC, in which case the caller must deliver the genuine
// outcome. Forged replies reuse the handler's pooled reply value when
// one exists, so the reply-recycling contract of the lookup loop is
// undisturbed.
func ByzantineReply(req, resp simnet.Message, err error, pick func(key ring.Point, i int) ring.Point) (simnet.Message, error, bool) {
	switch m := req.(type) {
	case nextHopReq:
		// Terminate the lookup immediately at the attacker's choice:
		// the caller accepts Succ as the owner of Key.
		lie := pick(m.Key, 0)
		r, ok := resp.(*nextHopResp)
		if !ok || err != nil {
			r = newNextHopResp()
		}
		*r = nextHopResp{Done: true, Succ: lie}
		return r, nil, true
	case getSuccessorReq, getPredecessorReq:
		lie := pick(0, 0)
		r, ok := resp.(*pointResp)
		if !ok || err != nil {
			r = newPointResp(lie, true)
		}
		r.P, r.Has = lie, true
		return r, nil, true
	case succListReq:
		// Poison the caller's successor list wholesale: stabilization
		// against a Byzantine successor adopts an attacker-chosen list.
		n := maxCandidates
		if genuine, ok := resp.(succListResp); ok && len(genuine.List) > 0 {
			n = len(genuine.List)
		}
		list := make([]ring.Point, 0, n)
		for i := 0; i < n; i++ {
			p := pick(0, i)
			if len(list) > 0 && p == list[len(list)-1] {
				break // pick exhausted its distinct choices
			}
			list = append(list, p)
		}
		return succListResp{List: list}, nil, true
	}
	return nil, nil, false
}
