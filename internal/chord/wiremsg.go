package chord

import "github.com/dht-sampling/randompeer/internal/wire"

// Wire registration of every Chord RPC payload: the same value/pointer
// shapes the handlers and callers use in-process travel across process
// boundaries on the wire transport. Adding an RPC type without
// registering it here fails loudly at the first cross-process call
// (wire: message type not registered).
func init() {
	wire.RegisterValue[nextHopReq]("chord.nextHopReq")
	wire.RegisterPointer[nextHopResp]("chord.nextHopResp")
	wire.RegisterValue[getSuccessorReq]("chord.getSuccessorReq")
	wire.RegisterValue[getPredecessorReq]("chord.getPredecessorReq")
	wire.RegisterPointer[pointResp]("chord.pointResp")
	wire.RegisterValue[succListReq]("chord.succListReq")
	wire.RegisterValue[succListResp]("chord.succListResp")
	wire.RegisterValue[notifyReq]("chord.notifyReq")
	wire.RegisterValue[pingReq]("chord.pingReq")
	wire.RegisterValue[ackResp]("chord.ackResp")
	wire.RegisterValue[putReq]("chord.putReq")
	wire.RegisterValue[getReq]("chord.getReq")
	wire.RegisterValue[getResp]("chord.getResp")
	wire.RegisterValue[rangeReq]("chord.rangeReq")
	wire.RegisterValue[rangeResp]("chord.rangeResp")
}
