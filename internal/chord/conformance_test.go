package chord_test

import (
	"math/rand/v2"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/dht/dhttest"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
	"github.com/dht-sampling/randompeer/internal/wire"
)

// TestChordConformance runs the shared DHT conformance suite against
// the real Chord network, proving the sampler-facing contract holds on
// the full protocol, not only on the oracle.
func TestChordConformance(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "chord", func(points []ring.Point) (dht.DHT, error) {
		net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}

// TestChordConformanceSimTransport re-runs the suite over the
// virtual-clock transport: simulated time must not change any
// sampler-facing behaviour, only add latency accounting.
func TestChordConformanceSimTransport(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "chord-sim", func(points []ring.Point) (dht.DHT, error) {
		tr := sim.NewTransport(sim.WithModel(sim.Constant{RTT: time.Millisecond}))
		net, err := chord.BuildStatic(chord.Config{}, tr, points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}

// TestChordConformanceWireTransport re-runs the suite over real TCP
// sockets: the ring is partitioned across two wire transports (the
// caller's node on one, every other node on the other), so every
// routing hop and successor chase is an HTTP RPC over loopback. The
// sampler-facing contract — and the metered costs the suite checks —
// must be identical to the in-process transports.
func TestChordConformanceWireTransport(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "chord-wire", func(points []ring.Point) (dht.DHT, error) {
		server := wire.NewTransport(wire.WithJitterSeed(1))
		if err := server.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		t.Cleanup(func() { server.Close() })
		client := wire.NewTransport(wire.WithJitterSeed(2))
		if err := client.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		t.Cleanup(func() { client.Close() })
		local := points[0]
		for _, p := range points {
			if p == local {
				server.SetRoute(simnet.NodeID(p), client.Addr())
			} else {
				client.SetRoute(simnet.NodeID(p), server.Addr())
			}
		}
		if _, err := chord.BuildStaticPartition(chord.Config{}, server, points,
			func(p ring.Point) bool { return p != local }); err != nil {
			return nil, err
		}
		net, err := chord.BuildStaticPartition(chord.Config{}, client, points,
			func(p ring.Point) bool { return p == local })
		if err != nil {
			return nil, err
		}
		return net.AsDHT(local)
	})
}

// TestChordWireJoinVia joins a node hosted on a fresh process (its own
// transport and network) into a ring living entirely behind another
// transport: the bootstrap lookup, successor-list fetch and notify all
// travel over loopback sockets, and the joiner can then resolve
// correct owners through its spliced successor.
func TestChordWireJoinVia(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(77, 78))
	r, err := ring.Generate(rng, 16)
	if err != nil {
		t.Fatal(err)
	}
	points := r.Points()
	server := wire.NewTransport()
	if err := server.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	if _, err := chord.BuildStatic(chord.Config{}, server, points); err != nil {
		t.Fatal(err)
	}
	client := wire.NewTransport()
	if err := client.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, p := range points {
		client.SetRoute(simnet.NodeID(p), server.Addr())
	}
	joinNet := chord.NewNetwork(chord.Config{}, client)
	joiner := ring.Point(points[3] + 5) // between two existing points
	if _, err := joinNet.JoinVia(joiner, points[0]); err != nil {
		t.Fatalf("JoinVia over wire: %v", err)
	}
	// The joiner resolves owners among the original members through its
	// freshly spliced successor chain.
	for trial := 0; trial < 32; trial++ {
		key := ring.Point(rng.Uint64())
		got, err := joinNet.Lookup(joiner, key)
		if err != nil {
			t.Fatalf("lookup from joiner: %v", err)
		}
		want := r.At(r.Successor(key))
		if ring.Distance(key, joiner) < ring.Distance(key, want) {
			want = joiner // the joiner itself now owns this arc
		}
		if got != want {
			t.Fatalf("lookup(%v) = %v, want %v", key, got, want)
		}
	}
}
