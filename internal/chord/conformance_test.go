package chord_test

import (
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/dht/dhttest"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// TestChordConformance runs the shared DHT conformance suite against
// the real Chord network, proving the sampler-facing contract holds on
// the full protocol, not only on the oracle.
func TestChordConformance(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "chord", func(points []ring.Point) (dht.DHT, error) {
		net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}

// TestChordConformanceSimTransport re-runs the suite over the
// virtual-clock transport: simulated time must not change any
// sampler-facing behaviour, only add latency accounting.
func TestChordConformanceSimTransport(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "chord-sim", func(points []ring.Point) (dht.DHT, error) {
		tr := sim.NewTransport(sim.WithModel(sim.Constant{RTT: time.Millisecond}))
		net, err := chord.BuildStatic(chord.Config{}, tr, points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}
