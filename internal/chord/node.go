package chord

import (
	"fmt"
	"slices"
	"sync"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// idBits is the identifier width; the ring has 2^64 positions.
const idBits = 64

// Node is one Chord peer. All exported accessors and the RPC handler are
// safe for concurrent use; the node's mutex is never held across an RPC.
type Node struct {
	id  ring.Point
	net *Network

	mu      sync.RWMutex
	pred    ring.Point
	hasPred bool
	succs   []ring.Point // succs[0] is the immediate successor; never empty
	fingers [idBits]ring.Point
	fingOK  [idBits]bool
	next    int // next finger index to fix
	alive   bool
	store   map[ring.Point][]byte // key/value items (primaries + replicas)
}

// ID returns the node's identifier (its peer point).
func (nd *Node) ID() ring.Point { return nd.id }

// Successor returns the node's immediate successor.
func (nd *Node) Successor() ring.Point {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	return nd.succs[0]
}

// Predecessor returns the node's predecessor, if known.
func (nd *Node) Predecessor() (ring.Point, bool) {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	return nd.pred, nd.hasPred
}

// SuccessorList returns a copy of the node's successor list.
func (nd *Node) SuccessorList() []ring.Point {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	out := make([]ring.Point, len(nd.succs))
	copy(out, nd.succs)
	return out
}

// Finger returns finger k (the node believed to succeed id + 2^k), if set.
func (nd *Node) Finger(k int) (ring.Point, bool) {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	if k < 0 || k >= idBits {
		return 0, false
	}
	return nd.fingers[k], nd.fingOK[k]
}

// Alive reports whether the node is participating in the network.
func (nd *Node) Alive() bool {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	return nd.alive
}

// Neighbors returns the node's distinct outgoing overlay edges: its
// successor list and set fingers. This is the graph random-walk samplers
// traverse. Both sources are small and bounded (SuccListLen + idBits
// entries), so duplicates are weeded by scanning the result instead of
// allocating a set per call.
func (nd *Node) Neighbors() []ring.Point {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	out := make([]ring.Point, 0, len(nd.succs)+idBits)
	for _, s := range nd.succs {
		if s != nd.id && !slices.Contains(out, s) {
			out = append(out, s)
		}
	}
	for k := 0; k < idBits; k++ {
		if p := nd.fingers[k]; nd.fingOK[k] && p != nd.id && !slices.Contains(out, p) {
			out = append(out, p)
		}
	}
	return out
}

// handle dispatches one RPC. It is registered with the transport.
func (nd *Node) handle(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	switch m := msg.(type) {
	case nextHopReq:
		return nd.handleNextHop(m), nil
	case getSuccessorReq:
		return newPointResp(nd.Successor(), true), nil
	case getPredecessorReq:
		p, has := nd.Predecessor()
		return newPointResp(p, has), nil
	case succListReq:
		return succListResp{List: nd.SuccessorList()}, nil
	case notifyReq:
		nd.handleNotify(m.Candidate)
		return ackResp{}, nil
	case pingReq:
		return ackResp{}, nil
	default:
		if resp, ok := nd.handleStorage(msg); ok {
			return resp, nil
		}
		return nil, fmt.Errorf("chord: node %v: unknown message %T from %d", nd.id, msg, from)
	}
}

// handleNextHop implements one routing step: either Key belongs to this
// node's successor, or the reply carries the closest preceding fingers
// as candidates (best first) with the successor as the final fallback,
// which guarantees progress whenever the ring pointers are correct.
// The reply comes from the response pool; the lookup loop recycles it.
func (nd *Node) handleNextHop(m nextHopReq) *nextHopResp {
	resp := newNextHopResp()
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	succ := nd.succs[0]
	if betweenIncl(nd.id, succ, m.Key) {
		resp.Done = true
		resp.Succ = succ
		return resp
	}
	for k := idBits - 1; k >= 0; k-- {
		if nd.fingOK[k] && resp.add(nd.id, m.Key, nd.fingers[k]) {
			break
		}
	}
	// Successor-list entries are reliable short-range routes and the
	// fallback that guarantees progress. Offer the farthest preceding
	// entry first: greedy routing then advances up to SuccListLen peers
	// per hop even with no usable fingers.
	for i := len(nd.succs) - 1; i >= 0 && resp.N < maxCandidates; i-- {
		resp.add(nd.id, m.Key, nd.succs[i])
	}
	if resp.N == 0 {
		resp.Cands[0] = succ
		resp.N = 1
	}
	return resp
}

// handleNotify processes a predecessor candidate (Chord's notify).
func (nd *Node) handleNotify(candidate ring.Point) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if candidate == nd.id {
		return
	}
	if !nd.hasPred || betweenExcl(nd.pred, nd.id, candidate) {
		nd.pred = candidate
		nd.hasPred = true
	}
}

// setSuccessors installs succ as the immediate successor followed by the
// tail list (typically the successor's own list), truncated to the
// configured length and cleaned of self-references beyond the head.
func (nd *Node) setSuccessors(succ ring.Point, tail []ring.Point) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	list := make([]ring.Point, 0, nd.net.cfg.SuccListLen)
	list = append(list, succ)
	for _, p := range tail {
		if len(list) >= nd.net.cfg.SuccListLen {
			break
		}
		if p == nd.id || p == succ {
			continue
		}
		dup := false
		for _, q := range list {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			list = append(list, p)
		}
	}
	nd.succs = list
}

// advanceSuccessor drops a failed immediate successor, falling back to
// the next live entry of the successor list, or to self if none remain
// (the node then rebuilds via notify when others find it).
func (nd *Node) advanceSuccessor(failed ring.Point) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.succs[0] != failed {
		return // already repaired by a concurrent stabilize
	}
	if len(nd.succs) > 1 {
		nd.succs = nd.succs[1:]
		return
	}
	nd.succs = []ring.Point{nd.id}
}

// clearPredecessor forgets a failed predecessor.
func (nd *Node) clearPredecessor() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.hasPred = false
}

// setFinger installs finger k.
func (nd *Node) setFinger(k int, p ring.Point) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.fingers[k] = p
	nd.fingOK[k] = true
}

// invalidateFingersTo drops all fingers pointing at a failed node.
func (nd *Node) invalidateFingersTo(failed ring.Point) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	for k := 0; k < idBits; k++ {
		if nd.fingOK[k] && nd.fingers[k] == failed {
			nd.fingOK[k] = false
		}
	}
}

// fingerStart returns id + 2^k, the start of finger k's interval.
func (nd *Node) fingerStart(k int) ring.Point {
	return ring.Add(nd.id, uint64(1)<<uint(k))
}
