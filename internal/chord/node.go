package chord

import (
	"fmt"
	"math/bits"
	"slices"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// idBits is the identifier width; the ring has 2^64 positions.
const idBits = 64

// Node is one Chord peer's public handle: a (network, slot) pair into
// the network's flat slot arena. A handle holds no state of its own —
// all routing state lives in the arena's packed arrays — so handles are
// 16 bytes, preconstructed once per slot, and handed out by pointer
// with no allocation. All exported accessors and the RPC handlers are
// safe for concurrent use; no lock is ever held across an RPC.
type Node struct {
	net  *Network
	slot uint32
}

// ID returns the node's identifier (its peer point).
func (nd *Node) ID() ring.Point { return nd.net.idOf(nd.slot) }

// Successor returns the node's immediate successor.
func (nd *Node) Successor() ring.Point { return nd.net.succOf(nd.slot) }

// Predecessor returns the node's predecessor, if known.
func (nd *Node) Predecessor() (ring.Point, bool) { return nd.net.predOf(nd.slot) }

// SuccessorList returns a copy of the node's successor list.
func (nd *Node) SuccessorList() []ring.Point { return nd.net.succListOf(nd.slot) }

// Finger returns finger k (the node believed to succeed id + 2^k), if set.
func (nd *Node) Finger(k int) (ring.Point, bool) {
	n := nd.net
	if k < 0 || k >= idBits || n.cfg.DisableFingers {
		return 0, false
	}
	a := &n.st
	st := a.stripe(nd.slot)
	st.RLock()
	defer st.RUnlock()
	if a.fingOK[nd.slot]>>uint(k)&1 == 0 {
		return 0, false
	}
	return a.id(a.fingers[int(nd.slot)*idBits+k]), true
}

// Alive reports whether the node is participating in the network.
func (nd *Node) Alive() bool {
	n := nd.net
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.alive[nd.slot]
}

// Neighbors returns the node's distinct outgoing overlay edges: its
// successor list and set fingers. This is the graph random-walk samplers
// traverse. Both sources are small and bounded (SuccListLen + idBits
// entries), so duplicates are weeded by scanning the result instead of
// allocating a set per call.
func (nd *Node) Neighbors() []ring.Point {
	n := nd.net
	a := &n.st
	s := nd.slot
	st := a.stripe(s)
	st.RLock()
	defer st.RUnlock()
	self := a.id(s)
	base := int(s) * n.succStride
	ln := int(a.succLen[s])
	out := make([]ring.Point, 0, ln+idBits)
	for i := 0; i < ln; i++ {
		if p := a.id(a.succs[base+i]); p != self && !slices.Contains(out, p) {
			out = append(out, p)
		}
	}
	if !n.cfg.DisableFingers {
		fb := int(s) * idBits
		for w := a.fingOK[s]; w != 0; w &= w - 1 {
			p := a.id(a.fingers[fb+bits.TrailingZeros64(w)])
			if p != self && !slices.Contains(out, p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// handleNextHop implements one routing step for the local-initiator
// fast path; see Network.nextHop.
func (nd *Node) handleNextHop(m nextHopReq) *nextHopResp { return nd.net.nextHop(nd.slot, m) }

// fingerStart returns id + 2^k, the start of finger k's interval.
func (nd *Node) fingerStart(k int) ring.Point {
	return ring.Add(nd.ID(), uint64(1)<<uint(k))
}

// setSuccessors installs succ as the immediate successor followed by the
// tail list (typically the successor's own list), truncated to the
// configured length and cleaned of self-references beyond the head.
func (nd *Node) setSuccessors(succ ring.Point, tail []ring.Point) {
	nd.net.setSuccessors(nd.slot, succ, tail)
}

// advanceSuccessor drops a failed immediate successor, falling back to
// the next entry of the successor list, or to self if none remain (the
// node then rebuilds via notify when others find it).
func (nd *Node) advanceSuccessor(failed ring.Point) {
	nd.net.advanceSuccessor(nd.slot, failed)
}

// clearPredecessor forgets a failed predecessor.
func (nd *Node) clearPredecessor() { nd.net.clearPredecessor(nd.slot) }

// setFinger installs finger k.
func (nd *Node) setFinger(k int, p ring.Point) { nd.net.setFinger(nd.slot, k, p) }

// invalidateFingersTo drops all fingers pointing at a failed node.
func (nd *Node) invalidateFingersTo(failed ring.Point) {
	nd.net.invalidateFingersTo(nd.slot, failed)
}

// idOf returns slot s's identifier.
func (n *Network) idOf(s uint32) ring.Point {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	id := a.id(s)
	st.RUnlock()
	return id
}

// succOf returns slot s's immediate successor identifier.
func (n *Network) succOf(s uint32) ring.Point {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	succ := a.id(a.succs[int(s)*n.succStride])
	st.RUnlock()
	return succ
}

// predOf returns slot s's predecessor identifier, if known.
func (n *Network) predOf(s uint32) (ring.Point, bool) {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	defer st.RUnlock()
	p := a.preds[s]
	if p == noSlot {
		return 0, false
	}
	return a.id(p), true
}

// succListOf returns a copy of slot s's successor list as identifiers.
func (n *Network) succListOf(s uint32) []ring.Point {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	defer st.RUnlock()
	base := int(s) * n.succStride
	out := make([]ring.Point, a.succLen[s])
	for i := range out {
		out[i] = a.id(a.succs[base+i])
	}
	return out
}

// handleRPC dispatches one RPC addressed to the node in slot s.
func (n *Network) handleRPC(s uint32, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	switch m := msg.(type) {
	case nextHopReq:
		return n.nextHop(s, m), nil
	case getSuccessorReq:
		return newPointResp(n.succOf(s), true), nil
	case getPredecessorReq:
		p, has := n.predOf(s)
		return newPointResp(p, has), nil
	case succListReq:
		return succListResp{List: n.succListOf(s)}, nil
	case notifyReq:
		n.notify(s, m.Candidate)
		return ackResp{}, nil
	case pingReq:
		return ackResp{}, nil
	default:
		if resp, ok := n.handleStorage(s, msg); ok {
			return resp, nil
		}
		return nil, fmt.Errorf("chord: node %v: unknown message %T from %d", n.idOf(s), msg, from)
	}
}

// nextHop implements one routing step: either Key belongs to this
// node's successor, or the reply carries the closest preceding fingers
// as candidates (best first) with the successor as the final fallback,
// which guarantees progress whenever the ring pointers are correct.
// The reply comes from the response pool; the lookup loop recycles it.
// Everything runs under one stripe read-lock with no allocation: slot
// references translate to identifiers via atomic loads.
func (n *Network) nextHop(s uint32, m nextHopReq) *nextHopResp {
	resp := newNextHopResp()
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	defer st.RUnlock()
	self := a.id(s)
	base := int(s) * n.succStride
	succ := a.id(a.succs[base])
	if betweenIncl(self, succ, m.Key) {
		resp.Done = true
		resp.Succ = succ
		return resp
	}
	if !n.cfg.DisableFingers {
		fb := int(s) * idBits
		for w := a.fingOK[s]; w != 0; {
			k := idBits - 1 - bits.LeadingZeros64(w)
			if resp.add(self, m.Key, a.id(a.fingers[fb+k])) {
				break
			}
			w &^= 1 << uint(k)
		}
	}
	// Successor-list entries are reliable short-range routes and the
	// fallback that guarantees progress. Offer the farthest preceding
	// entry first: greedy routing then advances up to SuccListLen peers
	// per hop even with no usable fingers.
	for i := int(a.succLen[s]) - 1; i >= 0 && resp.N < maxCandidates; i-- {
		resp.add(self, m.Key, a.id(a.succs[base+i]))
	}
	if resp.N == 0 {
		resp.Cands[0] = succ
		resp.N = 1
	}
	return resp
}

// notify processes a predecessor candidate (Chord's notify) for slot s.
func (n *Network) notify(s uint32, candidate ring.Point) {
	cs := n.intern(candidate) // before the stripe: intern takes network.mu
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	defer st.Unlock()
	self := a.id(s)
	if candidate == self {
		return
	}
	if p := a.preds[s]; p == noSlot || betweenExcl(a.id(p), self, candidate) {
		a.preds[s] = cs
	}
}

// setSuccessors installs the successor list for slot s; see
// Node.setSuccessors. The id-level dedup runs first, then the survivors
// are interned outside the stripe (lock order: network.mu before
// stripe) and written as one packed row.
func (n *Network) setSuccessors(s uint32, succ ring.Point, tail []ring.Point) {
	self := n.idOf(s)
	ids := make([]ring.Point, 0, n.cfg.SuccListLen)
	ids = append(ids, succ)
	for _, p := range tail {
		if len(ids) >= n.cfg.SuccListLen {
			break
		}
		if p == self || p == succ {
			continue
		}
		if !slices.Contains(ids, p) {
			ids = append(ids, p)
		}
	}
	slots := make([]uint32, len(ids))
	for i, p := range ids {
		slots[i] = n.intern(p)
	}
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	copy(a.succs[int(s)*n.succStride:], slots)
	a.succLen[s] = uint16(len(slots))
	st.Unlock()
}

// advanceSuccessor drops slot s's failed immediate successor; see
// Node.advanceSuccessor.
func (n *Network) advanceSuccessor(s uint32, failed ring.Point) {
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	defer st.Unlock()
	base := int(s) * n.succStride
	if a.id(a.succs[base]) != failed {
		return // already repaired by a concurrent stabilize
	}
	if ln := int(a.succLen[s]); ln > 1 {
		copy(a.succs[base:base+ln-1], a.succs[base+1:base+ln])
		a.succLen[s] = uint16(ln - 1)
		return
	}
	a.succs[base] = s
	a.succLen[s] = 1
}

// clearPredecessor forgets slot s's predecessor.
func (n *Network) clearPredecessor(s uint32) {
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	a.preds[s] = noSlot
	st.Unlock()
}

// setFinger installs finger k of slot s.
func (n *Network) setFinger(s uint32, k int, p ring.Point) {
	if n.cfg.DisableFingers {
		return
	}
	ps := n.intern(p) // before the stripe: intern takes network.mu
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	a.fingers[int(s)*idBits+k] = ps
	a.fingOK[s] |= 1 << uint(k)
	st.Unlock()
}

// invalidateFingersTo drops slot s's fingers pointing at a failed node.
func (n *Network) invalidateFingersTo(s uint32, failed ring.Point) {
	if n.cfg.DisableFingers {
		return
	}
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	defer st.Unlock()
	fb := int(s) * idBits
	for w := a.fingOK[s]; w != 0; w &= w - 1 {
		k := bits.TrailingZeros64(w)
		if a.id(a.fingers[fb+k]) == failed {
			a.fingOK[s] &^= 1 << uint(k)
		}
	}
}
