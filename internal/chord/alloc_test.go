package chord

import (
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/raceflag"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// lookupAllocBudget documents the per-lookup allocation cost of the
// routed h primitive on a stabilized ring: 1 — the request envelope,
// boxed once per lookup and reused across every hop (replies are
// pooled and the candidate scratch is a fixed-size array). The +1
// headroom absorbs response-pool refills after a GC.
const lookupAllocBudget = 2

func TestAllocBudgetLookup(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewPCG(45, 45))
	r, err := ring.Generate(rng, 1024)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(500, func() {
		if _, err := net.Lookup(r.At(0), ring.Point(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	})
	if got > lookupAllocBudget {
		t.Errorf("chord Lookup allocates %.1f per lookup, budget %d", got, lookupAllocBudget)
	}
}

// TestAllocBudgetSuccessor pins the next(p) primitive: the request is
// a zero-size value (boxing is free) and the reply is pooled, so the
// budget is zero steady state with headroom for pool refills.
func TestAllocBudgetSuccessor(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewPCG(46, 46))
	r, err := ring.Generate(rng, 1024)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	cur := r.At(0)
	got := testing.AllocsPerRun(500, func() {
		var err error
		if cur, err = net.Successor(r.At(0), cur); err != nil {
			t.Fatal(err)
		}
	})
	if got > 1 {
		t.Errorf("chord Successor allocates %.1f per call, budget 1", got)
	}
}

// skipIfRace skips an allocation-budget test under the race detector,
// whose instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
}
