package chord

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

func TestPutGetRoundTrip(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 101, 64)
	rng := rand.New(rand.NewPCG(1, 1))
	from := r.At(0)
	type kv struct {
		key ring.Point
		val []byte
	}
	items := make([]kv, 200)
	for i := range items {
		items[i] = kv{
			key: ring.Point(rng.Uint64()),
			val: []byte(fmt.Sprintf("value-%d", i)),
		}
		if err := net.Put(from, items[i].key, items[i].val, 3); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i, item := range items {
		got, err := net.Get(from, item.key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, item.val) {
			t.Fatalf("get %d = %q, want %q", i, got, item.val)
		}
	}
}

func TestGetMissingKey(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 103, 16)
	if _, err := net.Get(r.At(0), ring.Point(12345)); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("err = %v, want ErrKeyNotFound", err)
	}
}

func TestPutValidation(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 105, 8)
	if err := net.Put(r.At(0), 1, []byte("x"), 0); err == nil {
		t.Error("zero replicas should fail")
	}
}

func TestPutStoresAtOwner(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 107, 32)
	rng := rand.New(rand.NewPCG(2, 2))
	key := ring.Point(rng.Uint64())
	if err := net.Put(r.At(0), key, []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	owner := r.At(r.Successor(key))
	count, err := net.StoredKeys(owner)
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("owner holds %d keys, want 1", count)
	}
}

func TestReplicationSurvivesOwnerCrash(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 109, 64)
	rng := rand.New(rand.NewPCG(3, 3))
	from := r.At(0)
	keys := make([]ring.Point, 100)
	for i := range keys {
		keys[i] = ring.Point(rng.Uint64())
		if err := net.Put(from, keys[i], []byte{byte(i)}, 3); err != nil {
			t.Fatal(err)
		}
	}
	// Crash a quarter of the nodes, none of them the reader.
	perm := rng.Perm(r.Len() - 1)
	for _, idx := range perm[:16] {
		if err := net.Crash(r.At(idx + 1)); err != nil {
			t.Fatal(err)
		}
	}
	net.RunMaintenance(10, 16)
	lost := 0
	for i, key := range keys {
		got, err := net.Get(from, key)
		if err != nil {
			lost++
			continue
		}
		if !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("key %d corrupted", i)
		}
	}
	// 3-way replication with random 25% crashes: losing a key requires 3
	// consecutive successors crashed; tolerate a couple of unlucky keys.
	if lost > 5 {
		t.Errorf("lost %d/100 keys after 25%% crashes with 3 replicas", lost)
	}
}

func TestPullKeysOnJoin(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 111, 32)
	rng := rand.New(rand.NewPCG(4, 4))
	from := r.At(0)
	for i := 0; i < 300; i++ {
		if err := net.Put(from, ring.Point(rng.Uint64()), []byte{1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	// A new node joins and pulls its range from its successor.
	newID := ring.Point(rng.Uint64())
	if _, err := net.Join(newID, from); err != nil {
		t.Fatal(err)
	}
	net.RunMaintenance(4, 8)
	moved, err := net.PullKeys(newID)
	if err != nil {
		t.Fatal(err)
	}
	count, err := net.StoredKeys(newID)
	if err != nil {
		t.Fatal(err)
	}
	if count != moved {
		t.Errorf("StoredKeys = %d, moved = %d", count, moved)
	}
	// Every key must still be readable (whether served by the new owner
	// or the old one, which keeps its copy as a replica).
	net.RunMaintenance(4, 8)
	if _, err := net.Get(newID, newID); errors.Is(err, ErrLookupAborted) {
		t.Fatalf("lookup broken after join: %v", err)
	}
}

func TestPullKeysSingleNode(t *testing.T) {
	t.Parallel()
	tr := simnet.NewDirect()
	net := NewNetwork(Config{}, tr)
	if _, err := net.Create(42); err != nil {
		t.Fatal(err)
	}
	moved, err := net.PullKeys(42)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("single node moved %d keys", moved)
	}
}

func TestStoredKeysUnknownNode(t *testing.T) {
	t.Parallel()
	net, _ := newStatic(t, 113, 4)
	if _, err := net.StoredKeys(ring.Point(99)); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("err = %v, want ErrNodeNotFound", err)
	}
}

func TestStorageValueIsolation(t *testing.T) {
	t.Parallel()
	// Values must be defensively copied on both put and get.
	net, r := newStatic(t, 115, 8)
	val := []byte("original")
	key := ring.Point(7)
	if err := net.Put(r.At(0), key, val, 1); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X' // mutating the caller's buffer must not affect the store
	got, err := net.Get(r.At(0), key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Errorf("stored value affected by caller mutation: %q", got)
	}
	got[0] = 'Y' // mutating the fetched buffer must not affect the store
	again, err := net.Get(r.At(0), key)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "original" {
		t.Errorf("stored value affected by reader mutation: %q", again)
	}
}

func TestKeyDistributionFollowsArcs(t *testing.T) {
	t.Parallel()
	// With replicas = 1, each node's primary-key count is proportional
	// to its arc — the load imbalance that motivates both virtual nodes
	// and the paper's uniform sampling discussion.
	net, r := newStatic(t, 117, 16)
	rng := rand.New(rand.NewPCG(5, 5))
	from := r.At(0)
	const keys = 4000
	for i := 0; i < keys; i++ {
		if err := net.Put(from, ring.Point(rng.Uint64()), []byte{1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < r.Len(); i++ {
		count, err := net.StoredKeys(r.At(i))
		if err != nil {
			t.Fatal(err)
		}
		expect := ring.UnitsToFrac(r.Arc(r.PrevIndex(i))) * keys
		// Poisson-ish tolerance around the expectation.
		if float64(count) < expect-6*sqrtPlus1(expect) || float64(count) > expect+6*sqrtPlus1(expect) {
			t.Errorf("node %d holds %d keys, expected ~%.0f (arc share)", i, count, expect)
		}
	}
}

func TestLeaveHandsOverKeysAndSplicesRing(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 119, 32)
	rng := rand.New(rand.NewPCG(6, 6))
	from := r.At(0)
	keys := make([]ring.Point, 150)
	for i := range keys {
		keys[i] = ring.Point(rng.Uint64())
		if err := net.Put(from, keys[i], []byte{byte(i)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	// A non-reader node leaves gracefully.
	leaver := r.At(10)
	if err := net.Leave(leaver); err != nil {
		t.Fatal(err)
	}
	// Without any maintenance round: the ring is already consistent and
	// every key (1 replica only!) is still readable.
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring inconsistent immediately after graceful leave: %v", err)
	}
	for i, key := range keys {
		got, err := net.Get(from, key)
		if err != nil {
			t.Fatalf("key %d lost after graceful leave: %v", i, err)
		}
		if !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("key %d corrupted after leave", i)
		}
	}
	if net.NumAlive() != 31 {
		t.Errorf("NumAlive = %d, want 31", net.NumAlive())
	}
}

func TestLeaveUnknownNode(t *testing.T) {
	t.Parallel()
	net, _ := newStatic(t, 121, 4)
	if err := net.Leave(ring.Point(5)); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("err = %v, want ErrNodeNotFound", err)
	}
}

func TestSequentialLeavesKeepData(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 123, 24)
	rng := rand.New(rand.NewPCG(7, 7))
	from := r.At(0)
	const keyCount = 80
	keys := make([]ring.Point, keyCount)
	for i := range keys {
		keys[i] = ring.Point(rng.Uint64())
		if err := net.Put(from, keys[i], []byte{byte(i)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Half the nodes (not the reader) leave gracefully one by one. A
	// single maintenance round between leaves keeps fingers fresh (the
	// splice keeps successor pointers exact on its own, but routing
	// across many departures also needs fix-fingers, as in real Chord).
	for i := 1; i <= 12; i++ {
		if err := net.Leave(r.At(i)); err != nil {
			t.Fatalf("leave %d: %v", i, err)
		}
		net.RunMaintenance(1, 16)
	}
	for i, key := range keys {
		if _, err := net.Get(from, key); err != nil {
			t.Fatalf("key %d lost after %d graceful leaves: %v", i, 12, err)
		}
	}
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring inconsistent after sequential leaves: %v", err)
	}
}

func sqrtPlus1(x float64) float64 {
	if x < 1 {
		x = 1
	}
	s := x
	// Newton iterations suffice for test tolerance.
	for i := 0; i < 20; i++ {
		s = (s + x/s) / 2
	}
	return s + 1
}
