package chord

import (
	"errors"
	"fmt"
	"sync"

	"github.com/dht-sampling/randompeer/internal/parallel"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Config parameterizes a Chord network.
type Config struct {
	// SuccListLen is the successor-list length r; Chord remains connected
	// w.h.p. while fewer than r consecutive successors fail between
	// stabilization rounds. Default 8.
	SuccListLen int
	// MaxLookupHops aborts lookups that fail to converge (possible only
	// while the ring is badly damaged). Default 256.
	MaxLookupHops int
	// DisableFingers turns off finger tables: routing falls back to
	// successor lists, making lookups Theta(n/SuccListLen) hops. This
	// models a minimal ring-only DHT and demonstrates Theorem 7's t_h
	// dependence — the sampler inherits whatever lookup cost the DHT
	// has. Set MaxLookupHops accordingly. Finger-disabled networks also
	// skip the finger arrays entirely, cutting the per-node footprint
	// by idBits slot references.
	DisableFingers bool
}

func (c Config) withDefaults() Config {
	if c.SuccListLen <= 0 {
		c.SuccListLen = 8
	}
	if c.MaxLookupHops <= 0 {
		c.MaxLookupHops = 256
	}
	return c
}

// Network is a collection of Chord nodes sharing one simulated
// transport. All per-node state lives in a flat slot arena (see
// arena.go); nodes are addressed internally by dense uint32 slot and
// externally by ring.Point identifier.
type Network struct {
	cfg Config
	tr  simnet.Transport
	// succStride is the row width of the packed successor-list array
	// (cfg.SuccListLen after defaulting).
	succStride int
	// multi records that the transport accepted a bulk registration:
	// one handler serves every node this network hosts and joins and
	// crashes cost no per-node transport bookkeeping. Without it the
	// network falls back to one registered closure per node.
	multi bool

	mu sync.RWMutex
	st arena
	// members is the sorted live membership, maintained incrementally:
	// join/crash installs a fresh copy with the id spliced in or out
	// (copy-on-write) and bumps epoch. The slice itself is immutable, so
	// Members hands it out with no per-call copy and holders keep a
	// consistent snapshot across later churn.
	members []ring.Point
	// memberSlots is the aligned slot snapshot: memberSlots[i] is the
	// arena slot of members[i]. Maintained copy-on-write in lockstep
	// with members, it is the ID-to-index half of the bridge that
	// replaces the old map[ring.Point]*Node.
	memberSlots []uint32
	epoch       uint64

	// stores holds per-slot key/value items (primaries + replicas),
	// keyed by slot. Most nodes store nothing, so a side map beats a
	// per-slot field. Guarded by storeMu, which nests inside any other
	// lock (it is taken last and held across no calls).
	storeMu sync.RWMutex
	stores  map[uint32]map[ring.Point][]byte
}

// Chord error conditions.
var (
	ErrNodeExists    = errors.New("chord: node already exists")
	ErrNodeNotFound  = errors.New("chord: node not found")
	ErrLookupAborted = errors.New("chord: lookup aborted")
	ErrEmptyNetwork  = errors.New("chord: network has no live nodes")
)

// NewNetwork creates an empty Chord network over the given transport.
func NewNetwork(cfg Config, tr simnet.Transport) *Network {
	cfg = cfg.withDefaults()
	n := &Network{
		cfg:        cfg,
		tr:         tr,
		succStride: cfg.SuccListLen,
		stores:     make(map[uint32]map[ring.Point][]byte),
	}
	n.st.overflow = make(map[ring.Point]uint32)
	if mr, ok := tr.(simnet.MultiRegistrar); ok {
		if err := mr.RegisterMulti(n.ownsID, n.dispatchAny); err == nil {
			n.multi = true
		}
	}
	return n
}

// ownsID reports whether this network currently hosts a live node with
// the given transport id; the transport's bulk-registration path
// consults it in place of a per-node handler table.
func (n *Network) ownsID(id simnet.NodeID) bool {
	_, ok := n.liveSlot(ring.Point(id))
	return ok
}

// dispatchAny routes a bulk-registered RPC to its destination slot.
// Crashed nodes remain resolvable through the overflow map until
// scavenged, so an in-flight RPC that won the transport's liveness
// check still reaches the node's frozen state, exactly as a registered
// handler used to keep answering until deregistration took effect.
func (n *Network) dispatchAny(to, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	s, ok := n.slotOf(ring.Point(to))
	if !ok {
		return nil, fmt.Errorf("%w: %d", simnet.ErrUnknownNode, to)
	}
	return n.handleRPC(s, from, msg)
}

// idHandler returns the per-node registration closure for transports
// without bulk registration. It captures the identifier, never the
// slot: the slot is resolved per call, so slot recycling cannot
// misroute a stale registration.
func (n *Network) idHandler(id ring.Point) simnet.Handler {
	return func(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		s, ok := n.slotOf(id)
		if !ok {
			return nil, fmt.Errorf("%w: %d", simnet.ErrUnknownNode, simnet.NodeID(id))
		}
		return n.handleRPC(s, from, msg)
	}
}

// Transport returns the underlying transport (for meters and faults).
func (n *Network) Transport() simnet.Transport { return n.tr }

// Meter returns the transport's cost meter.
func (n *Network) Meter() *simnet.Meter { return n.tr.Meter() }

// Node returns the node with the given id. The returned handle points
// into the arena's preconstructed handle table, so the call allocates
// nothing.
func (n *Network) Node(id ring.Point) (*Node, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if rank, ok := ring.Rank(n.members, id); ok {
		if s := n.memberSlots[rank]; n.st.alive[s] {
			return &n.st.handles[s], nil
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrNodeNotFound, id)
}

// Members returns the ids of all live nodes in sorted order. The
// returned slice is a shared immutable snapshot — callers must not
// modify it. Join/crash never re-sorts and never invalidates: each
// installs a fresh spliced copy (copy-on-write), so a held snapshot
// stays internally consistent across later churn and a call here is a
// read-locked pointer fetch even at n = 10^6 under sustained churn.
func (n *Network) Members() []ring.Point {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.members
}

// Epoch returns the membership epoch: it increments on every join and
// crash, so two equal readings around a Members call certify the
// snapshot is current (the epoch-snapshot pairing the race tests
// exercise).
func (n *Network) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.epoch
}

// NumAlive returns the number of live nodes. The membership snapshot
// holds exactly the live nodes (Crash removes before marking dead), so
// this is the snapshot length.
func (n *Network) NumAlive() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.members)
}

// Create starts the first node of a fresh ring.
func (n *Network) Create(id ring.Point) (*Node, error) {
	nd, err := n.addNode(id)
	if err != nil {
		return nil, err
	}
	return nd, nil
}

// Join adds a node to the ring through the existing node via, per the
// Chord join protocol: resolve the new node's successor with a lookup,
// adopt its successor list, and let stabilization integrate the rest.
func (n *Network) Join(id, via ring.Point) (*Node, error) {
	if _, ok := n.liveSlot(id); ok {
		return nil, fmt.Errorf("%w: %v", ErrNodeExists, id)
	}
	succ, err := n.Lookup(via, id)
	if err != nil {
		return nil, fmt.Errorf("chord: join of %v via %v: %w", id, via, err)
	}
	return n.finishJoin(id, succ)
}

// JoinVia adds a locally hosted node to a ring whose bootstrap contact
// may live on another process: the successor is resolved by routing
// through bootstrap over the transport (LookupVia) instead of
// initiating at a local node. It is the join path wire-transport
// daemons use.
func (n *Network) JoinVia(id, bootstrap ring.Point) (*Node, error) {
	if _, ok := n.liveSlot(id); ok {
		return nil, fmt.Errorf("%w: %v", ErrNodeExists, id)
	}
	succ, err := n.LookupVia(id, bootstrap, id)
	if err != nil {
		return nil, fmt.Errorf("chord: join of %v via remote %v: %w", id, bootstrap, err)
	}
	return n.finishJoin(id, succ)
}

// finishJoin integrates a freshly resolved joiner below its successor:
// register the node, adopt the successor's list, and announce.
func (n *Network) finishJoin(id, succ ring.Point) (*Node, error) {
	nd, err := n.addNode(id)
	if err != nil {
		return nil, err
	}
	var tail []ring.Point
	if resp, err := n.call(id, succ, succListReq{}); err == nil {
		tail = resp.(succListResp).List
	}
	nd.setSuccessors(succ, tail)
	// Announce ourselves; the successor adopts us as predecessor if we
	// are closer than its current one.
	if _, err := n.call(id, succ, notifyReq{Candidate: id}); err != nil {
		// The successor crashed between lookup and notify; stabilization
		// will repair via the successor list.
		nd.advanceSuccessor(succ)
	}
	return nd, nil
}

// Crash removes a node abruptly: it leaves the live membership and
// every new RPC to it fails until other nodes route around it via
// successor lists and stabilization. Its slot parks in the overflow map
// (state frozen, still answering RPCs already in flight) until the
// scavenger recycles it.
func (n *Network) Crash(id ring.Point) error {
	n.mu.Lock()
	rank, ok := ring.Rank(n.members, id)
	var s uint32
	if ok {
		s = n.memberSlots[rank]
		if !n.st.alive[s] {
			ok = false // partitioned build: the member is hosted elsewhere
		}
	}
	if ok {
		n.members = ring.RemoveSorted(n.members, id)
		n.memberSlots = spliceOut(n.memberSlots, rank)
		n.st.alive[s] = false
		n.st.overflow[id] = s
		n.st.reclaimable++
		n.epoch++
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNodeNotFound, id)
	}
	if !n.multi {
		n.tr.Deregister(simnet.NodeID(id))
	}
	return nil
}

// addNode allocates (or recycles) a slot for id, registers it on the
// transport when per-node registration is in use, and splices it into
// the live membership.
func (n *Network) addNode(id ring.Point) (*Node, error) {
	if !n.multi {
		// Register before taking the network lock, as always: the
		// transport may consult its own locks, and registration order
		// is observable to concurrent callers.
		if err := n.tr.Register(simnet.NodeID(id), n.idHandler(id)); err != nil {
			return nil, fmt.Errorf("chord: registering node %v: %w", id, err)
		}
	}
	n.mu.Lock()
	rank, found := ring.Rank(n.members, id)
	if found {
		n.mu.Unlock()
		if !n.multi {
			n.tr.Deregister(simnet.NodeID(id))
		}
		return nil, fmt.Errorf("%w: %v", ErrNodeExists, id)
	}
	s, ok := n.st.overflow[id]
	if ok {
		// The id had a zombie or external slot: reclaim it for the
		// rejoining node with fresh baseline state.
		delete(n.st.overflow, id)
		if n.st.reclaimable > 0 {
			n.st.reclaimable--
		}
		n.resetSlotLocked(s, id)
	} else {
		s = n.newSlotLocked(id)
	}
	n.st.alive[s] = true
	n.members = spliceIn(n.members, rank, id)
	n.memberSlots = spliceIn(n.memberSlots, rank, s)
	n.epoch++
	nd := &n.st.handles[s]
	n.mu.Unlock()
	return nd, nil
}

// call performs one RPC through the transport.
func (n *Network) call(from, to ring.Point, msg simnet.Message) (simnet.Message, error) {
	return n.tr.Call(simnet.NodeID(from), simnet.NodeID(to), msg)
}

// Lookup resolves the successor of key, initiated at node from, using
// iterative finger-table routing. The first routing step executes
// locally at the initiator (no RPC), subsequent steps cost one RPC each;
// with correct fingers the total is O(log n) RPCs.
//
// The request envelope is boxed once for the whole lookup (the key
// never changes hop to hop), every reply is drained into locals and
// recycled before the next RPC, and the backup-candidate scratch is a
// fixed-size array — the routing loop allocates nothing per hop.
func (n *Network) Lookup(from, key ring.Point) (ring.Point, error) {
	initiator, err := n.Node(from)
	if err != nil {
		return 0, err
	}
	return n.route(initiator, from, key, initiator.handleNextHop(nextHopReq{Key: key}))
}

// LookupVia resolves the successor of key by routing through start,
// which may be hosted on another process: the first routing step is an
// RPC to start instead of a local table read, so no local node is
// required. from identifies the caller on the transport; it need not
// be registered anywhere (a joiner uses its own id).
func (n *Network) LookupVia(from, start, key ring.Point) (ring.Point, error) {
	raw, err := n.call(from, start, nextHopReq{Key: key})
	if err != nil {
		return 0, fmt.Errorf("%w: bootstrap %v unreachable: %v", ErrLookupAborted, start, err)
	}
	return n.route(nil, from, key, raw.(*nextHopResp))
}

// route consumes resp (recycling it) and follows the candidate chain
// to the key's successor. initiator, when non-nil, has its fingers
// invalidated as dead hops are discovered.
func (n *Network) route(initiator *Node, from, key ring.Point, resp *nextHopResp) (ring.Point, error) {
	req := simnet.Message(nextHopReq{Key: key})
	var backup [maxCandidates - 1]ring.Point
	for hop := 0; hop < n.cfg.MaxLookupHops; hop++ {
		if resp.Done {
			succ := resp.Succ
			putNextHopResp(resp)
			return succ, nil
		}
		if resp.N == 0 {
			putNextHopResp(resp)
			return 0, fmt.Errorf("%w: no route toward %v", ErrLookupAborted, key)
		}
		cur := resp.Cands[0]
		nBackup := copy(backup[:], resp.Cands[1:resp.N])
		putNextHopResp(resp)
		next := 0
		for {
			raw, err := n.call(from, cur, req)
			if err == nil {
				resp = raw.(*nextHopResp)
				break
			}
			if initiator != nil {
				initiator.invalidateFingersTo(cur)
			}
			if next >= nBackup {
				// Double-wrap so callers can match both the lookup
				// abort and the transport-level cause (ErrDropped,
				// ErrPartitioned) behind it.
				return 0, fmt.Errorf("%w: all routes toward %v failed: %w", ErrLookupAborted, key, err)
			}
			cur = backup[next]
			next++
		}
	}
	putNextHopResp(resp)
	return 0, fmt.Errorf("%w: exceeded %d hops toward %v", ErrLookupAborted, n.cfg.MaxLookupHops, key)
}

// Successor returns the immediate successor of node id by asking it (one
// RPC), which is the paper's next(p) primitive.
func (n *Network) Successor(from, of ring.Point) (ring.Point, error) {
	raw, err := n.call(from, of, getSuccessorReq{})
	if err != nil {
		return 0, fmt.Errorf("chord: successor of %v: %w", of, err)
	}
	resp := raw.(*pointResp)
	p := resp.P
	putPointResp(resp)
	return p, nil
}

// StabilizeNode runs one stabilize + notify round for node id, repairing
// its successor pointer and refreshing its successor list.
func (n *Network) StabilizeNode(id ring.Point) error {
	nd, err := n.Node(id)
	if err != nil {
		return err
	}
	succ := nd.Successor()
	if succ == id {
		// Lost all successors: try to rejoin through any other live node.
		if other, ok := n.anyOtherNode(id); ok {
			if target, err := n.Lookup(other, id); err == nil && target != id {
				nd.setSuccessors(target, nil)
				succ = target
			}
		}
	}
	raw, err := n.call(id, succ, getPredecessorReq{})
	if err != nil {
		nd.advanceSuccessor(succ)
		nd.invalidateFingersTo(succ)
		return nil // repaired; next round continues
	}
	pr := *raw.(*pointResp)
	putPointResp(raw.(*pointResp))
	if pr.Has && betweenExcl(id, succ, pr.P) {
		// The successor knows a node between us: adopt it if reachable.
		if _, err := n.call(id, pr.P, pingReq{}); err == nil {
			succ = pr.P
		}
	}
	var tail []ring.Point
	if raw, err := n.call(id, succ, succListReq{}); err == nil {
		tail = raw.(succListResp).List
	} else {
		nd.advanceSuccessor(succ)
		return nil
	}
	nd.setSuccessors(succ, tail)
	if _, err := n.call(id, succ, notifyReq{Candidate: id}); err != nil {
		nd.advanceSuccessor(succ)
	}
	return nil
}

// FixFinger refreshes one finger of node id (cycling through indices).
// It is a no-op on finger-disabled networks.
func (n *Network) FixFinger(id ring.Point) error {
	if n.cfg.DisableFingers {
		return nil
	}
	nd, err := n.Node(id)
	if err != nil {
		return err
	}
	a := &n.st
	st := a.stripe(nd.slot)
	st.Lock()
	k := int(a.nextFix[nd.slot])
	a.nextFix[nd.slot] = uint8((k + 1) % idBits)
	st.Unlock()
	target, err := n.Lookup(id, nd.fingerStart(k))
	if err != nil {
		return nil // ring damaged; retry on a later round
	}
	nd.setFinger(k, target)
	return nil
}

// CheckPredecessor probes node id's predecessor and clears it if dead.
func (n *Network) CheckPredecessor(id ring.Point) error {
	nd, err := n.Node(id)
	if err != nil {
		return err
	}
	pred, has := nd.Predecessor()
	if !has {
		return nil
	}
	if _, err := n.call(id, pred, pingReq{}); err != nil {
		nd.clearPredecessor()
	}
	return nil
}

// RunMaintenance executes the given number of synchronous maintenance
// rounds. In each round every live node (in sorted order, for
// determinism) stabilizes, checks its predecessor, and fixes
// fingersPerRound fingers. Enough rounds after churn restore a perfect
// ring; tests assert this invariant via VerifyRing.
func (n *Network) RunMaintenance(rounds, fingersPerRound int) {
	for r := 0; r < rounds; r++ {
		for _, id := range n.Members() {
			// Ignore per-node errors: nodes may crash mid-round; the
			// surviving nodes keep repairing.
			_ = n.StabilizeNode(id)
			_ = n.CheckPredecessor(id)
			for f := 0; f < fingersPerRound; f++ {
				_ = n.FixFinger(id)
			}
		}
	}
}

// anyOtherNode returns a live node other than id, if one exists. It
// picks the smallest id rather than an arbitrary choice so that repair
// behaviour — and therefore whole simulations — is a deterministic
// function of network state; with the sorted snapshot that is the first
// entry not equal to id, an O(1) read.
func (n *Network) anyOtherNode(id ring.Point) (ring.Point, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.members) == 0 {
		return 0, false
	}
	if n.members[0] != id {
		return n.members[0], true
	}
	if len(n.members) > 1 {
		return n.members[1], true
	}
	return 0, false
}

// BuildStatic constructs a fully stabilized ring over the given points in
// one step: successors, predecessors, successor lists and all fingers are
// computed directly. It is the starting state for experiments that study
// the sampler rather than ring convergence.
//
// Construction is bulk and parallel: the arena is sized once, slots are
// assigned in ring order (slot i hosts the i-th point), and per-slot
// routing state — pure index arithmetic on (sorted ring, i) — is
// populated over contiguous worker shards with no interning, no locks
// and no per-node allocation. The result is bit-identical to the
// sequential build at any GOMAXPROCS, which the determinism tests
// assert; a 10^7-peer ring constructs in well under a minute on one
// core and occupies a few GB.
func BuildStatic(cfg Config, tr simnet.Transport, points []ring.Point) (*Network, error) {
	return BuildStaticPartition(cfg, tr, points, nil)
}

// BuildStaticPartition constructs the local shard of a stabilized ring
// that spans multiple processes: the full membership defines every
// node's routing state, but only the nodes selected by owned are marked
// live (and registered, on per-node transports) on this process. The
// other points must be hosted by peer processes reachable through the
// transport (the wire transport routes by node id). A nil owned
// predicate owns everything, which is exactly BuildStatic.
//
// Per-node routing state is a pure function of (sorted membership,
// index), so every process computes identical state for its shard and
// the union across processes is bit-identical to the single-process
// build.
func BuildStaticPartition(cfg Config, tr simnet.Transport, points []ring.Point, owned func(ring.Point) bool) (*Network, error) {
	r, err := ring.New(points)
	if err != nil {
		return nil, fmt.Errorf("chord: building static ring: %w", err)
	}
	n := NewNetwork(cfg, tr)
	sorted := r.Points()
	size := len(sorted)
	// Single-threaded sizing and slot assignment: no locks needed until
	// the network is published.
	n.growLocked(size)
	a := &n.st
	a.used = size
	n.memberSlots = make([]uint32, size)
	ownedIdx := make([]int, 0, size)
	for i, id := range sorted {
		s := uint32(i)
		n.memberSlots[i] = s
		a.ids[s] = uint64(id)
		a.preds[s] = noSlot
		a.succLen[s] = 1
		a.succs[i*n.succStride] = s
		a.handles[s] = Node{net: n, slot: s}
		if owned != nil && !owned(id) {
			continue
		}
		a.alive[s] = true
		if !n.multi {
			if err := tr.Register(simnet.NodeID(id), n.idHandler(id)); err != nil {
				return nil, fmt.Errorf("chord: registering node %v: %w", id, err)
			}
		}
		ownedIdx = append(ownedIdx, i)
	}
	n.members = sorted
	n.epoch++
	parallel.Shards(len(ownedIdx), parallel.Workers(len(ownedIdx)), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			n.fillStaticSlot(r, ownedIdx[j])
		}
	})
	return n, nil
}

// fillStaticSlot computes the stabilized routing state of the node at
// ring index i (slot i, by construction). It runs during BuildStatic's
// sharded phase: the slot is owned exclusively by one worker and
// published by the shard barrier, so no locks are taken — and because
// slot and ring index coincide, every successor, predecessor and finger
// reference is plain index arithmetic with no ID translation at all.
func (n *Network) fillStaticSlot(r *ring.Ring, i int) {
	a := &n.st
	s := uint32(i)
	size := r.Len()
	base := i * n.succStride
	a.succs[base] = uint32(r.NextIndex(i))
	cnt := 1
	for k := 2; k <= n.cfg.SuccListLen && k < size; k++ {
		a.succs[base+cnt] = uint32((i + k) % size)
		cnt++
	}
	a.succLen[s] = uint16(cnt)
	if size > 1 {
		a.preds[s] = uint32(r.PrevIndex(i))
	}
	if n.cfg.DisableFingers {
		return
	}
	// Finger k points at the successor of id + 2^k. The targets'
	// clockwise distances are strictly increasing, so their owners
	// advance monotonically around the ring: gallop from the previous
	// finger's offset instead of paying a full binary search per finger.
	// Offset 0 means the successor wrapped all the way back to the node
	// itself (no peer at clockwise distance >= 2^k) — once that happens
	// it holds for every larger k.
	off := 1
	fb := i * idBits
	for k := 0; k < idBits; k++ {
		if off != 0 {
			off = succOffset(r, i, uint64(1)<<uint(k), off)
		}
		if off == 0 {
			a.fingers[fb+k] = s
		} else {
			a.fingers[fb+k] = uint32((i + off) % size)
		}
	}
	a.fingOK[s] = ^uint64(0)
}

// succOffset returns the clockwise offset from node i of the successor
// of r.At(i) + d, galloping right from prev (the previous finger's
// offset, ≥ 1). Offset 0 reports that no peer lies at clockwise
// distance >= d, in which case the successor is node i itself.
func succOffset(r *ring.Ring, i int, d uint64, prev int) int {
	size := r.Len()
	if size == 1 {
		return 0
	}
	id := r.At(i)
	dist := func(off int) uint64 { return ring.Distance(id, r.At((i+off)%size)) }
	if dist(prev) >= d {
		return prev
	}
	// Exponential bracket: dist(lo) < d <= dist(right).
	lo, step := prev, 1
	right := lo + 1
	for right <= size-1 && dist(right) < d {
		lo = right
		right += step
		step <<= 1
	}
	if right > size-1 {
		right = size - 1
		if dist(right) < d {
			return 0
		}
	}
	for right-lo > 1 {
		mid := int(uint(lo+right) >> 1)
		if dist(mid) >= d {
			right = mid
		} else {
			lo = mid
		}
	}
	return right
}

// VerifyFingers checks every live node's set fingers against the
// current membership: finger k must point at the live successor of
// id + 2^k. Unset fingers are ignored (they only cost lookup hops, not
// correctness). It returns nil when every set finger is correct, which
// is the state RunMaintenance converges to once every node has cycled
// through all 64 fingers.
func (n *Network) VerifyFingers() error {
	members := n.Members()
	if len(members) == 0 {
		return ErrEmptyNetwork
	}
	r, err := ring.New(members)
	if err != nil {
		return err
	}
	for _, id := range members {
		nd, err := n.Node(id)
		if err != nil {
			return err
		}
		for k := 0; k < idBits; k++ {
			finger, ok := nd.Finger(k)
			if !ok {
				continue
			}
			want := r.At(r.Successor(nd.fingerStart(k)))
			if finger != want {
				return fmt.Errorf("chord: node %v finger %d = %v, want %v", id, k, finger, want)
			}
		}
	}
	return nil
}

// VerifyRing checks global ring consistency: following successor
// pointers from the smallest live node must visit every live node
// exactly once in sorted order, and each predecessor must match. It
// returns nil when the ring is perfect.
func (n *Network) VerifyRing() error {
	members := n.Members()
	if len(members) == 0 {
		return ErrEmptyNetwork
	}
	for i, id := range members {
		nd, err := n.Node(id)
		if err != nil {
			return err
		}
		wantSucc := members[(i+1)%len(members)]
		if got := nd.Successor(); got != wantSucc {
			return fmt.Errorf("chord: node %v successor = %v, want %v", id, got, wantSucc)
		}
		if len(members) > 1 {
			wantPred := members[(i-1+len(members))%len(members)]
			pred, has := nd.Predecessor()
			if !has {
				return fmt.Errorf("chord: node %v has no predecessor", id)
			}
			if pred != wantPred {
				return fmt.Errorf("chord: node %v predecessor = %v, want %v", id, pred, wantPred)
			}
		}
	}
	return nil
}
