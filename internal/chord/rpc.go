// Package chord is a complete implementation of the Chord distributed
// hash table (Stoica et al., SIGCOMM 2001) over the simulated network in
// internal/simnet: 64-bit identifiers, finger tables, iterative
// find-successor routing, successor lists, and the join / stabilize /
// notify / fix-fingers / check-predecessor maintenance protocol.
//
// It is the "standard DHT" substrate assumed by King & Saia's paper: it
// provides h (a routed lookup costing O(log n) sequential RPCs) and next
// (one successor pointer chase) with real message counts, via the
// dht.DHT adapter in this package.
package chord

import (
	"sync"

	"github.com/dht-sampling/randompeer/internal/ring"
)

// RPC request and response payloads. Handlers are strictly local: they
// read or mutate the destination node's state and never issue nested
// RPCs, which keeps every transport (including the goroutine-per-node
// one) deadlock-free.

// nextHopReq asks a node for the next step in resolving Key.
type nextHopReq struct {
	Key ring.Point
}

// maxCandidates bounds the routing candidates one next-hop reply
// carries: the closest preceding finger plus fallbacks.
const maxCandidates = 4

// nextHopResp either resolves the lookup (Done, with Succ holding the
// node responsible for Key) or offers routing candidates, best first,
// in the fixed-size Cands array (the old slice field cost one
// allocation per routing hop). Responses travel as *nextHopResp and are
// pooled: the lookup loop is the only consumer and returns each reply
// to the pool once it has picked the next hop, so steady-state routing
// allocates no envelopes at all.
type nextHopResp struct {
	Done bool
	Succ ring.Point
	// N is the number of valid entries in Cands.
	N     int
	Cands [maxCandidates]ring.Point
}

var nextHopRespPool = sync.Pool{New: func() any { return new(nextHopResp) }}

// newNextHopResp returns a zeroed reply from the pool.
func newNextHopResp() *nextHopResp {
	r := nextHopRespPool.Get().(*nextHopResp)
	*r = nextHopResp{}
	return r
}

// putNextHopResp recycles a reply the consumer is done with.
func putNextHopResp(r *nextHopResp) { nextHopRespPool.Put(r) }

// add appends p as a routing candidate if it advances toward key (lies
// strictly between self and key) and is not already present, and
// reports whether the candidate list is now full. The linear dedup over
// at most maxCandidates entries replaces the per-call map the handler
// used to allocate.
func (r *nextHopResp) add(self, key, p ring.Point) bool {
	if r.N >= maxCandidates {
		return true
	}
	if p == self || !betweenExcl(self, key, p) {
		return false
	}
	for i := 0; i < r.N; i++ {
		if r.Cands[i] == p {
			return false
		}
	}
	r.Cands[r.N] = p
	r.N++
	return r.N == maxCandidates
}

// getSuccessorReq asks a node for its immediate successor.
type getSuccessorReq struct{}

// getPredecessorReq asks a node for its predecessor, if known.
type getPredecessorReq struct{}

// pointResp carries an optional node identifier. Like nextHopResp it
// travels as a pooled pointer: the successor chase issues one of these
// RPCs per walk step of every sample, so boxing a fresh value each time
// was a per-step allocation. The caller that receives one copies the
// fields out and recycles it with putPointResp.
type pointResp struct {
	P   ring.Point
	Has bool
}

var pointRespPool = sync.Pool{New: func() any { return new(pointResp) }}

// newPointResp returns a filled reply from the pool.
func newPointResp(p ring.Point, has bool) *pointResp {
	r := pointRespPool.Get().(*pointResp)
	r.P, r.Has = p, has
	return r
}

// putPointResp recycles a reply the consumer is done with.
func putPointResp(r *pointResp) { pointRespPool.Put(r) }

// succListReq asks a node for its successor list.
type succListReq struct{}

// succListResp carries a copy of the node's successor list.
type succListResp struct {
	List []ring.Point
}

// notifyReq tells a node that Candidate might be its predecessor.
type notifyReq struct {
	Candidate ring.Point
}

// pingReq checks liveness.
type pingReq struct{}

// ackResp acknowledges notify and ping.
type ackResp struct{}

// betweenIncl reports whether x lies in the clockwise interval (a, b].
// When a == b the interval spans the full circle (the single-node case in
// Chord's routing predicate), so every x qualifies.
func betweenIncl(a, b, x ring.Point) bool {
	if a == b {
		return true
	}
	d := ring.Distance(a, x)
	return d != 0 && d <= ring.Distance(a, b)
}

// betweenExcl reports whether x lies in the open clockwise interval
// (a, b). When a == b the interval is the full circle minus the endpoint.
func betweenExcl(a, b, x ring.Point) bool {
	if a == b {
		return x != a
	}
	d := ring.Distance(a, x)
	return d != 0 && d < ring.Distance(a, b)
}
