// Package chord is a complete implementation of the Chord distributed
// hash table (Stoica et al., SIGCOMM 2001) over the simulated network in
// internal/simnet: 64-bit identifiers, finger tables, iterative
// find-successor routing, successor lists, and the join / stabilize /
// notify / fix-fingers / check-predecessor maintenance protocol.
//
// It is the "standard DHT" substrate assumed by King & Saia's paper: it
// provides h (a routed lookup costing O(log n) sequential RPCs) and next
// (one successor pointer chase) with real message counts, via the
// dht.DHT adapter in this package.
package chord

import "github.com/dht-sampling/randompeer/internal/ring"

// RPC request and response payloads. Handlers are strictly local: they
// read or mutate the destination node's state and never issue nested
// RPCs, which keeps every transport (including the goroutine-per-node
// one) deadlock-free.

// nextHopReq asks a node for the next step in resolving Key.
type nextHopReq struct {
	Key ring.Point
}

// nextHopResp either resolves the lookup (Done, with Succ holding the
// node responsible for Key) or offers routing candidates, best first.
type nextHopResp struct {
	Done       bool
	Succ       ring.Point
	Candidates []ring.Point
}

// getSuccessorReq asks a node for its immediate successor.
type getSuccessorReq struct{}

// getPredecessorReq asks a node for its predecessor, if known.
type getPredecessorReq struct{}

// pointResp carries an optional node identifier.
type pointResp struct {
	P   ring.Point
	Has bool
}

// succListReq asks a node for its successor list.
type succListReq struct{}

// succListResp carries a copy of the node's successor list.
type succListResp struct {
	List []ring.Point
}

// notifyReq tells a node that Candidate might be its predecessor.
type notifyReq struct {
	Candidate ring.Point
}

// pingReq checks liveness.
type pingReq struct{}

// ackResp acknowledges notify and ping.
type ackResp struct{}

// betweenIncl reports whether x lies in the clockwise interval (a, b].
// When a == b the interval spans the full circle (the single-node case in
// Chord's routing predicate), so every x qualifies.
func betweenIncl(a, b, x ring.Point) bool {
	if a == b {
		return true
	}
	d := ring.Distance(a, x)
	return d != 0 && d <= ring.Distance(a, b)
}

// betweenExcl reports whether x lies in the open clockwise interval
// (a, b). When a == b the interval is the full circle minus the endpoint.
func betweenExcl(a, b, x ring.Point) bool {
	if a == b {
		return x != a
	}
	d := ring.Distance(a, x)
	return d != 0 && d < ring.Distance(a, b)
}
