package chord

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/dht-sampling/randompeer/internal/ring"
)

// Flat index-based node storage.
//
// Every node the network knows about — live members, crashed members
// whose state in-flight RPCs may still read, and external contacts
// learned over the wire — occupies one dense uint32 slot in a
// struct-of-arrays arena. All routing state (successor lists, fingers,
// predecessors) lives as packed uint32 slot references in per-network
// contiguous slices: no per-node heap objects, no map[Point]*Node, no
// per-node []Point slices. A 10^7-node ring is a handful of large
// allocations instead of 10^7 small ones, which is what makes
// sub-minute builds and few-GB residency possible.
//
// The ID↔slot bridge is the copy-on-write sorted membership snapshot
// (Network.members) plus an aligned slot snapshot (Network.memberSlots):
// a member's slot is memberSlots[rank] with rank found by binary search
// (ring.Rank). Non-member slots — zombies (crashed nodes still visible
// to in-flight RPCs) and external contacts — resolve through a small
// overflow map that only ever holds the churn margin, never the ring.
//
// Locking. Per-slot routing state is guarded by a fixed pool of striped
// RWMutexes (slot & stripeMask picks the stripe), replacing the old
// per-node mutex. The network mutex guards membership, the bridge, slot
// allocation and the alive flags. Lock order is network.mu before
// stripe. Slot identifiers (ids) are read and written atomically, so
// translating a slot reference found in another node's routing array
// back to its identifier needs no cross-stripe locking; array growth
// swaps the backing slices under network.mu plus every stripe, so any
// reader holding either lock never observes a half-moved arena.
//
// Slot reuse can alias: a handle or routing entry observed just before
// its slot was scavenged and recycled reads the new occupant's state.
// That is protocol-equivalent to the stale answers crashed nodes have
// always been allowed to give (routing verifies progress every hop),
// and the atomic ids keep it a stale read, never a data race.
type arena struct {
	stripes [numStripes]sync.RWMutex

	// used is the number of allocated slots. Every array below has
	// len == cap spanning the arena capacity, so growth (which swaps
	// the backing arrays under all stripes) is the only operation that
	// ever changes a slice header.
	used int

	ids   []uint64 // slot -> identifier; atomic access
	alive []bool   // slot hosts a live local member (network.mu)

	preds   []uint32 // predecessor slot, noSlot when unknown
	succLen []uint16 // live prefix length of the successor row
	succs   []uint32 // successor rows, stride = Network.succStride
	fingers []uint32 // finger rows, stride = idBits; nil when disabled
	fingOK  []uint64 // finger-set bitmask, one word per slot
	nextFix []uint8  // next finger index to fix

	handles []Node // preconstructed public handles, one per slot

	free     []uint32 // recycled slots ready for reuse (LIFO)
	freeBits []uint64 // bitset marking slots currently on free
	overflow map[ring.Point]uint32
	// reclaimable counts dead (zombie or external) slots not yet on
	// the free list; it triggers the mark-and-sweep scavenger.
	reclaimable int
}

const (
	numStripes = 256
	stripeMask = numStripes - 1
	noSlot     = ^uint32(0)
)

// stripe returns the lock guarding slot s's routing state.
func (a *arena) stripe(s uint32) *sync.RWMutex { return &a.stripes[s&stripeMask] }

// id returns slot s's identifier. Callers must hold a stripe or the
// network mutex (either mode) to pin the backing array; the element
// itself is read atomically, so s may belong to any stripe.
func (a *arena) id(s uint32) ring.Point {
	return ring.Point(atomic.LoadUint64(&a.ids[s]))
}

// lockAllStripes acquires every stripe in index order.
func (a *arena) lockAllStripes() {
	for i := range a.stripes {
		a.stripes[i].Lock()
	}
}

// unlockAllStripes releases every stripe.
func (a *arena) unlockAllStripes() {
	for i := range a.stripes {
		a.stripes[i].Unlock()
	}
}

// growLocked reallocates every per-slot array to the new capacity,
// copying the used prefix. Callers must hold network.mu plus every
// stripe, except during single-threaded construction.
func (n *Network) growLocked(capacity int) {
	a := &n.st
	if capacity <= cap(a.ids) {
		return
	}
	a.ids = growCopy(a.ids, capacity)
	a.alive = growCopy(a.alive, capacity)
	a.preds = growCopy(a.preds, capacity)
	a.succLen = growCopy(a.succLen, capacity)
	a.succs = growCopy(a.succs, capacity*n.succStride)
	if !n.cfg.DisableFingers {
		a.fingers = growCopy(a.fingers, capacity*idBits)
		a.fingOK = growCopy(a.fingOK, capacity)
	}
	a.nextFix = growCopy(a.nextFix, capacity)
	a.freeBits = growCopy(a.freeBits, (capacity+63)/64)
	handles := make([]Node, capacity)
	copy(handles, a.handles)
	a.handles = handles
}

// growCopy returns a full-length slice of the new capacity holding a
// copy of src.
func growCopy[T any](src []T, capacity int) []T {
	dst := make([]T, capacity)
	copy(dst, src)
	return dst
}

// lookupLocked resolves an id to its slot: members bridge first, then
// the overflow map. Caller holds network.mu (either mode).
func (n *Network) lookupLocked(id ring.Point) (uint32, bool) {
	if rank, ok := ring.Rank(n.members, id); ok {
		return n.memberSlots[rank], true
	}
	s, ok := n.st.overflow[id]
	return s, ok
}

// intern resolves id to a slot, allocating an external slot when the
// id has never been seen. On the steady-state path (id is a member)
// this is one binary search under a read lock and allocates nothing.
// Callers must not hold any stripe (lock order: mu before stripe).
func (n *Network) intern(id ring.Point) uint32 {
	n.mu.RLock()
	s, ok := n.lookupLocked(id)
	n.mu.RUnlock()
	if ok {
		return s
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.lookupLocked(id); ok {
		return s
	}
	s = n.newSlotLocked(id)
	n.st.overflow[id] = s
	n.st.reclaimable++ // external slots are reclaimable once unreferenced
	return s
}

// slotOf resolves an id without allocating; the second result is false
// for ids the network has never seen (or whose slot was scavenged).
func (n *Network) slotOf(id ring.Point) (uint32, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.lookupLocked(id)
}

// liveSlot resolves an id to the slot of a live locally-hosted member.
func (n *Network) liveSlot(id ring.Point) (uint32, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	rank, ok := ring.Rank(n.members, id)
	if !ok {
		return 0, false
	}
	s := n.memberSlots[rank]
	return s, n.st.alive[s]
}

// newSlotLocked allocates a slot for id and resets its routing state
// to the fresh-node baseline. Caller holds network.mu; the new slot is
// not yet live and not yet in any bridge structure.
func (n *Network) newSlotLocked(id ring.Point) uint32 {
	a := &n.st
	if len(a.free) == 0 && a.reclaimable >= scavengeThreshold(a.used) {
		n.scavengeLocked()
	}
	var s uint32
	if len(a.free) > 0 {
		s = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		a.freeBits[s/64] &^= 1 << (s % 64)
	} else {
		if a.used == cap(a.ids) {
			next := a.used * 2
			if next < 16 {
				next = 16
			}
			a.lockAllStripes()
			n.growLocked(next)
			a.unlockAllStripes()
		}
		s = uint32(a.used)
		a.used++
	}
	n.resetSlotLocked(s, id)
	return s
}

// resetSlotLocked rewrites slot s to the fresh-node baseline for id:
// successor self, no predecessor, no fingers, empty store. Caller holds
// network.mu; the slot must not be referenced by any live node.
func (n *Network) resetSlotLocked(s uint32, id ring.Point) {
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	atomic.StoreUint64(&a.ids[s], uint64(id))
	a.preds[s] = noSlot
	a.succLen[s] = 1
	a.succs[int(s)*n.succStride] = s
	if !n.cfg.DisableFingers {
		a.fingOK[s] = 0
	}
	a.nextFix[s] = 0
	a.handles[s] = Node{net: n, slot: s}
	st.Unlock()
	n.dropStore(s)
}

// scavengeThreshold is the dead-slot count that triggers a sweep.
func scavengeThreshold(used int) int {
	if t := used / 8; t > 64 {
		return t
	}
	return 64
}

// scavengeLocked frees every dead slot no live member references: it
// marks the slots reachable from the membership bridge and every live
// node's routing arrays, then moves unmarked dead slots to the free
// list (LIFO, so reuse order is deterministic) and drops their overflow
// entries. Caller holds network.mu.
func (n *Network) scavengeLocked() int {
	a := &n.st
	a.lockAllStripes()
	defer a.unlockAllStripes()
	marks := make([]uint64, (a.used+63)/64)
	mark := func(s uint32) { marks[s/64] |= 1 << (s % 64) }
	for _, s := range n.memberSlots {
		mark(s)
	}
	for _, s := range n.memberSlots {
		if !a.alive[s] {
			continue // remote members of a partitioned build hold no local state
		}
		base := int(s) * n.succStride
		for i := 0; i < int(a.succLen[s]); i++ {
			mark(a.succs[base+i])
		}
		if p := a.preds[s]; p != noSlot {
			mark(p)
		}
		if !n.cfg.DisableFingers {
			fb := int(s) * idBits
			for w := a.fingOK[s]; w != 0; w &= w - 1 {
				mark(a.fingers[fb+bits.TrailingZeros64(w)])
			}
		}
	}
	freed := 0
	for s := uint32(0); int(s) < a.used; s++ {
		if a.alive[s] || marks[s/64]&(1<<(s%64)) != 0 || a.freeBits[s/64]&(1<<(s%64)) != 0 {
			continue
		}
		a.free = append(a.free, s)
		a.freeBits[s/64] |= 1 << (s % 64)
		n.dropStore(s)
		freed++
	}
	if freed > 0 {
		for id, s := range a.overflow {
			if a.freeBits[s/64]&(1<<(s%64)) != 0 {
				delete(a.overflow, id)
			}
		}
	}
	a.reclaimable -= freed
	if a.reclaimable < 0 {
		a.reclaimable = 0
	}
	return freed
}

// Scavenge forces one slot-recycling sweep and reports how many dead
// slots were freed for reuse. The network runs sweeps automatically
// once enough reclaimable slots accumulate; tests and operators use
// this to observe recycling deterministically.
func (n *Network) Scavenge() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.scavengeLocked()
}

// StorageStats reports the flat storage layout's occupancy.
type StorageStats struct {
	// Slots is the arena size: every node ever seen occupies one slot
	// until scavenged.
	Slots int
	// Live is the number of slots hosting live locally-hosted members.
	Live int
	// Free is the number of recycled slots awaiting reuse.
	Free int
	// Reclaimable is the number of dead slots not yet recycled (they
	// free once no live node's routing state references them).
	Reclaimable int
}

// StorageStats returns the current slot-arena occupancy.
func (n *Network) StorageStats() StorageStats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	live := 0
	for _, s := range n.memberSlots {
		if n.st.alive[s] {
			live++
		}
	}
	return StorageStats{
		Slots:       n.st.used,
		Live:        live,
		Free:        len(n.st.free),
		Reclaimable: n.st.reclaimable,
	}
}

// spliceIn returns a copy of s with v inserted at index i
// (copy-on-write, the aligned-snapshot counterpart of
// ring.InsertSorted).
func spliceIn[T any](s []T, i int, v T) []T {
	out := make([]T, len(s)+1)
	copy(out, s[:i])
	out[i] = v
	copy(out[i+1:], s[i:])
	return out
}

// spliceOut returns a copy of s with index i removed (copy-on-write).
func spliceOut[T any](s []T, i int) []T {
	out := make([]T, len(s)-1)
	copy(out, s[:i])
	copy(out[i:], s[i+1:])
	return out
}
