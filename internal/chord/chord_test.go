package chord

import (
	"errors"
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// newStatic builds a fully stabilized n-node network on a direct
// transport with uniformly random ids.
func newStatic(t *testing.T, seed uint64, n int) (*Network, *ring.Ring) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	return net, r
}

func TestBuildStaticVerifies(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 16, 257} {
		net, _ := newStatic(t, uint64(n), n)
		if err := net.VerifyRing(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestLookupCorrectness(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 42, 128)
	rng := rand.New(rand.NewPCG(1, 2))
	from := r.At(0)
	for trial := 0; trial < 500; trial++ {
		key := ring.Point(rng.Uint64())
		got, err := net.Lookup(from, key)
		if err != nil {
			t.Fatalf("lookup(%v): %v", key, err)
		}
		want := r.At(r.Successor(key))
		if got != want {
			t.Fatalf("lookup(%v) = %v, want %v", key, got, want)
		}
	}
}

func TestLookupFromEveryNode(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 7, 64)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < r.Len(); i++ {
		key := ring.Point(rng.Uint64())
		got, err := net.Lookup(r.At(i), key)
		if err != nil {
			t.Fatalf("lookup from node %d: %v", i, err)
		}
		if want := r.At(r.Successor(key)); got != want {
			t.Fatalf("lookup from node %d = %v, want %v", i, got, want)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	t.Parallel()
	// Mean lookup cost must scale like O(log n): for a perfect Chord
	// ring it is at most ~log2(n) RPCs.
	for _, n := range []int{64, 256, 1024} {
		net, r := newStatic(t, uint64(n)*3, n)
		rng := rand.New(rand.NewPCG(9, uint64(n)))
		const trials = 200
		before := net.Meter().Snapshot()
		for trial := 0; trial < trials; trial++ {
			from := r.At(rng.IntN(r.Len()))
			if _, err := net.Lookup(from, ring.Point(rng.Uint64())); err != nil {
				t.Fatal(err)
			}
		}
		cost := net.Meter().Snapshot().Sub(before)
		meanHops := float64(cost.Calls) / trials
		logN := math.Log2(float64(n))
		if meanHops > 1.5*logN {
			t.Errorf("n=%d: mean hops %.2f exceeds 1.5*log2(n)=%.2f", n, meanHops, 1.5*logN)
		}
		if meanHops < 0.25*logN {
			t.Errorf("n=%d: mean hops %.2f suspiciously low (< 0.25*log2 n)", n, meanHops)
		}
	}
}

func TestLookupExactKey(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 11, 32)
	// Looking up a key equal to a node id must return that node.
	for i := 0; i < r.Len(); i++ {
		got, err := net.Lookup(r.At(0), r.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != r.At(i) {
			t.Errorf("lookup of own id %v = %v", r.At(i), got)
		}
	}
}

func TestJoinGrowsRing(t *testing.T) {
	t.Parallel()
	tr := simnet.NewDirect()
	net := NewNetwork(Config{}, tr)
	rng := rand.New(rand.NewPCG(5, 6))
	first := ring.Point(rng.Uint64())
	if _, err := net.Create(first); err != nil {
		t.Fatal(err)
	}
	ids := []ring.Point{first}
	for i := 1; i < 48; i++ {
		id := ring.Point(rng.Uint64())
		via := ids[rng.IntN(len(ids))]
		if _, err := net.Join(id, via); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		ids = append(ids, id)
		// A few rounds after each join keep the ring near-perfect, which
		// mirrors Chord's steady-state assumption.
		net.RunMaintenance(2, 4)
	}
	net.RunMaintenance(8, 16)
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring not converged after joins: %v", err)
	}
	if got := net.NumAlive(); got != 48 {
		t.Errorf("NumAlive = %d, want 48", got)
	}
}

func TestJoinDuplicateFails(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 13, 8)
	if _, err := net.Join(r.At(3), r.At(0)); !errors.Is(err, ErrNodeExists) {
		t.Errorf("err = %v, want ErrNodeExists", err)
	}
}

func TestCrashAndRepair(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 21, 64)
	rng := rand.New(rand.NewPCG(8, 8))
	// Crash 16 random nodes (25%).
	perm := rng.Perm(r.Len())
	crashed := make(map[ring.Point]bool, 16)
	for _, idx := range perm[:16] {
		id := r.At(idx)
		if err := net.Crash(id); err != nil {
			t.Fatal(err)
		}
		crashed[id] = true
	}
	net.RunMaintenance(12, 16)
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring not repaired after crashes: %v", err)
	}
	// Lookups from survivors resolve to live nodes only.
	members := net.Members()
	live := make(map[ring.Point]bool, len(members))
	for _, m := range members {
		live[m] = true
	}
	for trial := 0; trial < 200; trial++ {
		from := members[rng.IntN(len(members))]
		got, err := net.Lookup(from, ring.Point(rng.Uint64()))
		if err != nil {
			t.Fatalf("post-repair lookup: %v", err)
		}
		if !live[got] {
			t.Fatalf("lookup resolved to crashed node %v", got)
		}
	}
}

func TestConsecutiveCrashWithinSuccessorListRepairs(t *testing.T) {
	t.Parallel()
	// Chord's stated fault tolerance: the ring survives up to
	// SuccListLen-1 consecutive failures between stabilizations. Crash
	// exactly that many adjacent nodes and verify full repair.
	cfg := Config{SuccListLen: 8}
	rng := rand.New(rand.NewPCG(61, 62))
	r, err := ring.Generate(rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(cfg, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 10+7; i++ { // 7 = SuccListLen-1 consecutive
		if err := net.Crash(r.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	net.RunMaintenance(12, 16)
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring not repaired after %d consecutive crashes: %v", 7, err)
	}
	// Lookups across the gap resolve to live nodes.
	for trial := 0; trial < 100; trial++ {
		key := ring.Point(rng.Uint64())
		got, err := net.Lookup(r.At(0), key)
		if err != nil {
			t.Fatalf("lookup after gap repair: %v", err)
		}
		if _, err := net.Node(got); err != nil {
			t.Fatalf("lookup resolved to crashed node %v", got)
		}
	}
}

func TestCrashUnknownNode(t *testing.T) {
	t.Parallel()
	net, _ := newStatic(t, 31, 4)
	if err := net.Crash(ring.Point(1)); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("err = %v, want ErrNodeNotFound", err)
	}
}

func TestSuccessorRPC(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 17, 16)
	for i := 0; i < r.Len(); i++ {
		succ, err := net.Successor(r.At(0), r.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := r.At(r.NextIndex(i)); succ != want {
			t.Errorf("Successor(%d) = %v, want %v", i, succ, want)
		}
	}
}

func TestSuccessorOfCrashedNodeFails(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 19, 8)
	if err := net.Crash(r.At(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Successor(r.At(0), r.At(3)); err == nil {
		t.Error("successor RPC to crashed node should fail")
	}
}

func TestNeighborsDistinct(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 23, 128)
	nd, err := net.Node(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	nbrs := nd.Neighbors()
	if len(nbrs) == 0 {
		t.Fatal("no neighbors")
	}
	seen := make(map[ring.Point]bool, len(nbrs))
	for _, p := range nbrs {
		if p == nd.ID() {
			t.Error("node lists itself as neighbor")
		}
		if seen[p] {
			t.Errorf("duplicate neighbor %v", p)
		}
		seen[p] = true
	}
	// A 128-node ring yields about log2(128) = 7 distinct fingers.
	if len(nbrs) < 5 {
		t.Errorf("only %d distinct neighbors, expected >= 5", len(nbrs))
	}
}

func TestVerifyFingers(t *testing.T) {
	t.Parallel()
	// Static construction computes perfect fingers.
	net, r := newStatic(t, 53, 64)
	if err := net.VerifyFingers(); err != nil {
		t.Fatalf("static fingers imperfect: %v", err)
	}
	// After crashes, enough maintenance rounds re-converge all 64
	// fingers per node (rounds * fingersPerRound >= 64).
	rng := rand.New(rand.NewPCG(54, 55))
	perm := rng.Perm(r.Len())
	for _, idx := range perm[:8] {
		if err := net.Crash(r.At(idx)); err != nil {
			t.Fatal(err)
		}
	}
	net.RunMaintenance(8, 16)
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring not repaired: %v", err)
	}
	if err := net.VerifyFingers(); err != nil {
		t.Fatalf("fingers not reconverged: %v", err)
	}
	// Detection: corrupt one finger.
	nd, err := net.Node(net.Members()[0])
	if err != nil {
		t.Fatal(err)
	}
	nd.setFinger(63, nd.ID())
	if err := net.VerifyFingers(); err == nil {
		t.Error("VerifyFingers should detect a corrupted finger")
	}
}

func TestVerifyRingDetectsDamage(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 29, 8)
	nd, err := net.Node(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	nd.setSuccessors(r.At(0), nil) // point at self: broken
	if err := net.VerifyRing(); err == nil {
		t.Error("VerifyRing should detect a broken successor")
	}
}

func TestEmptyNetworkVerify(t *testing.T) {
	t.Parallel()
	net := NewNetwork(Config{}, simnet.NewDirect())
	if err := net.VerifyRing(); !errors.Is(err, ErrEmptyNetwork) {
		t.Errorf("err = %v, want ErrEmptyNetwork", err)
	}
}

func TestBuildStaticRejectsDuplicates(t *testing.T) {
	t.Parallel()
	_, err := BuildStatic(Config{}, simnet.NewDirect(), []ring.Point{1, 1})
	if err == nil {
		t.Error("duplicate points should fail")
	}
}

func TestAdapterHAndNext(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 37, 64)
	d, err := net.AsDHT(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 7))
	for trial := 0; trial < 200; trial++ {
		x := ring.Point(rng.Uint64())
		p, err := d.H(x)
		if err != nil {
			t.Fatal(err)
		}
		wantIdx := r.Successor(x)
		if p.Point != r.At(wantIdx) || p.Owner != wantIdx {
			t.Fatalf("H(%v) = %+v, want point %v owner %d", x, p, r.At(wantIdx), wantIdx)
		}
		nxt, err := d.Next(p)
		if err != nil {
			t.Fatal(err)
		}
		if nxt.Owner != r.NextIndex(wantIdx) {
			t.Fatalf("Next owner = %d, want %d", nxt.Owner, r.NextIndex(wantIdx))
		}
	}
	if d.Size() != 64 || d.Owners() != 64 {
		t.Errorf("Size/Owners = %d/%d, want 64/64", d.Size(), d.Owners())
	}
	if self := d.Self(); self.Owner != 0 || self.Point != r.At(0) {
		t.Errorf("Self = %+v", self)
	}
}

func TestAdapterNextCostsOneRPC(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 41, 32)
	d, err := net.AsDHT(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.H(0)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Meter().Snapshot()
	if _, err := d.Next(p); err != nil {
		t.Fatal(err)
	}
	cost := d.Meter().Snapshot().Sub(before)
	if cost.Calls != 1 || cost.Messages != 2 {
		t.Errorf("Next cost = %+v, want exactly 1 call / 2 messages", cost)
	}
}

func TestAdapterRefreshOwnersAfterChurn(t *testing.T) {
	t.Parallel()
	net, r := newStatic(t, 43, 16)
	d, err := net.AsDHT(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Crash(r.At(8)); err != nil {
		t.Fatal(err)
	}
	net.RunMaintenance(6, 8)
	d.RefreshOwners()
	if d.Size() != 15 {
		t.Errorf("Size after crash = %d, want 15", d.Size())
	}
}

func TestAdapterUnknownCaller(t *testing.T) {
	t.Parallel()
	net, _ := newStatic(t, 47, 4)
	if _, err := net.AsDHT(ring.Point(12345)); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("err = %v, want ErrNodeNotFound", err)
	}
}

func TestSuccessorOnlyRouting(t *testing.T) {
	t.Parallel()
	// With fingers disabled, lookups resolve correctly via successor
	// lists alone, at Theta(n/r) hops.
	rng := rand.New(rand.NewPCG(81, 82))
	r, err := ring.Generate(rng, 96)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(Config{SuccListLen: 8, MaxLookupHops: 400, DisableFingers: true}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	before := net.Meter().Snapshot()
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		key := ring.Point(rng.Uint64())
		got, err := net.Lookup(r.At(0), key)
		if err != nil {
			t.Fatalf("fingerless lookup: %v", err)
		}
		if want := r.At(r.Successor(key)); got != want {
			t.Fatalf("fingerless lookup = %v, want %v", got, want)
		}
	}
	meanHops := float64(net.Meter().Snapshot().Sub(before).Calls) / trials
	// Expect about n/(2r) = 6 hops on average, far above log2(96) ~ 6.6?
	// No: with r=8 the ring advances up to 8 peers per hop, so ~96/16 = 6
	// mean hops; assert the linear-scaling band generously.
	if meanHops < 2 || meanHops > 24 {
		t.Errorf("fingerless mean hops = %v, outside Theta(n/r) band", meanHops)
	}
	// Maintenance with fingers disabled must not re-enable them.
	net.RunMaintenance(2, 4)
	nd, err := net.Node(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nd.Finger(63); ok {
		t.Error("FixFinger populated a finger on a finger-disabled network")
	}
}

func TestLookupSurvivesMessageDrops(t *testing.T) {
	t.Parallel()
	// With a lossy network (5% drops) the candidate-fallback routing
	// keeps most lookups working, and those that fail return an error
	// rather than a wrong answer.
	rng := rand.New(rand.NewPCG(71, 72))
	r, err := ring.Generate(rng, 128)
	if err != nil {
		t.Fatal(err)
	}
	faults := simnet.NewFaults(rand.New(rand.NewPCG(73, 74)))
	faults.SetDropRate(0.05)
	net, err := BuildStatic(Config{}, simnet.NewDirect(simnet.WithFaults(faults)), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	failed := 0
	for trial := 0; trial < trials; trial++ {
		key := ring.Point(rng.Uint64())
		got, err := net.Lookup(r.At(trial%r.Len()), key)
		if err != nil {
			failed++
			continue
		}
		if want := r.At(r.Successor(key)); got != want {
			t.Fatalf("lossy lookup returned wrong owner: %v, want %v", got, want)
		}
	}
	if failed > trials/4 {
		t.Errorf("%d/%d lookups failed at 5%% drop rate; fallback too weak", failed, trials)
	}
}

func TestChanTransportLookups(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(51, 52))
	r, err := ring.Generate(rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr := simnet.NewChan()
	defer tr.Close()
	net, err := BuildStatic(Config{}, tr, r.Points())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed uint64) {
			wrng := rand.New(rand.NewPCG(seed, seed))
			for trial := 0; trial < 100; trial++ {
				key := ring.Point(wrng.Uint64())
				got, err := net.Lookup(r.At(int(seed)%r.Len()), key)
				if err != nil {
					done <- err
					return
				}
				if want := r.At(r.Successor(key)); got != want {
					done <- errors.New("wrong lookup result under concurrency")
					return
				}
			}
			done <- nil
		}(uint64(w))
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestMembersEpochSnapshotRace drives concurrent churn (joins and
// crashes), lookups and Members/Epoch readers over one network. Under
// -race it proves the incremental copy-on-write membership is safe
// without a per-call copy; the assertions prove every observed
// snapshot is internally consistent (sorted, duplicate-free) and that
// an unchanged epoch brackets an unchanged snapshot.
func TestMembersEpochSnapshotRace(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	r, err := ring.Generate(rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churn writer: alternate joins and crashes, keeping r.At(0) alive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewPCG(7, 8))
		for i := 0; i < 300; i++ {
			members := net.Members()
			if wrng.IntN(2) == 0 {
				_, _ = net.Join(ring.Point(wrng.Uint64()), members[wrng.IntN(len(members))])
			} else if len(members) > 8 {
				if victim := members[wrng.IntN(len(members))]; victim != r.At(0) {
					_ = net.Crash(victim)
				}
			}
			net.RunMaintenance(1, 4)
		}
		close(stop)
	}()
	// Snapshot readers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e1 := net.Epoch()
				m := net.Members()
				e2 := net.Epoch()
				for i := 1; i < len(m); i++ {
					if m[i] <= m[i-1] {
						t.Errorf("snapshot not sorted/duplicate-free at %d", i)
						return
					}
				}
				if e1 == e2 && len(m) != len(net.Members()) && net.Epoch() == e1 {
					t.Error("epoch unchanged but snapshot length moved")
					return
				}
			}
		}(uint64(w))
	}
	// Concurrent lookups from the protected caller.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lrng := rand.New(rand.NewPCG(9, 10))
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = net.Lookup(r.At(0), ring.Point(lrng.Uint64()))
		}
	}()
	wg.Wait()
}
