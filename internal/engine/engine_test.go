package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"

	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
)

func testOracle(t testing.TB, n int) *dht.Oracle {
	t.Helper()
	rng := rand.New(rand.NewPCG(uint64(n), 0xe41e))
	o, err := dht.GenerateOracle(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func testSampler(t testing.TB, o *dht.Oracle) *core.Sampler {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 7))
	s, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSampleNDeterministicAcrossWorkers is the core determinism
// contract: with a forkable sampler and a fixed seed, the sampled peer
// at every index is identical no matter how many workers run.
func TestSampleNDeterministicAcrossWorkers(t *testing.T) {
	o := testOracle(t, 512)
	s := testSampler(t, o)
	const k = 3000
	base, err := SampleN(context.Background(), s, k, Config{Workers: 1, Seed: 11, Owners: o.Owners(), BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Deterministic {
		t.Fatal("core sampler should fork deterministically")
	}
	if len(base.Peers) != k {
		t.Fatalf("got %d peers, want %d", len(base.Peers), k)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		got, err := SampleN(context.Background(), s, k, Config{Workers: workers, Seed: 11, Owners: o.Owners(), BlockSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Peers {
			if got.Peers[i] != base.Peers[i] {
				t.Fatalf("workers=%d: peer at index %d = %+v, want %+v", workers, i, got.Peers[i], base.Peers[i])
			}
		}
	}
	// A different seed must give a different sequence.
	other, err := SampleN(context.Background(), s, k, Config{Workers: 4, Seed: 12, Owners: o.Owners(), BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range base.Peers {
		if other.Peers[i] == base.Peers[i] {
			same++
		}
	}
	if same == k {
		t.Fatal("seed 12 reproduced seed 11's entire sequence")
	}
}

// TestSampleNTallyMatchesPeers checks the merged per-worker tallies
// against a recount of the peer log, and that every sample landed.
func TestSampleNTallyMatchesPeers(t *testing.T) {
	o := testOracle(t, 256)
	s := testSampler(t, o)
	const k = 2500
	res, err := SampleN(context.Background(), s, k, Config{Workers: 4, Seed: 3, Owners: o.Owners(), BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	recount := make([]int64, o.Owners())
	var total int64
	for _, p := range res.Peers {
		recount[p.Owner]++
	}
	for i := range recount {
		total += res.Tally[i]
		if recount[i] != res.Tally[i] {
			t.Fatalf("owner %d: tally %d, recount %d", i, res.Tally[i], recount[i])
		}
	}
	if total != k {
		t.Fatalf("tally sums to %d, want %d", total, k)
	}
}

// TestSampleNTallyOnly drops the peer log but keeps the tally, which
// must be identical to the logged run's (the draws are the same).
func TestSampleNTallyOnly(t *testing.T) {
	o := testOracle(t, 128)
	s := testSampler(t, o)
	const k = 1000
	logged, err := SampleN(context.Background(), s, k, Config{Workers: 3, Seed: 5, Owners: o.Owners(), BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := SampleN(context.Background(), s, k, Config{Workers: 5, Seed: 5, Owners: o.Owners(), BlockSize: 64, TallyOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Peers != nil {
		t.Fatal("TallyOnly kept the peer log")
	}
	for i := range logged.Tally {
		if logged.Tally[i] != bare.Tally[i] {
			t.Fatalf("owner %d: tally-only run counted %d, logged run %d", i, bare.Tally[i], logged.Tally[i])
		}
	}
}

// unforkable wraps a sampler, hiding its Fork method.
type unforkable struct{ s dht.Sampler }

func (u unforkable) Sample() (dht.Peer, error) { return u.s.Sample() }
func (u unforkable) Name() string              { return "unforkable-" + u.s.Name() }

// TestSampleNSharedFallback runs the engine over a sampler with no Fork:
// the run must complete with the full tally and report non-determinism.
func TestSampleNSharedFallback(t *testing.T) {
	o := testOracle(t, 128)
	s := unforkable{testSampler(t, o)}
	const k = 2000
	res, err := SampleN(context.Background(), s, k, Config{Workers: 8, Seed: 1, Owners: o.Owners(), BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("unforkable sampler reported a deterministic run")
	}
	var total int64
	for _, c := range res.Tally {
		total += c
	}
	if total != k {
		t.Fatalf("tally sums to %d, want %d", total, k)
	}
}

// errSampler fails after a fixed number of samples.
type errSampler struct {
	mu   sync.Mutex
	left int
	s    dht.Sampler
}

func (e *errSampler) Sample() (dht.Peer, error) {
	e.mu.Lock()
	e.left--
	left := e.left
	e.mu.Unlock()
	if left < 0 {
		return dht.Peer{}, errors.New("boom")
	}
	return e.s.Sample()
}
func (e *errSampler) Name() string { return "err" }

// TestSampleNErrorAborts: the first sampling error must surface and
// stop the run.
func TestSampleNErrorAborts(t *testing.T) {
	o := testOracle(t, 64)
	es := &errSampler{left: 100, s: testSampler(t, o)}
	_, err := SampleN(context.Background(), es, 10000, Config{Workers: 4, Seed: 1, Owners: o.Owners(), BlockSize: 16})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want the sampler's error, got %v", err)
	}
}

// TestSampleNContextCancel: a canceled context aborts between blocks.
func TestSampleNContextCancel(t *testing.T) {
	o := testOracle(t, 64)
	s := testSampler(t, o)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SampleN(ctx, s, 100000, Config{Workers: 2, Seed: 1, Owners: o.Owners()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSampleNArgValidation covers the error paths of the config check.
func TestSampleNArgValidation(t *testing.T) {
	o := testOracle(t, 64)
	s := testSampler(t, o)
	if _, err := SampleN(context.Background(), nil, 10, Config{Owners: 64}); err == nil {
		t.Fatal("nil sampler accepted")
	}
	if _, err := SampleN(context.Background(), s, -1, Config{Owners: 64}); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := SampleN(context.Background(), s, 10, Config{}); err == nil {
		t.Fatal("missing owner count accepted")
	}
	res, err := SampleN(context.Background(), s, 0, Config{Owners: 64})
	if err != nil || len(res.Peers) != 0 {
		t.Fatalf("k=0 should return an empty result, got %v, %v", res, err)
	}
}

// TestSampleNStress hammers one shared forkable sampler with many
// concurrent SampleN runs *and* raw Sample calls — the -race regression
// gate for the whole concurrent surface (sharded meter, atomic stats,
// narrowed RNG locks).
func TestSampleNStress(t *testing.T) {
	o := testOracle(t, 256)
	s := testSampler(t, o)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := SampleN(context.Background(), s, 1500, Config{Workers: 4, Seed: uint64(g), Owners: o.Owners(), BlockSize: 64}); err != nil {
				errs <- fmt.Errorf("SampleN goroutine %d: %w", g, err)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := s.Sample(); err != nil {
					errs <- fmt.Errorf("raw Sample goroutine %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Stats().Samples; got < 4*300 {
		t.Fatalf("shared sampler recorded %d samples, want >= %d", got, 4*300)
	}
	// The batch runs above all charged the oracle's sharded meter.
	if c := o.Meter().Snapshot(); c.Calls <= 0 || c.Messages <= 0 {
		t.Fatalf("meter recorded no cost: %+v", c)
	}
}

// TestSampleNWithBaselines runs the engine over the naive and biased
// baselines to pin their Fork implementations.
func TestSampleNWithBaselines(t *testing.T) {
	o := testOracle(t, 128)
	naive := baseline.NewNaive(o, rand.New(rand.NewPCG(2, 2)))
	res, err := SampleN(context.Background(), naive, 1000, Config{Workers: 4, Seed: 9, Owners: o.Owners(), BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("naive sampler should fork deterministically")
	}
	again, err := SampleN(context.Background(), naive, 1000, Config{Workers: 2, Seed: 9, Owners: o.Owners(), BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Peers {
		if res.Peers[i] != again.Peers[i] {
			t.Fatalf("naive engine run not reproducible at index %d", i)
		}
	}
}

// TestBlockSeedSpread sanity-checks that consecutive blocks get well-
// separated seeds.
func TestBlockSeedSpread(t *testing.T) {
	seen := map[uint64]int{}
	for b := 0; b < 10000; b++ {
		s := BlockSeed(42, b)
		if prev, dup := seen[s]; dup {
			t.Fatalf("blocks %d and %d share seed %#x", prev, b, s)
		}
		seen[s] = b
	}
}
