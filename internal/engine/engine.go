// Package engine is the concurrent batch sampling engine: it fans a
// request for k samples out over a worker pool while keeping the result
// deterministic for a fixed seed, independent of the worker count.
//
// # Design
//
// The work is split into fixed-size blocks of consecutive sample
// indices. Randomness is keyed to the block, not the worker: for each
// block the engine derives a per-block seed from (Seed, block index)
// with a SplitMix64 mix and forks the sampler into a private clone
// seeded with it (see Forker). Workers pull block indices from an
// atomic counter, so scheduling decides only *who* executes a block,
// never *what* the block draws — the multiset (and, position by
// position, the sequence) of sampled peers is a pure function of the
// seed and k. Per-worker tallies are merged once at the end, so the
// hot loop writes only worker-private memory plus the DHT's sharded
// cost meter.
//
// Samplers that cannot fork (for example core.AutoSampler, whose
// refresh schedule is inherently shared state) are still supported:
// every sampler in this module is safe for concurrent use, so the
// engine falls back to hammering the shared sampler from all workers.
// In that mode the interleaving of RNG draws — and hence the exact
// result — depends on scheduling, and throughput is bounded by the
// sampler's own serialization: core.AutoSampler serializes every call
// under one mutex, so batches over it gain nothing from extra workers.
// Result.Deterministic reports which mode ran.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/dht-sampling/randompeer/internal/dht"
)

// Forker is the optional capability the engine uses to give each block
// of work a private sampler: Fork must return an independent sampler
// whose random stream is a pure function of seed and which shares no
// mutable state with its parent. All samplers in this module except
// core.AutoSampler implement it.
type Forker interface {
	dht.Sampler
	Fork(seed uint64) (dht.Sampler, error)
}

// ExclusiveForker is an optional refinement of Forker: ForkExclusive
// returns a fork drawing the same random stream as Fork(seed) — so
// results stay bit-identical — that skips all internal synchronization
// in exchange for being confined to a single goroutine. The engine uses
// it when available, because every block of work runs on exactly one
// worker; each fork then samples with no mutex on the hot path.
type ExclusiveForker interface {
	Forker
	ForkExclusive(seed uint64) (dht.Sampler, error)
}

// DefaultBlockSize is the number of consecutive sample indices a worker
// claims at a time. It amortizes the per-block fork and tally-merge
// overhead while keeping ~worker-count blocks of tail imbalance small.
const DefaultBlockSize = 512

// Config tunes a SampleN run. The zero value selects GOMAXPROCS
// workers, DefaultBlockSize, seed 0 and peer retention.
type Config struct {
	// Workers is the worker pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// Seed roots the per-block sampler forks. For a forkable sampler,
	// equal (Seed, k) yield identical results at any worker count.
	Seed uint64
	// BlockSize overrides DefaultBlockSize (mainly for tests).
	BlockSize int
	// Owners sizes the tally. It must be the number of distinct owners
	// of the DHT being sampled (dht.Owners()).
	Owners int
	// TallyOnly drops the per-index peer log, keeping only the tally —
	// the right choice for uniformity sweeps with huge k, where the
	// peer log would dominate memory.
	TallyOnly bool
}

// Result is the outcome of one batch run.
type Result struct {
	// Peers holds the sampled peer at every sample index (nil when
	// TallyOnly was set).
	Peers []dht.Peer
	// Tally counts samples per owner index.
	Tally []int64
	// Workers is the number of workers that ran.
	Workers int
	// Blocks is the number of work blocks the run was split into.
	Blocks int
	// Deterministic reports whether per-block forking was used, making
	// the result a pure function of (Seed, k).
	Deterministic bool
}

// splitmix64 is the standard SplitMix64 finalizer, used to spread
// consecutive block indices into well-separated PCG seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BlockSeed derives the sampler seed for block b of a run rooted at
// seed. It is exported so tests and tools can reproduce any block in
// isolation.
func BlockSeed(seed uint64, b int) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(b)+1))
}

// SampleN draws k samples from s using a pool of workers and returns
// the merged result. See the package comment for the determinism
// contract. A nil ctx is treated as context.Background(); cancellation
// is observed between blocks, returning ctx.Err(). The first sampling
// error aborts the run.
func SampleN(ctx context.Context, s dht.Sampler, k int, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s == nil {
		return nil, fmt.Errorf("engine: nil sampler")
	}
	if k < 0 {
		return nil, fmt.Errorf("engine: negative sample count %d", k)
	}
	if cfg.Owners <= 0 {
		return nil, fmt.Errorf("engine: config needs the owner count, got %d", cfg.Owners)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	blocks := (k + blockSize - 1) / blockSize
	if workers > blocks && blocks > 0 {
		workers = blocks
	}

	forker, deterministic := s.(Forker)
	fork := func(seed uint64) (dht.Sampler, error) { return forker.Fork(seed) }
	if ex, ok := s.(ExclusiveForker); ok {
		// Same streams, no RNG locking: each block is single-goroutine.
		fork = ex.ForkExclusive
	}
	res := &Result{
		Tally:         make([]int64, cfg.Owners),
		Workers:       workers,
		Blocks:        blocks,
		Deterministic: deterministic,
	}
	if !cfg.TallyOnly {
		res.Peers = make([]dht.Peer, k)
	}
	if k == 0 {
		return res, nil
	}

	var (
		next     atomic.Int64 // next unclaimed block index
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
		tallyMu  sync.Mutex
	)
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, &err)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tally := make([]int64, cfg.Owners)
			defer func() {
				tallyMu.Lock()
				for i, c := range tally {
					res.Tally[i] += c
				}
				tallyMu.Unlock()
			}()
			for {
				if firstErr.Load() != nil {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				bs := s
				if deterministic {
					f, err := fork(BlockSeed(cfg.Seed, b))
					if err != nil {
						fail(fmt.Errorf("engine: forking sampler for block %d: %w", b, err))
						return
					}
					bs = f
				}
				lo := b * blockSize
				hi := min(lo+blockSize, k)
				for i := lo; i < hi; i++ {
					p, err := bs.Sample()
					if err != nil {
						fail(fmt.Errorf("engine: sample %d: %w", i, err))
						return
					}
					if p.Owner < 0 || p.Owner >= cfg.Owners {
						fail(fmt.Errorf("engine: sampler %s returned owner %d outside [0, %d)", bs.Name(), p.Owner, cfg.Owners))
						return
					}
					tally[p.Owner]++
					if res.Peers != nil {
						res.Peers[i] = p
					}
				}
			}
		}()
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}
	return res, nil
}
