package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report writers: the markdown form is the human artifact (E28 output,
// CI artifact, README sample); the JSON form is the machine artifact
// (benchsnap's slo section, randpeerd's /v1/slo body). Both render the
// same Report, so a committed sample and a scraped report never drift.

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMarkdown renders the report: the summary line, the objective
// table and the per-window series.
func (r Report) WriteMarkdown(w io.Writer) error {
	status := "✅ met"
	if !r.Met {
		status = "❌ missed"
	}
	if r.TotalRequests == 0 {
		status = "∅ no traffic"
	}
	if _, err := fmt.Fprintf(w, "## SLO report — %s\n\n", status); err != nil {
		return err
	}
	obj := r.Objectives
	fmt.Fprintf(w, "| objective | target | realized |\n|---|---|---|\n")
	fmt.Fprintf(w, "| p%g latency | ≤ %s | %s |\n", obj.LatencyQuantile*100, fmtDur(obj.LatencyTarget), fmtDur(r.LatencyOverall))
	fmt.Fprintf(w, "| availability | ≥ %.4f | %.4f |\n\n", obj.Availability, r.Availability)
	fmt.Fprintf(w, "requests %d · failed %d · latency breaches %d · error budget %.1f bad events · consumed %.1f%% · max burn %.2f · fast-burn windows %d · slow-burn windows %d\n\n",
		r.TotalRequests, r.TotalFailed, r.TotalBreaches, r.ErrorBudget, r.BudgetConsumed*100, r.MaxBurnRate, r.FastBurnWindows, r.SlowBurnWindows)
	fmt.Fprintf(w, "| window | requests | failed | p50 | p95 | p99 | bad | burn | flags |\n|---|---|---|---|---|---|---|---|---|\n")
	for _, win := range r.Windows {
		flags := ""
		if win.FastBurn {
			flags = "FAST"
		} else if win.SlowBurn {
			flags = "slow"
		}
		if _, err := fmt.Fprintf(w, "| [%s, %s) | %d | %d | %s | %s | %s | %d | %.2f | %s |\n",
			fmtDur(win.Start), fmtDur(win.End), win.Requests, win.Failed,
			fmtDur(win.P50), fmtDur(win.P95), fmtDur(win.P99),
			win.BadEvents, win.BurnRate, flags); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur renders a duration in milliseconds with enough precision for
// sub-millisecond latencies.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
