// Package slo is the service-level-objective engine: it consumes the
// per-window deltas produced by the windowed recorder (internal/load)
// or by cluster scrape deltas (internal/cluster) and evaluates them
// against configurable objectives — a latency objective (a quantile of
// request latency under a target) and an availability objective — with
// error-budget accounting and multi-window burn-rate detection.
//
// The package is deliberately kernel-free and transport-free: a window
// is just (interval, ok, failed, latency histogram), so the same
// engine reports on deterministic virtual-time simulations (E28) and
// on live wall-clock scrape deltas from a randpeerd fleet (/v1/slo).
//
// Definitions follow the standard error-budget formulation: a request
// is "bad" if it failed or breached the latency target; the error
// budget over a horizon of N requests is (1 - availability) * N bad
// events; a window's burn rate is its bad-event rate divided by the
// allowed rate, so burn 1.0 spends the budget exactly at the horizon
// and burn 14.4 exhausts a 30-day budget in 50 hours — the classic
// fast-burn page threshold.
package slo

import (
	"fmt"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
)

// Objectives are the targets a workload is held to.
type Objectives struct {
	// LatencyQuantile is the quantile the latency objective constrains,
	// e.g. 0.99 for "p99 under target".
	LatencyQuantile float64 `json:"latency_quantile"`
	// LatencyTarget is the latency objective: LatencyQuantile of
	// requests must complete within it.
	LatencyTarget time.Duration `json:"latency_target_ns"`
	// Availability is the fraction of requests that must be good, e.g.
	// 0.999. Its complement sizes the error budget.
	Availability float64 `json:"availability"`
	// FastBurn and SlowBurn are burn-rate thresholds (multiples of the
	// allowed bad-event rate) above which a window is flagged. Zero
	// values take the conventional defaults (14.4 and 6).
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
}

// DefaultObjectives is a reasonable starting point: p99 under 100ms,
// 99.9% availability, conventional burn thresholds.
func DefaultObjectives() Objectives {
	return Objectives{
		LatencyQuantile: 0.99,
		LatencyTarget:   100 * time.Millisecond,
		Availability:    0.999,
		FastBurn:        14.4,
		SlowBurn:        6,
	}
}

// withDefaults fills zero burn thresholds.
func (o Objectives) withDefaults() Objectives {
	if o.FastBurn == 0 {
		o.FastBurn = 14.4
	}
	if o.SlowBurn == 0 {
		o.SlowBurn = 6
	}
	return o
}

// WindowInput is one recorded window: the raw deltas the engine
// evaluates. Latency must be the window's histogram delta (not a
// cumulative reading) covering every request, successful or not.
type WindowInput struct {
	Start, End time.Duration
	OK, Failed int64
	Latency    obs.HistSnapshot
}

// WindowReport is one evaluated window.
type WindowReport struct {
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Requests is every request the window saw (ok + failed).
	Requests int64 `json:"requests"`
	Failed   int64 `json:"failed"`
	// P50/P95/P99 are the window's latency quantiles.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	// LatencyBreaches estimates how many requests exceeded the latency
	// target (histogram CountAbove).
	LatencyBreaches int64 `json:"latency_breaches"`
	// BadEvents = Failed + LatencyBreaches. A failed request that was
	// also slow counts twice — the conservative direction for an
	// alerting signal.
	BadEvents int64 `json:"bad_events"`
	// BurnRate is the window's bad-event rate over the allowed rate
	// (zero when the window saw no requests).
	BurnRate float64 `json:"burn_rate"`
	FastBurn bool    `json:"fast_burn"`
	SlowBurn bool    `json:"slow_burn"`
}

// Report is the evaluated run: per-window detail plus whole-horizon
// error-budget accounting.
type Report struct {
	Objectives Objectives     `json:"objectives"`
	Windows    []WindowReport `json:"windows"`

	TotalRequests int64 `json:"total_requests"`
	TotalFailed   int64 `json:"total_failed"`
	TotalBreaches int64 `json:"total_breaches"`
	TotalBad      int64 `json:"total_bad"`
	// Availability is the realized good fraction, 1 - TotalBad/TotalRequests
	// (clamped at zero).
	Availability float64 `json:"availability"`
	// LatencyOverall is the realized LatencyQuantile over the whole
	// horizon's latency histogram.
	LatencyOverall time.Duration `json:"latency_overall_ns"`
	// ErrorBudget is the allowed bad events over this horizon:
	// (1 - objective availability) * TotalRequests.
	ErrorBudget float64 `json:"error_budget"`
	// BudgetConsumed is TotalBad / ErrorBudget (∞ reported as a large
	// finite value; 0 when the horizon saw no requests).
	BudgetConsumed float64 `json:"budget_consumed"`
	// MaxBurnRate is the worst window's burn rate.
	MaxBurnRate     float64 `json:"max_burn_rate"`
	FastBurnWindows int     `json:"fast_burn_windows"`
	SlowBurnWindows int     `json:"slow_burn_windows"`
	// Met reports whether both objectives held over the whole horizon:
	// realized availability ≥ objective and realized quantile ≤ target.
	Met bool `json:"met"`
}

// Evaluate runs the engine over a window series. Windows evaluate
// independently; the summary re-aggregates the raw deltas (not the
// per-window estimates), so whole-horizon quantiles come from the
// merged histogram rather than averaging window quantiles.
func Evaluate(obj Objectives, windows []WindowInput) Report {
	obj = obj.withDefaults()
	rep := Report{Objectives: obj, Windows: make([]WindowReport, 0, len(windows))}
	allowedRate := 1 - obj.Availability
	var total obs.HistSnapshot
	for _, in := range windows {
		w := WindowReport{
			Start:    in.Start,
			End:      in.End,
			Requests: in.OK + in.Failed,
			Failed:   in.Failed,
			P50:      in.Latency.Quantile(0.50),
			P95:      in.Latency.Quantile(0.95),
			P99:      in.Latency.Quantile(0.99),
		}
		w.LatencyBreaches = in.Latency.CountAbove(obj.LatencyTarget)
		w.BadEvents = w.Failed + w.LatencyBreaches
		if w.Requests > 0 && allowedRate > 0 {
			w.BurnRate = (float64(w.BadEvents) / float64(w.Requests)) / allowedRate
		}
		w.FastBurn = w.BurnRate >= obj.FastBurn
		w.SlowBurn = w.BurnRate >= obj.SlowBurn
		rep.Windows = append(rep.Windows, w)

		rep.TotalRequests += w.Requests
		rep.TotalFailed += w.Failed
		rep.TotalBreaches += w.LatencyBreaches
		rep.TotalBad += w.BadEvents
		if w.BurnRate > rep.MaxBurnRate {
			rep.MaxBurnRate = w.BurnRate
		}
		if w.FastBurn {
			rep.FastBurnWindows++
		}
		if w.SlowBurn {
			rep.SlowBurnWindows++
		}
		total = mergeHist(total, in.Latency)
	}
	rep.LatencyOverall = total.Quantile(obj.LatencyQuantile)
	if rep.TotalRequests > 0 {
		rep.Availability = 1 - float64(rep.TotalBad)/float64(rep.TotalRequests)
		if rep.Availability < 0 {
			rep.Availability = 0
		}
		rep.ErrorBudget = allowedRate * float64(rep.TotalRequests)
		if rep.ErrorBudget > 0 {
			rep.BudgetConsumed = float64(rep.TotalBad) / rep.ErrorBudget
		} else if rep.TotalBad > 0 {
			rep.BudgetConsumed = float64(rep.TotalBad) // zero budget: any bad event overruns
		}
		rep.Met = rep.Availability >= obj.Availability && rep.LatencyOverall <= obj.LatencyTarget
	}
	return rep
}

// mergeHist adds two histogram deltas bucket-wise.
func mergeHist(a, b obs.HistSnapshot) obs.HistSnapshot {
	a.Count += b.Count
	a.SumNanos += b.SumNanos
	for i := range a.Buckets {
		a.Buckets[i] += b.Buckets[i]
	}
	return a
}

// String summarizes the report in one line.
func (r Report) String() string {
	status := "MET"
	if !r.Met {
		status = "MISSED"
	}
	return fmt.Sprintf("slo %s: %d requests, availability %.4f (objective %.4f), p%g %v (target %v), budget consumed %.1f%%, max burn %.2f (%d fast, %d slow windows)",
		status, r.TotalRequests, r.Availability, r.Objectives.Availability,
		r.Objectives.LatencyQuantile*100, r.LatencyOverall, r.Objectives.LatencyTarget,
		r.BudgetConsumed*100, r.MaxBurnRate, r.FastBurnWindows, r.SlowBurnWindows)
}
