package slo_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/slo"
)

// histOf builds a histogram delta from explicit latencies.
func histOf(lats ...time.Duration) obs.HistSnapshot {
	var h obs.Histogram
	for _, d := range lats {
		h.Observe(d)
	}
	return h.Snapshot()
}

// repeat observes d n times.
func repeat(d time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

func TestEvaluateCleanRunMeetsObjectives(t *testing.T) {
	obj := slo.Objectives{
		LatencyQuantile: 0.99,
		LatencyTarget:   50 * time.Millisecond,
		Availability:    0.99,
	}
	var wins []slo.WindowInput
	for i := 0; i < 4; i++ {
		wins = append(wins, slo.WindowInput{
			Start:   time.Duration(i) * time.Second,
			End:     time.Duration(i+1) * time.Second,
			OK:      100,
			Latency: histOf(repeat(2*time.Millisecond, 100)...),
		})
	}
	rep := slo.Evaluate(obj, wins)
	if !rep.Met {
		t.Fatalf("clean run not met: %s", rep)
	}
	if rep.TotalRequests != 400 || rep.TotalBad != 0 {
		t.Fatalf("totals: %d requests %d bad; want 400/0", rep.TotalRequests, rep.TotalBad)
	}
	if rep.BudgetConsumed != 0 || rep.MaxBurnRate != 0 {
		t.Fatalf("budget consumed %.2f burn %.2f; want zeros", rep.BudgetConsumed, rep.MaxBurnRate)
	}
	if rep.Availability != 1 {
		t.Fatalf("availability %.4f; want 1", rep.Availability)
	}
}

func TestEvaluateFailureBurstBurnsBudget(t *testing.T) {
	obj := slo.Objectives{
		LatencyQuantile: 0.99,
		LatencyTarget:   50 * time.Millisecond,
		Availability:    0.999, // allowed rate 0.001
	}
	good := slo.WindowInput{
		Start: 0, End: time.Second,
		OK:      1000,
		Latency: histOf(repeat(time.Millisecond, 1000)...),
	}
	// Burst window: 5% failures = 50x the allowed rate — a fast burn.
	burst := slo.WindowInput{
		Start: time.Second, End: 2 * time.Second,
		OK: 950, Failed: 50,
		Latency: histOf(repeat(time.Millisecond, 1000)...),
	}
	rep := slo.Evaluate(obj, []slo.WindowInput{good, burst, good})
	if rep.Met {
		t.Fatalf("burst run reported met: %s", rep)
	}
	if rep.FastBurnWindows != 1 {
		t.Fatalf("fast-burn windows %d; want exactly the burst", rep.FastBurnWindows)
	}
	if rep.Windows[1].BurnRate < 45 || rep.Windows[1].BurnRate > 55 {
		t.Fatalf("burst burn rate %.1f; want ~50", rep.Windows[1].BurnRate)
	}
	if rep.Windows[0].FastBurn || rep.Windows[2].SlowBurn {
		t.Fatal("quiet windows flagged")
	}
	// Budget: 3000 requests x 0.001 = 3 allowed bad events; 50 spent.
	if rep.BudgetConsumed < 16 || rep.BudgetConsumed > 17 {
		t.Fatalf("budget consumed %.2fx; want ~16.7x", rep.BudgetConsumed)
	}
}

func TestEvaluateLatencyBreachesCountAgainstBudget(t *testing.T) {
	obj := slo.Objectives{
		LatencyQuantile: 0.95,
		LatencyTarget:   4 * time.Millisecond,
		Availability:    0.9,
	}
	// 80 fast + 20 very slow: p95 breaches and ~20 breach events.
	lats := append(repeat(time.Millisecond, 80), repeat(64*time.Millisecond, 20)...)
	rep := slo.Evaluate(obj, []slo.WindowInput{{
		Start: 0, End: time.Second, OK: 100, Latency: histOf(lats...),
	}})
	if rep.Met {
		t.Fatalf("latency-breaching run reported met: %s", rep)
	}
	if rep.TotalBreaches < 15 || rep.TotalBreaches > 25 {
		t.Fatalf("breaches %d; want ~20", rep.TotalBreaches)
	}
	if rep.LatencyOverall <= obj.LatencyTarget {
		t.Fatalf("realized p95 %v under target %v despite slow tail", rep.LatencyOverall, obj.LatencyTarget)
	}
	if rep.TotalFailed != 0 {
		t.Fatalf("failed %d; latency breaches must not count as request failures", rep.TotalFailed)
	}
}

func TestEvaluateEmptyAndQuietWindows(t *testing.T) {
	rep := slo.Evaluate(slo.DefaultObjectives(), nil)
	if rep.Met || rep.TotalRequests != 0 {
		t.Fatalf("empty evaluation: met=%v requests=%d", rep.Met, rep.TotalRequests)
	}
	// A quiet window (zero requests) must not flag or divide by zero.
	rep = slo.Evaluate(slo.DefaultObjectives(), []slo.WindowInput{{Start: 0, End: time.Second}})
	if rep.Windows[0].BurnRate != 0 || rep.Windows[0].FastBurn {
		t.Fatalf("quiet window burn %.2f fast=%v; want zeros", rep.Windows[0].BurnRate, rep.Windows[0].FastBurn)
	}
}

func TestReportWriters(t *testing.T) {
	obj := slo.DefaultObjectives()
	rep := slo.Evaluate(obj, []slo.WindowInput{{
		Start: 0, End: time.Second, OK: 99, Failed: 1,
		Latency: histOf(repeat(2*time.Millisecond, 100)...),
	}})

	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"SLO report", "availability", "p99 latency", "| window |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back slo.Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.TotalRequests != rep.TotalRequests || back.MaxBurnRate != rep.MaxBurnRate || len(back.Windows) != 1 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}
