package biased

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/stats"
)

func setup(t *testing.T, seed uint64, n int) (*dht.Oracle, *ring.Ring, dht.Sampler) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+13))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	o := dht.NewOracle(r)
	uniform, err := core.New(o, o.PeerByIndex(0), rng, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return o, r, uniform
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	_, _, uniform := setup(t, 1, 16)
	rng := rand.New(rand.NewPCG(1, 1))
	w := func(dht.Peer) float64 { return 1 }
	if _, err := New(nil, w, 1, rng); err == nil {
		t.Error("nil uniform should fail")
	}
	if _, err := New(uniform, nil, 1, rng); err == nil {
		t.Error("nil weight should fail")
	}
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New(uniform, w, bad, rng); err == nil {
			t.Errorf("maxWeight %v should fail", bad)
		}
	}
}

func TestConstantWeightIsUniform(t *testing.T) {
	t.Parallel()
	const n = 64
	_, _, uniform := setup(t, 3, n)
	s, err := New(uniform, func(dht.Peer) float64 { return 0.7 }, 0.7, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, n)
	for i := 0; i < 40*n; i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Owner]++
	}
	if _, pvalue, err := stats.ChiSquareUniform(counts); err != nil {
		t.Fatal(err)
	} else if pvalue < 1e-3 {
		t.Errorf("constant-weight bias should stay uniform, p = %v", pvalue)
	}
	// Constant weight = every draw accepted: mean draws 1.
	if got := s.MeanDraws(); got != 1 {
		t.Errorf("MeanDraws = %v, want 1", got)
	}
}

func TestStepWeightMatchesTargetDistribution(t *testing.T) {
	t.Parallel()
	const n = 64
	_, _, uniform := setup(t, 5, n)
	// Owners < 16 get weight 1, the rest 0.25: target probability for a
	// low owner is 1/(16 + 48*0.25) = 1/28, for a high owner 0.25/28.
	w, maxW, err := Step(func(owner int) bool { return owner < 16 }, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(uniform, w, maxW, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	const samples = 56000
	var low int64
	for i := 0; i < samples; i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if p.Owner < 16 {
			low++
		}
	}
	wantLow := 16.0 / 28.0
	gotLow := float64(low) / samples
	sigma := math.Sqrt(wantLow * (1 - wantLow) / samples)
	if math.Abs(gotLow-wantLow) > 5*sigma {
		t.Errorf("low-owner mass = %v, want %v (5 sigma = %v)", gotLow, wantLow, 5*sigma)
	}
	// Acceptance rate = E[w]/maxW = (28/64)/1: mean draws ~ 64/28.
	if got, want := s.MeanDraws(), 64.0/28.0; math.Abs(got-want) > 0.15 {
		t.Errorf("MeanDraws = %v, want ~%v", got, want)
	}
}

func TestZeroWeightExcludesPeers(t *testing.T) {
	t.Parallel()
	const n = 32
	_, _, uniform := setup(t, 7, n)
	w, maxW, err := Step(func(owner int) bool { return owner%2 == 0 }, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(uniform, w, maxW, rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if p.Owner%2 != 0 {
			t.Fatalf("excluded peer %d sampled", p.Owner)
		}
	}
}

func TestInverseDistanceBias(t *testing.T) {
	t.Parallel()
	const n = 128
	o, r, uniform := setup(t, 9, n)
	caller := o.PeerByIndex(0)
	w, maxW, err := InverseDistance(caller, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(uniform, w, maxW, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	// Expected distribution: w(p) normalized.
	weights := make([]float64, n)
	var totalW float64
	for i := 0; i < n; i++ {
		weights[i] = w(o.PeerByIndex(i))
		totalW += weights[i]
	}
	const samples = 30000
	counts := make([]int64, n)
	for i := 0; i < samples; i++ {
		p, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Owner]++
	}
	// Aggregate check: mass of the near half (clockwise) must exceed the
	// far half by the weight ratio, within noise.
	var nearWant, nearGot float64
	for i := 0; i < n; i++ {
		d := ring.UnitsToFrac(ring.Distance(caller.Point, r.At(i)))
		if d < 0.5 {
			nearWant += weights[i] / totalW
			nearGot += float64(counts[i]) / samples
		}
	}
	if math.Abs(nearGot-nearWant) > 0.02 {
		t.Errorf("near-half mass = %v, want %v", nearGot, nearWant)
	}
	if nearWant < 0.6 {
		t.Errorf("inverse-distance weights should favor the near half, want mass %v > 0.6", nearWant)
	}
}

func TestInverseDistanceValidation(t *testing.T) {
	t.Parallel()
	caller := dht.Peer{Point: 0, Owner: 0}
	if _, _, err := InverseDistance(caller, 0); err == nil {
		t.Error("zero floor should fail")
	}
	if _, _, err := InverseDistance(caller, 1); err == nil {
		t.Error("floor of 1 should fail")
	}
}

func TestStepValidation(t *testing.T) {
	t.Parallel()
	pred := func(int) bool { return true }
	if _, _, err := Step(nil, 1, 0); err == nil {
		t.Error("nil predicate should fail")
	}
	if _, _, err := Step(pred, 0, 0); err == nil {
		t.Error("zero high should fail")
	}
	if _, _, err := Step(pred, 1, 2); err == nil {
		t.Error("low > high should fail")
	}
	if _, _, err := Step(pred, 1, -1); err == nil {
		t.Error("negative low should fail")
	}
}

func TestWeightOutOfRangeDetected(t *testing.T) {
	t.Parallel()
	_, _, uniform := setup(t, 11, 16)
	s, err := New(uniform, func(dht.Peer) float64 { return 2 }, 1, rand.New(rand.NewPCG(6, 6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(); err == nil {
		t.Error("weight above maxWeight must be detected")
	}
}

func TestName(t *testing.T) {
	t.Parallel()
	_, _, uniform := setup(t, 13, 8)
	s, err := New(uniform, func(dht.Peer) float64 { return 1 }, 1, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "biased" {
		t.Errorf("Name = %q", s.Name())
	}
}
