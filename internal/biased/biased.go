// Package biased implements the third open problem of King & Saia's
// paper: choosing a peer with a specifically biased probability (their
// example: probability inversely proportional to clockwise distance
// from the caller). The construction is rejection sampling on top of
// the uniform sampler: draw a uniform peer p, accept it with
// probability weight(p)/maxWeight, repeat otherwise.
//
// Correctness is immediate: conditioned on acceptance, p is chosen with
// probability proportional to weight(p). The expected number of uniform
// draws per biased sample is maxWeight divided by the mean weight, so
// cost degrades gracefully with the dynamic range of the weights. This
// keeps the paper's exactness guarantee — the only distributional
// primitive is the provably uniform sampler.
package biased

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// WeightFunc assigns a relative selection weight to a peer. Weights
// must be in [0, maxWeight] and finite; a zero weight excludes the peer.
type WeightFunc func(p dht.Peer) float64

// Sampler chooses peers with probability proportional to a weight
// function.
//
// Concurrency contract: safe for unsynchronized concurrent use if the
// underlying uniform sampler is (every sampler in this module is). The
// mutex guards only the accept/reject RNG draw, never the uniform
// Sample call, and the draw counters are atomic, so concurrent biased
// samples overlap their uniform draws freely. For reproducible parallel
// batches give each goroutine its own Fork.
type Sampler struct {
	uniform   dht.Sampler
	weight    WeightFunc
	maxWeight float64
	maxDraws  int
	name      string

	mu  sync.Mutex // guards rng only
	rng *rand.Rand

	draws   atomic.Int64
	samples atomic.Int64
}

// forkable is the optional fork capability of samplers in this module
// (the engine package declares the canonical copy).
type forkable interface {
	Fork(seed uint64) (dht.Sampler, error)
}

var _ dht.Sampler = (*Sampler)(nil)

// New builds a biased sampler over a uniform one. maxWeight must upper-
// bound the weight function; maxDraws caps the rejection loop (default
// 65536).
func New(uniform dht.Sampler, weight WeightFunc, maxWeight float64, rng *rand.Rand) (*Sampler, error) {
	if uniform == nil {
		return nil, fmt.Errorf("biased: nil uniform sampler")
	}
	if weight == nil {
		return nil, fmt.Errorf("biased: nil weight function")
	}
	if maxWeight <= 0 || math.IsInf(maxWeight, 0) || math.IsNaN(maxWeight) {
		return nil, fmt.Errorf("biased: max weight must be positive and finite, got %v", maxWeight)
	}
	return &Sampler{
		uniform:   uniform,
		weight:    weight,
		maxWeight: maxWeight,
		maxDraws:  65536,
		name:      "biased",
		rng:       rng,
	}, nil
}

// Name implements dht.Sampler.
func (s *Sampler) Name() string { return s.name }

// Fork returns an independent biased sampler with its own PCG stream
// and a fork of the underlying uniform sampler. It fails if the uniform
// sampler does not support forking.
func (s *Sampler) Fork(seed uint64) (dht.Sampler, error) {
	f, ok := s.uniform.(forkable)
	if !ok {
		return nil, fmt.Errorf("biased: uniform sampler %s is not forkable", s.uniform.Name())
	}
	uniform, err := f.Fork(seed ^ 0x510e527fade682d1)
	if err != nil {
		return nil, fmt.Errorf("biased: forking uniform sampler: %w", err)
	}
	return &Sampler{
		uniform:   uniform,
		weight:    s.weight,
		maxWeight: s.maxWeight,
		maxDraws:  s.maxDraws,
		name:      s.name,
		rng:       rand.New(rand.NewPCG(seed, seed^0x9b05688c2b3e6c1f)),
	}, nil
}

// Sample implements dht.Sampler.
func (s *Sampler) Sample() (dht.Peer, error) {
	for draw := 1; draw <= s.maxDraws; draw++ {
		p, err := s.uniform.Sample()
		if err != nil {
			return dht.Peer{}, fmt.Errorf("biased: uniform draw %d: %w", draw, err)
		}
		w := s.weight(p)
		if w < 0 || w > s.maxWeight || math.IsNaN(w) {
			return dht.Peer{}, fmt.Errorf("biased: weight %v for peer %d outside [0, %v]", w, p.Owner, s.maxWeight)
		}
		s.mu.Lock()
		accept := s.rng.Float64()*s.maxWeight < w
		s.mu.Unlock()
		if accept {
			s.draws.Add(int64(draw))
			s.samples.Add(1)
			return p, nil
		}
	}
	return dht.Peer{}, fmt.Errorf("biased: no acceptance in %d uniform draws (weights too sparse?)", s.maxDraws)
}

// MeanDraws reports the observed mean number of uniform draws per
// accepted sample.
func (s *Sampler) MeanDraws() float64 {
	samples := s.samples.Load()
	if samples == 0 {
		return 0
	}
	return float64(s.draws.Load()) / float64(samples)
}

// InverseDistance returns the paper's example bias: weight inversely
// proportional to the clockwise distance from the caller to the peer,
// clamped so the nearest peers do not dominate unboundedly. floorFrac
// is the distance (as a fraction of the circle) below which the weight
// saturates; the corresponding max weight is 1/floorFrac.
//
// Use with New(uniform, w, maxW, rng) where w, maxW = InverseDistance(...).
func InverseDistance(caller dht.Peer, floorFrac float64) (WeightFunc, float64, error) {
	if floorFrac <= 0 || floorFrac >= 1 {
		return nil, 0, fmt.Errorf("biased: floor fraction %v outside (0, 1)", floorFrac)
	}
	maxWeight := 1 / floorFrac
	w := func(p dht.Peer) float64 {
		d := ring.UnitsToFrac(ring.Distance(caller.Point, p.Point))
		if d < floorFrac {
			return maxWeight
		}
		return 1 / d
	}
	return w, maxWeight, nil
}

// Step returns a two-level weight function: weight high for peers whose
// owner satisfies pred and low otherwise — the "sample mostly from a
// subset, but keep everyone reachable" pattern used by stratified data
// collection.
func Step(pred func(owner int) bool, high, low float64) (WeightFunc, float64, error) {
	if pred == nil {
		return nil, 0, fmt.Errorf("biased: nil predicate")
	}
	if high <= 0 || low < 0 || low > high {
		return nil, 0, fmt.Errorf("biased: need 0 <= low <= high and high > 0, got low=%v high=%v", low, high)
	}
	w := func(p dht.Peer) float64 {
		if pred(p.Owner) {
			return high
		}
		return low
	}
	return w, high, nil
}
