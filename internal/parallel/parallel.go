// Package parallel provides the deterministic work-sharding primitive
// behind bulk overlay construction: split n independent items into
// contiguous ranges, one per worker. Because the split is a pure
// function of (n, workers) and every item's work is independent, the
// result is bit-identical at any worker count and any GOMAXPROCS — the
// property the overlay builders' determinism suites assert.
package parallel

import (
	"runtime"
	"sync"
)

// Workers returns the default worker count for CPU-bound sharded work:
// GOMAXPROCS, capped by the item count.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Shards runs fn over [0, n) split into "workers" contiguous
// half-open ranges [lo, hi), one goroutine per range, and waits for all
// of them. With workers <= 1 (or n small) it runs inline. fn must
// treat its range as independent work: no two ranges overlap, so
// per-item writes need no locks as long as items are disjoint.
func Shards(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
