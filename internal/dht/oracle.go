package dht

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Oracle is an idealized DHT backend: it resolves h by binary search over
// the sorted peer points and charges the standard synthetic costs
// (t_h = m_h/2 = ceil(log2 n) sequential RPCs for a lookup, one RPC for a
// successor chase). It models a perfectly stabilized Chord ring and
// scales to millions of peers, which the experiment sweeps rely on.
type Oracle struct {
	ring   *ring.Ring
	owners []int // owner of point i; nil means owner == index
	nOwner int
	hops   int64 // ceil(log2 n), the synthetic per-lookup cost
	meter  simnet.Meter

	// Virtual-time simulation (nil/zero when disabled): each synthetic
	// hop draws one latency from model and advances clock, mirroring
	// what the real overlays pay on a sim.Transport.
	clock  *sim.Clock
	model  sim.Model
	stream *sim.Stream
}

var _ DHT = (*Oracle)(nil)

// NewOracle builds an oracle DHT over the given ring; peer i owns point i.
func NewOracle(r *ring.Ring) *Oracle {
	return &Oracle{ring: r, nOwner: r.Len(), hops: lookupHops(r.Len())}
}

// GenerateOracle places n peers uniformly at random (the paper's
// random-oracle placement) and returns the resulting DHT.
func GenerateOracle(rng *rand.Rand, n int) (*Oracle, error) {
	r, err := ring.Generate(rng, n)
	if err != nil {
		return nil, fmt.Errorf("dht: generating oracle ring: %w", err)
	}
	return NewOracle(r), nil
}

// NewVirtualOracle builds an oracle DHT in which each of nOwners peers
// owns pointsPerOwner points placed uniformly at random — the classic
// virtual-nodes load-balancing extension discussed in the paper's related
// work. h resolves to a point; Owner identifies the real peer.
func NewVirtualOracle(rng *rand.Rand, nOwners, pointsPerOwner int) (*Oracle, error) {
	if nOwners <= 0 || pointsPerOwner <= 0 {
		return nil, fmt.Errorf("dht: need positive owners (%d) and points per owner (%d)", nOwners, pointsPerOwner)
	}
	total := nOwners * pointsPerOwner
	r, err := ring.Generate(rng, total)
	if err != nil {
		return nil, fmt.Errorf("dht: generating virtual ring: %w", err)
	}
	// Points were generated in one batch and sorted; assign owners by
	// dealing points round-robin through a shuffled order so ownership is
	// independent of position, as if each owner hashed its own points.
	perm := rng.Perm(total)
	owners := make([]int, total)
	for j, idx := range perm {
		owners[idx] = j % nOwners
	}
	return &Oracle{ring: r, owners: owners, nOwner: nOwners, hops: lookupHops(r.Len())}, nil
}

// Ring exposes the underlying ring for analyzers and experiments.
func (o *Oracle) Ring() *ring.Ring { return o.ring }

// SimulateLatency attaches a virtual clock and per-hop latency model:
// from then on every synthetic RPC the oracle charges also draws one
// round-trip latency, advances clk and records the duration in the
// meter's histogram — the same accounting the real overlays get from a
// sim.Transport, so E25-style latency sweeps compare all backends on
// one scale. Oracle hops are anonymous (the model sees node ids 0, 0),
// so per-node models like Straggler degenerate to their base behaviour
// here.
func (o *Oracle) SimulateLatency(clk *sim.Clock, model sim.Model, seed uint64) {
	o.clock = clk
	o.model = model
	o.stream = sim.NewStream(seed)
}

// chargeLatency spends and records the virtual time of "hops"
// sequential synthetic RPCs.
func (o *Oracle) chargeLatency(hops int64) {
	if o.model == nil {
		return
	}
	for j := int64(0); j < hops; j++ {
		d := o.model.Latency(0, 0, o.stream.U01())
		o.clock.Advance(d)
		o.meter.RecordLatency(d)
	}
}

// H implements DHT. It charges ceil(log2 n) sequential RPCs (2 messages
// each), the textbook Chord lookup cost.
func (o *Oracle) H(x ring.Point) (Peer, error) {
	o.meter.Charge(o.hops, 2*o.hops)
	o.chargeLatency(o.hops)
	i := o.ring.Successor(x)
	return o.peerAt(i), nil
}

// Next implements DHT. It charges one RPC (2 messages).
//
// The index of p is recovered without a search whenever possible: with
// one point per owner (the common case) a peer's Owner IS its ring
// index, verified with one array load. Every walk step of every sample
// lands here, and the binary search this skips was the single hottest
// block of the batch-sampling profile.
func (o *Oracle) Next(p Peer) (Peer, error) {
	i := -1
	if o.owners == nil && p.Owner >= 0 && p.Owner < o.ring.Len() && o.ring.At(p.Owner) == p.Point {
		i = p.Owner
	} else {
		i = o.ring.IndexOf(p.Point)
	}
	if i < 0 {
		return Peer{}, fmt.Errorf("%w: no peer at %v", ErrUnknownPeer, p.Point)
	}
	o.meter.Charge(1, 2)
	o.chargeLatency(1)
	return o.peerAt(o.ring.NextIndex(i)), nil
}

// Size implements DHT.
func (o *Oracle) Size() int { return o.ring.Len() }

// Owners implements DHT.
func (o *Oracle) Owners() int { return o.nOwner }

// Meter implements DHT.
func (o *Oracle) Meter() *simnet.Meter { return &o.meter }

// PeerByIndex returns the peer owning point index i, for experiment
// drivers that iterate over all peers.
func (o *Oracle) PeerByIndex(i int) Peer { return o.peerAt(i) }

func (o *Oracle) peerAt(i int) Peer {
	owner := i
	if o.owners != nil {
		owner = o.owners[i]
	}
	return Peer{Point: o.ring.At(i), Owner: owner}
}

// lookupHops is the synthetic lookup cost ceil(log2 n), computed once
// at construction (math.Log2 per H call showed up in profiles).
func lookupHops(n int) int64 {
	if n <= 1 {
		return 1
	}
	return int64(math.Ceil(math.Log2(float64(n))))
}
