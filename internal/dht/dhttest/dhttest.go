// Package dhttest is a conformance suite for dht.DHT implementations.
// The paper's algorithm is written against only the (h, next) model, so
// any backend that passes this suite — the oracle, the virtual-node
// oracle, the real Chord network — supports the sampler unmodified.
// That is the paper's "applicable for a wide range of DHTs" claim made
// executable.
package dhttest

import (
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// Factory builds the DHT under test over the given peer points. The
// returned DHT must place exactly those points on its circle.
type Factory func(points []ring.Point) (dht.DHT, error)

// Run executes the conformance suite against the factory.
func Run(t *testing.T, name string, mk Factory) {
	t.Helper()
	t.Run(name+"/HMatchesClockwiseSuccessor", func(t *testing.T) { checkH(t, mk) })
	t.Run(name+"/HAtPeerPointIsIdentity", func(t *testing.T) { checkHIdentity(t, mk) })
	t.Run(name+"/NextCyclesRing", func(t *testing.T) { checkNextCycle(t, mk) })
	t.Run(name+"/OwnersInRange", func(t *testing.T) { checkOwners(t, mk) })
	t.Run(name+"/MeterMonotone", func(t *testing.T) { checkMeter(t, mk) })
	t.Run(name+"/SizeConsistent", func(t *testing.T) { checkSize(t, mk) })
	t.Run(name+"/NextCostO1", func(t *testing.T) { checkNextCostO1(t, mk) })
	t.Run(name+"/HChargesLookupCost", func(t *testing.T) { checkHCost(t, mk) })
	t.Run(name+"/OwnerStability", func(t *testing.T) { checkOwnerStability(t, mk) })
}

// build creates a DHT over n random points and returns it with the
// ground-truth ring.
func build(t *testing.T, mk Factory, seed uint64, n int) (dht.DHT, *ring.Ring) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xd47ec0))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mk(r.Points())
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	return d, r
}

func checkH(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1001, 64)
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 300; trial++ {
		x := ring.Point(rng.Uint64())
		p, err := d.H(x)
		if err != nil {
			t.Fatalf("H(%v): %v", x, err)
		}
		want := r.At(r.Successor(x))
		if p.Point != want {
			t.Fatalf("H(%v) = %v, clockwise successor is %v", x, p.Point, want)
		}
	}
}

func checkHIdentity(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1003, 32)
	for i := 0; i < r.Len(); i++ {
		p, err := d.H(r.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if p.Point != r.At(i) {
			t.Fatalf("H at peer point %v returned %v", r.At(i), p.Point)
		}
	}
}

func checkNextCycle(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1005, 48)
	start, err := d.H(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	cur := start
	visited := make(map[ring.Point]bool, r.Len())
	for step := 0; step < r.Len(); step++ {
		if visited[cur.Point] {
			t.Fatalf("revisited %v before completing the cycle", cur.Point)
		}
		visited[cur.Point] = true
		// Each next must be the immediate clockwise neighbor.
		idx := r.IndexOf(cur.Point)
		if idx < 0 {
			t.Fatalf("next returned non-member point %v", cur.Point)
		}
		next, err := d.Next(cur)
		if err != nil {
			t.Fatalf("Next(%v): %v", cur.Point, err)
		}
		if want := r.At(r.NextIndex(idx)); next.Point != want {
			t.Fatalf("Next(%v) = %v, want %v", cur.Point, next.Point, want)
		}
		cur = next
	}
	if cur.Point != start.Point {
		t.Fatalf("walk of %d steps did not return to start", r.Len())
	}
	if len(visited) != r.Len() {
		t.Fatalf("visited %d of %d peers", len(visited), r.Len())
	}
}

func checkOwners(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1007, 40)
	rng := rand.New(rand.NewPCG(9, 9))
	owners := d.Owners()
	if owners < 1 {
		t.Fatalf("Owners = %d", owners)
	}
	for trial := 0; trial < 100; trial++ {
		p, err := d.H(ring.Point(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		if p.Owner < 0 || p.Owner >= owners {
			t.Fatalf("owner %d outside [0, %d)", p.Owner, owners)
		}
	}
	_ = r
}

func checkMeter(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1009, 32)
	before := d.Meter().Snapshot()
	p, err := d.H(r.At(5))
	if err != nil {
		t.Fatal(err)
	}
	afterH := d.Meter().Snapshot()
	if afterH.Calls <= before.Calls || afterH.Messages <= before.Messages {
		t.Fatal("H charged nothing")
	}
	if _, err := d.Next(p); err != nil {
		t.Fatal(err)
	}
	afterNext := d.Meter().Snapshot()
	if afterNext.Calls <= afterH.Calls {
		t.Fatal("Next charged nothing")
	}
	// A lookup must cost at least as much as one successor chase.
	hCost := afterH.Calls - before.Calls
	nextCost := afterNext.Calls - afterH.Calls
	if hCost < nextCost {
		t.Fatalf("H cost %d below Next cost %d", hCost, nextCost)
	}
}

// measureNextCost walks the ring with Next for the given number of
// steps and returns the total metered cost of those steps.
func measureNextCost(t *testing.T, d dht.DHT, r *ring.Ring, steps int) (calls, messages int64) {
	t.Helper()
	cur, err := d.H(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	before := d.Meter().Snapshot()
	for i := 0; i < steps; i++ {
		cur, err = d.Next(cur)
		if err != nil {
			t.Fatal(err)
		}
	}
	cost := d.Meter().Snapshot().Sub(before)
	return cost.Calls, cost.Messages
}

// checkNextCostO1 is the paper's next(p) cost model made executable:
// one pointer chase must cost O(1) RPCs — a small constant that does
// not grow with the network. The per-step cost is measured at two
// sizes an order of magnitude apart and must be identical and tiny,
// while h pays the (size-dependent) routed-lookup cost.
func checkNextCostO1(t *testing.T, mk Factory) {
	const steps = 16
	perStep := func(n int) (float64, float64) {
		d, r := build(t, mk, 1013, n)
		calls, messages := measureNextCost(t, d, r, steps)
		return float64(calls) / steps, float64(messages) / steps
	}
	smallCalls, smallMsgs := perStep(24)
	bigCalls, bigMsgs := perStep(240)
	if smallCalls != bigCalls || smallMsgs != bigMsgs {
		t.Fatalf("Next cost grew with n: %v calls/%v msgs at n=24, %v calls/%v msgs at n=240",
			smallCalls, smallMsgs, bigCalls, bigMsgs)
	}
	if smallCalls < 1 || smallCalls > 2 {
		t.Fatalf("Next costs %v calls per step; one pointer chase should cost 1 (at most 2) RPCs", smallCalls)
	}
	if smallMsgs < smallCalls {
		t.Fatalf("Next charged %v messages for %v calls", smallMsgs, smallCalls)
	}
}

// checkHCost verifies that H charges genuine lookup costs on the
// meter: every call pays at least one RPC (two messages), and the mean
// lookup strictly exceeds the mean pointer chase — h is a routed
// lookup, not a free oracle read.
func checkHCost(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1015, 128)
	rng := rand.New(rand.NewPCG(15, 15))
	const trials = 40
	var hCalls, hMessages int64
	for i := 0; i < trials; i++ {
		before := d.Meter().Snapshot()
		if _, err := d.H(ring.Point(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
		cost := d.Meter().Snapshot().Sub(before)
		if cost.Calls < 1 || cost.Messages < 2 {
			t.Fatalf("H charged %+v; every lookup must pay at least one RPC", cost)
		}
		hCalls += cost.Calls
		hMessages += cost.Messages
	}
	nextCalls, _ := measureNextCost(t, d, r, 16)
	meanH := float64(hCalls) / trials
	meanNext := float64(nextCalls) / 16
	if meanH <= meanNext {
		t.Fatalf("mean H cost %.2f calls does not exceed mean Next cost %.2f", meanH, meanNext)
	}
}

// checkOwnerStability verifies that Owner is a stable identity:
// repeated lookups of the same point resolve to the identical peer,
// peer points map to distinct owners, and Next reports the same owner
// for a peer as H does — the tally bookkeeping samplers rely on.
func checkOwnerStability(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1017, 40)
	ownerOf := make(map[int]ring.Point, r.Len())
	peers := make([]dht.Peer, r.Len())
	for i := 0; i < r.Len(); i++ {
		p1, err := d.H(r.At(i))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := d.H(r.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("H(%v) unstable: %+v then %+v", r.At(i), p1, p2)
		}
		if prev, dup := ownerOf[p1.Owner]; dup {
			t.Fatalf("owner %d claimed by both %v and %v", p1.Owner, prev, p1.Point)
		}
		ownerOf[p1.Owner] = p1.Point
		peers[i] = p1
	}
	for i, p := range peers {
		next, err := d.Next(p)
		if err != nil {
			t.Fatal(err)
		}
		want := peers[r.NextIndex(i)]
		if next != want {
			t.Fatalf("Next(%v) = %+v; H resolved the successor as %+v", p.Point, next, want)
		}
	}
}

func checkSize(t *testing.T, mk Factory) {
	d, _ := build(t, mk, 1011, 24)
	if d.Size() != 24 {
		t.Fatalf("Size = %d, want 24", d.Size())
	}
	if d.Owners() > d.Size() {
		t.Fatalf("Owners %d exceeds Size %d", d.Owners(), d.Size())
	}
}
