// Package dhttest is a conformance suite for dht.DHT implementations.
// The paper's algorithm is written against only the (h, next) model, so
// any backend that passes this suite — the oracle, the virtual-node
// oracle, the real Chord network — supports the sampler unmodified.
// That is the paper's "applicable for a wide range of DHTs" claim made
// executable.
package dhttest

import (
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// Factory builds the DHT under test over the given peer points. The
// returned DHT must place exactly those points on its circle.
type Factory func(points []ring.Point) (dht.DHT, error)

// Run executes the conformance suite against the factory.
func Run(t *testing.T, name string, mk Factory) {
	t.Helper()
	t.Run(name+"/HMatchesClockwiseSuccessor", func(t *testing.T) { checkH(t, mk) })
	t.Run(name+"/HAtPeerPointIsIdentity", func(t *testing.T) { checkHIdentity(t, mk) })
	t.Run(name+"/NextCyclesRing", func(t *testing.T) { checkNextCycle(t, mk) })
	t.Run(name+"/OwnersInRange", func(t *testing.T) { checkOwners(t, mk) })
	t.Run(name+"/MeterMonotone", func(t *testing.T) { checkMeter(t, mk) })
	t.Run(name+"/SizeConsistent", func(t *testing.T) { checkSize(t, mk) })
}

// build creates a DHT over n random points and returns it with the
// ground-truth ring.
func build(t *testing.T, mk Factory, seed uint64, n int) (dht.DHT, *ring.Ring) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xd47ec0))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mk(r.Points())
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	return d, r
}

func checkH(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1001, 64)
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 300; trial++ {
		x := ring.Point(rng.Uint64())
		p, err := d.H(x)
		if err != nil {
			t.Fatalf("H(%v): %v", x, err)
		}
		want := r.At(r.Successor(x))
		if p.Point != want {
			t.Fatalf("H(%v) = %v, clockwise successor is %v", x, p.Point, want)
		}
	}
}

func checkHIdentity(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1003, 32)
	for i := 0; i < r.Len(); i++ {
		p, err := d.H(r.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if p.Point != r.At(i) {
			t.Fatalf("H at peer point %v returned %v", r.At(i), p.Point)
		}
	}
}

func checkNextCycle(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1005, 48)
	start, err := d.H(r.At(0))
	if err != nil {
		t.Fatal(err)
	}
	cur := start
	visited := make(map[ring.Point]bool, r.Len())
	for step := 0; step < r.Len(); step++ {
		if visited[cur.Point] {
			t.Fatalf("revisited %v before completing the cycle", cur.Point)
		}
		visited[cur.Point] = true
		// Each next must be the immediate clockwise neighbor.
		idx := r.IndexOf(cur.Point)
		if idx < 0 {
			t.Fatalf("next returned non-member point %v", cur.Point)
		}
		next, err := d.Next(cur)
		if err != nil {
			t.Fatalf("Next(%v): %v", cur.Point, err)
		}
		if want := r.At(r.NextIndex(idx)); next.Point != want {
			t.Fatalf("Next(%v) = %v, want %v", cur.Point, next.Point, want)
		}
		cur = next
	}
	if cur.Point != start.Point {
		t.Fatalf("walk of %d steps did not return to start", r.Len())
	}
	if len(visited) != r.Len() {
		t.Fatalf("visited %d of %d peers", len(visited), r.Len())
	}
}

func checkOwners(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1007, 40)
	rng := rand.New(rand.NewPCG(9, 9))
	owners := d.Owners()
	if owners < 1 {
		t.Fatalf("Owners = %d", owners)
	}
	for trial := 0; trial < 100; trial++ {
		p, err := d.H(ring.Point(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		if p.Owner < 0 || p.Owner >= owners {
			t.Fatalf("owner %d outside [0, %d)", p.Owner, owners)
		}
	}
	_ = r
}

func checkMeter(t *testing.T, mk Factory) {
	d, r := build(t, mk, 1009, 32)
	before := d.Meter().Snapshot()
	p, err := d.H(r.At(5))
	if err != nil {
		t.Fatal(err)
	}
	afterH := d.Meter().Snapshot()
	if afterH.Calls <= before.Calls || afterH.Messages <= before.Messages {
		t.Fatal("H charged nothing")
	}
	if _, err := d.Next(p); err != nil {
		t.Fatal(err)
	}
	afterNext := d.Meter().Snapshot()
	if afterNext.Calls <= afterH.Calls {
		t.Fatal("Next charged nothing")
	}
	// A lookup must cost at least as much as one successor chase.
	hCost := afterH.Calls - before.Calls
	nextCost := afterNext.Calls - afterH.Calls
	if hCost < nextCost {
		t.Fatalf("H cost %d below Next cost %d", hCost, nextCost)
	}
}

func checkSize(t *testing.T, mk Factory) {
	d, _ := build(t, mk, 1011, 24)
	if d.Size() != 24 {
		t.Fatalf("Size = %d, want 24", d.Size())
	}
	if d.Owners() > d.Size() {
		t.Fatalf("Owners %d exceeds Size %d", d.Owners(), d.Size())
	}
}
