// Package dht defines the abstract DHT model of King & Saia's paper and
// an oracle implementation of it.
//
// The paper assumes only two primitives of the underlying DHT:
//
//   - h(x): the peer whose peer point is closest in clockwise distance to
//     the point x (a routed lookup; cost t_h latency and m_h messages,
//     both O(log n) in a standard DHT such as Chord), and
//   - next(p): the peer whose point is closest clockwise to peer p's
//     point (one pointer chase; O(1) latency and messages).
//
// Samplers are written against this interface and therefore run
// unmodified over the real Chord implementation (internal/chord) and the
// Oracle backend in this package, which resolves lookups by binary search
// while charging the standard synthetic costs, enabling million-peer
// experiments.
package dht

import (
	"errors"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Peer identifies a peer occupying a point on the unit circle.
//
// Owner is the stable identity of the owning peer, used for tallying
// selection frequencies. In a standard DHT every peer owns exactly one
// point and Owner enumerates peers; with virtual nodes several points
// share one Owner. Owner is -1 when the backend cannot resolve it.
type Peer struct {
	Point ring.Point
	Owner int
}

// DHT is the paper's abstract DHT model.
type DHT interface {
	// H returns h(x): the peer managing point x.
	H(x ring.Point) (Peer, error)
	// Next returns next(p): p's immediate clockwise successor peer.
	Next(p Peer) (Peer, error)
	// Size returns the number of peer points on the circle. It exists for
	// verification and experiment bookkeeping; samplers must not use it.
	Size() int
	// Owners returns the number of distinct owning peers (equal to Size
	// except with virtual nodes).
	Owners() int
	// Meter exposes the cost counters charged by H and Next.
	Meter() *simnet.Meter
}

// ErrUnknownPeer is returned by Next when the given peer is not a member
// of the DHT.
var ErrUnknownPeer = errors.New("dht: unknown peer")

// Sampler chooses peers from a DHT. Implementations include the paper's
// uniform sampler (internal/core) and the baselines it is evaluated
// against (internal/baseline).
type Sampler interface {
	// Sample chooses one peer.
	Sample() (Peer, error)
	// Name identifies the sampler in experiment output.
	Name() string
}
