package dht

import (
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/raceflag"

	"github.com/dht-sampling/randompeer/internal/ring"
)

// Allocation budgets for the oracle hot path. These are regression
// gates for the PR 4 performance pass: H resolves by a hand-rolled
// binary search and Next recovers the peer's ring index from its Owner
// field, so neither touches the heap. The budgets are asserted as
// constants — any change that re-introduces a per-lookup or per-step
// allocation fails tier-1.
const (
	oracleHAllocBudget    = 0
	oracleNextAllocBudget = 0
)

func TestAllocBudgetOracleH(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewPCG(40, 40))
	o, err := GenerateOracle(rng, 16384)
	if err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := o.H(ring.Point(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	})
	if got > oracleHAllocBudget {
		t.Errorf("Oracle.H allocates %.1f per call, budget %d", got, oracleHAllocBudget)
	}
}

func TestAllocBudgetOracleNext(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewPCG(41, 41))
	o, err := GenerateOracle(rng, 16384)
	if err != nil {
		t.Fatal(err)
	}
	p := o.PeerByIndex(0)
	got := testing.AllocsPerRun(200, func() {
		var err error
		if p, err = o.Next(p); err != nil {
			t.Fatal(err)
		}
	})
	if got > oracleNextAllocBudget {
		t.Errorf("Oracle.Next allocates %.1f per call, budget %d", got, oracleNextAllocBudget)
	}
}

// TestAllocBudgetOracleNextVirtual pins the virtual-nodes fallback: an
// Owner field that is not the ring index forces the binary-search path,
// which must still be allocation-free.
func TestAllocBudgetOracleNextVirtual(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewPCG(42, 42))
	o, err := NewVirtualOracle(rng, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := o.PeerByIndex(0)
	got := testing.AllocsPerRun(200, func() {
		var err error
		if p, err = o.Next(p); err != nil {
			t.Fatal(err)
		}
	})
	if got > oracleNextAllocBudget {
		t.Errorf("Oracle.Next (virtual) allocates %.1f per call, budget %d", got, oracleNextAllocBudget)
	}
}

// skipIfRace skips an allocation-budget test under the race detector,
// whose instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
}
