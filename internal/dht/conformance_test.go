package dht_test

import (
	"testing"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/dht/dhttest"
	"github.com/dht-sampling/randompeer/internal/ring"
)

func TestOracleConformance(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "oracle", func(points []ring.Point) (dht.DHT, error) {
		r, err := ring.New(points)
		if err != nil {
			return nil, err
		}
		return dht.NewOracle(r), nil
	})
}
