package dht

import (
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/ring"
)

func mustRing(t *testing.T, points ...ring.Point) *ring.Ring {
	t.Helper()
	r, err := ring.New(points)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOracleH(t *testing.T) {
	t.Parallel()
	o := NewOracle(mustRing(t, 100, 200, 300))
	tests := []struct {
		name      string
		x         ring.Point
		wantOwner int
	}{
		{name: "maps to first", x: 50, wantOwner: 0},
		{name: "exact hit", x: 200, wantOwner: 1},
		{name: "wraps", x: 301, wantOwner: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			p, err := o.H(tt.x)
			if err != nil {
				t.Fatal(err)
			}
			if p.Owner != tt.wantOwner {
				t.Errorf("H(%d).Owner = %d, want %d", tt.x, p.Owner, tt.wantOwner)
			}
		})
	}
}

func TestOracleNext(t *testing.T) {
	t.Parallel()
	o := NewOracle(mustRing(t, 100, 200, 300))
	p, err := o.H(150)
	if err != nil {
		t.Fatal(err)
	}
	nxt, err := o.Next(p)
	if err != nil {
		t.Fatal(err)
	}
	if nxt.Point != 300 || nxt.Owner != 2 {
		t.Errorf("Next = %+v, want point 300 owner 2", nxt)
	}
	// Wraps around.
	nxt2, err := o.Next(nxt)
	if err != nil {
		t.Fatal(err)
	}
	if nxt2.Point != 100 {
		t.Errorf("Next wrap = %+v, want point 100", nxt2)
	}
	// Unknown peer.
	if _, err := o.Next(Peer{Point: 12345}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestOracleCostCharging(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(1, 1))
	o, err := GenerateOracle(rng, 1024)
	if err != nil {
		t.Fatal(err)
	}
	before := o.Meter().Snapshot()
	if _, err := o.H(0); err != nil {
		t.Fatal(err)
	}
	afterH := o.Meter().Snapshot().Sub(before)
	// log2(1024) = 10 hops, 20 messages.
	if afterH.Calls != 10 || afterH.Messages != 20 {
		t.Errorf("H cost = %+v, want 10 calls / 20 messages", afterH)
	}
	p := o.PeerByIndex(0)
	before = o.Meter().Snapshot()
	if _, err := o.Next(p); err != nil {
		t.Fatal(err)
	}
	afterNext := o.Meter().Snapshot().Sub(before)
	if afterNext.Calls != 1 || afterNext.Messages != 2 {
		t.Errorf("Next cost = %+v, want 1 call / 2 messages", afterNext)
	}
}

func TestOracleSizeOwners(t *testing.T) {
	t.Parallel()
	o := NewOracle(mustRing(t, 1, 2, 3))
	if o.Size() != 3 || o.Owners() != 3 {
		t.Errorf("Size/Owners = %d/%d, want 3/3", o.Size(), o.Owners())
	}
}

func TestGenerateOracle(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(9, 9))
	o, err := GenerateOracle(rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 100 {
		t.Errorf("Size = %d, want 100", o.Size())
	}
	if _, err := GenerateOracle(rng, 0); err == nil {
		t.Error("zero peers should fail")
	}
}

func TestVirtualOracle(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(4, 2))
	const owners, perOwner = 50, 8
	o, err := NewVirtualOracle(rng, owners, perOwner)
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != owners*perOwner {
		t.Errorf("Size = %d, want %d", o.Size(), owners*perOwner)
	}
	if o.Owners() != owners {
		t.Errorf("Owners = %d, want %d", o.Owners(), owners)
	}
	// Every owner appears exactly perOwner times.
	counts := make([]int, owners)
	for i := 0; i < o.Size(); i++ {
		p := o.PeerByIndex(i)
		if p.Owner < 0 || p.Owner >= owners {
			t.Fatalf("owner %d out of range", p.Owner)
		}
		counts[p.Owner]++
	}
	for owner, c := range counts {
		if c != perOwner {
			t.Errorf("owner %d has %d points, want %d", owner, c, perOwner)
		}
	}
	// Next stays within the ring and resolves owners.
	p := o.PeerByIndex(0)
	nxt, err := o.Next(p)
	if err != nil {
		t.Fatal(err)
	}
	if nxt.Point != o.Ring().At(1) {
		t.Errorf("Next point = %v, want %v", nxt.Point, o.Ring().At(1))
	}
}

func TestVirtualOracleValidation(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(4, 3))
	if _, err := NewVirtualOracle(rng, 0, 4); err == nil {
		t.Error("zero owners should fail")
	}
	if _, err := NewVirtualOracle(rng, 4, 0); err == nil {
		t.Error("zero points per owner should fail")
	}
}

func TestOracleHMatchesRingSuccessor(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(6, 6))
	o, err := GenerateOracle(rng, 333)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1000; trial++ {
		x := ring.Point(rng.Uint64())
		p, err := o.H(x)
		if err != nil {
			t.Fatal(err)
		}
		want := o.Ring().Successor(x)
		if p.Owner != want {
			t.Fatalf("H(%v).Owner = %d, ring.Successor = %d", x, p.Owner, want)
		}
	}
}
