//go:build race

package raceflag

// Enabled is true when the race detector is active.
const Enabled = true
