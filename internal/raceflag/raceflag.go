//go:build !race

// Package raceflag reports whether the binary was built with the race
// detector. The allocation-budget regression tests consult it: race
// instrumentation allocates on its own (shadow state, altered
// sync.Pool behaviour), so per-op heap budgets are only meaningful in
// uninstrumented builds.
package raceflag

// Enabled is true when the race detector is active.
const Enabled = false
