package cluster

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/obs/obstest"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/slo"
	"github.com/dht-sampling/randompeer/internal/wire"
)

// parseReg renders a registry's exposition and parses it back — the
// same bytes a daemon scrape would carry.
func parseReg(t *testing.T, r *obs.Registry) *obstest.Exposition {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := obstest.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("parsing own exposition: %v\n%s", err, buf.String())
	}
	return e
}

func scrapeAt(taken time.Time, exps ...*obstest.Exposition) *ClusterScrape {
	return &ClusterScrape{Taken: taken, Daemons: exps}
}

func TestScrapeDeltaSumsCountersClampsResets(t *testing.T) {
	mk := func(calls float64, owned float64) *obs.Registry {
		r := obs.NewRegistry()
		r.CounterFunc("rpc_total", "calls", func() float64 { return calls },
			obs.Label{Name: "dest", Value: "remote"})
		r.GaugeFunc("owned_nodes", "nodes", func() float64 { return owned })
		return r
	}
	epoch := time.Unix(100, 0)
	// Two daemons at t0; by t1 daemon 0 advanced 100 -> 140 while
	// daemon 1 restarted (its counter reset from 50 to 5).
	s0 := scrapeAt(epoch, parseReg(t, mk(100, 3)), parseReg(t, mk(50, 4)))
	s1 := scrapeAt(epoch.Add(time.Second), parseReg(t, mk(140, 3)), parseReg(t, mk(5, 4)))

	d := s1.Delta(s0)
	if d.Start != s0.Taken || d.End != s1.Taken {
		t.Fatalf("window [%v, %v]; want the capture times", d.Start, d.End)
	}
	// Daemon 0 contributes +40; daemon 1's reset clamps to zero (not
	// -45), then its post-restart 5 calls are absorbed into the next
	// window's baseline.
	if got := d.Series[`rpc_total{dest="remote"}`]; got != 40 {
		t.Fatalf("counter delta %v; want 40 (reset clamped to zero)", got)
	}
	// Gauges sum their latest readings, no differencing.
	if got := d.Series["owned_nodes"]; got != 7 {
		t.Fatalf("gauge %v; want 7 (latest readings summed)", got)
	}
}

func TestScrapeDeltaNilPrevAndFleetGrowth(t *testing.T) {
	mk := func(v float64) *obs.Registry {
		r := obs.NewRegistry()
		r.CounterFunc("rpc_total", "calls", func() float64 { return v })
		return r
	}
	now := time.Unix(200, 0)
	// nil prev: everything counts from zero.
	d := scrapeAt(now, parseReg(t, mk(30))).Delta(nil)
	if got := d.Series["rpc_total"]; got != 30 {
		t.Fatalf("nil-prev delta %v; want 30", got)
	}
	// A daemon joining between scrapes counts from zero too.
	s0 := scrapeAt(now, parseReg(t, mk(10)))
	s1 := scrapeAt(now.Add(time.Second), parseReg(t, mk(12)), parseReg(t, mk(8)))
	d = s1.Delta(s0)
	if got := d.Series["rpc_total"]; got != 10 {
		t.Fatalf("fleet-growth delta %v; want 2+8", got)
	}
}

// TestClusterSLO pins the live observability path end to end: fleet
// scrape deltas assemble into SLO windows, and each daemon's /v1/slo
// serves a live report over its own wall-clock windows.
func TestClusterSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test")
	}
	c := startCluster(t, 3, wire.WithJitterSeed(29))
	rng := rand.New(rand.NewPCG(61, 67))
	r, err := ring.Generate(rng, 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Provision("chord", r.Points()); err != nil {
		t.Fatalf("provisioning: %v", err)
	}

	s0, err := c.Scrape()
	if err != nil {
		t.Fatalf("baseline scrape: %v", err)
	}
	// Window traffic: daemon 0 runs a sampler, which fans RPCs out
	// across the fleet through its own wire transport.
	if _, err := SampleAt(c.Addr(0), 8, 71); err != nil {
		t.Fatalf("sampling at daemon 0: %v", err)
	}
	s1, err := c.Scrape()
	if err != nil {
		t.Fatalf("window scrape: %v", err)
	}

	d := s1.Delta(s0)
	win := d.SLOWindow(s0.Taken)
	if win.OK <= 0 {
		t.Fatalf("fleet window saw %d successful RPCs; the sampler must have made some", win.OK)
	}
	if win.Latency.Count != win.OK {
		t.Fatalf("latency count %d != ok %d", win.Latency.Count, win.OK)
	}
	if win.End <= win.Start {
		t.Fatalf("window [%v, %v] not forward", win.Start, win.End)
	}
	rep := slo.Evaluate(slo.DefaultObjectives(), []slo.WindowInput{win})
	if rep.TotalRequests != win.OK+win.Failed {
		t.Fatalf("evaluated %d requests; window carried %d", rep.TotalRequests, win.OK+win.Failed)
	}

	// The daemon's own live report: flush cuts the partial window, so
	// the sampler's RPCs are visible without waiting for a boundary.
	live, err := SLOAt(c.Addr(0), true)
	if err != nil {
		t.Fatalf("live SLO at daemon 0: %v", err)
	}
	if live.WindowSeconds != 1 {
		t.Fatalf("daemon window %vs; the harness spawns with -slo-window 1s", live.WindowSeconds)
	}
	if live.Windows < 1 {
		t.Fatal("flush cut no window")
	}
	if live.Report.TotalRequests <= 0 {
		t.Fatalf("daemon 0 live report saw no RPCs: %+v", live.Report)
	}
}

func TestScrapeDeltaHistogramRoundTripAndWindow(t *testing.T) {
	var h obs.Histogram
	reg := obs.NewRegistry()
	reg.HistogramFunc("wire_rpc_duration_seconds", "rtt", h.Snapshot)
	fails := reg.Counter("wire_rpc_failures_total", "fails",
		obs.Label{Name: "kind", Value: "timeout"})
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	epoch := time.Unix(300, 0)
	s0 := scrapeAt(epoch, parseReg(t, reg))

	// Window traffic: 50 slow observations and 5 failures.
	for i := 0; i < 50; i++ {
		h.Observe(80 * time.Millisecond)
	}
	fails.Add(5)
	s1 := scrapeAt(epoch.Add(10*time.Second), parseReg(t, reg))

	d := s1.Delta(s0)
	hd, ok := d.Hists["wire_rpc_duration_seconds"]
	if !ok {
		t.Fatalf("no histogram delta; hists: %v", d.Hists)
	}
	// The scraped delta must match the in-process delta bucket-exactly:
	// the exposition's power-of-two le bounds invert losslessly.
	if hd.Count != 50 {
		t.Fatalf("window count %d; want the 50 in-window observations", hd.Count)
	}
	if q := hd.Quantile(0.5); q < 40*time.Millisecond || q > 160*time.Millisecond {
		t.Fatalf("window p50 %v; want around the 80ms in-window latency (pre-window 2ms excluded)", q)
	}

	in := d.SLOWindow(epoch)
	if in.OK != 50 || in.Failed != 5 {
		t.Fatalf("SLO window ok=%d failed=%d; want 50/5", in.OK, in.Failed)
	}
	if in.Start != 0 || in.End != 10*time.Second {
		t.Fatalf("SLO window [%v, %v]; want [0, 10s] relative to epoch", in.Start, in.End)
	}
	rep := slo.Evaluate(slo.Objectives{
		LatencyQuantile: 0.99, LatencyTarget: time.Second, Availability: 0.8,
	}, []slo.WindowInput{in})
	if rep.TotalRequests != 55 || rep.TotalFailed != 5 {
		t.Fatalf("evaluated totals %d/%d; want 55 requests, 5 failed", rep.TotalRequests, rep.TotalFailed)
	}
}
