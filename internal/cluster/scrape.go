package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/obs/obstest"
)

// Scrape-and-aggregate helpers: fetch /metrics from daemons, validate
// the exposition with the obstest checker, and sum series across the
// fleet so tests (and the CLI) can assert cluster-wide invariants —
// e.g. that the wire RPCs every daemon served add up to the calls the
// client sent.

// ScrapeMetrics fetches and parses one daemon's Prometheus exposition,
// failing on any format violation obstest detects.
func ScrapeMetrics(addr string) (*obstest.Exposition, error) {
	resp, err := ctlClient.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("cluster: GET /metrics on %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: /metrics on %s: status %d", addr, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		return nil, fmt.Errorf("cluster: /metrics on %s: unexpected Content-Type %q", addr, ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading /metrics on %s: %w", addr, err)
	}
	e, err := obstest.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: invalid exposition from %s: %w", addr, err)
	}
	return e, nil
}

// ScrapeAll scrapes every daemon in the cluster, in daemon order.
func (c *Cluster) ScrapeAll() ([]*obstest.Exposition, error) {
	out := make([]*obstest.Exposition, c.Size())
	for i := range out {
		e, err := ScrapeMetrics(c.Addr(i))
		if err != nil {
			return nil, fmt.Errorf("daemon %d: %w", i, err)
		}
		out[i] = e
	}
	return out, nil
}

// SumAcross adds a metric's series (filtered to labels that contain
// want) over a set of scraped expositions.
func SumAcross(exps []*obstest.Exposition, name string, want map[string]string) float64 {
	var total float64
	for _, e := range exps {
		total += e.Sum(name, want)
	}
	return total
}

// ClientRegistry returns a fresh obs registry with the current client
// transport's metrics registered — the client-side counterpart of a
// daemon scrape. It must be re-fetched after each Provision (which
// replaces the client transport).
func (c *Cluster) ClientRegistry() (*obs.Registry, error) {
	if c.client == nil {
		return nil, fmt.Errorf("cluster: no client transport; call Provision first")
	}
	r := obs.NewRegistry()
	c.client.RegisterMetrics(r)
	return r, nil
}
