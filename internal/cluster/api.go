// Package cluster spawns and drives a multi-process randpeerd cluster
// over loopback TCP: it builds the daemon binary, starts N processes,
// waits for readiness, partitions a static overlay across them, and
// supports killing and restarting individual daemons. The conformance
// and determinism suites run over it unchanged, which is the
// executable claim that the wire transport preserves the in-process
// semantics.
//
// This file defines the daemon's control-API types (shared with
// cmd/randpeerd) and thin HTTP client helpers for them.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/slo"
)

// RouteEntry maps a node point to the host:port of its owning process.
type RouteEntry struct {
	Point uint64 `json:"point"`
	Addr  string `json:"addr"`
}

// ProvisionRequest installs a static overlay partition on one daemon:
// the full membership defines every node's routing state, but only the
// owned subset is registered on that daemon's transport; every other
// point must appear in Routes.
type ProvisionRequest struct {
	Backend string       `json:"backend"` // "chord" or "kademlia"
	Bucket  int          `json:"bucket,omitempty"`
	Alpha   int          `json:"alpha,omitempty"`
	Points  []uint64     `json:"points"`
	Owned   []uint64     `json:"owned"`
	Routes  []RouteEntry `json:"routes"`
}

// JoinRequest splices a fresh node (hosted on the receiving daemon)
// into the overlay through a bootstrap point reachable via its routes.
type JoinRequest struct {
	ID        uint64 `json:"id"`
	Bootstrap uint64 `json:"bootstrap"`
}

// LookupRequest resolves the owner of a key from the daemon's view.
type LookupRequest struct {
	Key uint64 `json:"key"`
}

// LookupResponse reports the owner and the metered RPC cost of the
// lookup.
type LookupResponse struct {
	Owner    uint64 `json:"owner"`
	Calls    int64  `json:"calls"`
	Messages int64  `json:"messages"`
}

// NextRequest asks for the immediate clockwise successor of a peer.
type NextRequest struct {
	Point uint64 `json:"point"`
}

// NextResponse carries the successor point.
type NextResponse struct {
	Point uint64 `json:"point"`
}

// SampleRequest draws Count random peers with a King–Saia sampler
// seeded from Seed.
type SampleRequest struct {
	Count int    `json:"count"`
	Seed  uint64 `json:"seed"`
}

// SampleResponse lists the drawn peers and the total metered cost.
type SampleResponse struct {
	Points []uint64 `json:"points"`
	Calls  int64    `json:"calls"`
}

// MetricsResponse is the daemon's meter-snapshot endpoint payload.
type MetricsResponse struct {
	Backend       string   `json:"backend"`
	Owned         []uint64 `json:"owned"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	ServedCalls   int64    `json:"served_calls"`
	Calls         int64    `json:"calls"`
	Messages      int64    `json:"messages"`
	Failures      int64    `json:"failures"`
}

// HealthResponse is the daemon's /healthz payload: liveness plus the
// build identity stamped into the binary.
type HealthResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	Commit  string `json:"commit"`
}

// TraceRequest runs one traced lookup on the daemon: the key's owner
// is resolved with hop tracing armed on the daemon's transport.
type TraceRequest struct {
	Key uint64 `json:"key"`
}

// TraceResponse reports the traced lookup: the owner, the trace id
// (usable against every daemon's GET /v1/trace?id=N for the spans each
// process observed), the meter's charged calls for the lookup, and the
// client-side hop record.
type TraceResponse struct {
	TraceID uint64    `json:"trace_id"`
	Owner   uint64    `json:"owner"`
	Calls   int64     `json:"calls"`
	Hops    []obs.Hop `json:"hops"`
}

// TraceSpansResponse lists the spans one process retained for a trace
// id (GET /v1/trace?id=N).
type TraceSpansResponse struct {
	TraceID uint64    `json:"trace_id"`
	Spans   []obs.Hop `json:"spans"`
}

// SLOResponse is GET /v1/slo's payload: the daemon's live windowed SLO
// report, evaluated over the wall-clock windows its background
// recorder has cut from the metrics registry since startup. With
// ?flush=1 the daemon also cuts the current partial window first, so a
// test (or an operator mid-incident) sees traffic that arrived since
// the last window boundary.
type SLOResponse struct {
	WindowSeconds float64    `json:"window_seconds"`
	Windows       int        `json:"windows"`
	Report        slo.Report `json:"report"`
}

// ctlClient is the shared control-plane HTTP client. Control calls are
// operator actions, so the deadline is generous relative to RPC
// timeouts.
var ctlClient = &http.Client{Timeout: 30 * time.Second}

// postJSON posts in as JSON and decodes the reply into out (skipped
// when out is nil). Non-200 statuses become errors carrying the body.
func postJSON(addr, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s request: %w", path, err)
	}
	resp, err := ctlClient.Post("http://"+addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: reading %s reply: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cluster: decoding %s reply: %w", path, err)
	}
	return nil
}

// ProvisionDaemon installs an overlay partition on the daemon at addr.
func ProvisionDaemon(addr string, req ProvisionRequest) error {
	return postJSON(addr, "/v1/provision", req, nil)
}

// JoinAt asks the daemon at addr to join a fresh node via bootstrap.
func JoinAt(addr string, id, bootstrap ring.Point) error {
	return postJSON(addr, "/v1/join", JoinRequest{ID: uint64(id), Bootstrap: uint64(bootstrap)}, nil)
}

// NextAt asks the daemon at addr for p's immediate successor.
func NextAt(addr string, p ring.Point) (ring.Point, error) {
	var out NextResponse
	err := postJSON(addr, "/v1/next", NextRequest{Point: uint64(p)}, &out)
	return ring.Point(out.Point), err
}

// LookupAt resolves key's owner from the daemon at addr.
func LookupAt(addr string, key ring.Point) (LookupResponse, error) {
	var out LookupResponse
	err := postJSON(addr, "/v1/lookup", LookupRequest{Key: uint64(key)}, &out)
	return out, err
}

// SampleAt draws count peers from the daemon at addr.
func SampleAt(addr string, count int, seed uint64) (SampleResponse, error) {
	var out SampleResponse
	err := postJSON(addr, "/v1/sample", SampleRequest{Count: count, Seed: seed}, &out)
	return out, err
}

// MetricsAt fetches the daemon's meter snapshot.
func MetricsAt(addr string) (MetricsResponse, error) {
	var out MetricsResponse
	resp, err := ctlClient.Get("http://" + addr + "/v1/metrics")
	if err != nil {
		return out, fmt.Errorf("cluster: GET /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("cluster: /v1/metrics: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("cluster: decoding /v1/metrics: %w", err)
	}
	return out, nil
}

// HealthAt fetches the daemon's health and build identity.
func HealthAt(addr string) (HealthResponse, error) {
	var out HealthResponse
	resp, err := ctlClient.Get("http://" + addr + "/healthz")
	if err != nil {
		return out, fmt.Errorf("cluster: GET /healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("cluster: /healthz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("cluster: decoding /healthz: %w", err)
	}
	return out, nil
}

// SLOAt fetches the daemon's live SLO report; flush asks the daemon to
// cut the current partial window before evaluating.
func SLOAt(addr string, flush bool) (SLOResponse, error) {
	var out SLOResponse
	url := "http://" + addr + "/v1/slo"
	if flush {
		url += "?flush=1"
	}
	resp, err := ctlClient.Get(url)
	if err != nil {
		return out, fmt.Errorf("cluster: GET /v1/slo: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("cluster: /v1/slo: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("cluster: decoding /v1/slo: %w", err)
	}
	return out, nil
}

// TraceAt runs one traced lookup on the daemon at addr.
func TraceAt(addr string, key ring.Point) (TraceResponse, error) {
	var out TraceResponse
	err := postJSON(addr, "/v1/trace", TraceRequest{Key: uint64(key)}, &out)
	return out, err
}

// TraceSpansAt fetches the spans the daemon at addr retained for a
// trace id.
func TraceSpansAt(addr string, id uint64) (TraceSpansResponse, error) {
	var out TraceSpansResponse
	resp, err := ctlClient.Get(fmt.Sprintf("http://%s/v1/trace?id=%d", addr, id))
	if err != nil {
		return out, fmt.Errorf("cluster: GET /v1/trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("cluster: /v1/trace: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("cluster: decoding /v1/trace: %w", err)
	}
	return out, nil
}
