package cluster

import (
	"strings"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/obs/obstest"
	"github.com/dht-sampling/randompeer/internal/slo"
)

// Windowed fleet metrics: a ClusterScrape is one point-in-time capture
// of every daemon's /metrics exposition, and Delta turns two captures
// into per-window increases — the wall-clock counterpart of the
// virtual-time recorder in internal/load. Counter and histogram deltas
// clamp at zero per daemon, so a restarted daemon (whose counters
// reset) reads as no progress for that window instead of dragging the
// fleet total negative.

// ClusterScrape is one fleet-wide metrics capture, daemon-indexed.
type ClusterScrape struct {
	// Taken is the wall-clock capture time.
	Taken time.Time
	// Daemons holds each daemon's parsed exposition, in daemon order.
	Daemons []*obstest.Exposition
}

// Scrape captures every daemon's /metrics exposition with one
// timestamp, ready for windowed Delta computation.
func (c *Cluster) Scrape() (*ClusterScrape, error) {
	exps, err := c.ScrapeAll()
	if err != nil {
		return nil, err
	}
	return &ClusterScrape{Taken: time.Now(), Daemons: exps}, nil
}

// ScrapeDelta is the fleet-wide change between two scrapes.
type ScrapeDelta struct {
	// Start and End are the two capture times.
	Start, End time.Time
	// Series sums each scalar series across daemons: counters as their
	// per-daemon clamped increase, gauges (and untyped series) at their
	// latest reading. Keys are obstest.SeriesKey form (name{labels}).
	Series map[string]float64
	// Hists sums each histogram series' bucket-wise clamped increase
	// across daemons, keyed like Series by family name plus labels.
	Hists map[string]obs.HistSnapshot
}

// Delta computes the fleet-wide increase from prev to s. Daemons are
// index-aligned; a daemon absent from prev (the fleet grew) counts
// from zero, and a daemon whose counters went backwards (it restarted)
// contributes zero for the affected series rather than a negative.
// prev may be nil, which reads every counter from zero.
func (s *ClusterScrape) Delta(prev *ClusterScrape) *ScrapeDelta {
	out := &ScrapeDelta{
		End:    s.Taken,
		Series: make(map[string]float64),
		Hists:  make(map[string]obs.HistSnapshot),
	}
	if prev != nil {
		out.Start = prev.Taken
	}
	for i, e := range s.Daemons {
		var pe *obstest.Exposition
		if prev != nil && i < len(prev.Daemons) {
			pe = prev.Daemons[i]
		}
		for _, smp := range e.Samples {
			family, typ := e.Family(smp.Name)
			if typ == "histogram" {
				if smp.Name != family+"_count" {
					continue // one hist delta per series, keyed off _count
				}
				cur, ok := e.HistSnapshot(family, smp.Labels)
				if !ok {
					continue
				}
				var prevH obs.HistSnapshot
				if pe != nil {
					prevH, _ = pe.HistSnapshot(family, smp.Labels)
				}
				key := obstest.SeriesKey(family, smp.Labels)
				out.Hists[key] = addHists(out.Hists[key], cur.Sub(prevH))
				continue
			}
			key := smp.Key()
			v := smp.Value
			if typ == "counter" {
				var prevV float64
				if pe != nil {
					prevV, _ = pe.Value(smp.Name, smp.Labels)
				}
				v -= prevV
				if v < 0 {
					v = 0 // counter reset: the daemon restarted mid-window
				}
			}
			out.Series[key] += v
		}
	}
	return out
}

// addHists sums two histogram readings bucket-wise.
func addHists(a, b obs.HistSnapshot) obs.HistSnapshot {
	a.Count += b.Count
	a.SumNanos += b.SumNanos
	for i := range a.Buckets {
		a.Buckets[i] += b.Buckets[i]
	}
	return a
}

// SLOWindow maps one fleet delta onto the SLO engine's window input
// using the wire transport's RPC series: OK counts the successful
// round trips the latency histogram recorded, Failed sums the failure
// taxonomy counters, and the window bounds are the capture times
// relative to epoch. Feeding successive deltas to slo.Evaluate yields
// the same report shape over a live cluster that E28 computes in
// virtual time.
func (d *ScrapeDelta) SLOWindow(epoch time.Time) slo.WindowInput {
	in := slo.WindowInput{
		Start: d.Start.Sub(epoch),
		End:   d.End.Sub(epoch),
	}
	in.Latency = d.Hists["wire_rpc_duration_seconds"]
	in.OK = in.Latency.Count
	for key, v := range d.Series {
		if strings.HasPrefix(key, "wire_rpc_failures_total") {
			in.Failed += int64(v)
		}
	}
	return in
}
