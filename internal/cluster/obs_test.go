package cluster

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/obs/obstest"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/wire"
)

// renderRegistry renders a registry's exposition and runs it through
// the same strict checker the daemon scrapes get.
func renderRegistry(t *testing.T, r *obs.Registry) *obstest.Exposition {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("rendering client registry: %v", err)
	}
	e, err := obstest.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("client exposition invalid: %v\n%s", err, buf.String())
	}
	return e
}

// TestClusterMetricsScrape is the fleet-level observability smoke: it
// drives client lookups across a 3-daemon cluster, scrapes /metrics
// from every daemon, validates each exposition with the obstest
// checker, and reconciles the server-side counters against the
// client's own registry — the wire RPC histogram count must equal the
// client meter's charged calls, and the RPCs the daemons served must
// add up to the attempts the client sent.
func TestClusterMetricsScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test")
	}
	c := startCluster(t, 3, wire.WithJitterSeed(13))
	rng := rand.New(rand.NewPCG(43, 47))
	r, err := ring.Generate(rng, 24)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Provision("chord", r.Points())
	if err != nil {
		t.Fatalf("provisioning: %v", err)
	}
	const lookups = 32
	for i := 0; i < lookups; i++ {
		if _, err := d.H(ring.Point(rng.Uint64())); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}

	exps, err := c.ScrapeAll()
	if err != nil {
		t.Fatalf("scraping cluster: %v", err)
	}
	for i, e := range exps {
		if v := e.Sum("randpeerd_build_info", map[string]string{"version": "test"}); v != 1 {
			t.Errorf("daemon %d: randpeerd_build_info{version=\"test\"} = %v, want 1", i, v)
		}
		if up, ok := e.Value("randpeerd_uptime_seconds", nil); !ok || up <= 0 {
			t.Errorf("daemon %d: uptime = %v, %v; want > 0", i, up, ok)
		}
		if owned, ok := e.Value("randpeerd_owned_nodes", nil); !ok || int(owned) != len(c.Owned(i)) {
			t.Errorf("daemon %d: owned_nodes = %v, want %d", i, owned, len(c.Owned(i)))
		}
		if served := e.Sum("wire_rpc_served_total", nil); served < 1 {
			t.Errorf("daemon %d: served %v RPCs, want >= 1 after cross-daemon lookups", i, served)
		}
	}

	reg, err := c.ClientRegistry()
	if err != nil {
		t.Fatal(err)
	}
	client := renderRegistry(t, reg)

	// The client histogram records exactly the calls the meter charged.
	meterCalls := float64(c.Client().Meter().Snapshot().Calls)
	if got, ok := client.Value("wire_rpc_duration_seconds_count", nil); !ok || got != meterCalls {
		t.Errorf("client histogram count = %v, %v; meter charged %v calls", got, ok, meterCalls)
	}
	if local := client.Sum("wire_rpc_calls_total", map[string]string{"dest": "local"}); local != 0 {
		t.Errorf("client made %v local calls; every overlay node lives on a daemon", local)
	}

	// Fleet reconciliation: only the client originated RPCs, so the
	// inbound RPCs the daemons served must add up to the network
	// attempts the client sent.
	attempts, ok := client.Value("wire_rpc_attempts_total", nil)
	if !ok {
		t.Fatal("client exposition missing wire_rpc_attempts_total")
	}
	if served := SumAcross(exps, "wire_rpc_served_total", nil); served != attempts {
		t.Errorf("daemons served %v RPCs, client attempted %v", served, attempts)
	}

	// The build identity on /healthz matches the stamped exposition.
	h, err := HealthAt(c.Addr(0))
	if err != nil {
		t.Fatalf("health at daemon 0: %v", err)
	}
	if h.Status != "ok" || h.Version != "test" {
		t.Errorf("healthz = %+v, want status ok and version test", h)
	}
}

// TestClusterTrace pins the distributed tracing path: a daemon-side
// traced lookup reports hops that reconcile with its meter, and the
// spans the other daemons retained under the same trace id account for
// exactly the remote hops the trace crossed.
func TestClusterTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test")
	}
	c := startCluster(t, 3, wire.WithJitterSeed(19))
	rng := rand.New(rand.NewPCG(53, 59))
	r, err := ring.Generate(rng, 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Provision("chord", r.Points()); err != nil {
		t.Fatalf("provisioning: %v", err)
	}

	key := ring.Point(rng.Uint64())
	resp, err := TraceAt(c.Addr(0), key)
	if err != nil {
		t.Fatalf("traced lookup at daemon 0: %v", err)
	}
	if resp.TraceID == 0 {
		t.Fatal("traced lookup returned trace id 0")
	}
	if want := r.At(r.Successor(key)); ring.Point(resp.Owner) != want {
		t.Fatalf("traced lookup(%v) = %v, want %v", key, resp.Owner, want)
	}

	// Hop-for-call reconciliation on the originating daemon.
	var okHops, remoteHops int
	for i, h := range resp.Hops {
		if h.Index != i {
			t.Fatalf("hop %d has index %d", i, h.Index)
		}
		if h.Outcome == "ok" {
			okHops++
		}
		if h.Remote {
			remoteHops++
			if h.Attempts < 1 {
				t.Errorf("remote hop %d reports %d attempts", i, h.Attempts)
			}
		}
	}
	if int64(okHops) != resp.Calls {
		t.Fatalf("trace has %d ok hops, daemon meter charged %d calls", okHops, resp.Calls)
	}

	// Every remote hop was served by some daemon, which retained a span
	// under the trace id; local hops never leave the process.
	var spans int
	for i := 0; i < c.Size(); i++ {
		sr, err := TraceSpansAt(c.Addr(i), resp.TraceID)
		if err != nil {
			t.Fatalf("spans at daemon %d: %v", i, err)
		}
		if sr.TraceID != resp.TraceID {
			t.Fatalf("daemon %d echoed trace id %d, want %d", i, sr.TraceID, resp.TraceID)
		}
		for _, s := range sr.Spans {
			if !s.Remote {
				t.Errorf("daemon %d retained a non-remote span: %+v", i, s)
			}
		}
		spans += len(sr.Spans)
	}
	if spans != remoteHops {
		t.Fatalf("daemons retained %d spans, trace crossed %d remote hops", spans, remoteHops)
	}
	if remoteHops == 0 {
		t.Fatal("trace never left daemon 0; partition should force remote hops")
	}
}

// TestTailBufferBounds pins the stderr-capture ring: it keeps only the
// most recent stderrTailCap bytes, and the tail survives interleaved
// concurrent writes without racing readers.
func TestTailBufferBounds(t *testing.T) {
	t.Parallel()
	tb := newTailBuffer(16)
	if _, err := tb.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if got := tb.String(); got != "0123456789" {
		t.Fatalf("tail = %q before overflow", got)
	}
	if _, err := tb.Write([]byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	if got := tb.String(); got != "456789abcdefghij" {
		t.Fatalf("tail = %q (len %d), want the most recent <= 16 bytes", got, len(got))
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tb.Write([]byte("x"))
				_ = tb.String()
			}
		}()
	}
	wg.Wait()
	if got := tb.String(); len(got) > 16 {
		t.Fatalf("tail grew past cap: %d bytes", len(got))
	}
}
