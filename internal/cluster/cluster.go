package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
	"github.com/dht-sampling/randompeer/internal/wire"
)

// readyDeadline bounds how long a spawned daemon may take to print its
// address and answer /healthz; restarts reuse it as the rebind budget.
const readyDeadline = 10 * time.Second

var (
	binOnce sync.Once
	binPath string
	binErr  error
)

// DaemonBinary builds cmd/randpeerd once per process (into a temp
// directory) and returns the binary path. RANDPEERD_BIN overrides the
// build with a prebuilt binary. The build stamps the current commit
// into the binary when git can report one, mirroring the Makefile's
// ldflags, so /healthz and the build_info metric identify the build
// even in test clusters.
func DaemonBinary() (string, error) {
	binOnce.Do(func() {
		if env := os.Getenv("RANDPEERD_BIN"); env != "" {
			binPath = env
			return
		}
		root, err := moduleRoot()
		if err != nil {
			binErr = err
			return
		}
		dir, err := os.MkdirTemp("", "randpeerd-bin-")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "randpeerd")
		args := []string{"build"}
		if commit := gitCommit(root); commit != "" {
			args = append(args, "-ldflags", "-X main.version=test -X main.commit="+commit)
		}
		args = append(args, "-o", binPath, "./cmd/randpeerd")
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			binErr = fmt.Errorf("cluster: building randpeerd: %v\n%s", err, out)
		}
	})
	return binPath, binErr
}

// gitCommit returns the short commit hash of the repo at root, or ""
// when git is unavailable (builds must not fail over a missing VCS).
func gitCommit(root string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("cluster: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// stderrTailCap bounds the per-daemon stderr capture.
const stderrTailCap = 8 << 10

// tailBuffer keeps the most recent cap bytes written to it. It lets
// harness failure messages carry the crashed daemon's stderr instead
// of a bare "connection refused". Safe for concurrent use (the daemon
// process writes while the harness reads on failure).
type tailBuffer struct {
	mu  sync.Mutex
	cap int
	buf []byte
}

func newTailBuffer(capacity int) *tailBuffer {
	return &tailBuffer{cap: capacity}
}

// Write implements io.Writer, never failing.
func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if over := len(t.buf) - t.cap; over > 0 {
		t.buf = append(t.buf[:0], t.buf[over:]...)
	}
	return len(p), nil
}

// String returns the captured tail.
func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// Daemon is one spawned randpeerd process. Its address stays stable
// across Kill/Restart so routing tables never need rewriting.
type Daemon struct {
	addr   string
	cmd    *exec.Cmd
	stderr *tailBuffer

	// lastProvision is replayed after a restart so the daemon rejoins
	// the overlay with its original partition.
	lastProvision *ProvisionRequest
}

// Addr returns the daemon's host:port.
func (d *Daemon) Addr() string { return d.addr }

// StderrTail returns the most recent stderr output of the daemon's
// current (or last) process — the first thing to include in a failure
// message when the daemon stops answering.
func (d *Daemon) StderrTail() string {
	if d.stderr == nil {
		return ""
	}
	return d.stderr.String()
}

// Cluster is a set of randpeerd processes plus a client-side wire
// transport hosting the caller's own node, together forming one
// overlay over loopback sockets.
type Cluster struct {
	bin     string
	daemons []*Daemon

	clientOpts []wire.Option
	client     *wire.Transport

	backend string
	points  []ring.Point
	local   ring.Point
	owned   [][]ring.Point
}

// Start builds the daemon binary and spawns n daemons on free loopback
// ports, waiting until each answers /healthz. clientOpts configure the
// client-side wire transport created by each Provision call (retry
// budget, timeouts, jitter seed).
func Start(n int, clientOpts ...wire.Option) (*Cluster, error) {
	bin, err := DaemonBinary()
	if err != nil {
		return nil, err
	}
	c := &Cluster{bin: bin, clientOpts: clientOpts}
	for i := 0; i < n; i++ {
		d, err := spawn(bin, "127.0.0.1:0", uint64(i+1))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.daemons = append(c.daemons, d)
	}
	return c, nil
}

// spawn starts one daemon, parses its bound address off stdout, and
// waits for /healthz. jitterSeed pins the daemon's backoff schedule so
// cluster runs are reproducible.
func spawn(bin, listen string, jitterSeed uint64) (*Daemon, error) {
	// The short SLO window keeps the live /v1/slo report responsive in
	// tests; production deployments keep the daemon's 5s default.
	cmd := exec.Command(bin, "-listen", listen, "-jitter-seed", fmt.Sprint(jitterSeed),
		"-slo-window", "1s")
	// Tee stderr: the daemon's output stays visible live, and the tail
	// is retained so failures can say WHY a daemon died instead of just
	// "connection refused".
	tail := newTailBuffer(stderrTailCap)
	cmd.Stderr = io.MultiWriter(os.Stderr, tail)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: starting %s: %w", bin, err)
	}
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			errc <- fmt.Errorf("cluster: daemon exited before announcing its address%s", stderrSuffix(tail))
			return
		}
		line := sc.Text()
		const prefix = "randpeerd: listening on "
		if !strings.HasPrefix(line, prefix) {
			errc <- fmt.Errorf("cluster: unexpected daemon banner %q%s", line, stderrSuffix(tail))
			return
		}
		addrc <- strings.TrimSpace(strings.TrimPrefix(line, prefix))
		// Drain any further output so the pipe never blocks the daemon.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	case <-time.After(readyDeadline):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("cluster: daemon did not announce an address within %v%s", readyDeadline, stderrSuffix(tail))
	}
	if err := waitReady(addr, readyDeadline); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("%w%s", err, stderrSuffix(tail))
	}
	return &Daemon{addr: addr, cmd: cmd, stderr: tail}, nil
}

// stderrSuffix formats a captured stderr tail for inclusion in a
// failure message ("" when nothing was captured).
func stderrSuffix(tail *tailBuffer) string {
	s := strings.TrimSpace(tail.String())
	if s == "" {
		return ""
	}
	return "\ndaemon stderr:\n" + s
}

// waitReady polls /healthz until it answers 200 or the deadline runs
// out.
func waitReady(addr string, deadline time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	end := time.Now().Add(deadline)
	for {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(end) {
			return fmt.Errorf("cluster: daemon at %s not healthy within %v (last: %v)", addr, deadline, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Size returns the number of daemons (dead or alive).
func (c *Cluster) Size() int { return len(c.daemons) }

// Addr returns daemon i's host:port.
func (c *Cluster) Addr(i int) string { return c.daemons[i].addr }

// StderrTail returns the most recent stderr output of daemon i.
func (c *Cluster) StderrTail(i int) string { return c.daemons[i].StderrTail() }

// Client returns the caller-side wire transport created by the last
// Provision (nil before the first). Tests arm traces and register
// metrics on it.
func (c *Cluster) Client() *wire.Transport { return c.client }

// Owned returns the points assigned to daemon i by the last Provision.
func (c *Cluster) Owned(i int) []ring.Point { return c.owned[i] }

// Kill terminates daemon i's process immediately (SIGKILL): in-flight
// RPCs see connection resets, subsequent ones connection refused.
func (c *Cluster) Kill(i int) error {
	d := c.daemons[i]
	if d.cmd == nil {
		return fmt.Errorf("cluster: daemon %d already dead", i)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	_ = d.cmd.Wait()
	d.cmd = nil
	return nil
}

// Restart respawns daemon i on its original port and replays its last
// provision, so the rest of the cluster's routing tables keep working
// unchanged. The port may take a moment to become bindable again after
// the kill, so spawning retries until the ready deadline.
func (c *Cluster) Restart(i int) error {
	d := c.daemons[i]
	if d.cmd != nil {
		return fmt.Errorf("cluster: daemon %d still running", i)
	}
	end := time.Now().Add(readyDeadline)
	for {
		nd, err := spawn(c.bin, d.addr, uint64(i+1))
		if err == nil {
			d.cmd, d.stderr = nd.cmd, nd.stderr
			break
		}
		if time.Now().After(end) {
			return fmt.Errorf("cluster: restarting daemon %d on %s: %w", i, d.addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if d.lastProvision != nil {
		if err := ProvisionDaemon(d.addr, *d.lastProvision); err != nil {
			return fmt.Errorf("cluster: re-provisioning daemon %d: %w", i, err)
		}
	}
	return nil
}

// Close kills every daemon and closes the client transport.
func (c *Cluster) Close() {
	for _, d := range c.daemons {
		if d.cmd != nil {
			_ = d.cmd.Process.Kill()
			_ = d.cmd.Wait()
			d.cmd = nil
		}
	}
	if c.client != nil {
		_ = c.client.Close()
		c.client = nil
	}
}

// Provision partitions a static overlay across the cluster: the caller
// keeps points[0] on a fresh client-side transport (so the returned
// DHT's meter charges exactly what an in-process caller would be
// charged), and the remaining points split contiguously across the
// daemons. Every process gets the full point->address routing table.
// The returned DHT views the overlay from points[0].
func (c *Cluster) Provision(backend string, points []ring.Point) (dht.DHT, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	if c.client != nil {
		_ = c.client.Close()
		c.client = nil
	}
	client := wire.NewTransport(c.clientOpts...)
	if err := client.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	local := points[0]
	rest := points[1:]
	ownerAddr := make(map[ring.Point]string, len(points))
	ownerAddr[local] = client.Addr()
	perDaemon := make([][]ring.Point, len(c.daemons))
	for j, p := range rest {
		i := j * len(c.daemons) / len(rest)
		perDaemon[i] = append(perDaemon[i], p)
		ownerAddr[p] = c.daemons[i].addr
	}
	routes := make([]RouteEntry, 0, len(points))
	allPoints := make([]uint64, len(points))
	for i, p := range points {
		allPoints[i] = uint64(p)
		routes = append(routes, RouteEntry{Point: uint64(p), Addr: ownerAddr[p]})
	}
	for i, d := range c.daemons {
		owned := make([]uint64, len(perDaemon[i]))
		for j, p := range perDaemon[i] {
			owned[j] = uint64(p)
		}
		req := ProvisionRequest{Backend: backend, Points: allPoints, Owned: owned, Routes: routes}
		if err := ProvisionDaemon(d.addr, req); err != nil {
			_ = client.Close()
			return nil, err
		}
		d.lastProvision = &req
	}
	for _, p := range rest {
		client.SetRoute(simnet.NodeID(p), ownerAddr[p])
	}
	isLocal := func(p ring.Point) bool { return p == local }
	var view dht.DHT
	switch backend {
	case "chord":
		net, err := chord.BuildStaticPartition(chord.Config{}, client, points, isLocal)
		if err == nil {
			view, err = net.AsDHT(local)
		}
		if err != nil {
			_ = client.Close()
			return nil, err
		}
	case "kademlia":
		net, err := kademlia.BuildStaticPartition(kademlia.Config{}, client, points, isLocal)
		if err == nil {
			view, err = net.AsDHT(local)
		}
		if err != nil {
			_ = client.Close()
			return nil, err
		}
	default:
		_ = client.Close()
		return nil, fmt.Errorf("cluster: unknown backend %q", backend)
	}
	c.client = client
	c.backend = backend
	c.points = append([]ring.Point(nil), points...)
	c.local = local
	c.owned = perDaemon
	return view, nil
}
