package cluster

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/dht/dhttest"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
	"github.com/dht-sampling/randompeer/internal/wire"
)

// backends under cluster test; both must behave identically to their
// in-process forms over real sockets.
var backends = []string{"chord", "kademlia"}

// startCluster spawns an n-daemon cluster and ties its lifetime to the
// test.
func startCluster(t *testing.T, n int, clientOpts ...wire.Option) *Cluster {
	t.Helper()
	c, err := Start(n, clientOpts...)
	if err != nil {
		t.Fatalf("starting %d-daemon cluster: %v", n, err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestClusterConformance runs the full DHT conformance suite over a
// three-process cluster: every routing hop crosses process boundaries
// on loopback TCP, and the sampler-facing contract — including the
// metered costs the suite checks — must be exactly what the in-process
// transports deliver.
func TestClusterConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test")
	}
	for _, backend := range backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			c := startCluster(t, 3, wire.WithJitterSeed(99))
			dhttest.Run(t, "cluster-"+backend, func(points []ring.Point) (dht.DHT, error) {
				return c.Provision(backend, points)
			})
		})
	}
}

// ownerSeq draws k samples with a King–Saia sampler seeded from seed
// and returns the chosen owner sequence.
func ownerSeq(t *testing.T, d dht.DHT, caller dht.Peer, seed uint64, k int) []ring.Point {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x2545f4914f6cdd1d))
	s, err := core.New(d, caller, rng, core.Config{})
	if err != nil {
		t.Fatalf("building sampler: %v", err)
	}
	out := make([]ring.Point, 0, k)
	for i := 0; i < k; i++ {
		peer, err := s.Sample()
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		out = append(out, peer.Point)
	}
	return out
}

// TestClusterDeterminism pins the cluster's end-to-end determinism:
// the same seed must draw the identical owner sequence whether the
// overlay lives in one process (simnet.Direct) or is partitioned
// across three daemons behind wire transports — for both backends.
func TestClusterDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test")
	}
	const n, seed, k = 48, 17, 120
	rng := rand.New(rand.NewPCG(seed, seed+1))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	points := r.Points()
	caller := dht.Peer{Point: points[0], Owner: 0}

	c := startCluster(t, 3, wire.WithJitterSeed(5))
	for _, backend := range backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			var direct dht.DHT
			switch backend {
			case "chord":
				net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), points)
				if err != nil {
					t.Fatal(err)
				}
				direct, err = net.AsDHT(points[0])
				if err != nil {
					t.Fatal(err)
				}
			case "kademlia":
				net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points)
				if err != nil {
					t.Fatal(err)
				}
				direct, err = net.AsDHT(points[0])
				if err != nil {
					t.Fatal(err)
				}
			}
			clustered, err := c.Provision(backend, points)
			if err != nil {
				t.Fatalf("provisioning cluster: %v", err)
			}
			want := ownerSeq(t, direct, caller, 41, k)
			got := ownerSeq(t, clustered, caller, 41, k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: cluster drew %v, in-process drew %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestClusterKillRestart pins the daemon lifecycle semantics: an RPC
// to a node on a killed daemon fails with ErrNodeDead within the retry
// budget, and after the daemon restarts on the same port (replaying
// its provision) the same RPC succeeds again — no routing table
// rewrites anywhere.
func TestClusterKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test")
	}
	for _, backend := range backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			c := startCluster(t, 3,
				wire.WithJitterSeed(7),
				wire.WithCallTimeout(500*time.Millisecond),
				wire.WithRetries(1, 10*time.Millisecond, 40*time.Millisecond))
			rng := rand.New(rand.NewPCG(23, 29))
			r, err := ring.Generate(rng, 24)
			if err != nil {
				t.Fatal(err)
			}
			d, err := c.Provision(backend, r.Points())
			if err != nil {
				t.Fatalf("provisioning: %v", err)
			}
			const victim = 2
			target := dht.Peer{Point: c.Owned(victim)[0]}
			if _, err := d.Next(target); err != nil {
				t.Fatalf("next(%v) before kill: %v", target.Point, err)
			}
			if err := c.Kill(victim); err != nil {
				t.Fatalf("killing daemon %d: %v", victim, err)
			}
			if _, err := d.Next(target); !errors.Is(err, simnet.ErrNodeDead) {
				t.Fatalf("next(%v) with daemon %d down: got %v, want ErrNodeDead", target.Point, victim, err)
			}
			if err := c.Restart(victim); err != nil {
				t.Fatalf("restarting daemon %d: %v", victim, err)
			}
			// The daemon is healthy and re-provisioned; the next lookup
			// must succeed within the client's own retry budget.
			deadline := time.Now().Add(10 * time.Second)
			for {
				if _, err := d.Next(target); err == nil {
					break
				} else if time.Now().After(deadline) {
					t.Fatalf("next(%v) still failing after restart: %v", target.Point, err)
				}
				time.Sleep(50 * time.Millisecond)
			}
		})
	}
}

// TestClusterControlPlane exercises the daemon's own control API:
// daemon-initiated lookups report sensible owners and costs, sampling
// draws members, and the metrics endpoint reflects the provisioned
// state and served traffic.
func TestClusterControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test")
	}
	c := startCluster(t, 3, wire.WithJitterSeed(3))
	rng := rand.New(rand.NewPCG(31, 37))
	r, err := ring.Generate(rng, 24)
	if err != nil {
		t.Fatal(err)
	}
	points := r.Points()
	if _, err := c.Provision("chord", points); err != nil {
		t.Fatalf("provisioning: %v", err)
	}
	members := make(map[ring.Point]bool, len(points))
	for _, p := range points {
		members[p] = true
	}

	key := ring.Point(rng.Uint64())
	look, err := LookupAt(c.Addr(0), key)
	if err != nil {
		t.Fatalf("lookup at daemon 0: %v", err)
	}
	if want := r.At(r.Successor(key)); ring.Point(look.Owner) != want {
		t.Fatalf("daemon lookup(%v) = %v, want %v", key, look.Owner, want)
	}
	if look.Calls < 1 {
		t.Fatalf("daemon lookup reported %d calls, want >= 1", look.Calls)
	}

	first := c.Owned(0)[0]
	succ, err := NextAt(c.Addr(0), first)
	if err != nil {
		t.Fatalf("next at daemon 0: %v", err)
	}
	if want := r.At((r.Successor(first) + 1) % len(points)); succ != want {
		t.Fatalf("daemon next(%v) = %v, want %v", first, succ, want)
	}

	samp, err := SampleAt(c.Addr(1), 8, 101)
	if err != nil {
		t.Fatalf("sample at daemon 1: %v", err)
	}
	if len(samp.Points) != 8 {
		t.Fatalf("sample returned %d points, want 8", len(samp.Points))
	}
	for _, p := range samp.Points {
		if !members[ring.Point(p)] {
			t.Fatalf("sampled %v is not a member", p)
		}
	}

	m, err := MetricsAt(c.Addr(0))
	if err != nil {
		t.Fatalf("metrics at daemon 0: %v", err)
	}
	if m.Backend != "chord" {
		t.Fatalf("metrics backend = %q, want chord", m.Backend)
	}
	if len(m.Owned) != len(c.Owned(0)) {
		t.Fatalf("metrics owned = %d points, want %d", len(m.Owned), len(c.Owned(0)))
	}
	if m.ServedCalls < 1 {
		t.Fatalf("metrics served = %d, want >= 1 after cross-daemon lookups", m.ServedCalls)
	}
	if m.Calls < 1 {
		t.Fatalf("metrics calls = %d, want >= 1 (daemon 0 made outgoing lookup hops)", m.Calls)
	}
}
