// Package obs is the observability layer of the testbed: a
// dependency-free metrics registry (counters, gauges and log-bucket
// latency histograms reusing the simnet power-of-two bucket scheme)
// with Prometheus text-format exposition, plus the hop-level lookup
// trace facility in trace.go.
//
// The registry is stdlib-only by design — the daemon, the wire
// transport, the sim kernel and the cluster harness all expose their
// state through one Registry per process, scraped at /metrics or
// written directly into a buffer by tests. Metric instruments are
// updated with single atomic operations, so instrumented hot paths pay
// no locks and no allocations; callback instruments (CounterFunc,
// GaugeFunc, HistogramFunc) read existing state — a simnet.Meter
// snapshot, a kernel stats record — only at scrape time, so wiring a
// subsystem into the registry adds zero cost to its hot path.
//
// Naming conventions (documented in DESIGN.md §11): snake_case metric
// names prefixed by subsystem (wire_, randpeerd_, sim_kernel_),
// counters suffixed _total, unit suffixes (_seconds, _nanoseconds)
// on everything dimensional. Histogram buckets are the simnet latency
// scheme: bucket b counts observations in [2^(b-1), 2^b) nanoseconds
// (bucket 0 counts exact zeros), exposed as cumulative `le` bounds in
// seconds.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets — the
// same scheme as the simnet latency histogram, so 64 buckets cover
// every int64 nanosecond duration.
const histBuckets = 64

// Histogram is a log-bucket latency histogram: bucket b counts
// observations in [2^(b-1), 2^b) nanoseconds, bucket 0 counts exact
// zeros. Observe costs two atomic adds; the count is derived from the
// buckets at snapshot time. The zero value is ready to use.
type Histogram struct {
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.sum.Add(int64(d))
	h.buckets[bits.Len64(uint64(d))%histBuckets].Add(1)
}

// Snapshot returns the current histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.SumNanos = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	return s
}

// HistSnapshot is an immutable histogram reading. Its bucket layout is
// identical to simnet.Latency, so a meter's latency histogram converts
// by copying the fields (see the HistogramFunc users in cmd/randpeerd).
type HistSnapshot struct {
	Count    int64
	SumNanos int64
	Buckets  [histBuckets]int64
}

// Label is one metric dimension, rendered as name="value" in the
// exposition.
type Label struct {
	Name, Value string
}

// metric kinds inside a family.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one (name, labels) instrument: exactly one of the value
// fields is set.
type series struct {
	labels  string // rendered {a="b",...} or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64      // CounterFunc / GaugeFunc
	hist    *Histogram          //
	histFn  func() HistSnapshot // HistogramFunc
}

// family groups every series sharing one metric name.
type family struct {
	name, help, kind string
	series           []*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Create with NewRegistry; all methods are safe for
// concurrent use. Registering the same (name, labels) twice returns
// the existing instrument; registering one name under two kinds or
// help strings panics (a wiring bug, caught at startup like the wire
// codec's double registration).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// lookup finds or creates the family and the series for (name, labels),
// returning (series, true) when the series already existed.
func (r *Registry) lookup(name, help, kind string, labels []Label) (*series, bool) {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	for _, s := range f.series {
		if s.labels == rendered {
			return s, true
		}
	}
	s := &series{labels: rendered}
	f.series = append(f.series, s)
	return s, false
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s, existed := r.lookup(name, help, kindCounter, labels)
	if !existed {
		s.counter = new(Counter)
	}
	if s.counter == nil {
		panic(fmt.Sprintf("obs: metric %q%s is a counter func, not a counter", name, s.labels))
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read at scrape time
// (for cumulative state owned elsewhere, e.g. a simnet.Meter).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s, existed := r.lookup(name, help, kindCounter, labels)
	if existed {
		panic(fmt.Sprintf("obs: metric %q%s registered twice", name, s.labels))
	}
	s.fn = fn
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s, existed := r.lookup(name, help, kindGauge, labels)
	if !existed {
		s.gauge = new(Gauge)
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q%s is a gauge func, not a gauge", name, s.labels))
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s, existed := r.lookup(name, help, kindGauge, labels)
	if existed {
		panic(fmt.Sprintf("obs: metric %q%s registered twice", name, s.labels))
	}
	s.fn = fn
}

// Histogram registers (or returns the existing) histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s, existed := r.lookup(name, help, kindHistogram, labels)
	if !existed {
		s.hist = new(Histogram)
	}
	if s.hist == nil {
		panic(fmt.Sprintf("obs: metric %q%s is a histogram func, not a histogram", name, s.labels))
	}
	return s.hist
}

// HistogramFunc registers a histogram whose state is read at scrape
// time — the adapter for histograms owned elsewhere, such as a
// simnet.Meter's latency histogram (identical bucket scheme).
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot, labels ...Label) {
	s, existed := r.lookup(name, help, kindHistogram, labels)
	if existed {
		panic(fmt.Sprintf("obs: metric %q%s registered twice", name, s.labels))
	}
	s.histFn = fn
}

// renderLabels renders labels as {a="b",c="d"} with values escaped, or
// "" when empty. Labels are sorted by name so equal label sets always
// produce one series regardless of argument order.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Copy the structure so callback instruments run without the
	// registry lock (a HistogramFunc may itself take locks).
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		cp := &family{name: f.name, help: f.help, kind: f.kind,
			series: append([]*series(nil), f.series...)}
		fams = append(fams, cp)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
			case s.hist != nil:
				writeHist(&b, f.name, s.labels, s.hist.Snapshot())
			case s.histFn != nil:
				writeHist(&b, f.name, s.labels, s.histFn())
			}
		}
	}
	_, err := w.Write([]byte(b.String()))
	return err
}

// writeHist renders one histogram series: cumulative buckets at
// power-of-two `le` bounds (in seconds), skipping empty buckets, then
// the mandatory +Inf bucket, _sum and _count.
func writeHist(b *strings.Builder, name, labels string, s HistSnapshot) {
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		le := math.Ldexp(1, i) / 1e9 // bucket i upper bound: 2^i ns
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, fmt.Sprintf(`le="%s"`, formatFloat(le))), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), s.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(float64(s.SumNanos)/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, s.Count)
}

// mergeLabels splices an extra label pair into a rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders a float the exposition format accepts, with
// enough precision to round-trip.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// Handler returns an HTTP handler serving the registry in text
// exposition format — the daemon mounts it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
