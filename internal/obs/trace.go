package obs

import (
	"math/rand/v2"
	"sync"
)

// Hop-level lookup tracing. A Trace is armed on a transport
// (simnet.Direct, the virtual-clock transport in internal/sim, or the
// wire transport) for the duration of one lookup or sample; the
// transport records every RPC it carries while the trace is armed —
// hop index, endpoints, RPC payload type, virtual and wall latency,
// and the outcome in the simnet error taxonomy. With no trace armed
// the hook is a single atomic pointer load returning nil, so the
// sampling hot path stays allocation-free and the alloc-budget tests
// and benchdiff gate are unaffected.
//
// Traces are strictly per-lookup: arm one, run one sequential
// operation, disarm. Arming a trace while concurrent callers share the
// transport interleaves their hops into one record — supported (Record
// is locked) but rarely what an experiment wants.

// Hop is one recorded RPC within a traced lookup.
type Hop struct {
	// Index is the hop's position in the trace, assigned by Record.
	Index int `json:"index"`
	// From and To are the transport node ids of the RPC endpoints.
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
	// RPC names the payload type (e.g. "chord.nextHopReq").
	RPC string `json:"rpc"`
	// VirtualNanos is the simulated round-trip latency (virtual-clock
	// transports only; zero elsewhere).
	VirtualNanos int64 `json:"virtual_ns,omitempty"`
	// WallNanos is the measured wall-clock round trip.
	WallNanos int64 `json:"wall_ns"`
	// Outcome classifies the result in the simnet error taxonomy:
	// "ok", "unknown", "dead", "dropped", "closed" or "app".
	Outcome string `json:"outcome"`
	// Remote marks hops that crossed a process boundary (wire
	// transport only).
	Remote bool `json:"remote,omitempty"`
	// Attempts is the number of network attempts the hop consumed
	// (wire transport only; >1 means retries fired).
	Attempts int `json:"attempts,omitempty"`
}

// Trace collects the hops of one traced lookup. Create with NewTrace.
// All methods are nil-safe: calling Record on a nil *Trace is a no-op,
// which lets transports pass their (possibly nil) armed trace down
// helper paths without re-checking.
type Trace struct {
	id   uint64
	mu   sync.Mutex
	hops []Hop
}

// NewTrace returns an empty trace with a random nonzero id. The id
// travels in wire RPC envelopes so serving processes can correlate the
// hops they observe with the client's trace.
func NewTrace() *Trace {
	id := rand.Uint64()
	if id == 0 {
		id = 1
	}
	return &Trace{id: id}
}

// ID returns the trace id (zero only on a nil trace).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Record appends one hop, assigning its index. No-op on a nil trace.
func (t *Trace) Record(h Hop) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h.Index = len(t.hops)
	t.hops = append(t.hops, h)
	t.mu.Unlock()
}

// Hops returns a copy of the recorded hops in order.
func (t *Trace) Hops() []Hop {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Hop(nil), t.hops...)
}

// Len returns the number of recorded hops.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.hops)
}

// OKHops returns the number of hops that completed successfully — the
// count that reconciles with the meter's charged calls for the same
// operation (failed hops are charged as meter failures instead).
func (t *Trace) OKHops() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, h := range t.hops {
		if h.Outcome == "ok" {
			n++
		}
	}
	return n
}

// Traceable is implemented by transports that support hop tracing.
// SetTrace(nil) disarms.
type Traceable interface {
	SetTrace(t *Trace)
}

// Span is one hop observed by a process other than the trace's owner:
// a serving-side record correlated by the trace id carried in the wire
// envelope.
type Span struct {
	TraceID uint64 `json:"trace_id"`
	Hop
}

// TraceLog is a bounded ring of serving-side spans. The wire transport
// records every inbound RPC that carries a trace id; /v1/trace?id=N
// queries the log so a cluster's hop records can be assembled from all
// processes. The zero value is unusable; create with NewTraceLog.
type TraceLog struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

// NewTraceLog returns a log keeping the most recent capacity spans
// (capacity < 1 is clamped to 1).
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{buf: make([]Span, capacity)}
}

// Record appends one span, evicting the oldest when full.
func (l *TraceLog) Record(traceID uint64, h Hop) {
	l.mu.Lock()
	l.buf[l.next] = Span{TraceID: traceID, Hop: h}
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// ByID returns the retained spans for one trace id, oldest first.
func (l *TraceLog) ByID(id uint64) []Hop {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Hop
	scan := func(s Span) {
		if s.TraceID == id {
			out = append(out, s.Hop)
		}
	}
	if l.full {
		for _, s := range l.buf[l.next:] {
			scan(s)
		}
	}
	for _, s := range l.buf[:l.next] {
		scan(s)
	}
	return out
}
