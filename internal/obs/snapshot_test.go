package obs_test

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
)

func TestRegistrySnapshotDelta(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("snap_requests_total", "requests")
	g := r.Gauge("snap_inflight", "in flight")
	h := r.Histogram("snap_latency_nanoseconds", "latency")

	c.Add(10)
	g.Set(3)
	h.Observe(100 * time.Nanosecond)
	h.Observe(200 * time.Nanosecond)
	prev := r.Snapshot()

	c.Add(5)
	g.Set(7)
	h.Observe(400 * time.Nanosecond)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if v, ok := d.Value("snap_requests_total"); !ok || v != 5 {
		t.Fatalf("counter delta = %v, %v; want 5", v, ok)
	}
	if v, ok := d.Value("snap_inflight"); !ok || v != 7 {
		t.Fatalf("gauge in delta = %v, %v; want instantaneous 7", v, ok)
	}
	hd, ok := d.Hist("snap_latency_nanoseconds")
	if !ok {
		t.Fatal("histogram series missing from delta")
	}
	if hd.Count != 1 || hd.SumNanos != 400 {
		t.Fatalf("histogram delta count=%d sum=%d; want 1 observation of 400ns", hd.Count, hd.SumNanos)
	}
}

// A counter that goes backwards between snapshots (daemon restart,
// meter reset) must clamp to zero progress, not negative.
func TestRegistrySnapshotDeltaClampsResets(t *testing.T) {
	r := obs.NewRegistry()
	reading := 100.0
	r.CounterFunc("snap_served_total", "served", func() float64 { return reading })
	hist := obs.HistSnapshot{}
	hist.Buckets[5] = 50
	hist.Count = 50
	hist.SumNanos = 50 * 24
	r.HistogramFunc("snap_hist_nanoseconds", "hist", func() obs.HistSnapshot { return hist })

	prev := r.Snapshot()
	reading = 12 // restarted process: counter starts over
	fresh := obs.HistSnapshot{}
	fresh.Buckets[3] = 4
	fresh.Count = 4
	fresh.SumNanos = 4 * 6
	hist = fresh
	d := r.Snapshot().Delta(prev)

	if v, _ := d.Value("snap_served_total"); v != 0 {
		t.Fatalf("reset counter delta = %v; want clamp to 0", v)
	}
	hd, _ := d.Hist("snap_hist_nanoseconds")
	if hd.Count != 4 || hd.SumNanos != fresh.SumNanos {
		t.Fatalf("reset histogram delta = count %d sum %d; want the fresh reading (4, %d)", hd.Count, hd.SumNanos, fresh.SumNanos)
	}
	for i, c := range hd.Buckets {
		if c < 0 {
			t.Fatalf("bucket %d went negative: %d", i, c)
		}
	}
}

func TestRegistrySnapshotDeterministicKeyOrder(t *testing.T) {
	build := func() obs.RegistrySnapshot {
		r := obs.NewRegistry()
		r.Counter("snap_b_total", "b")
		r.Counter("snap_a_total", "a", obs.Label{Name: "op", Value: "x"})
		r.Counter("snap_a_total", "a", obs.Label{Name: "op", Value: "y"})
		r.Histogram("snap_h_nanoseconds", "h")
		return r.Snapshot()
	}
	a, b := build(), build()
	if len(a.Keys) != len(b.Keys) || len(a.Keys) != 4 {
		t.Fatalf("key counts differ: %d vs %d", len(a.Keys), len(b.Keys))
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatalf("key order differs at %d: %q vs %q", i, a.Keys[i], b.Keys[i])
		}
	}
	if a.Keys[0] != "snap_b_total" {
		t.Fatalf("keys not in registration order: %v", a.Keys)
	}
}

// observeAll fills a histogram with the given durations and returns the
// exact q-quantile alongside for comparison.
func exactQuantile(sorted []float64, q float64) float64 {
	return sorted[int(q*float64(len(sorted)-1))]
}

// TestHistQuantileAccuracy bounds the error the SLO engine inherits
// from the log-bucket histogram: on known distributions the
// interpolated estimate must stay within the bucket's factor-of-two
// width of the exact sample quantile, and must beat the bucket-upper-
// bound estimate that preceded it.
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	distributions := map[string]func() float64{
		// Uniform over [1ms, 5ms).
		"uniform": func() float64 { return 1e6 + rng.Float64()*4e6 },
		// Lognormal, median 2ms, sigma 0.7 — the heavy-tailed shape the
		// load driver's latency windows actually contain.
		"lognormal": func() float64 { return 2e6 * math.Exp(0.7*rng.NormFloat64()) },
		// Exponential with mean 3ms.
		"exponential": func() float64 { return 3e6 * rng.ExpFloat64() },
	}
	const n = 20000
	for name, draw := range distributions {
		var h obs.Histogram
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = draw()
			h.Observe(time.Duration(samples[i]))
		}
		sort.Float64s(samples)
		snap := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			exact := exactQuantile(samples, q)
			est := float64(snap.Quantile(q))
			// Exact and estimate must agree within one power-of-two
			// bucket: est in [exact/2, exact*2).
			if est < exact/2 || est > exact*2 {
				t.Errorf("%s p%.0f: estimate %.0fns outside factor-2 of exact %.0fns", name, q*100, est, exact)
			}
			// The upper-bound estimate is the bucket's top edge; the
			// interpolated estimate must not exceed it, and across the
			// quantile sweep it must be strictly better at least once
			// (i.e. interpolation is actually engaged).
			upper := math.Ldexp(1, 64-countLeadingZeros(uint64(exact)))
			if est > upper {
				t.Errorf("%s p%.0f: estimate %.0fns above bucket upper bound %.0f", name, q*100, est, upper)
			}
		}
		// Interpolation sanity: the median estimate of the uniform
		// distribution must land strictly inside its bucket, not at the
		// top edge.
		med := snap.Quantile(0.5)
		bucketTop := time.Duration(1) << uint(bitsLen(uint64(med)))
		if med == bucketTop {
			t.Errorf("%s: median %v sits exactly at a bucket boundary — interpolation not applied", name, med)
		}
	}
}

func countLeadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			break
		}
		n++
	}
	return n
}

func bitsLen(v uint64) int { return 64 - countLeadingZeros(v) }

func TestHistCountAbove(t *testing.T) {
	var h obs.Histogram
	// 100 observations at ~1.5ms (bucket [1ms-ish boundaries]) plus 10 at 10ms.
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.CountAbove(100 * time.Millisecond); got != 0 {
		t.Fatalf("CountAbove(100ms) = %d; want 0", got)
	}
	if got := s.CountAbove(5 * time.Millisecond); got < 10 || got > 20 {
		t.Fatalf("CountAbove(5ms) = %d; want ~10 (the 10ms tail)", got)
	}
	all := s.CountAbove(0)
	if all != s.Count {
		t.Fatalf("CountAbove(0) = %d; want every observation (%d)", all, s.Count)
	}
}

func TestHistSubExact(t *testing.T) {
	var h obs.Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	prev := h.Snapshot()
	h.Observe(4 * time.Millisecond)
	d := h.Snapshot().Sub(prev)
	if d.Count != 1 || d.SumNanos != int64(4*time.Millisecond) {
		t.Fatalf("Sub: count %d sum %d; want exactly the one new observation", d.Count, d.SumNanos)
	}
	if d.Mean() != 4*time.Millisecond {
		t.Fatalf("Mean of delta = %v; want 4ms", d.Mean())
	}
}
