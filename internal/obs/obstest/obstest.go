// Package obstest validates and parses Prometheus text exposition
// format (version 0.0.4) — the checker the cluster smoke suite runs
// over every daemon's /metrics output, and the parser behind the
// cluster scrape-and-aggregate helpers.
//
// Validation is deliberately strict about the invariants a real
// Prometheus scraper relies on: metric and label names match the
// exposition grammar, TYPE lines precede their samples and appear at
// most once per family, no series is emitted twice, histogram bucket
// counts are cumulative and non-decreasing with a mandatory +Inf
// bucket that equals _count.
package obstest

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/dht-sampling/randompeer/internal/obs"
)

// Sample is one parsed exposition line: a metric name, its label set
// and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed and validated metrics payload.
type Exposition struct {
	// Types maps family name to its declared TYPE.
	Types map[string]string
	// Samples holds every value line in input order.
	Samples []Sample

	byKey map[string]float64
}

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Parse parses data as Prometheus text exposition format, validating
// it along the way. It returns the parsed exposition or the first
// format violation found.
func Parse(data []byte) (*Exposition, error) {
	e := &Exposition{
		Types: make(map[string]string),
		byKey: make(map[string]float64),
	}
	seenSamples := make(map[string]bool)
	for i, line := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := e.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if typ, ok := e.Types[familyOf(s.Name, e.Types)]; !ok {
			return nil, fmt.Errorf("line %d: sample %q precedes its # TYPE line", lineNo, s.Name)
		} else if typ == "histogram" {
			// bucket/sum/count suffixes are checked family-wide below.
			_ = typ
		}
		key := sampleKey(s)
		if seenSamples[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seenSamples[key] = true
		e.Samples = append(e.Samples, s)
		e.byKey[key] = s.Value
	}
	if err := e.checkHistograms(); err != nil {
		return nil, err
	}
	return e, nil
}

// parseComment validates a # HELP or # TYPE line (other comments pass).
func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !nameRE.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %q", typ, name)
		}
		if _, dup := e.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE line for %q", name)
		}
		e.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !nameRE.MatchString(fields[2]) {
			return fmt.Errorf("invalid metric name %q in HELP line", fields[2])
		}
	}
	return nil
}

// parseSample parses one value line: name[{labels}] value.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample line %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `a="b",c="d"` into dst, handling escaped quotes.
func parseLabels(in string, dst map[string]string) error {
	for len(in) > 0 {
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", in)
		}
		name := strings.TrimSpace(in[:eq])
		if !labelRE.MatchString(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		rest := in[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %s: value not quoted", name)
		}
		rest = rest[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		dst[name] = b.String()
		in = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		in = strings.TrimSpace(in)
	}
	return nil
}

// parseValue parses an exposition float (accepting +Inf/-Inf/NaN).
func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", v)
	}
	return f, nil
}

// familyOf maps a sample name to its family: histogram samples use the
// _bucket/_sum/_count suffixes of a declared histogram family.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// checkHistograms validates every histogram family: per-series buckets
// are cumulative, non-decreasing in le, carry +Inf, and +Inf == _count.
func (e *Exposition) checkHistograms() error {
	type bkt struct {
		le  float64
		cum float64
	}
	buckets := make(map[string][]bkt) // series key without le -> buckets
	counts := make(map[string]float64)
	sums := make(map[string]bool)
	for _, s := range e.Samples {
		base := familyOf(s.Name, e.Types)
		if e.Types[base] != "histogram" || base == s.Name {
			continue
		}
		key := base + renderSorted(s.Labels, "le")
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", base)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", base, leStr)
			}
			buckets[key] = append(buckets[key], bkt{le: le, cum: s.Value})
		case strings.HasSuffix(s.Name, "_count"):
			counts[key] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sums[key] = true
		}
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := math.Inf(-1)
		prev := -1.0
		for _, b := range bs {
			if b.le <= last {
				return fmt.Errorf("histogram series %s: duplicate le %g", key, b.le)
			}
			last = b.le
			if b.cum < prev {
				return fmt.Errorf("histogram series %s: bucket counts not cumulative at le=%g (%g < %g)", key, b.le, b.cum, prev)
			}
			prev = b.cum
		}
		inf := bs[len(bs)-1]
		if !math.IsInf(inf.le, 1) {
			return fmt.Errorf("histogram series %s: missing +Inf bucket", key)
		}
		count, ok := counts[key]
		if !ok {
			return fmt.Errorf("histogram series %s: missing _count", key)
		}
		if count != inf.cum {
			return fmt.Errorf("histogram series %s: _count %g != +Inf bucket %g", key, count, inf.cum)
		}
		if !sums[key] {
			return fmt.Errorf("histogram series %s: missing _sum", key)
		}
	}
	return nil
}

// renderSorted renders labels (minus the skipped names) sorted by
// name, for use as a stable series key.
func renderSorted(labels map[string]string, skip ...string) string {
	skipSet := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		if !skipSet[n] {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, n, labels[n])
	}
	b.WriteByte('}')
	return b.String()
}

// sampleKey renders a sample's identity (name plus sorted labels).
func sampleKey(s Sample) string {
	return s.Name + renderSorted(s.Labels)
}

// Key renders the sample's identity — its name plus sorted labels,
// e.g. `wire_rpc_calls_total{dest="remote"}` — the series key the
// cluster scrape-delta helpers aggregate by.
func (s Sample) Key() string { return sampleKey(s) }

// SeriesKey renders a series identity from a name and label set using
// the same form Key does.
func SeriesKey(name string, labels map[string]string) string {
	return name + renderSorted(labels)
}

// Family resolves a sample name to its declared family and TYPE:
// histogram child samples (_bucket/_sum/_count) resolve to their
// histogram family; everything else is its own family. The type is ""
// when the exposition never declared one.
func (e *Exposition) Family(name string) (family, typ string) {
	family = familyOf(name, e.Types)
	return family, e.Types[family]
}

// HistSnapshot reconstructs an obs histogram reading from a scraped
// histogram family: the exposition's cumulative power-of-two `le`
// bounds (2^i nanoseconds, rendered in seconds) invert exactly onto
// obs bucket indices, so a scrape-side delta can reuse the same
// Sub/Quantile/CountAbove arithmetic the in-process recorder uses.
// labels selects one series of the family (exact match, minus le); ok
// is false when the family or series is absent.
func (e *Exposition) HistSnapshot(name string, labels map[string]string) (obs.HistSnapshot, bool) {
	if e.Types[name] != "histogram" {
		return obs.HistSnapshot{}, false
	}
	want := renderSorted(labels)
	var h obs.HistSnapshot
	type bkt struct {
		idx int
		cum int64
	}
	var bs []bkt
	found := false
	for _, s := range e.Samples {
		if renderSorted(s.Labels, "le") != want {
			continue
		}
		switch s.Name {
		case name + "_count":
			h.Count = int64(s.Value)
			found = true
		case name + "_sum":
			h.SumNanos = int64(math.Round(s.Value * 1e9))
		case name + "_bucket":
			le, err := parseValue(s.Labels["le"])
			if err != nil || math.IsInf(le, 1) {
				continue
			}
			idx := int(math.Round(math.Log2(le * 1e9)))
			if idx < 0 || idx >= len(h.Buckets) {
				continue
			}
			bs = append(bs, bkt{idx: idx, cum: int64(s.Value)})
		}
	}
	if !found {
		return obs.HistSnapshot{}, false
	}
	// Cumulative counts at ascending bounds back to per-bucket counts;
	// bounds the writer skipped held no observations.
	sort.Slice(bs, func(i, j int) bool { return bs[i].idx < bs[j].idx })
	var prev int64
	for _, b := range bs {
		h.Buckets[b.idx] = b.cum - prev
		prev = b.cum
	}
	return h, true
}

// Value returns the value of the series with the given name and exact
// label set, and whether it exists.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	v, ok := e.byKey[name+renderSorted(labels)]
	return v, ok
}

// Sum adds up every series of the family whose labels are a superset
// of want (nil want matches all series of the name).
func (e *Exposition) Sum(name string, want map[string]string) float64 {
	var total float64
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			total += s.Value
		}
	}
	return total
}
