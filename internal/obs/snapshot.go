package obs

import (
	"math"
	"math/bits"
	"time"
)

// Registry snapshot/delta API. The windowed recorder (internal/load)
// snapshots a registry every Δt of virtual time and subtracts
// consecutive snapshots: counter deltas become per-window rates,
// histogram deltas become per-window quantiles, and gauges carry their
// instantaneous reading. The SLO engine (internal/slo) consumes those
// per-window deltas, so everything it reports inherits the registry's
// determinism: families iterate in registration order and series in
// creation order, making a snapshot a pure function of the instrument
// state it reads.

// SeriesKind tags one snapshot entry with its family's metric kind.
type SeriesKind uint8

// Snapshot series kinds.
const (
	KindCounter SeriesKind = iota
	KindGauge
	KindHistogram
)

// SeriesValue is one snapshot entry: a scalar for counters and gauges,
// a histogram reading for histograms.
type SeriesValue struct {
	Kind  SeriesKind
	Value float64
	Hist  HistSnapshot
}

// RegistrySnapshot is a point-in-time reading of every series in a
// registry. Keys preserves registration order so iteration (and
// therefore everything derived from a snapshot) is deterministic.
type RegistrySnapshot struct {
	// Keys lists every series as name{labels}, in registration order.
	Keys []string
	// Series maps each key to its reading.
	Series map[string]SeriesValue
}

// Snapshot reads every registered series. Callback instruments
// (CounterFunc, GaugeFunc, HistogramFunc) run outside the registry
// lock, exactly as they do during exposition.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	type entry struct {
		key  string
		kind string
		s    *series
	}
	entries := make([]entry, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		for _, s := range f.series {
			entries = append(entries, entry{key: name + s.labels, kind: f.kind, s: s})
		}
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Keys:   make([]string, 0, len(entries)),
		Series: make(map[string]SeriesValue, len(entries)),
	}
	for _, e := range entries {
		var v SeriesValue
		switch e.kind {
		case kindCounter:
			v.Kind = KindCounter
		case kindGauge:
			v.Kind = KindGauge
		case kindHistogram:
			v.Kind = KindHistogram
		}
		switch {
		case e.s.counter != nil:
			v.Value = float64(e.s.counter.Value())
		case e.s.gauge != nil:
			v.Value = float64(e.s.gauge.Value())
		case e.s.fn != nil:
			v.Value = e.s.fn()
		case e.s.hist != nil:
			v.Hist = e.s.hist.Snapshot()
		case e.s.histFn != nil:
			v.Hist = e.s.histFn()
		}
		snap.Keys = append(snap.Keys, e.key)
		snap.Series[e.key] = v
	}
	return snap
}

// Delta returns the per-series change from prev to s: counters and
// histogram buckets subtract (clamped at zero, so a counter reset — a
// daemon restart, a meter Reset — reads as no progress rather than
// negative progress), gauges keep their current reading. Series absent
// from prev (registered mid-window) count from zero.
func (s RegistrySnapshot) Delta(prev RegistrySnapshot) RegistrySnapshot {
	out := RegistrySnapshot{
		Keys:   append([]string(nil), s.Keys...),
		Series: make(map[string]SeriesValue, len(s.Series)),
	}
	for _, key := range s.Keys {
		cur := s.Series[key]
		old, ok := prev.Series[key]
		if !ok || cur.Kind == KindGauge {
			out.Series[key] = cur
			continue
		}
		switch cur.Kind {
		case KindCounter:
			d := cur.Value - old.Value
			if d < 0 {
				d = 0
			}
			out.Series[key] = SeriesValue{Kind: KindCounter, Value: d}
		case KindHistogram:
			out.Series[key] = SeriesValue{Kind: KindHistogram, Hist: cur.Hist.Sub(old.Hist)}
		}
	}
	return out
}

// Value returns the scalar reading of the series with the given key
// (name{labels}), and whether it exists.
func (s RegistrySnapshot) Value(key string) (float64, bool) {
	v, ok := s.Series[key]
	if !ok || v.Kind == KindHistogram {
		return 0, false
	}
	return v.Value, ok
}

// Hist returns the histogram reading of the series with the given key,
// and whether it exists as a histogram.
func (s RegistrySnapshot) Hist(key string) (HistSnapshot, bool) {
	v, ok := s.Series[key]
	if !ok || v.Kind != KindHistogram {
		return HistSnapshot{}, false
	}
	return v.Hist, true
}

// Sub returns the bucket-wise difference h - prev, clamped at zero per
// bucket so a reset histogram reads as empty rather than negative. Sum
// and count are re-derived from the clamped buckets' side: when no
// bucket clamped, SumNanos subtracts exactly; after a reset it clamps
// to the current reading's sum.
func (h HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	var out HistSnapshot
	clamped := false
	for i := range h.Buckets {
		d := h.Buckets[i] - prev.Buckets[i]
		if d < 0 {
			d = 0
			clamped = true
		}
		out.Buckets[i] = d
		out.Count += d
	}
	out.SumNanos = h.SumNanos - prev.SumNanos
	if clamped || out.SumNanos < 0 {
		out.SumNanos = h.SumNanos
	}
	return out
}

// Mean returns the mean recorded duration (zero when empty).
func (h HistSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNanos / h.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) of the recorded
// durations by locating the bucket holding the rank and interpolating
// linearly inside it. The power-of-two bucket scheme bounds the
// estimate's relative error by the bucket width (a factor of two); the
// interpolation removes the systematic upward bias a bucket-upper-bound
// estimate would carry, which matters because the SLO engine compares
// these estimates against latency objectives. TestHistQuantileAccuracy
// measures the realized error against exact quantiles.
func (h HistSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count-1))
	var seen int64
	for b, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if rank < seen+c {
			if b == 0 {
				return 0
			}
			lo := int64(1) << (b - 1)
			hi := lo << 1
			frac := float64(rank-seen) / float64(c)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		seen += c
	}
	return time.Duration(h.SumNanos / h.Count) // unreachable when counts are consistent
}

// CountAbove estimates how many recorded durations exceeded d: every
// observation in buckets strictly above d's bucket, plus a linear
// share of d's own bucket. The SLO engine uses it to count latency-
// objective breaches from a histogram delta.
func (h HistSnapshot) CountAbove(d time.Duration) int64 {
	if d < 0 {
		d = 0
	}
	target := histBucketOf(int64(d))
	var above int64
	for b := target + 1; b < histBuckets; b++ {
		above += h.Buckets[b]
	}
	if c := h.Buckets[target]; c > 0 && target > 0 {
		lo := int64(1) << (target - 1)
		hi := lo << 1
		frac := float64(hi-int64(d)) / float64(hi-lo) // share of the bucket above d
		above += int64(math.Round(frac * float64(c)))
	}
	return above
}

// histBucketOf maps nanoseconds to the histogram bucket index (the
// same mapping Observe uses).
func histBucketOf(nanos int64) int {
	return bits.Len64(uint64(nanos)) % histBuckets
}
