package obs_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/obs/obstest"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("test_ops_total", "ops", obs.Label{Name: "kind", Value: "read"})
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_depth", "depth")
	g.Set(10)
	g.Add(-3)
	r.CounterFunc("test_fn_total", "fn", func() float64 { return 7 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := obstest.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	if v, ok := e.Value("test_ops_total", map[string]string{"kind": "read"}); !ok || v != 42 {
		t.Fatalf("test_ops_total = %v, %v; want 42", v, ok)
	}
	if v, ok := e.Value("test_depth", nil); !ok || v != 7 {
		t.Fatalf("test_depth = %v, %v; want 7", v, ok)
	}
	if v, ok := e.Value("test_fn_total", nil); !ok || v != 7 {
		t.Fatalf("test_fn_total = %v, %v; want 7", v, ok)
	}
	if e.Types["test_ops_total"] != "counter" || e.Types["test_depth"] != "gauge" {
		t.Fatalf("wrong types: %v", e.Types)
	}
}

func TestRegistryIdempotentAndPanics(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	l1 := r.Gauge("y", "y", obs.Label{Name: "a", Value: "1"}, obs.Label{Name: "b", Value: "2"})
	l2 := r.Gauge("y", "y", obs.Label{Name: "b", Value: "2"}, obs.Label{Name: "a", Value: "1"})
	if l1 != l2 {
		t.Fatal("label order created distinct series")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("kind mismatch", func() { r.Gauge("x_total", "x") })
	mustPanic("invalid name", func() { r.Counter("bad name", "x") })
	mustPanic("negative counter add", func() { a.Add(-1) })
	r.CounterFunc("fn_total", "f", func() float64 { return 0 })
	mustPanic("double func registration", func() {
		r.CounterFunc("fn_total", "f", func() float64 { return 0 })
	})
}

func TestHistogramBuckets(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("test_latency_seconds", "lat")
	h.Observe(0)                      // bucket 0
	h.Observe(1)                      // [1,2) -> bucket 1
	h.Observe(1500 * time.Nanosecond) // [1024,2048) -> bucket 11
	h.Observe(-5 * time.Second)       // clamps to zero -> bucket 0

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.SumNanos != 1501 {
		t.Fatalf("SumNanos = %d, want 1501", s.SumNanos)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[11] != 1 {
		t.Fatalf("bucket placement wrong: %v", s.Buckets[:12])
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := obstest.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("histogram exposition does not parse: %v\n%s", err, buf.String())
	}
	if v, ok := e.Value("test_latency_seconds_count", nil); !ok || v != 4 {
		t.Fatalf("_count = %v, %v; want 4", v, ok)
	}
	// Cumulative bucket at le=2.048e-06 (2^11 ns) covers everything.
	if v, ok := e.Value("test_latency_seconds_bucket", map[string]string{"le": "2.048e-06"}); !ok || v != 4 {
		t.Fatalf("le=2.048e-06 bucket = %v, %v; want 4", v, ok)
	}
}

func TestHistogramFuncAdapter(t *testing.T) {
	r := obs.NewRegistry()
	var snap obs.HistSnapshot
	snap.Count = 3
	snap.SumNanos = 3000
	snap.Buckets[10] = 3
	r.HistogramFunc("test_adapted_seconds", "adapted", func() obs.HistSnapshot { return snap })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := obstest.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if v, ok := e.Value("test_adapted_seconds_count", nil); !ok || v != 3 {
		t.Fatalf("_count = %v, %v; want 3", v, ok)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("h_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want exposition v0.0.4", ct)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("esc_total", "esc", obs.Label{Name: "v", Value: "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := obstest.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("escaped labels do not parse: %v\n%s", err, buf.String())
	}
	if v, ok := e.Value("esc_total", map[string]string{"v": "a\"b\\c\nd"}); !ok || v != 1 {
		t.Fatalf("escaped label round-trip failed: %v, %v", v, ok)
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("conc_total", "c")
	h := r.Histogram("conc_seconds", "h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j))
			}
		}()
	}
	// Scrape concurrently with updates.
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := obstest.Parse(buf.Bytes()); err != nil {
			t.Fatalf("mid-update exposition invalid: %v", err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Count)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *obs.Trace
	tr.Record(obs.Hop{}) // must not panic
	if tr.ID() != 0 || tr.Len() != 0 || tr.OKHops() != 0 || tr.Hops() != nil {
		t.Fatal("nil trace accessors not zero")
	}
}

func TestTraceRecordAndOKHops(t *testing.T) {
	tr := obs.NewTrace()
	if tr.ID() == 0 {
		t.Fatal("trace id must be nonzero")
	}
	tr.Record(obs.Hop{From: 1, To: 2, RPC: "a", Outcome: "ok"})
	tr.Record(obs.Hop{From: 2, To: 3, RPC: "b", Outcome: "dropped"})
	tr.Record(obs.Hop{From: 2, To: 4, RPC: "c", Outcome: "ok"})
	hops := tr.Hops()
	if len(hops) != 3 || tr.Len() != 3 {
		t.Fatalf("len = %d/%d, want 3", len(hops), tr.Len())
	}
	for i, h := range hops {
		if h.Index != i {
			t.Fatalf("hop %d has index %d", i, h.Index)
		}
	}
	if tr.OKHops() != 2 {
		t.Fatalf("OKHops = %d, want 2", tr.OKHops())
	}
}

func TestTraceLogRingEviction(t *testing.T) {
	l := obs.NewTraceLog(4)
	for i := 0; i < 10; i++ {
		l.Record(uint64(1+i%2), obs.Hop{Index: i})
	}
	// Spans 6..9 retained; ids alternate 1,2 -> trace 1 holds 6, 8.
	got := l.ByID(1)
	if len(got) != 2 || got[0].Index != 6 || got[1].Index != 8 {
		t.Fatalf("ByID(1) = %+v, want indices [6 8]", got)
	}
	if spans := l.ByID(99); spans != nil {
		t.Fatalf("ByID(99) = %+v, want nil", spans)
	}
}

func TestObstestRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"sample before TYPE", "a_total 1\n"},
		{"bad type", "# TYPE a_total widget\n"},
		{"duplicate series", "# TYPE a_total counter\na_total 1\na_total 2\n"},
		{"bad value", "# TYPE a_total counter\na_total x\n"},
		{"non-cumulative histogram", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n"},
		{"missing +Inf", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\nh_sum 1\nh_count 5\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 4\n"},
	}
	for _, c := range cases {
		if _, err := obstest.Parse([]byte(c.in)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestObstestSum(t *testing.T) {
	in := "# TYPE a_total counter\n" +
		`a_total{node="1"} 3` + "\n" +
		`a_total{node="2"} 4` + "\n"
	e, err := obstest.Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Sum("a_total", nil); got != 7 {
		t.Fatalf("Sum = %g, want 7", got)
	}
	if got := e.Sum("a_total", map[string]string{"node": "2"}); got != 4 {
		t.Fatalf("Sum{node=2} = %g, want 4", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	_ = fmt.Sprint(c.Value())
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := obs.NewRegistry()
	h := r.Histogram("bench_seconds", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
