// Package randgraph implements the paper's third motivating application:
// creating and maintaining random links. Every node draws k links to
// peers chosen through a sampler; with uniform sampling the resulting
// graph is an Erdos–Renyi-like random graph that stays well connected
// under massive adversarial deletion (the paper cites Motwani & Raghavan
// ch. 5.3), while biased sampling concentrates in-links on long-arc
// peers, handing an adversary cheap cut vertices.
package randgraph

import (
	"fmt"
	"sort"

	"github.com/dht-sampling/randompeer/internal/dht"
)

// Graph is an undirected overlay built from sampled links.
type Graph struct {
	n     int
	adj   [][]int
	alive []bool
}

// Build constructs a graph on n nodes where each node draws k links via
// the sampler (self-loops and duplicate edges are kept out of the
// adjacency lists; the sampler's Owner index identifies targets).
func Build(s dht.Sampler, n, k int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("randgraph: need >= 2 nodes, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("randgraph: need >= 1 link per node, got %d", k)
	}
	g := &Graph{
		n:     n,
		adj:   make([][]int, n),
		alive: make([]bool, n),
	}
	for i := range g.alive {
		g.alive[i] = true
	}
	edges := make(map[[2]int]struct{}, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			peer, err := s.Sample()
			if err != nil {
				return nil, fmt.Errorf("randgraph: sampling link %d of node %d: %w", j, i, err)
			}
			target := peer.Owner
			if target < 0 || target >= n {
				return nil, fmt.Errorf("randgraph: sampled owner %d outside [0, %d)", target, n)
			}
			if target == i {
				continue
			}
			key := [2]int{i, target}
			if target < i {
				key = [2]int{target, i}
			}
			if _, dup := edges[key]; dup {
				continue
			}
			edges[key] = struct{}{}
			g.adj[i] = append(g.adj[i], target)
			g.adj[target] = append(g.adj[target], i)
		}
	}
	return g, nil
}

// N returns the number of nodes (alive or deleted).
func (g *Graph) N() int { return g.n }

// NumAlive returns the number of surviving nodes.
func (g *Graph) NumAlive() int {
	count := 0
	for _, a := range g.alive {
		if a {
			count++
		}
	}
	return count
}

// Degree returns the degree of node i counting only alive neighbors.
func (g *Graph) Degree(i int) (int, error) {
	if i < 0 || i >= g.n {
		return 0, fmt.Errorf("randgraph: node %d outside [0, %d)", i, g.n)
	}
	d := 0
	for _, j := range g.adj[i] {
		if g.alive[j] {
			d++
		}
	}
	return d, nil
}

// Delete removes a node.
func (g *Graph) Delete(i int) error {
	if i < 0 || i >= g.n {
		return fmt.Errorf("randgraph: node %d outside [0, %d)", i, g.n)
	}
	g.alive[i] = false
	return nil
}

// DeleteAdversarial deletes the ceil(frac*n) highest-degree surviving
// nodes (degree measured in the original graph — the adversary targets
// hubs), returning the deleted ids. This is the attack model under which
// uniform random links retain a giant component while biased links
// fragment.
func (g *Graph) DeleteAdversarial(frac float64) ([]int, error) {
	if frac < 0 || frac >= 1 {
		return nil, fmt.Errorf("randgraph: deletion fraction %v outside [0, 1)", frac)
	}
	type nodeDeg struct{ id, deg int }
	nodes := make([]nodeDeg, 0, g.n)
	for i := 0; i < g.n; i++ {
		if g.alive[i] {
			nodes = append(nodes, nodeDeg{id: i, deg: len(g.adj[i])})
		}
	}
	sort.Slice(nodes, func(a, b int) bool {
		if nodes[a].deg != nodes[b].deg {
			return nodes[a].deg > nodes[b].deg
		}
		return nodes[a].id < nodes[b].id
	})
	toDelete := int(frac * float64(len(nodes)))
	deleted := make([]int, 0, toDelete)
	for i := 0; i < toDelete; i++ {
		g.alive[nodes[i].id] = false
		deleted = append(deleted, nodes[i].id)
	}
	return deleted, nil
}

// LargestComponentFraction returns the size of the largest connected
// component among surviving nodes divided by the number of survivors.
func (g *Graph) LargestComponentFraction() float64 {
	aliveCount := g.NumAlive()
	if aliveCount == 0 {
		return 0
	}
	visited := make([]bool, g.n)
	best := 0
	queue := make([]int, 0, aliveCount)
	for start := 0; start < g.n; start++ {
		if !g.alive[start] || visited[start] {
			continue
		}
		size := 0
		queue = append(queue[:0], start)
		visited[start] = true
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, w := range g.adj[v] {
				if g.alive[w] && !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return float64(best) / float64(aliveCount)
}

// MaxDegree returns the maximum original degree, the hub statistic that
// distinguishes biased from uniform link construction.
func (g *Graph) MaxDegree() int {
	best := 0
	for i := 0; i < g.n; i++ {
		if d := len(g.adj[i]); d > best {
			best = d
		}
	}
	return best
}
