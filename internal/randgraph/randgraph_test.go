package randgraph

import (
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/baseline"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/dht"
)

func oracleAt(t *testing.T, seed uint64, n int) *dht.Oracle {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x5a5a))
	o, err := dht.GenerateOracle(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestBuildValidation(t *testing.T) {
	t.Parallel()
	o := oracleAt(t, 1, 16)
	s := baseline.NewNaive(o, rand.New(rand.NewPCG(1, 1)))
	if _, err := Build(s, 1, 3); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Build(s, 16, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestBuildBasicStructure(t *testing.T) {
	t.Parallel()
	const n, k = 200, 5
	o := oracleAt(t, 3, n)
	s, err := core.New(o, o.PeerByIndex(0), rand.New(rand.NewPCG(2, 2)), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(s, n, k)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n || g.NumAlive() != n {
		t.Errorf("N/NumAlive = %d/%d", g.N(), g.NumAlive())
	}
	// Adjacency symmetric and self-loop free.
	for i := 0; i < n; i++ {
		d, err := g.Degree(i)
		if err != nil {
			t.Fatal(err)
		}
		if d == 0 {
			t.Errorf("node %d isolated in fresh graph", i)
		}
	}
	// Fully connected before deletions (k=5 uniform links on 200 nodes
	// is far above the connectivity threshold).
	if frac := g.LargestComponentFraction(); frac != 1 {
		t.Errorf("fresh giant component = %v, want 1", frac)
	}
}

func TestUniformLinksSurviveAdversarialDeletion(t *testing.T) {
	t.Parallel()
	const n, k = 400, 6
	o := oracleAt(t, 5, n)
	s, err := core.New(o, o.PeerByIndex(0), rand.New(rand.NewPCG(4, 4)), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(s, n, k)
	if err != nil {
		t.Fatal(err)
	}
	deleted, err := g.DeleteAdversarial(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != int(0.3*float64(n)) {
		t.Errorf("deleted %d nodes", len(deleted))
	}
	if frac := g.LargestComponentFraction(); frac < 0.9 {
		t.Errorf("uniform-link giant component after 30%% adversarial deletion = %v, want >= 0.9", frac)
	}
}

func TestBiasedLinksFragmentMore(t *testing.T) {
	t.Parallel()
	// Links drawn through the naive sampler concentrate on long-arc
	// peers; deleting hubs must hurt the biased graph strictly more.
	const n, k = 400, 3
	o := oracleAt(t, 7, n)
	uni, err := core.New(o, o.PeerByIndex(0), rand.New(rand.NewPCG(6, 6)), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gUni, err := Build(uni, n, k)
	if err != nil {
		t.Fatal(err)
	}
	gBias, err := Build(baseline.NewNaive(o, rand.New(rand.NewPCG(7, 7))), n, k)
	if err != nil {
		t.Fatal(err)
	}
	if gBias.MaxDegree() <= gUni.MaxDegree() {
		t.Errorf("biased max degree %d should exceed uniform %d", gBias.MaxDegree(), gUni.MaxDegree())
	}
	if _, err := gUni.DeleteAdversarial(0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := gBias.DeleteAdversarial(0.4); err != nil {
		t.Fatal(err)
	}
	fu := gUni.LargestComponentFraction()
	fb := gBias.LargestComponentFraction()
	if fb >= fu {
		t.Errorf("biased graph survived as well as uniform: biased %v vs uniform %v", fb, fu)
	}
}

func TestDeleteAndDegree(t *testing.T) {
	t.Parallel()
	const n = 50
	o := oracleAt(t, 9, n)
	s := baseline.NewNaive(o, rand.New(rand.NewPCG(8, 8)))
	g, err := Build(s, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Delete(0); err != nil {
		t.Fatal(err)
	}
	if g.NumAlive() != n-1 {
		t.Errorf("NumAlive = %d", g.NumAlive())
	}
	if err := g.Delete(-1); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := g.Degree(n); err == nil {
		t.Error("out-of-range degree should fail")
	}
}

func TestDeleteAdversarialValidation(t *testing.T) {
	t.Parallel()
	o := oracleAt(t, 11, 20)
	g, err := Build(baseline.NewNaive(o, rand.New(rand.NewPCG(9, 9))), 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.DeleteAdversarial(1.0); err == nil {
		t.Error("frac=1 should fail")
	}
	if _, err := g.DeleteAdversarial(-0.1); err == nil {
		t.Error("negative frac should fail")
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	t.Parallel()
	o := oracleAt(t, 13, 4)
	g, err := Build(baseline.NewNaive(o, rand.New(rand.NewPCG(10, 10))), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := g.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if frac := g.LargestComponentFraction(); frac != 0 {
		t.Errorf("empty graph component fraction = %v", frac)
	}
}
