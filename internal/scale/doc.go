// Package scale holds the cross-overlay storage invariants of the
// flat index-based arenas (internal/chord, internal/kademlia): the
// GC-settled heap budget per node that keeps 10M-peer rings in a few
// GB, slot recycling across crash/join cycles (a churning network must
// not grow its arena without bound), and the copy-on-write membership
// snapshot contract — handed-out Members() slices are immutable and
// epoch-consistent under concurrent churn. The package is test-only;
// the tests run in the ordinary suite and, except for the heap
// budgets, under the race detector in CI's counted matrix.
package scale
