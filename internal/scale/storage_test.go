package scale

import (
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"testing"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/raceflag"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// heapDelta measures the GC-settled heap growth across build, in
// bytes. The keep function is called after the final measurement so
// the built structure stays reachable throughout.
func heapDelta(build func() func()) uint64 {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	keep := build()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	keep()
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// TestChordMemoryBudget pins the flat layout's per-node heap cost: a
// chord peer is a handful of packed array rows (id, ring pointers,
// finger and successor slot references, a 16-byte handle), measured at
// ~340 bytes/node. The budget leaves slack for allocator rounding but
// fails long before a per-node heap object sneaks back in — the old
// map[Point]*Node layout cost several times this.
func TestChordMemoryBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("heap budgets are not meaningful under the race detector")
	}
	const n = 1 << 17
	const budget = 512 // bytes per node
	rng := rand.New(rand.NewPCG(1, 2))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	points := r.Points()
	var net *chord.Network
	delta := heapDelta(func() func() {
		var err error
		net, err = chord.BuildStatic(chord.Config{}, simnet.NewDirect(), points)
		if err != nil {
			t.Fatal(err)
		}
		return func() { runtime.KeepAlive(net) }
	})
	perNode := float64(delta) / n
	t.Logf("chord n=%d: %.0f bytes/node (%.1f MB total)", n, perNode, float64(delta)/(1<<20))
	if perNode > budget {
		t.Fatalf("chord flat storage costs %.0f bytes/node at n=%d, budget %d", perNode, n, budget)
	}
}

// TestKademliaMemoryBudget pins the kademlia layout: the per-node cost
// is the packed slot rows plus ~log2(n) bucket regions of 1+k+4 words
// from the shared pool, measured at ~1.6 KB/node at this n. Unlike
// chord's, the budget must grow with log n; the chosen n keeps the
// test a one-second build.
func TestKademliaMemoryBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("heap budgets are not meaningful under the race detector")
	}
	const n = 1 << 14
	const budget = 2048 // bytes per node
	rng := rand.New(rand.NewPCG(3, 4))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	points := r.Points()
	var net *kademlia.Network
	delta := heapDelta(func() func() {
		var err error
		net, err = kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points)
		if err != nil {
			t.Fatal(err)
		}
		return func() { runtime.KeepAlive(net) }
	})
	perNode := float64(delta) / n
	t.Logf("kademlia n=%d: %.0f bytes/node (%.1f MB total)", n, perNode, float64(delta)/(1<<20))
	if perNode > budget {
		t.Fatalf("kademlia flat storage costs %.0f bytes/node at n=%d, budget %d", perNode, n, budget)
	}
}

// TestChordSlotRecycling drives a crash wave through a ring, lets
// maintenance drop the dead routing references, and checks that the
// scavenger actually frees the slots — and that subsequent joins fill
// the freed slots instead of growing the arena. A long-lived churning
// network must reach a steady-state arena size.
func TestChordSlotRecycling(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewPCG(5, 6))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	points := r.Points()
	// Successor-list-only routing: finger tables repair one finger per
	// round, so with them enabled dead references can linger for tens
	// of sweeps; the recycling contract is cleanest to observe on the
	// minimal ring.
	net, err := chord.BuildStatic(chord.Config{DisableFingers: true, MaxLookupHops: 1024}, simnet.NewDirect(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		if err := net.Crash(points[i]); err != nil {
			t.Fatal(err)
		}
	}
	net.RunMaintenance(12, 0)
	freed := net.Scavenge()
	if freed == 0 {
		t.Fatalf("scavenge freed no slots after %d crashes and maintenance", n/2)
	}
	st := net.StorageStats()
	t.Logf("after crash wave: %+v, freed %d", st, freed)
	if st.Free == 0 {
		t.Fatalf("no free slots after scavenge: %+v", st)
	}
	via := points[1] // survived the wave (odd ranks live)
	joined := 0
	for joined < freed {
		id := ring.Point(rng.Uint64())
		if _, err := net.Join(id, via); err != nil {
			continue // astronomically unlikely id collision
		}
		joined++
	}
	st2 := net.StorageStats()
	t.Logf("after %d joins: %+v", joined, st2)
	if st2.Slots != st.Slots {
		t.Fatalf("arena grew from %d to %d slots: %d joins did not reuse the %d freed slots",
			st.Slots, st2.Slots, joined, freed)
	}
	if st2.Free > st.Free {
		t.Fatalf("free list grew across joins: %d -> %d", st.Free, st2.Free)
	}
}

// TestKademliaSlotRecycling is the kademlia counterpart: refresh
// sweeps ping out the dead contacts (and their replacement-cache
// copies), the scavenger frees the unreferenced slots and their bucket
// regions, and joins reuse them.
func TestKademliaSlotRecycling(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewPCG(7, 8))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	points := r.Points()
	net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		if err := net.Crash(points[i]); err != nil {
			t.Fatal(err)
		}
	}
	net.RunMaintenance(4)
	freed := net.Scavenge()
	if freed == 0 {
		t.Fatalf("scavenge freed no slots after %d crashes and maintenance", n/2)
	}
	st := net.StorageStats()
	t.Logf("after crash wave: %+v, freed %d", st, freed)
	via := points[1]
	joined, failed := 0, 0
	for joined < freed {
		id := ring.Point(rng.Uint64())
		if _, err := net.Join(id, via); err != nil {
			// A failed join allocates the joiner's slot and rolls back
			// with Crash, so it legitimately consumes one slot until
			// the next sweep; account for it instead of requiring a
			// perfectly clean protocol run over the damaged ring.
			failed++
			continue
		}
		joined++
	}
	st2 := net.StorageStats()
	t.Logf("after %d joins (%d rolled back): %+v", joined, failed, st2)
	if st2.Slots > st.Slots+failed {
		t.Fatalf("arena grew from %d to %d slots across %d joins (%d rolled back): joins did not reuse the %d freed slots",
			st.Slots, st2.Slots, joined, failed, freed)
	}
}

// churnBackend abstracts the two overlays for the snapshot-contract
// tests below.
type churnBackend struct {
	members  func() []ring.Point
	epoch    func() uint64
	crash    func(ring.Point) error
	join     func(id, via ring.Point) error
	maintain func()
}

func chordBackend(t *testing.T, points []ring.Point) churnBackend {
	t.Helper()
	net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), points)
	if err != nil {
		t.Fatal(err)
	}
	return churnBackend{
		members: net.Members,
		epoch:   net.Epoch,
		crash:   net.Crash,
		join: func(id, via ring.Point) error {
			_, err := net.Join(id, via)
			return err
		},
		maintain: func() { net.RunMaintenance(2, 16) },
	}
}

func kademliaBackend(t *testing.T, points []ring.Point) churnBackend {
	t.Helper()
	net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points)
	if err != nil {
		t.Fatal(err)
	}
	return churnBackend{
		members: net.Members,
		epoch:   net.Epoch,
		crash:   net.Crash,
		join: func(id, via ring.Point) error {
			_, err := net.Join(id, via)
			return err
		},
		maintain: func() { net.RunMaintenance(1) },
	}
}

// TestMembersSnapshotImmutable pins the copy-on-write contract the
// index-based storage depends on: a Members() slice handed out before
// churn is bit-identical after it — splices build new slices, they
// never write through old ones — and the epoch advances so holders can
// detect staleness.
func TestMembersSnapshotImmutable(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(*testing.T, []ring.Point) churnBackend
	}{
		{"chord", chordBackend},
		{"kademlia", kademliaBackend},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 128
			rng := rand.New(rand.NewPCG(9, 10))
			r, err := ring.Generate(rng, n)
			if err != nil {
				t.Fatal(err)
			}
			points := r.Points()
			b := tc.build(t, points)
			snap := b.members()
			frozen := slices.Clone(snap)
			epoch0 := b.epoch()
			via := points[1]
			for i := 4; i < n; i += 4 {
				if err := b.crash(points[i]); err != nil {
					t.Fatal(err)
				}
			}
			// Repair the routing state before joining: a quarter of the
			// ring just vanished and joins route through what is left.
			b.maintain()
			for i := 0; i < 16; i++ {
				if err := b.join(ring.Point(rng.Uint64()), via); err != nil {
					t.Fatal(err)
				}
			}
			if !slices.Equal(snap, frozen) {
				t.Fatal("handed-out membership snapshot mutated under churn")
			}
			if b.epoch() == epoch0 {
				t.Fatal("epoch did not advance across churn")
			}
			cur := b.members()
			if slices.Equal(cur, frozen) {
				t.Fatal("current membership unchanged after churn")
			}
			if !slices.IsSorted(cur) {
				t.Fatal("current membership not sorted")
			}
		})
	}
}

// TestSnapshotConsistencyConcurrent hammers the snapshot contract
// under the race detector: readers repeatedly fetch Members() and
// verify each fetched slice is sorted and internally stable (two scans
// see the same content) while a writer churns the network. Any
// in-place splice or torn epoch publication shows up as a detector
// report or a failed invariant.
func TestSnapshotConsistencyConcurrent(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(*testing.T, []ring.Point) churnBackend
	}{
		{"chord", chordBackend},
		{"kademlia", kademliaBackend},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 128
			rng := rand.New(rand.NewPCG(11, 12))
			r, err := ring.Generate(rng, n)
			if err != nil {
				t.Fatal(err)
			}
			points := r.Points()
			b := tc.build(t, points)
			stop := make(chan struct{})
			errc := make(chan error, 4)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var lastEpoch uint64
					for {
						select {
						case <-stop:
							return
						default:
						}
						ms := b.members()
						e := b.epoch()
						if !slices.IsSorted(ms) {
							errc <- errNotSorted
							return
						}
						var sum1, sum2 ring.Point
						for _, p := range ms {
							sum1 += p
						}
						for _, p := range ms {
							sum2 += p
						}
						if sum1 != sum2 {
							errc <- errMutated
							return
						}
						if e < lastEpoch {
							errc <- errEpochBack
							return
						}
						lastEpoch = e
					}
				}()
			}
			via := points[1]
			for i := 0; i < 48; i++ {
				if i%2 == 0 {
					if err := b.join(ring.Point(rng.Uint64()), via); err != nil {
						t.Error(err)
						break
					}
				} else {
					// Crash the most recently joined: membership shrinks
					// and grows, exercising both splice directions.
					ms := b.members()
					victim := ms[len(ms)-1]
					if victim == via {
						victim = ms[0]
					}
					if victim == via {
						continue
					}
					if err := b.crash(victim); err != nil {
						t.Error(err)
						break
					}
					// Keep the overlay routable for the next join while
					// the readers hammer the snapshots.
					b.maintain()
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
		})
	}
}

var (
	errNotSorted = errString("membership snapshot not sorted")
	errMutated   = errString("membership snapshot mutated between scans")
	errEpochBack = errString("epoch moved backwards")
)

type errString string

func (e errString) Error() string { return string(e) }
