package churn

import (
	"math/rand/v2"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/core"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

func newNet(t *testing.T, seed uint64, n int) (*chord.Network, *ring.Ring) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+77))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	net, err := chord.BuildStatic(chord.Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	return net, r
}

func TestChurnPreservesRingConsistency(t *testing.T) {
	t.Parallel()
	net, _ := newNet(t, 1, 64)
	d, err := NewDriver(Chord(net), rand.New(rand.NewPCG(2, 2)), Config{
		Events:         60,
		RoundsPerEvent: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	if err := d.Run(func(ev Event) error {
		events++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if events != 60 {
		t.Errorf("hook ran %d times, want 60", events)
	}
	// Extra settling rounds, then the ring must be perfect again.
	net.RunMaintenance(10, 16)
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring inconsistent after churn: %v", err)
	}
}

func TestChurnRespectsMinSizeAndProtection(t *testing.T) {
	t.Parallel()
	net, r := newNet(t, 3, 8)
	protected := map[ring.Point]bool{r.At(0): true}
	d, err := NewDriver(Chord(net), rand.New(rand.NewPCG(4, 4)), Config{
		Events:       100,
		JoinFraction: 0.05, // heavy crash bias
		MinSize:      4,
		Protected:    protected,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(func(ev Event) error {
		if !ev.Join && protected[ev.Node] {
			t.Errorf("protected node %v crashed", ev.Node)
		}
		if got := net.NumAlive(); got < 4 {
			t.Errorf("size %d fell below floor", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Node(r.At(0)); err != nil {
		t.Error("protected node missing after churn")
	}
}

func TestSamplingDuringChurn(t *testing.T) {
	t.Parallel()
	net, r := newNet(t, 5, 64)
	caller := r.At(0)
	d, err := NewDriver(Chord(net), rand.New(rand.NewPCG(6, 6)), Config{
		Events:         30,
		RoundsPerEvent: 4,
		Protected:      map[ring.Point]bool{caller: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	adht, err := net.AsDHT(caller)
	if err != nil {
		t.Fatal(err)
	}
	srng := rand.New(rand.NewPCG(7, 7))
	sampled := 0
	if err := d.Run(func(ev Event) error {
		s, err := core.New(adht, adht.Self(), srng, core.Config{})
		if err != nil {
			return nil // transient estimate failure under churn is acceptable
		}
		if _, err := s.Sample(); err == nil {
			sampled++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The vast majority of samples should succeed despite churn.
	if sampled < 25 {
		t.Errorf("only %d/30 samples succeeded during churn", sampled)
	}
}

func TestNewDriverValidation(t *testing.T) {
	t.Parallel()
	net := chord.NewNetwork(chord.Config{}, simnet.NewDirect())
	if _, err := NewDriver(Chord(net), rand.New(rand.NewPCG(1, 1)), Config{Events: 5}); err == nil {
		t.Error("empty network should fail")
	}
	full, _ := newNet(t, 9, 4)
	if _, err := NewDriver(Chord(full), rand.New(rand.NewPCG(1, 1)), Config{Events: -1}); err == nil {
		t.Error("negative events should fail")
	}
}

func TestChurnHookErrorAborts(t *testing.T) {
	t.Parallel()
	net, _ := newNet(t, 11, 16)
	d, err := NewDriver(Chord(net), rand.New(rand.NewPCG(8, 8)), Config{Events: 10})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = d.Run(func(Event) error {
		calls++
		if calls == 3 {
			return chord.ErrEmptyNetwork // arbitrary sentinel
		}
		return nil
	})
	if err == nil {
		t.Error("hook error should abort Run")
	}
	if calls != 3 {
		t.Errorf("hook ran %d times, want 3", calls)
	}
}

func newKadNet(t *testing.T, seed uint64, n int) (*kademlia.Network, *ring.Ring) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+77))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	return net, r
}

// TestChurnOnKademlia runs the same schedule shape as the Chord test
// over the Kademlia overlay: the driver is generic, and the overlay must
// converge back to a perfect ring after settling.
func TestChurnOnKademlia(t *testing.T) {
	t.Parallel()
	net, _ := newKadNet(t, 21, 32)
	d, err := NewDriver(Kademlia(net), rand.New(rand.NewPCG(22, 22)), Config{
		Events:         30,
		RoundsPerEvent: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	if err := d.Run(func(ev Event) error {
		events++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if events != 30 {
		t.Errorf("hook ran %d times, want 30", events)
	}
	net.RunMaintenance(6)
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("kademlia ring inconsistent after churn: %v", err)
	}
}

// TestAsyncChurnConcurrentWithSampling drives the full asynchronous
// stack: a Chord ring on the virtual-clock transport, churn and
// maintenance as timed kernel events, and a sampler process drawing
// peers while the topology changes under it.
func TestAsyncChurnConcurrentWithSampling(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(31, 31))
	r, err := ring.Generate(rng, 48)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(31)
	tr := sim.NewTransport(sim.WithKernel(k), sim.WithModel(sim.Constant{RTT: time.Millisecond}))
	net, err := chord.BuildStatic(chord.Config{}, tr, r.Points())
	if err != nil {
		t.Fatal(err)
	}
	caller := r.At(0)
	adht, err := net.AsDHT(caller)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(Chord(net), rand.New(rand.NewPCG(32, 32)), Config{
		Events:    25,
		Protected: map[ring.Point]bool{caller: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := d.Schedule(k, AsyncConfig{
		MeanInterval:        10 * time.Millisecond,
		MaintenanceInterval: 5 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srng := rand.New(rand.NewPCG(33, 33))
	sampled, sampleErrs := 0, 0
	k.Go("sampler", func() {
		for !run.Done() {
			s, err := core.New(adht, adht.Self(), srng, core.Config{})
			if err != nil {
				sampleErrs++
				if k.Sleep(time.Millisecond) != nil {
					return
				}
				continue
			}
			if _, err := s.Sample(); err != nil {
				sampleErrs++
			} else {
				sampled++
			}
		}
	})
	k.Run()
	if got := len(run.Events) + run.StepErrors; got != 25 {
		t.Errorf("events executed+failed = %d, want 25", got)
	}
	if sampled == 0 {
		t.Error("no sample completed during asynchronous churn")
	}
	if k.Now() == 0 {
		t.Error("virtual clock never advanced")
	}
	// The overlay settles once events stop.
	net.RunMaintenance(10, 16)
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring inconsistent after async churn: %v", err)
	}
	t.Logf("async churn: %d samples ok, %d errors, %d step errors, virtual time %v",
		sampled, sampleErrs, run.StepErrors, k.Now())
}

func TestAsyncScheduleValidation(t *testing.T) {
	t.Parallel()
	net, _ := newNet(t, 41, 8)
	d, err := NewDriver(Chord(net), rand.New(rand.NewPCG(42, 42)), Config{Events: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Schedule(sim.NewKernel(1), AsyncConfig{}, nil); err == nil {
		t.Error("zero mean interval should fail")
	}
}

// BenchmarkAsyncChurn is the churn stress benchmark: a full
// asynchronous schedule — exponential-gap joins/crashes plus periodic
// parallel maintenance sweeps — executed on the event kernel over a
// live Chord ring. With -benchmem it gates the driver's pooled
// event/closure state: per-event allocations here are protocol-side
// (join RPCs), not scheduler-side.
func BenchmarkAsyncChurn(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	r, err := ring.Generate(rng, 128)
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel(1)
	tr := sim.NewTransport(
		sim.WithKernel(k),
		sim.WithModel(sim.Constant{RTT: time.Millisecond}),
		sim.WithStreamSeed(3),
	)
	net, err := chord.BuildStatic(chord.Config{}, tr, r.Points())
	if err != nil {
		b.Fatal(err)
	}
	driver, err := NewDriver(Chord(net), rand.New(rand.NewPCG(4, 5)), Config{Events: b.N})
	if err != nil {
		b.Fatal(err)
	}
	_, err = driver.Schedule(k, AsyncConfig{
		MeanInterval:        2 * time.Millisecond,
		MaintenanceInterval: 20 * time.Millisecond,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}
