// Package churn drives node arrival and departure against a live DHT
// overlay with its maintenance protocol running, supporting the
// experiments that measure sampling correctness while the overlay is
// being repaired (the paper assumes a stable ring; churn quantifies the
// degradation when that assumption is relaxed).
//
// The driver is generic over the Overlay interface, so the same
// schedules run against Chord and Kademlia (wrap a network with Chord or
// Kademlia). Two execution modes are provided: Run executes events in
// synchronous lockstep (each event followed by maintenance rounds), and
// Schedule registers the events on a discrete-event kernel
// (internal/sim), where arrivals, departures and periodic maintenance
// execute as timed events concurrent — in virtual time — with whatever
// sampler processes the caller spawns.
package churn

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// Overlay is the slice of a DHT network the churn driver needs: live
// membership, join/crash, and synchronous maintenance. Both real
// overlays (Chord, Kademlia) satisfy it via the wrappers below.
type Overlay interface {
	// Members returns the ids of all live nodes in sorted order.
	Members() []ring.Point
	// NumAlive returns the number of live nodes.
	NumAlive() int
	// Join adds a node to the overlay through the existing member via.
	Join(id, via ring.Point) error
	// Crash removes a node abruptly.
	Crash(id ring.Point) error
	// Maintain runs the given number of synchronous maintenance rounds.
	// fingersPerRound applies to finger-table substrates (Chord) and is
	// ignored by the others.
	Maintain(rounds, fingersPerRound int)
	// MaintainNode runs one maintenance round for a single node,
	// ignoring transient errors (the node may crash mid-round). round is
	// a monotone sweep counter substrates may use to rotate refresh
	// targets. The asynchronous scheduler calls it from one kernel
	// process per member, so nodes repair concurrently in virtual time —
	// the deployment behaviour — instead of paying a sequential
	// whole-network sweep.
	MaintainNode(id ring.Point, round, fingersPerRound int)
	// VerifyRing reports whether the overlay's successor/predecessor
	// structure is globally consistent (nil when perfect) — the
	// post-churn recovery check.
	VerifyRing() error
}

// ErrEmptyOverlay is returned when a driver is built over an overlay
// with no live nodes.
var ErrEmptyOverlay = errors.New("churn: overlay has no live nodes")

// chordOverlay adapts *chord.Network to Overlay.
type chordOverlay struct{ net *chord.Network }

// Chord wraps a Chord network for churn driving.
func Chord(net *chord.Network) Overlay { return chordOverlay{net} }

func (o chordOverlay) Members() []ring.Point { return o.net.Members() }
func (o chordOverlay) NumAlive() int         { return o.net.NumAlive() }
func (o chordOverlay) Join(id, via ring.Point) error {
	_, err := o.net.Join(id, via)
	return err
}
func (o chordOverlay) Crash(id ring.Point) error { return o.net.Crash(id) }
func (o chordOverlay) Maintain(rounds, fingersPerRound int) {
	o.net.RunMaintenance(rounds, fingersPerRound)
}
func (o chordOverlay) MaintainNode(id ring.Point, _, fingersPerRound int) {
	_ = o.net.StabilizeNode(id)
	_ = o.net.CheckPredecessor(id)
	for f := 0; f < fingersPerRound; f++ {
		_ = o.net.FixFinger(id)
	}
}
func (o chordOverlay) VerifyRing() error { return o.net.VerifyRing() }

// kademliaOverlay adapts *kademlia.Network to Overlay.
type kademliaOverlay struct{ net *kademlia.Network }

// Kademlia wraps a Kademlia network for churn driving.
func Kademlia(net *kademlia.Network) Overlay { return kademliaOverlay{net} }

func (o kademliaOverlay) Members() []ring.Point { return o.net.Members() }
func (o kademliaOverlay) NumAlive() int         { return o.net.NumAlive() }
func (o kademliaOverlay) Join(id, via ring.Point) error {
	_, err := o.net.Join(id, via)
	return err
}
func (o kademliaOverlay) Crash(id ring.Point) error { return o.net.Crash(id) }
func (o kademliaOverlay) Maintain(rounds, _ int)    { o.net.RunMaintenance(rounds) }
func (o kademliaOverlay) MaintainNode(id ring.Point, round, _ int) {
	_ = o.net.RefreshNode(id, round%64)
}
func (o kademliaOverlay) VerifyRing() error { return o.net.VerifyRing() }

// Config parameterizes a churn schedule.
type Config struct {
	// Events is the number of churn events to execute.
	Events int
	// JoinFraction is the probability an event is a join; otherwise a
	// uniformly chosen node crashes. Default 0.5.
	JoinFraction float64
	// RoundsPerEvent is the number of synchronous maintenance rounds run
	// after each event (lower is harsher churn). Default 2. In
	// asynchronous mode maintenance is periodic instead; see AsyncConfig.
	RoundsPerEvent int
	// FingersPerRound is the number of fingers each node fixes per
	// maintenance round on finger-table substrates. Default 8.
	FingersPerRound int
	// MinSize floors the network size: crashes are converted to joins at
	// the floor. Default 2.
	MinSize int
	// Protected nodes are never crashed (experiments keep their sampling
	// caller alive).
	Protected map[ring.Point]bool
}

func (c Config) withDefaults() Config {
	if c.JoinFraction <= 0 {
		c.JoinFraction = 0.5
	}
	if c.RoundsPerEvent <= 0 {
		c.RoundsPerEvent = 2
	}
	if c.FingersPerRound <= 0 {
		c.FingersPerRound = 8
	}
	if c.MinSize < 2 {
		c.MinSize = 2
	}
	return c
}

// Event describes one executed churn event.
type Event struct {
	Index int
	Join  bool
	Node  ring.Point
}

// Driver executes a churn schedule.
type Driver struct {
	ov  Overlay
	rng *rand.Rand
	cfg Config
}

// NewDriver builds a churn driver over a live overlay.
func NewDriver(ov Overlay, rng *rand.Rand, cfg Config) (*Driver, error) {
	if ov.NumAlive() == 0 {
		return nil, ErrEmptyOverlay
	}
	if cfg.Events < 0 {
		return nil, fmt.Errorf("churn: events must be >= 0, got %d", cfg.Events)
	}
	return &Driver{ov: ov, rng: rng, cfg: cfg.withDefaults()}, nil
}

// Run executes the schedule synchronously. After each event (and its
// maintenance rounds) the onEvent hook runs, if non-nil; a hook error
// aborts the schedule.
func (d *Driver) Run(onEvent func(ev Event) error) error {
	for i := 0; i < d.cfg.Events; i++ {
		ev, err := d.step(i)
		if err != nil {
			return fmt.Errorf("churn: event %d: %w", i, err)
		}
		d.ov.Maintain(d.cfg.RoundsPerEvent, d.cfg.FingersPerRound)
		if onEvent != nil {
			if err := onEvent(ev); err != nil {
				return fmt.Errorf("churn: hook after event %d: %w", i, err)
			}
		}
	}
	return nil
}

// step executes one join or crash.
func (d *Driver) step(index int) (Event, error) {
	members := d.ov.Members()
	join := d.rng.Float64() < d.cfg.JoinFraction || len(members) <= d.cfg.MinSize
	if join {
		id := ring.Point(d.rng.Uint64())
		via := members[d.rng.IntN(len(members))]
		if err := d.ov.Join(id, via); err != nil {
			return Event{}, fmt.Errorf("join %v via %v: %w", id, via, err)
		}
		return Event{Index: index, Join: true, Node: id}, nil
	}
	// Crash a uniformly random unprotected member. Count the live
	// protected nodes first (the Protected map is tiny; members is
	// sorted), then rejection-sample member indices until an
	// unprotected one comes up — uniform over the unprotected set,
	// expected O(1) draws, and no filtered copy of a possibly
	// million-entry membership per event.
	protectedLive := 0
	for p, on := range d.cfg.Protected {
		if !on {
			continue
		}
		if _, ok := slices.BinarySearch(members, p); ok {
			protectedLive++
		}
	}
	if len(members)-protectedLive <= 0 {
		return Event{Index: index, Join: true}, nil // nothing crashable; no-op
	}
	var victim ring.Point
	for {
		victim = members[d.rng.IntN(len(members))]
		if !d.cfg.Protected[victim] {
			break
		}
	}
	if err := d.ov.Crash(victim); err != nil {
		return Event{}, fmt.Errorf("crash %v: %w", victim, err)
	}
	return Event{Index: index, Join: false, Node: victim}, nil
}
