// Package churn drives node arrival and departure against a live Chord
// network with its maintenance protocol running, supporting the
// experiments that measure sampling correctness while the DHT is being
// repaired (the paper assumes a stable ring; churn quantifies the
// degradation when that assumption is relaxed).
package churn

import (
	"fmt"
	"math/rand/v2"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/ring"
)

// Config parameterizes a churn schedule.
type Config struct {
	// Events is the number of churn events to execute.
	Events int
	// JoinFraction is the probability an event is a join; otherwise a
	// uniformly chosen node crashes. Default 0.5.
	JoinFraction float64
	// RoundsPerEvent is the number of synchronous maintenance rounds run
	// after each event (lower is harsher churn). Default 2.
	RoundsPerEvent int
	// FingersPerRound is the number of fingers each node fixes per
	// maintenance round. Default 8.
	FingersPerRound int
	// MinSize floors the network size: crashes are converted to joins at
	// the floor. Default 2.
	MinSize int
	// Protected nodes are never crashed (experiments keep their sampling
	// caller alive).
	Protected map[ring.Point]bool
}

func (c Config) withDefaults() Config {
	if c.JoinFraction <= 0 {
		c.JoinFraction = 0.5
	}
	if c.RoundsPerEvent <= 0 {
		c.RoundsPerEvent = 2
	}
	if c.FingersPerRound <= 0 {
		c.FingersPerRound = 8
	}
	if c.MinSize < 2 {
		c.MinSize = 2
	}
	return c
}

// Event describes one executed churn event.
type Event struct {
	Index int
	Join  bool
	Node  ring.Point
}

// Driver executes a churn schedule.
type Driver struct {
	net *chord.Network
	rng *rand.Rand
	cfg Config
}

// NewDriver builds a churn driver over a live network.
func NewDriver(net *chord.Network, rng *rand.Rand, cfg Config) (*Driver, error) {
	if net.NumAlive() == 0 {
		return nil, chord.ErrEmptyNetwork
	}
	if cfg.Events < 0 {
		return nil, fmt.Errorf("churn: events must be >= 0, got %d", cfg.Events)
	}
	return &Driver{net: net, rng: rng, cfg: cfg.withDefaults()}, nil
}

// Run executes the schedule. After each event (and its maintenance
// rounds) the onEvent hook runs, if non-nil; a hook error aborts the
// schedule.
func (d *Driver) Run(onEvent func(ev Event) error) error {
	for i := 0; i < d.cfg.Events; i++ {
		ev, err := d.step(i)
		if err != nil {
			return fmt.Errorf("churn: event %d: %w", i, err)
		}
		d.net.RunMaintenance(d.cfg.RoundsPerEvent, d.cfg.FingersPerRound)
		if onEvent != nil {
			if err := onEvent(ev); err != nil {
				return fmt.Errorf("churn: hook after event %d: %w", i, err)
			}
		}
	}
	return nil
}

// step executes one join or crash.
func (d *Driver) step(index int) (Event, error) {
	members := d.net.Members()
	join := d.rng.Float64() < d.cfg.JoinFraction || len(members) <= d.cfg.MinSize
	if join {
		id := ring.Point(d.rng.Uint64())
		via := members[d.rng.IntN(len(members))]
		if _, err := d.net.Join(id, via); err != nil {
			return Event{}, fmt.Errorf("join %v via %v: %w", id, via, err)
		}
		return Event{Index: index, Join: true, Node: id}, nil
	}
	// Crash a uniformly random unprotected member.
	candidates := members[:0:0]
	for _, m := range members {
		if !d.cfg.Protected[m] {
			candidates = append(candidates, m)
		}
	}
	if len(candidates) == 0 {
		return Event{Index: index, Join: true}, nil // nothing crashable; no-op
	}
	victim := candidates[d.rng.IntN(len(candidates))]
	if err := d.net.Crash(victim); err != nil {
		return Event{}, fmt.Errorf("crash %v: %w", victim, err)
	}
	return Event{Index: index, Join: false, Node: victim}, nil
}
