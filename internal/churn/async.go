package churn

import (
	"fmt"
	"time"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
)

// AsyncConfig parameterizes an asynchronous churn schedule on a
// discrete-event kernel. Event counts, the join/crash mix, the size
// floor and protection come from the driver's Config; AsyncConfig adds
// the timing.
type AsyncConfig struct {
	// MeanInterval is the mean of the exponential gap between successive
	// churn events — the event rate knob (required > 0). Smaller
	// intervals relative to the link round-trip time mean more topology
	// changes land inside each in-flight sample.
	MeanInterval time.Duration
	// MaintenanceInterval is the period of the background maintenance
	// sweep; 0 disables the sweep entirely (harshest regime). Each sweep
	// runs every member's per-node maintenance in parallel kernel
	// processes — nodes repair concurrently in virtual time, as deployed
	// DHT nodes do — and the next sweep starts one interval after the
	// previous one fully completes. Unlike the synchronous driver,
	// repair is NOT coupled to events: a burst of crashes can outrun
	// maintenance, exactly as in deployment.
	MaintenanceInterval time.Duration
}

// AsyncRun is the live state of a scheduled churn run. Its fields are
// updated by kernel processes; because the kernel runs one process at a
// time, reads from other processes (a sampler polling Done) are safe.
type AsyncRun struct {
	done bool
	// Events holds the executed events in order.
	Events []Event
	// StepErrors counts events that failed to execute (a join racing
	// overlay damage, for example). Failed events are tolerated and the
	// schedule continues — an aborted join attempt is itself a realistic
	// churn outcome.
	StepErrors int
}

// Done reports whether the schedule has executed all its events. Sampler
// processes use it as their stop condition.
func (r *AsyncRun) Done() bool { return r.done }

// asyncSchedule is the pooled per-run state behind Schedule. All churn
// and maintenance closures are bound once here, the Events slice is
// preallocated, and per-member maintenance processes are spawned
// through GoArg with the member id as the argument word — steady-state
// churn and sweeps allocate nothing per event or per member.
type asyncSchedule struct {
	d       *Driver
	k       *sim.Kernel
	cfg     AsyncConfig
	run     *AsyncRun
	onEvent func(Event)

	round       int // sweeps started
	outstanding int // maintain processes of the current sweep still running

	maintainFn func(uint64) // bound method, reused for every spawn
	tickFn     func()       // bound method, reused for every sweep tick
}

// Schedule registers the churn schedule on the kernel and returns
// immediately; the events execute during Kernel.Run. One process
// executes the driver's Events join/crash events at exponential
// inter-arrival times drawn from the driver's RNG (joins and crashes
// pay real RPC latencies, so the process genuinely blocks), and, if
// enabled, periodic maintenance sweeps run off a re-posting callback
// timer: each tick spawns one per-member repair process — concurrent
// in virtual time with the churn stream and any sampler or fault
// processes the caller spawns. Each in-flight sample therefore
// observes the overlay mid-repair, not the settled snapshots the
// synchronous Run produces.
//
// The onEvent hook, if non-nil, runs after each successful event inside
// the churn process.
func (d *Driver) Schedule(k *sim.Kernel, cfg AsyncConfig, onEvent func(Event)) (*AsyncRun, error) {
	if cfg.MeanInterval <= 0 {
		return nil, fmt.Errorf("churn: async mean interval must be > 0, got %v", cfg.MeanInterval)
	}
	run := &AsyncRun{Events: make([]Event, 0, d.cfg.Events)}
	s := &asyncSchedule{d: d, k: k, cfg: cfg, run: run, onEvent: onEvent}
	k.Go("churn", s.churnLoop)
	if cfg.MaintenanceInterval > 0 {
		s.maintainFn = s.maintainOne
		s.tickFn = s.sweepTick
		k.Post(cfg.MaintenanceInterval, "maintenance", s.tickFn)
	}
	return run, nil
}

// churnLoop is the churn process body: sleep an exponential gap,
// execute one join or crash, repeat. Gap sleeps ride the kernel's
// run-to-completion fast path whenever nothing interleaves.
func (s *asyncSchedule) churnLoop() {
	defer func() { s.run.done = true }()
	for i := 0; i < s.d.cfg.Events; i++ {
		gap := time.Duration(s.d.rng.ExpFloat64() * float64(s.cfg.MeanInterval))
		if s.k.Sleep(gap) != nil {
			return
		}
		ev, err := s.d.step(i)
		if err != nil {
			s.run.StepErrors++
			continue
		}
		s.run.Events = append(s.run.Events, ev)
		if s.onEvent != nil {
			s.onEvent(ev)
		}
	}
}

// sweepTick fires every MaintenanceInterval as a kernel callback — a
// timer, not a process: it never blocks, so it needs no coroutine and
// costs no channel handoff. If the previous sweep has fully completed
// it starts the next one, spawning one maintenance process per member;
// otherwise it skips the tick rather than overlap sweeps, so the
// period is exactly the interval whenever repair keeps up. The chain
// ends at the first tick after the churn schedule finishes.
func (s *asyncSchedule) sweepTick() {
	if s.run.done || s.k.Stopped() {
		return
	}
	if s.outstanding == 0 {
		// One process per member: the sweep costs the slowest node's
		// repair time, not the network-wide sum. Members is a shared
		// immutable snapshot (no copy) and each spawn carries the
		// member id as its argument word (no closure). The shared
		// counter is safe — kernel events never run concurrently.
		members := s.d.ov.Members()
		s.outstanding = len(members)
		for _, id := range members {
			s.k.GoArg("maintain", s.maintainFn, uint64(id))
		}
		s.round++
	}
	s.k.Post(s.cfg.MaintenanceInterval, "maintenance", s.tickFn)
}

// maintainOne runs one member's repair round. s.round was already
// advanced when this sweep was spawned, and cannot advance again until
// every process of the sweep has finished (outstanding gates the next
// sweep), so round-1 is this sweep's number.
func (s *asyncSchedule) maintainOne(id uint64) {
	s.d.ov.MaintainNode(ring.Point(id), s.round-1, s.d.cfg.FingersPerRound)
	s.outstanding--
}
