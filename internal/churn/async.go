package churn

import (
	"fmt"
	"time"

	"github.com/dht-sampling/randompeer/internal/sim"
)

// AsyncConfig parameterizes an asynchronous churn schedule on a
// discrete-event kernel. Event counts, the join/crash mix, the size
// floor and protection come from the driver's Config; AsyncConfig adds
// the timing.
type AsyncConfig struct {
	// MeanInterval is the mean of the exponential gap between successive
	// churn events — the event rate knob (required > 0). Smaller
	// intervals relative to the link round-trip time mean more topology
	// changes land inside each in-flight sample.
	MeanInterval time.Duration
	// MaintenanceInterval is the period of the background maintenance
	// sweep; 0 disables the sweep entirely (harshest regime). Each sweep
	// runs every member's per-node maintenance in parallel kernel
	// processes — nodes repair concurrently in virtual time, as deployed
	// DHT nodes do — and the next sweep starts one interval after the
	// previous one fully completes. Unlike the synchronous driver,
	// repair is NOT coupled to events: a burst of crashes can outrun
	// maintenance, exactly as in deployment.
	MaintenanceInterval time.Duration
}

// AsyncRun is the live state of a scheduled churn run. Its fields are
// updated by kernel processes; because the kernel runs one process at a
// time, reads from other processes (a sampler polling Done) are safe.
type AsyncRun struct {
	done bool
	// Events holds the executed events in order.
	Events []Event
	// StepErrors counts events that failed to execute (a join racing
	// overlay damage, for example). Failed events are tolerated and the
	// schedule continues — an aborted join attempt is itself a realistic
	// churn outcome.
	StepErrors int
}

// Done reports whether the schedule has executed all its events. Sampler
// processes use it as their stop condition.
func (r *AsyncRun) Done() bool { return r.done }

// Schedule registers the churn schedule on the kernel and returns
// immediately; the events execute during Kernel.Run. One process
// executes the driver's Events join/crash events at exponential
// inter-arrival times drawn from the driver's RNG, and, if enabled, a
// second process runs periodic maintenance sweeps until the last event —
// both concurrent in virtual time with any sampler or fault processes
// the caller spawns. Each in-flight sample therefore observes the
// overlay mid-repair, not the settled snapshots the synchronous Run
// produces.
//
// The onEvent hook, if non-nil, runs after each successful event inside
// the churn process.
func (d *Driver) Schedule(k *sim.Kernel, cfg AsyncConfig, onEvent func(Event)) (*AsyncRun, error) {
	if cfg.MeanInterval <= 0 {
		return nil, fmt.Errorf("churn: async mean interval must be > 0, got %v", cfg.MeanInterval)
	}
	run := &AsyncRun{}
	k.Go("churn", func() {
		defer func() { run.done = true }()
		for i := 0; i < d.cfg.Events; i++ {
			gap := time.Duration(d.rng.ExpFloat64() * float64(cfg.MeanInterval))
			if k.Sleep(gap) != nil {
				return
			}
			ev, err := d.step(i)
			if err != nil {
				run.StepErrors++
				continue
			}
			run.Events = append(run.Events, ev)
			if onEvent != nil {
				onEvent(ev)
			}
		}
	})
	if cfg.MaintenanceInterval > 0 {
		k.Go("maintenance", func() {
			round := 0
			outstanding := 0
			for !run.done {
				if k.Sleep(cfg.MaintenanceInterval) != nil {
					return
				}
				if run.done {
					return
				}
				if outstanding > 0 {
					// The previous sweep is still repairing: skip this
					// tick rather than overlap sweeps. The next sweep
					// starts at the first tick after completion, so the
					// period is exactly the interval whenever repair
					// keeps up.
					continue
				}
				// One process per member: the sweep costs the slowest
				// node's repair time, not the network-wide sum. The
				// shared counter is safe — kernel processes never run
				// concurrently.
				members := d.ov.Members()
				outstanding = len(members)
				sweep := round
				for _, id := range members {
					id := id
					k.Go("maintain", func() {
						d.ov.MaintainNode(id, sweep, d.cfg.FingersPerRound)
						outstanding--
					})
				}
				round++
			}
		})
	}
	return run, nil
}
