package wire

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Test payloads, registered once for the package's tests.
type echoReq struct {
	S string
	N uint64
}

type echoResp struct {
	S string
	N uint64
}

type bigPointResp struct {
	P uint64
}

func init() {
	RegisterValue[echoReq]("wiretest.echoReq")
	RegisterValue[echoResp]("wiretest.echoResp")
	RegisterPointer[bigPointResp]("wiretest.bigPointResp")
}

// startTransport returns a served transport and its address, closed at
// test end.
func startTransport(t *testing.T, opts ...Option) *Transport {
	t.Helper()
	tr := NewTransport(opts...)
	if err := tr.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// echoHandler replies with the request's fields.
func echoHandler(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	m := msg.(echoReq)
	return echoResp{S: m.S, N: m.N}, nil
}

func TestLocalShortCircuit(t *testing.T) {
	t.Parallel()
	tr := NewTransport()
	defer tr.Close()
	if err := tr.Register(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	resp, err := tr.Call(2, 1, echoReq{S: "hi", N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(echoResp); got.S != "hi" || got.N != 7 {
		t.Fatalf("echo = %+v", got)
	}
	if c := tr.Meter().Snapshot(); c.Calls != 1 {
		t.Fatalf("meter calls = %d, want 1", c.Calls)
	}
}

func TestRemoteRoundtrip(t *testing.T) {
	t.Parallel()
	server := startTransport(t)
	if err := server.Register(10, echoHandler); err != nil {
		t.Fatal(err)
	}
	client := startTransport(t)
	client.SetRoute(10, server.Addr())
	// The full uint64 range must round-trip exactly (no float64
	// truncation in the JSON layer).
	const big = ^uint64(0) - 3
	resp, err := client.Call(2, 10, echoReq{S: "over the wire", N: big})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(echoResp); got.S != "over the wire" || got.N != big {
		t.Fatalf("echo = %+v", got)
	}
	if c := client.Meter().Snapshot(); c.Calls != 1 || c.Failures != 0 {
		t.Fatalf("client meter = %+v", c)
	}
	if served := server.ServedCalls(); served != 1 {
		t.Fatalf("server served %d calls, want 1", served)
	}
}

func TestPointerPayloadRoundtrip(t *testing.T) {
	t.Parallel()
	server := startTransport(t)
	if err := server.Register(11, func(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		return &bigPointResp{P: msg.(echoReq).N}, nil
	}); err != nil {
		t.Fatal(err)
	}
	client := startTransport(t)
	client.SetRoute(11, server.Addr())
	resp, err := client.Call(1, 11, echoReq{N: 42})
	if err != nil {
		t.Fatal(err)
	}
	ptr, ok := resp.(*bigPointResp)
	if !ok {
		t.Fatalf("reply type %T, want *bigPointResp", resp)
	}
	if ptr.P != 42 {
		t.Fatalf("P = %d", ptr.P)
	}
}

func TestUnknownNode(t *testing.T) {
	t.Parallel()
	server := startTransport(t)
	client := startTransport(t)
	// No route at all.
	if _, err := client.Call(1, 99, echoReq{}); !errors.Is(err, simnet.ErrUnknownNode) {
		t.Fatalf("unrouted call error = %v, want ErrUnknownNode", err)
	}
	// Routed, but the remote process does not host the node.
	client.SetRoute(99, server.Addr())
	if _, err := client.Call(1, 99, echoReq{}); !errors.Is(err, simnet.ErrUnknownNode) {
		t.Fatalf("unregistered remote error = %v, want ErrUnknownNode", err)
	}
}

func TestConnectionRefusedMapsToNodeDead(t *testing.T) {
	t.Parallel()
	// Grab a port with no listener behind it.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	var slept atomic.Int32
	client := NewTransport(
		WithRetries(2, time.Millisecond, 8*time.Millisecond),
		withSleep(func(time.Duration) { slept.Add(1) }),
	)
	defer client.Close()
	client.SetRoute(5, addr)
	_, err = client.Call(1, 5, echoReq{})
	if !errors.Is(err, simnet.ErrNodeDead) {
		t.Fatalf("refused call error = %v, want ErrNodeDead", err)
	}
	if got := slept.Load(); got != 2 {
		t.Fatalf("slept %d times, want 2 (one per retry)", got)
	}
	if c := client.Meter().Snapshot(); c.Failures != 1 {
		t.Fatalf("meter failures = %d, want 1 per logical call", c.Failures)
	}
}

func TestTimeoutMapsToDropped(t *testing.T) {
	t.Parallel()
	var handled atomic.Int32
	server := startTransport(t)
	if err := server.Register(7, func(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		handled.Add(1)
		time.Sleep(300 * time.Millisecond)
		return echoResp{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	client := NewTransport(
		WithCallTimeout(25*time.Millisecond),
		WithRetries(1, time.Millisecond, time.Millisecond),
		withSleep(func(time.Duration) {}),
	)
	defer client.Close()
	client.SetRoute(7, server.Addr())
	_, err := client.Call(1, 7, echoReq{})
	if !errors.Is(err, simnet.ErrDropped) {
		t.Fatalf("timed-out call error = %v, want ErrDropped", err)
	}
	// Both attempts reached the handler: the timeout fired while the
	// handler held the request, not before delivery.
	deadline := time.Now().Add(2 * time.Second)
	for handled.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := handled.Load(); got != 2 {
		t.Fatalf("handler ran %d times, want 2 (initial + 1 retry)", got)
	}
}

func TestMidCallCrashMapsToNodeDead(t *testing.T) {
	t.Parallel()
	// A listener that accepts and slams every connection shut models a
	// daemon crashing mid-call: the client sees EOF/reset after the
	// request is written.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	client := NewTransport(
		WithRetries(2, time.Millisecond, 4*time.Millisecond),
		withSleep(func(time.Duration) {}),
	)
	defer client.Close()
	client.SetRoute(3, lis.Addr().String())
	if _, err := client.Call(1, 3, echoReq{}); !errors.Is(err, simnet.ErrNodeDead) {
		t.Fatalf("mid-call crash error = %v, want ErrNodeDead", err)
	}
}

func TestHandlerErrorsCrossTheWire(t *testing.T) {
	t.Parallel()
	var handled atomic.Int32
	server := startTransport(t)
	if err := server.Register(20, func(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		handled.Add(1)
		return nil, fmt.Errorf("overlay says: %w", simnet.ErrNodeDead)
	}); err != nil {
		t.Fatal(err)
	}
	if err := server.Register(21, func(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		handled.Add(1)
		return nil, errors.New("application boom")
	}); err != nil {
		t.Fatal(err)
	}
	client := startTransport(t)
	client.SetRoute(20, server.Addr())
	client.SetRoute(21, server.Addr())
	if _, err := client.Call(1, 20, echoReq{}); !errors.Is(err, simnet.ErrNodeDead) {
		t.Fatalf("taxonomy error = %v, want ErrNodeDead", err)
	}
	if _, err := client.Call(1, 21, echoReq{}); err == nil || !strings.Contains(err.Error(), "application boom") {
		t.Fatalf("app error = %v, want message preserved", err)
	}
	// Handler-level errors are authoritative: no retry attempts.
	if got := handled.Load(); got != 2 {
		t.Fatalf("handlers ran %d times, want 2 (no retries)", got)
	}
}

func TestLocalFaultInjection(t *testing.T) {
	t.Parallel()
	faults := simnet.NewFaults(nil)
	server := startTransport(t)
	if err := server.Register(30, echoHandler); err != nil {
		t.Fatal(err)
	}
	client := startTransport(t, WithFaults(faults))
	client.SetRoute(30, server.Addr())
	faults.SetDead(30, true)
	if _, err := client.Call(1, 30, echoReq{}); !errors.Is(err, simnet.ErrNodeDead) {
		t.Fatalf("faulted call error = %v, want ErrNodeDead", err)
	}
	if served := server.ServedCalls(); served != 0 {
		t.Fatalf("faulted call reached the server (%d served)", served)
	}
	faults.SetDead(30, false)
	if _, err := client.Call(1, 30, echoReq{}); err != nil {
		t.Fatalf("revived call: %v", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	t.Parallel()
	tr := startTransport(t)
	if err := tr.Register(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(1, 1, echoReq{}); !errors.Is(err, simnet.ErrClosed) {
		t.Fatalf("call after close = %v, want ErrClosed", err)
	}
	if err := tr.Register(2, echoHandler); !errors.Is(err, simnet.ErrClosed) {
		t.Fatalf("register after close = %v, want ErrClosed", err)
	}
}

func TestDuplicateRegister(t *testing.T) {
	t.Parallel()
	tr := NewTransport()
	defer tr.Close()
	if err := tr.Register(1, echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(1, echoHandler); !errors.Is(err, simnet.ErrDuplicateID) {
		t.Fatalf("duplicate register = %v, want ErrDuplicateID", err)
	}
}

// recordBackoffs drives a full retry schedule against a dead port and
// returns the recorded backoff delays.
func recordBackoffs(t *testing.T, seed uint64, retries int) []time.Duration {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	var delays []time.Duration
	client := NewTransport(
		WithRetries(retries, 10*time.Millisecond, 80*time.Millisecond),
		WithJitterSeed(seed),
		withSleep(func(d time.Duration) { delays = append(delays, d) }),
	)
	defer client.Close()
	client.SetRoute(1, addr)
	if _, err := client.Call(0, 1, echoReq{}); !errors.Is(err, simnet.ErrNodeDead) {
		t.Fatalf("call = %v, want ErrNodeDead", err)
	}
	return delays
}

// TestBackoffDeterministicUnderSeededJitter pins the retry schedule:
// equal jitter seeds must produce identical backoff sequences, every
// delay must lie in the jitter window [d/2, d] of its pre-jitter value
// d = min(base<<k, cap), and a different seed must produce a different
// schedule.
func TestBackoffDeterministicUnderSeededJitter(t *testing.T) {
	t.Parallel()
	const retries = 6
	a := recordBackoffs(t, 1234, retries)
	b := recordBackoffs(t, 1234, retries)
	if len(a) != retries {
		t.Fatalf("recorded %d delays, want %d", len(a), retries)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	for i, d := range a {
		pre := base << uint(i)
		if pre > cap || pre <= 0 {
			pre = cap
		}
		if d < pre/2 || d > pre {
			t.Fatalf("retry %d delay %v outside jitter window [%v, %v]", i, d, pre/2, pre)
		}
	}
	c := recordBackoffs(t, 99, retries)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different jitter seeds produced identical schedules")
	}
}

func TestUnregisteredMessageTypeFailsLoudly(t *testing.T) {
	t.Parallel()
	type stranger struct{ X int }
	server := startTransport(t)
	if err := server.Register(40, echoHandler); err != nil {
		t.Fatal(err)
	}
	client := startTransport(t)
	client.SetRoute(40, server.Addr())
	_, err := client.Call(1, 40, stranger{X: 1})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("unregistered payload error = %v", err)
	}
}

func TestDeregisterAllForReprovision(t *testing.T) {
	t.Parallel()
	server := startTransport(t)
	if err := server.Register(50, echoHandler); err != nil {
		t.Fatal(err)
	}
	client := startTransport(t)
	client.SetRoute(50, server.Addr())
	if _, err := client.Call(1, 50, echoReq{}); err != nil {
		t.Fatal(err)
	}
	server.DeregisterAll()
	if _, err := client.Call(1, 50, echoReq{}); !errors.Is(err, simnet.ErrUnknownNode) {
		t.Fatalf("call after DeregisterAll = %v, want ErrUnknownNode", err)
	}
	// Re-registration after a reset must succeed (fresh provision).
	if err := server.Register(50, echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(1, 50, echoReq{}); err != nil {
		t.Fatalf("call after re-provision: %v", err)
	}
}
