// Package wire is the real-network transport of the repo: a
// simnet.Transport carried over HTTP on TCP loopback or LAN sockets.
// It is the step from simulator to system — the same Chord and
// Kademlia overlays that run over simnet.Direct and the virtual-clock
// transport run unmodified across process boundaries, with per-call
// deadlines, bounded retries with jittered backoff, connection reuse,
// and network failures mapped into the simnet error taxonomy
// (timeouts surface as ErrDropped, unreachable nodes as ErrNodeDead).
//
// Messages cross the wire through a small self-describing codec:
// each RPC payload type is registered once under a stable name
// (RegisterValue / RegisterPointer in the package that owns the type)
// and travels as a JSON envelope. Registration preserves the exact
// in-process shape — handlers that type-switch on value types and
// callers that assert pooled pointer replies both see the same
// concrete types they see over the in-process transports.
package wire

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"

	"github.com/dht-sampling/randompeer/internal/simnet"
)

// codecEntry decodes one registered payload type.
type codecEntry struct {
	name   string
	decode func(data []byte) (simnet.Message, error)
}

var (
	codecMu     sync.RWMutex
	codecByName = make(map[string]codecEntry)
	codecByType = make(map[reflect.Type]string)
)

// RegisterValue registers a payload type that travels as a value: the
// decoder hands handlers a T, matching type switches on the value.
// The name must be globally unique and stable across builds (convention:
// "<package>.<type>"). Registration panics on conflicts, which makes
// double registration a startup failure instead of silent corruption.
func RegisterValue[T any](name string) {
	register(name, reflect.TypeOf((*T)(nil)).Elem(), func(data []byte) (simnet.Message, error) {
		var v T
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
}

// RegisterPointer registers a payload type that travels as *T: the
// decoder allocates a fresh T and hands callers the pointer, matching
// the pooled-reply convention of the overlay RPC layers (the receiving
// side recycles it into its local pool).
func RegisterPointer[T any](name string) {
	register(name, reflect.TypeOf((*T)(nil)), func(data []byte) (simnet.Message, error) {
		v := new(T)
		if err := json.Unmarshal(data, v); err != nil {
			return nil, err
		}
		return v, nil
	})
}

func register(name string, t reflect.Type, decode func([]byte) (simnet.Message, error)) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if prev, ok := codecByName[name]; ok {
		panic(fmt.Sprintf("wire: message name %q already registered (%v)", name, prev))
	}
	if prev, ok := codecByType[t]; ok {
		panic(fmt.Sprintf("wire: message type %v already registered as %q", t, prev))
	}
	codecByName[name] = codecEntry{name: name, decode: decode}
	codecByType[t] = name
}

// encodeMessage serializes a registered payload into its wire name and
// JSON body. Unregistered types fail loudly: they would be a new RPC
// added without wiring it for the network transport.
func encodeMessage(msg simnet.Message) (name string, body []byte, err error) {
	t := reflect.TypeOf(msg)
	codecMu.RLock()
	name, ok := codecByType[t]
	codecMu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("wire: message type %T not registered", msg)
	}
	body, err = json.Marshal(msg)
	if err != nil {
		return "", nil, fmt.Errorf("wire: encoding %T: %w", msg, err)
	}
	return name, body, nil
}

// decodeMessage reconstructs a payload from its wire name and JSON body.
func decodeMessage(name string, body []byte) (simnet.Message, error) {
	codecMu.RLock()
	entry, ok := codecByName[name]
	codecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: unknown message name %q", name)
	}
	msg, err := entry.decode(body)
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %q: %w", name, err)
	}
	return msg, nil
}

// Wire envelope shapes. A request carries the caller and destination
// node ids plus one encoded payload; a response carries either an
// encoded payload or a taxonomy-mapped error.

// rpcRequest is the POST body of one RPC. Trace, when nonzero, is the
// obs trace id of the lookup this RPC belongs to: the serving process
// records the hop it observes into its trace log under that id, so
// /v1/trace?id=N can assemble a cluster-wide hop record.
type rpcRequest struct {
	From  uint64          `json:"from"`
	To    uint64          `json:"to"`
	Type  string          `json:"type"`
	Body  json.RawMessage `json:"body"`
	Trace uint64          `json:"trace,omitempty"`
}

// rpcResponse is the reply body of one RPC.
type rpcResponse struct {
	Type string          `json:"type,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
	Err  *rpcError       `json:"err,omitempty"`
}

// rpcError carries a handler or transport error across the wire. Kind
// identifies the simnet taxonomy sentinel so the caller can rewrap the
// matching error value; "app" covers handler-level errors outside the
// taxonomy, which surface verbatim in Msg.
type rpcError struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// Error kinds on the wire, mapped 1:1 onto the simnet taxonomy — the
// same strings simnet.ErrorClass produces and the obs layer uses as
// label values.
const (
	kindUnknownNode = "unknown"
	kindNodeDead    = "dead"
	kindDropped     = "dropped"
	kindPartitioned = "partitioned"
	kindClosed      = "closed"
	kindApp         = "app"
)

// errorKind maps an error to its wire kind.
func errorKind(err error) string { return simnet.ErrorClass(err) }

// sentinel returns the simnet taxonomy error a wire kind maps back to,
// or nil for application-level errors.
func (e *rpcError) sentinel() error {
	switch e.Kind {
	case kindUnknownNode:
		return simnet.ErrUnknownNode
	case kindNodeDead:
		return simnet.ErrNodeDead
	case kindDropped:
		return simnet.ErrDropped
	case kindPartitioned:
		return simnet.ErrPartitioned
	case kindClosed:
		return simnet.ErrClosed
	default:
		return nil
	}
}
