package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// RPCPath is the URL path every wire transport serves node RPCs on.
// Routes name only host:port; the path is a fixed protocol constant so
// a route entry works against any process running this package.
const RPCPath = "/wire"

// Defaults for per-call behaviour; override with the options below.
const (
	// DefaultCallTimeout bounds one RPC attempt end to end (dial, write,
	// handler, read).
	DefaultCallTimeout = 2 * time.Second
	// DefaultMaxRetries is the number of re-attempts after a failed
	// network attempt (so a call costs at most DefaultMaxRetries+1
	// attempts before it reports the mapped failure).
	DefaultMaxRetries = 2
	// DefaultBackoffBase is the pre-jitter delay before the first retry;
	// each further retry doubles it.
	DefaultBackoffBase = 25 * time.Millisecond
	// DefaultBackoffCap bounds the pre-jitter delay growth.
	DefaultBackoffCap = 400 * time.Millisecond
)

// Transport is a simnet.Transport whose RPCs travel over HTTP on real
// TCP sockets. Each process runs one Transport: locally registered
// handlers are served at RPCPath, and Call routes by destination node
// id — in-process destinations dispatch directly (same semantics as
// simnet.Direct), remote destinations POST the encoded payload to the
// owning process with a per-attempt deadline, bounded retries with
// jittered exponential backoff, and HTTP keep-alive connection reuse.
//
// Failure mapping into the simnet taxonomy: a destination with no
// route or not registered at its owner fails with ErrUnknownNode; an
// attempt that times out fails with ErrDropped (the message is lost in
// flight); a destination whose process is unreachable (connection
// refused/reset, mid-call crash) fails with ErrNodeDead after the
// retry budget. Handler-level errors pass through without retries.
//
// All methods are safe for concurrent use.
type Transport struct {
	mu       sync.RWMutex
	handlers map[simnet.NodeID]simnet.Handler
	routes   map[simnet.NodeID]string
	closed   bool

	meter  simnet.Meter
	faults *simnet.Faults
	served atomic.Int64
	stats  wireStats

	// trace, when armed, records one obs.Hop per Call (client side);
	// tlog, when set, records spans for inbound RPCs carrying a trace
	// id (server side). Both are one atomic pointer load when unused.
	trace atomic.Pointer[obs.Trace]
	tlog  atomic.Pointer[obs.TraceLog]

	callTimeout time.Duration
	maxRetries  int
	backoffBase time.Duration
	backoffCap  time.Duration

	jmu    sync.Mutex
	jitter *rand.Rand
	sleep  func(time.Duration) // test hook; time.Sleep by default

	client *http.Client
	srv    *http.Server
	lis    net.Listener
}

var (
	_ simnet.Transport = (*Transport)(nil)
	_ obs.Traceable    = (*Transport)(nil)
)

// wireStats carries the transport's always-on counters: cheap atomic
// adds beside the meter charges, exposed through RegisterMetrics.
type wireStats struct {
	localCalls   atomic.Int64 // calls dispatched to an in-process handler
	remoteCalls  atomic.Int64 // calls routed to a remote process
	attempts     atomic.Int64 // network attempts (first tries + retries)
	retries      atomic.Int64 // attempts beyond a call's first
	backoffNanos atomic.Int64 // total time spent in retry backoff
	fails        [6]atomic.Int64
}

// failKinds indexes wireStats.fails; the order matches failIndex.
var failKinds = [6]string{kindUnknownNode, kindNodeDead, kindDropped, kindPartitioned, kindClosed, kindApp}

// failIndex maps a taxonomy class to its wireStats.fails slot.
func failIndex(class string) int {
	for i, k := range failKinds {
		if k == class {
			return i
		}
	}
	return len(failKinds) - 1 // "app"
}

// chargeFailure records a failed call on both the meter and the
// per-kind counter.
func (t *Transport) chargeFailure(err error) {
	t.meter.ChargeFailure()
	t.stats.fails[failIndex(simnet.ErrorClass(err))].Add(1)
}

// Option configures a Transport.
type Option func(*Transport)

// WithCallTimeout sets the per-attempt deadline.
func WithCallTimeout(d time.Duration) Option {
	return func(t *Transport) { t.callTimeout = d }
}

// WithRetries sets the retry budget (re-attempts after the first) and
// the pre-jitter backoff base and cap. maxRetries 0 disables retries.
func WithRetries(maxRetries int, base, maxBackoff time.Duration) Option {
	return func(t *Transport) {
		t.maxRetries = maxRetries
		t.backoffBase = base
		t.backoffCap = maxBackoff
	}
}

// WithJitterSeed seeds the backoff jitter source. Equal seeds produce
// identical backoff schedules, which the determinism tests pin down;
// production daemons seed from entropy.
func WithJitterSeed(seed uint64) Option {
	return func(t *Transport) { t.jitter = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)) }
}

// WithFaults attaches a local fault-injection plan, checked on every
// outgoing call exactly as simnet.Direct checks it.
func WithFaults(f *simnet.Faults) Option {
	return func(t *Transport) { t.faults = f }
}

// withSleep replaces the backoff sleeper (tests record the schedule
// instead of waiting it out).
func withSleep(fn func(time.Duration)) Option {
	return func(t *Transport) { t.sleep = fn }
}

// NewTransport returns a wire transport that is ready for local
// registration and outgoing calls. Call Start (or mount RPCHandler on
// an existing server) before expecting inbound RPCs.
func NewTransport(opts ...Option) *Transport {
	t := &Transport{
		handlers:    make(map[simnet.NodeID]simnet.Handler),
		routes:      make(map[simnet.NodeID]string),
		callTimeout: DefaultCallTimeout,
		maxRetries:  DefaultMaxRetries,
		backoffBase: DefaultBackoffBase,
		backoffCap:  DefaultBackoffCap,
		jitter:      rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
		sleep:       time.Sleep,
	}
	for _, opt := range opts {
		opt(t)
	}
	t.client = &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	return t
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves the RPC
// endpoint. Use RPCHandler instead when the process multiplexes the
// transport with other HTTP endpoints on one server.
func (t *Transport) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle(RPCPath, t.RPCHandler())
	srv := &http.Server{Handler: mux}
	t.mu.Lock()
	t.lis, t.srv = lis, srv
	t.mu.Unlock()
	go func() { _ = srv.Serve(lis) }()
	return nil
}

// Addr returns the listening address ("" before Start).
func (t *Transport) Addr() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.lis == nil {
		return ""
	}
	return t.lis.Addr().String()
}

// SetRoute maps a node id to the host:port of the process hosting it.
// Registering a local handler shadows any route for that id.
func (t *Transport) SetRoute(id simnet.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[id] = addr
}

// SetRoutes replaces the whole routing table.
func (t *Transport) SetRoutes(routes map[simnet.NodeID]string) {
	next := make(map[simnet.NodeID]string, len(routes))
	for id, addr := range routes {
		next[id] = addr
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes = next
}

// Register implements simnet.Transport.
func (t *Transport) Register(id simnet.NodeID, h simnet.Handler) error {
	if h == nil {
		return fmt.Errorf("wire: nil handler for node %d", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return simnet.ErrClosed
	}
	if _, ok := t.handlers[id]; ok {
		return fmt.Errorf("%w: %d", simnet.ErrDuplicateID, id)
	}
	t.handlers[id] = h
	return nil
}

// Deregister implements simnet.Transport.
func (t *Transport) Deregister(id simnet.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.handlers, id)
}

// DeregisterAll detaches every local handler (used when a daemon is
// re-provisioned with a fresh overlay partition).
func (t *Transport) DeregisterAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers = make(map[simnet.NodeID]simnet.Handler)
}

// Meter implements simnet.Transport.
func (t *Transport) Meter() *simnet.Meter { return &t.meter }

// ServedCalls returns the number of inbound RPCs this transport's
// handler side has served (successfully or not). Outbound accounting
// lives on the meter, mirroring the in-process transports.
func (t *Transport) ServedCalls() int64 { return t.served.Load() }

// Close implements simnet.Transport: it stops the HTTP server, drops
// every handler and route, and fails subsequent calls with ErrClosed.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.handlers = make(map[simnet.NodeID]simnet.Handler)
	t.routes = make(map[simnet.NodeID]string)
	srv := t.srv
	t.mu.Unlock()
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	t.client.CloseIdleConnections()
	return nil
}

// SetTrace arms (nil disarms) client-side hop tracing: while armed,
// every Call records one obs.Hop, and remote calls carry the trace id
// in their wire envelope so serving processes log the matching span.
// Disarmed, the hook is one atomic pointer load.
func (t *Transport) SetTrace(tr *obs.Trace) { t.trace.Store(tr) }

// SetTraceLog installs the server-side span log: every inbound RPC
// whose envelope carries a trace id records the hop this process
// observed (handler wall time, outcome class). The daemon queries the
// log through /v1/trace?id=N.
func (t *Transport) SetTraceLog(l *obs.TraceLog) { t.tlog.Store(l) }

// Call implements simnet.Transport.
func (t *Transport) Call(from, to simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	tr := t.trace.Load()
	if tr == nil {
		resp, _, _, err := t.call(from, to, msg, 0)
		return resp, err
	}
	start := time.Now()
	resp, remote, attempts, err := t.call(from, to, msg, tr.ID())
	tr.Record(obs.Hop{
		From:      uint64(from),
		To:        uint64(to),
		RPC:       simnet.MessageName(msg),
		WallNanos: time.Since(start).Nanoseconds(),
		Outcome:   simnet.ErrorClass(err),
		Remote:    remote,
		Attempts:  attempts,
	})
	return resp, err
}

// call is the body of Call: one logical RPC, dispatched in-process or
// over the network. It reports whether the destination was remote and
// how many network attempts the call consumed (0 for local dispatch),
// and records the wall round trip of every success into the meter's
// latency histogram — which is what the wire_rpc_duration_seconds
// metric exposes, so histogram count reconciles with meter calls by
// construction.
func (t *Transport) call(from, to simnet.NodeID, msg simnet.Message, traceID uint64) (simnet.Message, bool, int, error) {
	t.mu.RLock()
	closed := t.closed
	h := t.handlers[to]
	addr := t.routes[to]
	t.mu.RUnlock()
	if closed {
		return nil, false, 0, simnet.ErrClosed
	}
	if err := t.faults.Check(from, to, msg); err != nil {
		t.chargeFailure(err)
		return nil, false, 0, fmt.Errorf("call %d->%d: %w", from, to, err)
	}
	if h != nil {
		// In-process destination: dispatch directly, exactly like
		// simnet.Direct (no transport locks held during the handler).
		t.stats.localCalls.Add(1)
		start := time.Now()
		resp, err := h(from, msg)
		if err != nil {
			t.chargeFailure(err)
			return nil, false, 0, fmt.Errorf("call %d->%d: %w", from, to, err)
		}
		t.meter.ChargeSuccess()
		t.meter.RecordLatency(time.Since(start))
		return resp, false, 0, nil
	}
	if addr == "" {
		t.chargeFailure(simnet.ErrUnknownNode)
		return nil, true, 0, fmt.Errorf("call %d->%d: %w", from, to, simnet.ErrUnknownNode)
	}
	t.stats.remoteCalls.Add(1)
	start := time.Now()
	resp, attempts, err := t.callRemote(from, to, addr, msg, traceID)
	if err != nil {
		t.chargeFailure(err)
		return nil, true, attempts, err
	}
	t.meter.ChargeSuccess()
	t.meter.RecordLatency(time.Since(start))
	return resp, true, attempts, nil
}

// callRemote performs one logical RPC against a remote process:
// bounded attempts with jittered exponential backoff between them,
// each attempt under its own deadline. It returns the number of
// attempts consumed.
func (t *Transport) callRemote(from, to simnet.NodeID, addr string, msg simnet.Message, traceID uint64) (simnet.Message, int, error) {
	name, body, err := encodeMessage(msg)
	if err != nil {
		return nil, 0, err
	}
	reqBody, err := json.Marshal(rpcRequest{From: uint64(from), To: uint64(to), Type: name, Body: body, Trace: traceID})
	if err != nil {
		return nil, 0, fmt.Errorf("wire: encoding request envelope: %w", err)
	}
	url := "http://" + addr + RPCPath
	var lastErr error
	attempts := t.maxRetries + 1
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := t.backoff(attempt)
			t.stats.retries.Add(1)
			t.stats.backoffNanos.Add(int64(d))
			t.sleep(d)
		}
		t.stats.attempts.Add(1)
		reply, err := t.attempt(url, reqBody)
		if err != nil {
			lastErr = err
			continue
		}
		if reply.Err != nil {
			// The remote process answered: handler-level and taxonomy
			// errors are authoritative, not transient — no retry.
			if sentinel := reply.Err.sentinel(); sentinel != nil {
				return nil, attempt + 1, fmt.Errorf("call %d->%d: %w (remote: %s)", from, to, sentinel, reply.Err.Msg)
			}
			return nil, attempt + 1, fmt.Errorf("call %d->%d: remote: %s", from, to, reply.Err.Msg)
		}
		resp, err := decodeMessage(reply.Type, reply.Body)
		if err != nil {
			return nil, attempt + 1, fmt.Errorf("call %d->%d: %w", from, to, err)
		}
		return resp, attempt + 1, nil
	}
	return nil, attempts, fmt.Errorf("call %d->%d: %w (%d attempts to %s: %v)",
		from, to, mapNetError(lastErr), attempts, addr, lastErr)
}

// attempt performs one HTTP POST under the per-attempt deadline.
// Network-level failures return an error; a parsed response envelope
// (success or remote error) returns nil.
func (t *Transport) attempt(url string, body []byte) (*rpcResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), t.callTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http status %d: %s", httpResp.StatusCode, data)
	}
	var reply rpcResponse
	if err := json.Unmarshal(data, &reply); err != nil {
		return nil, fmt.Errorf("malformed response envelope: %w", err)
	}
	return &reply, nil
}

// backoff returns the jittered delay before the given retry attempt
// (attempt >= 1): base*2^(attempt-1) capped at backoffCap, then
// half-jittered into [d/2, d] so synchronized retry storms decorrelate
// while the schedule stays bounded.
func (t *Transport) backoff(attempt int) time.Duration {
	d := t.backoffBase << uint(attempt-1)
	if d > t.backoffCap || d <= 0 {
		d = t.backoffCap
	}
	half := d / 2
	t.jmu.Lock()
	j := time.Duration(t.jitter.Int64N(int64(half) + 1))
	t.jmu.Unlock()
	return half + j
}

// mapNetError maps an exhausted network-level failure into the simnet
// taxonomy: deadline expiries mean the message (or its reply) was lost
// in flight — ErrDropped; unreachable-network/host errors are
// partition-shaped — the destination process may be fine but no route
// reaches it — ErrPartitioned; everything else (connection
// refused/reset, mid-call EOF) means the destination process is gone —
// ErrNodeDead. The distinction matters operationally: a burst of
// "partitioned" failures in randpeerd's wire_rpc_failures_total metric
// points at the network (or an adversary segmenting it), not at
// crashed peers.
func mapNetError(err error) error {
	if err == nil {
		return simnet.ErrNodeDead
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return simnet.ErrDropped
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return simnet.ErrDropped
	}
	if errors.Is(err, syscall.ENETUNREACH) || errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETDOWN) {
		return simnet.ErrPartitioned
	}
	return simnet.ErrNodeDead
}

// RPCHandler returns the HTTP handler serving inbound node RPCs. Mount
// it at RPCPath.
func (t *Transport) RPCHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.served.Add(1)
		if r.Method != http.MethodPost {
			http.Error(w, "wire: POST only", http.StatusMethodNotAllowed)
			return
		}
		var req rpcRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("wire: malformed request: %v", err), http.StatusBadRequest)
			return
		}
		writeReply(w, t.serveRPC(&req))
	})
}

// serveRPC dispatches one decoded inbound RPC to its local handler.
// When the request carries a trace id and a trace log is installed,
// the hop this process observed is recorded under that id.
func (t *Transport) serveRPC(req *rpcRequest) *rpcResponse {
	start := time.Now()
	resp := t.dispatchRPC(req)
	if req.Trace != 0 {
		if l := t.tlog.Load(); l != nil {
			outcome := "ok"
			if resp.Err != nil {
				outcome = resp.Err.Kind
			}
			l.Record(req.Trace, obs.Hop{
				From:      req.From,
				To:        req.To,
				RPC:       req.Type,
				WallNanos: time.Since(start).Nanoseconds(),
				Outcome:   outcome,
				Remote:    true,
			})
		}
	}
	return resp
}

// dispatchRPC is the untraced body of serveRPC.
func (t *Transport) dispatchRPC(req *rpcRequest) *rpcResponse {
	to := simnet.NodeID(req.To)
	t.mu.RLock()
	closed := t.closed
	h := t.handlers[to]
	t.mu.RUnlock()
	if closed {
		return &rpcResponse{Err: &rpcError{Kind: kindClosed, Msg: simnet.ErrClosed.Error()}}
	}
	if h == nil {
		return &rpcResponse{Err: &rpcError{Kind: kindUnknownNode, Msg: fmt.Sprintf("no node %d here", req.To)}}
	}
	msg, err := decodeMessage(req.Type, req.Body)
	if err != nil {
		return &rpcResponse{Err: &rpcError{Kind: kindApp, Msg: err.Error()}}
	}
	resp, err := h(simnet.NodeID(req.From), msg)
	if err != nil {
		return &rpcResponse{Err: &rpcError{Kind: errorKind(err), Msg: err.Error()}}
	}
	name, body, err := encodeMessage(resp)
	if err != nil {
		return &rpcResponse{Err: &rpcError{Kind: kindApp, Msg: err.Error()}}
	}
	return &rpcResponse{Type: name, Body: body}
}

// RegisterMetrics exposes the transport's counters and its per-call
// latency histogram on an obs registry under the wire_ prefix. The
// histogram is the meter's: every successful Call records its wall
// round trip there, so the exposed count equals the meter's charged
// calls — the reconciliation the cluster smoke test asserts.
func (t *Transport) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("wire_rpc_calls_total",
		"Outbound RPCs by destination locality.",
		func() float64 { return float64(t.stats.localCalls.Load()) },
		obs.Label{Name: "dest", Value: "local"})
	r.CounterFunc("wire_rpc_calls_total",
		"Outbound RPCs by destination locality.",
		func() float64 { return float64(t.stats.remoteCalls.Load()) },
		obs.Label{Name: "dest", Value: "remote"})
	for i, kind := range failKinds {
		c := &t.stats.fails[i]
		r.CounterFunc("wire_rpc_failures_total",
			"Failed outbound RPCs by simnet taxonomy class.",
			func() float64 { return float64(c.Load()) },
			obs.Label{Name: "kind", Value: kind})
	}
	r.CounterFunc("wire_rpc_attempts_total",
		"Network attempts (first tries plus retries) for remote RPCs.",
		func() float64 { return float64(t.stats.attempts.Load()) })
	r.CounterFunc("wire_rpc_retries_total",
		"Retry attempts beyond each remote RPC's first.",
		func() float64 { return float64(t.stats.retries.Load()) })
	r.CounterFunc("wire_rpc_backoff_seconds_total",
		"Total time spent sleeping in retry backoff.",
		func() float64 { return float64(t.stats.backoffNanos.Load()) / 1e9 })
	r.CounterFunc("wire_rpc_served_total",
		"Inbound RPCs served by this process (successfully or not).",
		func() float64 { return float64(t.served.Load()) })
	r.HistogramFunc("wire_rpc_duration_seconds",
		"Wall round-trip time of successful outbound RPCs.",
		func() obs.HistSnapshot {
			l := t.meter.Latency()
			return obs.HistSnapshot{Count: l.Count, SumNanos: l.SumNanos, Buckets: l.Buckets}
		})
}

// writeReply serializes one response envelope.
func writeReply(w http.ResponseWriter, resp *rpcResponse) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// The connection broke mid-reply; the caller's retry/backoff
		// path owns recovery.
		return
	}
}
