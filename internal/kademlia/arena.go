package kademlia

import (
	"sync"
	"sync/atomic"

	"github.com/dht-sampling/randompeer/internal/ring"
)

// Flat index-based node storage, the Kademlia counterpart of the arena
// in internal/chord (see the long comment there for the full design).
//
// Every node the network knows about — live members, crashed members
// whose state in-flight RPCs may still read, and external contacts
// learned over the wire — occupies one dense uint32 slot in a
// struct-of-arrays arena. Ring pointers are single packed uint32 slot
// references; the k-buckets live in a shared region pool: one region
// per non-empty bucket holding a length header, up to k entry slots
// and a small replacement cache, all as uint32 slot references in
// large contiguous chunks. No per-node heap objects, no
// map[Point]*Node, no per-bucket []Point slices — a 2^21-node overlay
// is a few hundred large allocations instead of hundreds of millions
// of small ones.
//
// The ID↔slot bridge is the copy-on-write sorted membership snapshot
// (Network.members) plus an aligned slot snapshot (Network.memberSlots)
// resolved by binary search; non-member slots (zombies and external
// contacts) resolve through a small overflow map.
//
// Locking mirrors chord: striped RWMutexes guard per-slot routing
// state (ring pointers and the slot's bucket regions), network.mu
// guards membership, the bridge, slot allocation and the alive flags,
// and lock order is network.mu before stripe. Slot identifiers are
// read and written atomically so translating a slot reference found in
// another node's buckets needs no cross-stripe locking. The region
// pool has its own leaf mutex (regionMu) ordered after the stripes:
// allocation only ever appends a chunk (copy-on-write of the chunk
// index, loaded atomically by readers), so region data never moves.
type arena struct {
	stripes [numStripes]sync.RWMutex

	// used is the number of allocated slots. Every per-slot array has
	// len == cap spanning the arena capacity, so growth (which swaps
	// the backing arrays under all stripes) is the only operation that
	// ever changes a slice header.
	used int

	ids   []uint64 // slot -> identifier; atomic access
	alive []bool   // slot hosts a live local member (network.mu)

	succs []uint32 // ring successor slot (self when alone)
	preds []uint32 // ring predecessor slot (self when alone)
	// bucketRefs holds each slot's k-bucket region references, stride
	// idBits. noRegion (zero, so freshly grown arrays are valid) marks
	// a bucket with no region yet.
	bucketRefs []uint32

	handles []Node // preconstructed public handles, one per slot

	free     []uint32 // recycled slots ready for reuse (LIFO)
	freeBits []uint64 // bitset marking slots currently on free
	overflow map[ring.Point]uint32
	// reclaimable counts dead (zombie or external) slots not yet on
	// the free list; it triggers the mark-and-sweep scavenger.
	reclaimable int

	// Region pool. Regions live in fixed-size chunks so they never
	// move: chunks is the copy-on-write chunk index (append-only,
	// atomic load to read), regionMu is a leaf lock guarding
	// allocation state, nextRegion the bump pointer (1-based so the
	// zero ref means "no region"), regionFree the recycled refs.
	chunks     atomic.Pointer[[][]uint32]
	regionMu   sync.Mutex
	nextRegion uint32
	regionFree []uint32
}

const (
	numStripes = 256
	stripeMask = numStripes - 1
	noSlot     = ^uint32(0)
	// noRegion marks an empty bucket. It is zero so the zero-value
	// bucketRefs rows produced by arena growth are already correct.
	noRegion = 0
	// regionChunk is the number of regions per pool chunk.
	regionChunk = 1024
	// regionBatch is how many regions a build worker reserves per trip
	// to the allocator.
	regionBatch = 256
)

// stripe returns the lock guarding slot s's routing state.
func (a *arena) stripe(s uint32) *sync.RWMutex { return &a.stripes[s&stripeMask] }

// id returns slot s's identifier. Callers must hold a stripe or the
// network mutex (either mode) to pin the backing array; the element
// itself is read atomically, so s may belong to any stripe.
func (a *arena) id(s uint32) ring.Point {
	return ring.Point(atomic.LoadUint64(&a.ids[s]))
}

// lockAllStripes acquires every stripe in index order.
func (a *arena) lockAllStripes() {
	for i := range a.stripes {
		a.stripes[i].Lock()
	}
}

// unlockAllStripes releases every stripe.
func (a *arena) unlockAllStripes() {
	for i := range a.stripes {
		a.stripes[i].Unlock()
	}
}

// growLocked reallocates every per-slot array to the new capacity,
// copying the used prefix. Callers must hold network.mu plus every
// stripe, except during single-threaded construction.
func (n *Network) growLocked(capacity int) {
	a := &n.st
	if capacity <= cap(a.ids) {
		return
	}
	a.ids = growCopy(a.ids, capacity)
	a.alive = growCopy(a.alive, capacity)
	a.succs = growCopy(a.succs, capacity)
	a.preds = growCopy(a.preds, capacity)
	a.bucketRefs = growCopy(a.bucketRefs, capacity*idBits)
	a.freeBits = growCopy(a.freeBits, (capacity+63)/64)
	handles := make([]Node, capacity)
	copy(handles, a.handles)
	a.handles = handles
}

// growCopy returns a full-length slice of the new capacity holding a
// copy of src.
func growCopy[T any](src []T, capacity int) []T {
	dst := make([]T, capacity)
	copy(dst, src)
	return dst
}

// lookupLocked resolves an id to its slot: members bridge first, then
// the overflow map. Caller holds network.mu (either mode).
func (n *Network) lookupLocked(id ring.Point) (uint32, bool) {
	if rank, ok := ring.Rank(n.members, id); ok {
		return n.memberSlots[rank], true
	}
	s, ok := n.st.overflow[id]
	return s, ok
}

// intern resolves id to a slot, allocating an external slot when the
// id has never been seen. On the steady-state path (id is a member)
// this is one binary search under a read lock and allocates nothing.
// Callers must not hold any stripe (lock order: mu before stripe).
func (n *Network) intern(id ring.Point) uint32 {
	n.mu.RLock()
	s, ok := n.lookupLocked(id)
	n.mu.RUnlock()
	if ok {
		return s
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.lookupLocked(id); ok {
		return s
	}
	s = n.newSlotLocked(id)
	n.st.overflow[id] = s
	n.st.reclaimable++ // external slots are reclaimable once unreferenced
	return s
}

// slotOf resolves an id without allocating; the second result is false
// for ids the network has never seen (or whose slot was scavenged).
func (n *Network) slotOf(id ring.Point) (uint32, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.lookupLocked(id)
}

// liveSlot resolves an id to the slot of a live locally-hosted member.
func (n *Network) liveSlot(id ring.Point) (uint32, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	rank, ok := ring.Rank(n.members, id)
	if !ok {
		return 0, false
	}
	s := n.memberSlots[rank]
	return s, n.st.alive[s]
}

// newSlotLocked allocates a slot for id and resets its routing state
// to the fresh-node baseline. Caller holds network.mu; the new slot is
// not yet live and not yet in any bridge structure.
func (n *Network) newSlotLocked(id ring.Point) uint32 {
	a := &n.st
	if len(a.free) == 0 && a.reclaimable >= scavengeThreshold(a.used) {
		n.scavengeLocked()
	}
	var s uint32
	if len(a.free) > 0 {
		s = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		a.freeBits[s/64] &^= 1 << (s % 64)
	} else {
		if a.used == cap(a.ids) {
			next := a.used * 2
			if next < 16 {
				next = 16
			}
			a.lockAllStripes()
			n.growLocked(next)
			a.unlockAllStripes()
		}
		s = uint32(a.used)
		a.used++
	}
	n.resetSlotLocked(s, id)
	return s
}

// resetSlotLocked rewrites slot s to the fresh-node baseline for id:
// ring pointers to self, empty buckets (existing regions return to the
// pool). Caller holds network.mu; the slot must not be referenced by
// any live node.
func (n *Network) resetSlotLocked(s uint32, id ring.Point) {
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	atomic.StoreUint64(&a.ids[s], uint64(id))
	a.succs[s] = s
	a.preds[s] = s
	n.freeRegionRow(s)
	a.handles[s] = Node{net: n, slot: s}
	st.Unlock()
}

// scavengeThreshold is the dead-slot count that triggers a sweep.
func scavengeThreshold(used int) int {
	if t := used / 8; t > 64 {
		return t
	}
	return 64
}

// scavengeLocked frees every dead slot no live member references: it
// marks the slots reachable from the membership bridge and every live
// node's ring pointers and bucket regions (entries and replacement
// caches), then moves unmarked dead slots to the free list (LIFO, so
// reuse order is deterministic), returns their regions to the pool and
// drops their overflow entries. Caller holds network.mu.
func (n *Network) scavengeLocked() int {
	a := &n.st
	a.lockAllStripes()
	defer a.unlockAllStripes()
	marks := make([]uint64, (a.used+63)/64)
	mark := func(s uint32) { marks[s/64] |= 1 << (s % 64) }
	for _, s := range n.memberSlots {
		mark(s)
	}
	for _, s := range n.memberSlots {
		if !a.alive[s] {
			continue // remote members of a partitioned build hold no local state
		}
		mark(a.succs[s])
		mark(a.preds[s])
		row := a.bucketRefs[int(s)*idBits : int(s)*idBits+idBits]
		for _, ref := range row {
			if ref == noRegion {
				continue
			}
			reg := n.region(ref)
			for _, c := range regEntries(reg) {
				mark(c)
			}
			for _, c := range regCache(reg, n.cfg.BucketSize) {
				mark(c)
			}
		}
	}
	freed := 0
	for s := uint32(0); int(s) < a.used; s++ {
		if a.alive[s] || marks[s/64]&(1<<(s%64)) != 0 || a.freeBits[s/64]&(1<<(s%64)) != 0 {
			continue
		}
		a.free = append(a.free, s)
		a.freeBits[s/64] |= 1 << (s % 64)
		n.freeRegionRow(s)
		freed++
	}
	if freed > 0 {
		for id, s := range a.overflow {
			if a.freeBits[s/64]&(1<<(s%64)) != 0 {
				delete(a.overflow, id)
			}
		}
	}
	a.reclaimable -= freed
	if a.reclaimable < 0 {
		a.reclaimable = 0
	}
	return freed
}

// Scavenge forces one slot-recycling sweep and reports how many dead
// slots were freed for reuse. The network runs sweeps automatically
// once enough reclaimable slots accumulate; tests and operators use
// this to observe recycling deterministically.
func (n *Network) Scavenge() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.scavengeLocked()
}

// StorageStats reports the flat storage layout's occupancy.
type StorageStats struct {
	// Slots is the arena size: every node ever seen occupies one slot
	// until scavenged.
	Slots int
	// Live is the number of slots hosting live locally-hosted members.
	Live int
	// Free is the number of recycled slots awaiting reuse.
	Free int
	// Reclaimable is the number of dead slots not yet recycled (they
	// free once no live node's routing state references them).
	Reclaimable int
	// Regions is the number of bucket regions ever allocated from the
	// pool; FreeRegions of them are recycled and awaiting reuse.
	Regions     int
	FreeRegions int
}

// StorageStats returns the current slot-arena occupancy.
func (n *Network) StorageStats() StorageStats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	live := 0
	for _, s := range n.memberSlots {
		if n.st.alive[s] {
			live++
		}
	}
	n.st.regionMu.Lock()
	regions := int(n.st.nextRegion)
	freeRegions := len(n.st.regionFree)
	n.st.regionMu.Unlock()
	return StorageStats{
		Slots:       n.st.used,
		Live:        live,
		Free:        len(n.st.free),
		Reclaimable: n.st.reclaimable,
		Regions:     regions,
		FreeRegions: freeRegions,
	}
}

// region returns the backing words of a region reference (1-based;
// callers must not pass noRegion). The chunk index is loaded
// atomically, so this is safe under any stripe while other goroutines
// allocate: chunks only ever gain entries and existing chunk data
// never moves.
func (n *Network) region(ref uint32) []uint32 {
	chunks := *n.st.chunks.Load()
	i := int(ref - 1)
	c := chunks[i/regionChunk]
	off := (i % regionChunk) * n.regStride
	return c[off : off+n.regStride]
}

// allocRegion hands out one zeroed region. regionMu is a leaf lock, so
// this is callable while holding a stripe (the caller installing the
// ref into its bucket row).
func (n *Network) allocRegion() uint32 {
	a := &n.st
	a.regionMu.Lock()
	var ref uint32
	if ln := len(a.regionFree); ln > 0 {
		ref = a.regionFree[ln-1]
		a.regionFree = a.regionFree[:ln-1]
	} else {
		n.growRegionsLocked(1)
		a.nextRegion++
		ref = a.nextRegion
	}
	a.regionMu.Unlock()
	n.region(ref)[0] = 0 // safe: the region is owned by the caller alone
	return ref
}

// allocRegionBlock reserves cnt consecutive fresh region refs and
// returns the first; the bulk build path uses it to batch allocator
// trips.
func (n *Network) allocRegionBlock(cnt int) uint32 {
	a := &n.st
	a.regionMu.Lock()
	n.growRegionsLocked(cnt)
	first := a.nextRegion + 1
	a.nextRegion += uint32(cnt)
	a.regionMu.Unlock()
	return first
}

// growRegionsLocked appends chunks until cnt more regions fit past the
// bump pointer. Caller holds regionMu. The chunk index is replaced
// copy-on-write so concurrent region() readers never see a partial
// append.
func (n *Network) growRegionsLocked(cnt int) {
	a := &n.st
	old := *a.chunks.Load()
	need := (int(a.nextRegion) + cnt + regionChunk - 1) / regionChunk
	if need <= len(old) {
		return
	}
	next := make([][]uint32, need)
	copy(next, old)
	for i := len(old); i < need; i++ {
		next[i] = make([]uint32, regionChunk*n.regStride)
	}
	a.chunks.Store(&next)
}

// releaseRegions returns refs to the pool.
func (n *Network) releaseRegions(refs []uint32) {
	if len(refs) == 0 {
		return
	}
	a := &n.st
	a.regionMu.Lock()
	a.regionFree = append(a.regionFree, refs...)
	a.regionMu.Unlock()
}

// freeRegionRow returns every region of slot s to the pool and clears
// the row. The caller must hold stripe(s) (or own the slot outright).
func (n *Network) freeRegionRow(s uint32) {
	a := &n.st
	row := a.bucketRefs[int(s)*idBits : int(s)*idBits+idBits]
	var back [idBits]uint32
	freed := back[:0]
	for b, ref := range row {
		if ref != noRegion {
			freed = append(freed, ref)
			row[b] = noRegion
		}
	}
	n.releaseRegions(freed)
}

// regionBatcher hands one build worker regions in blocks of
// regionBatch, cutting allocator-mutex trips by that factor; leftover
// refs return to the pool when the worker finishes its shard.
type regionBatcher struct {
	n         *Network
	next, end uint32
}

// alloc returns one zeroed region ref from the worker's batch.
func (rb *regionBatcher) alloc() uint32 {
	if rb.next == rb.end {
		rb.next = rb.n.allocRegionBlock(regionBatch)
		rb.end = rb.next + regionBatch
	}
	ref := rb.next
	rb.next++
	rb.n.region(ref)[0] = 0
	return ref
}

// release returns the unused remainder of the batch to the pool.
func (rb *regionBatcher) release() {
	refs := make([]uint32, 0, rb.end-rb.next)
	for r := rb.next; r < rb.end; r++ {
		refs = append(refs, r)
	}
	rb.n.releaseRegions(refs)
	rb.next, rb.end = 0, 0
}

// spliceIn returns a copy of s with v inserted at index i
// (copy-on-write, the aligned-snapshot counterpart of
// ring.InsertSorted).
func spliceIn[T any](s []T, i int, v T) []T {
	out := make([]T, len(s)+1)
	copy(out, s[:i])
	out[i] = v
	copy(out[i+1:], s[i:])
	return out
}

// spliceOut returns a copy of s with index i removed (copy-on-write).
func spliceOut[T any](s []T, i int) []T {
	out := make([]T, len(s)-1)
	copy(out, s[:i])
	copy(out[i:], s[i+1:])
	return out
}
