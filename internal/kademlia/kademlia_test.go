package kademlia

import (
	"cmp"
	"math/rand/v2"
	"slices"
	"sync"
	"testing"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

func testRing(t *testing.T, seed uint64, n int) *ring.Ring {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xca0d))
	r, err := ring.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestXorMetric(t *testing.T) {
	t.Parallel()
	if xorDist(5, 5) != 0 {
		t.Error("distance to self must be zero")
	}
	if xorDist(3, 12) != xorDist(12, 3) {
		t.Error("xor distance must be symmetric")
	}
	// Unidirectionality: for a fixed a and distance d there is exactly
	// one b with dist(a,b) = d.
	if got := ring.Point(uint64(7) ^ uint64(9)); xorDist(7, got^0) == 0 {
		t.Error("sanity")
	}
	if bucketIndex(1) != 0 || bucketIndex(2) != 1 || bucketIndex(3) != 1 || bucketIndex(1<<63) != 63 {
		t.Errorf("bucket octaves wrong: %d %d %d %d", bucketIndex(1), bucketIndex(2), bucketIndex(3), bucketIndex(1<<63))
	}
}

func TestBucketLRU(t *testing.T) {
	t.Parallel()
	const k = 3
	reg := make([]uint32, 1+k+replacementCacheLen)
	regTouch(reg, k, 1)
	regTouch(reg, k, 2)
	regTouch(reg, k, 3)
	// Re-seeing an entry moves it to the most-recently-seen tail.
	regTouch(reg, k, 1)
	if ents := regEntries(reg); ents[0] != 2 || ents[2] != 1 {
		t.Fatalf("LRU order wrong: %v", ents)
	}
	// A new contact on a full bucket lands in the replacement cache.
	regTouch(reg, k, 9)
	if cache := regCache(reg, k); len(regEntries(reg)) != k || len(cache) != 1 || cache[0] != 9 {
		t.Fatalf("full bucket must cache the newcomer: entries=%v cache=%v", regEntries(reg), cache)
	}
	// Evicting the LRU entry and promoting pulls the cached contact in.
	regRemove(reg, k, 2)
	regPromote(reg, k)
	if ents := regEntries(reg); len(ents) != k || ents[k-1] != 9 {
		t.Fatalf("promotion failed: entries=%v cache=%v", ents, regCache(reg, k))
	}
	if cache := regCache(reg, k); len(cache) != 0 {
		t.Fatalf("cache should drain on promote: %v", cache)
	}
}

func TestBucketCacheBounded(t *testing.T) {
	t.Parallel()
	const k = 1
	reg := make([]uint32, 1+k+replacementCacheLen)
	regTouch(reg, k, 1)
	for i := 2; i <= 10; i++ {
		regTouch(reg, k, uint32(i))
	}
	if cache := regCache(reg, k); len(cache) > replacementCacheLen {
		t.Fatalf("cache grew to %d (cap %d)", len(cache), replacementCacheLen)
	}
}

func TestBuildStaticVerifies(t *testing.T) {
	t.Parallel()
	r := testRing(t, 1, 96)
	net, err := BuildStatic(Config{BucketSize: 4}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.VerifyRing(); err != nil {
		t.Fatal(err)
	}
	if err := net.VerifyTables(); err != nil {
		t.Fatal(err)
	}
	// Static fill is complete: every bucket holds min(k, octave
	// population) contacts.
	members := net.Members()
	for _, id := range members {
		nd, err := net.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		var pop [idBits]int
		for _, m := range members {
			if m != id {
				pop[bucketIndex(xorDist(id, m))]++
			}
		}
		for i := 0; i < idBits; i++ {
			want := min(4, pop[i])
			if got := len(nd.BucketEntries(i)); got != want {
				t.Fatalf("node %v bucket %d has %d entries, want %d", id, i, got, want)
			}
		}
	}
}

func TestFindClosestMatchesGroundTruth(t *testing.T) {
	t.Parallel()
	r := testRing(t, 2, 128)
	cfg := Config{BucketSize: 8, Alpha: 3}
	net, err := BuildStatic(cfg, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	members := net.Members()
	for trial := 0; trial < 50; trial++ {
		target := ring.Point(rng.Uint64())
		res, err := net.FindClosest(r.At(0), target)
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth: the k XOR-closest members.
		want := make([]ring.Point, len(members))
		copy(want, members)
		sortByXor(target, want)
		k := cfg.BucketSize
		for i := 0; i < k && i < len(want); i++ {
			if res.Closest[i] != want[i] {
				t.Fatalf("lookup(%v) result %d = %v, want %v", target, i, res.Closest[i], want[i])
			}
		}
		if res.Rounds < 1 || res.RPCs < res.Rounds {
			t.Fatalf("implausible cost: rounds=%d rpcs=%d", res.Rounds, res.RPCs)
		}
	}
}

func sortByXor(target ring.Point, ids []ring.Point) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			less := xorDist(target, ids[j]) < xorDist(target, ids[j-1])
			if !less {
				break
			}
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func TestResolveOwnerMatchesRing(t *testing.T) {
	t.Parallel()
	r := testRing(t, 3, 200)
	net, err := BuildStatic(Config{BucketSize: 8}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 300; trial++ {
		x := ring.Point(rng.Uint64())
		got, _, err := net.ResolveOwner(r.At(0), x)
		if err != nil {
			t.Fatalf("ResolveOwner(%v): %v", x, err)
		}
		if want := r.At(r.Successor(x)); got != want {
			t.Fatalf("ResolveOwner(%v) = %v, want clockwise successor %v", x, got, want)
		}
	}
	// Identity: resolving a peer's own point returns that peer.
	for i := 0; i < r.Len(); i += 17 {
		got, _, err := net.ResolveOwner(r.At(0), r.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != r.At(i) {
			t.Fatalf("ResolveOwner at peer point %v returned %v", r.At(i), got)
		}
	}
}

// TestResolveOwnerChaseIsCheap verifies the block argument from the
// ResolveOwner doc comment empirically: with complete static tables
// the ring-pointer verification costs O(1) RPCs per call, not a walk.
func TestResolveOwnerChaseIsCheap(t *testing.T) {
	t.Parallel()
	r := testRing(t, 4, 512)
	net, err := BuildStatic(Config{BucketSize: 16}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 11))
	const trials = 200
	total := 0
	for trial := 0; trial < trials; trial++ {
		_, stats, err := net.ResolveOwner(r.At(0), ring.Point(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		total += stats.ChaseRPCs
	}
	if avg := float64(total) / trials; avg > 2.5 {
		t.Fatalf("owner chase averaged %.2f RPCs; the two-sided check should need at most 2", avg)
	}
}

func TestJoinIntegratesNode(t *testing.T) {
	t.Parallel()
	r := testRing(t, 5, 48)
	pts := r.Points()
	net, err := BuildStatic(Config{BucketSize: 8}, simnet.NewDirect(), pts[:40])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[40:] {
		if _, err := net.Join(p, pts[0]); err != nil {
			t.Fatalf("join of %v: %v", p, err)
		}
	}
	if got := net.NumAlive(); got != 48 {
		t.Fatalf("NumAlive = %d, want 48", got)
	}
	// Joins splice eagerly, so the ring is perfect with no maintenance.
	if err := net.VerifyRing(); err != nil {
		t.Fatal(err)
	}
	if err := net.VerifyTables(); err != nil {
		t.Fatal(err)
	}
	// The joiner's self-lookup announced it: other nodes learned it.
	known := 0
	for _, id := range net.Members() {
		nd, err := net.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range nd.Contacts() {
			if c == pts[40] {
				known++
				break
			}
		}
	}
	if known < 3 {
		t.Fatalf("only %d nodes learned the joiner; the self-lookup should announce it", known)
	}
}

func TestJoinDuplicateAndBadBootstrap(t *testing.T) {
	t.Parallel()
	r := testRing(t, 6, 8)
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(r.At(0), r.At(1)); err == nil {
		t.Error("joining an existing id should fail")
	}
	if _, err := net.Join(ring.Point(12345), ring.Point(54321)); err == nil {
		t.Error("joining via an unknown bootstrap should fail")
	}
}

func TestCrashAndMaintenanceRepair(t *testing.T) {
	t.Parallel()
	r := testRing(t, 7, 32)
	// k large enough that survivors know each other and can re-splice.
	net, err := BuildStatic(Config{BucketSize: 16}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{3, 17, 29} {
		if err := net.Crash(r.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	net.RunMaintenance(2)
	if err := net.VerifyRing(); err != nil {
		t.Fatalf("ring not repaired: %v", err)
	}
	if err := net.VerifyTables(); err != nil {
		t.Fatalf("tables not cleaned: %v", err)
	}
	// Lookups and owner resolution still match ground truth on the
	// surviving membership.
	members := net.Members()
	live, err := ring.New(members)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(13, 13))
	for trial := 0; trial < 50; trial++ {
		x := ring.Point(rng.Uint64())
		got, _, err := net.ResolveOwner(members[0], x)
		if err != nil {
			t.Fatal(err)
		}
		if want := live.At(live.Successor(x)); got != want {
			t.Fatalf("post-crash ResolveOwner(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGrowFromSingleNode(t *testing.T) {
	t.Parallel()
	r := testRing(t, 8, 24)
	net := NewNetwork(Config{BucketSize: 8}, simnet.NewDirect())
	if _, err := net.Create(r.At(0)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < r.Len(); i++ {
		if _, err := net.Join(r.At(i), r.At((i-1)/2)); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := net.VerifyRing(); err != nil {
		t.Fatal(err)
	}
	net.RunMaintenance(1)
	if err := net.VerifyTables(); err != nil {
		t.Fatal(err)
	}
}

func TestMeterChargesLookups(t *testing.T) {
	t.Parallel()
	r := testRing(t, 9, 64)
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	before := net.Meter().Snapshot()
	if _, err := net.FindClosest(r.At(0), ring.Point(42)); err != nil {
		t.Fatal(err)
	}
	cost := net.Meter().Snapshot().Sub(before)
	if cost.Calls < 1 || cost.Messages != 2*cost.Calls {
		t.Fatalf("lookup cost %+v: want >=1 call and 2 messages per call", cost)
	}
}

// TestFillStaticTableMatchesReference pins the trie-descent bulk fill
// to the straightforward reference algorithm it replaced: for every
// node, every bucket must hold the same contacts in the same
// (farthest-first) order as a full scan, sort and truncate of the
// membership. Bit-for-bit equality here is what lets BuildStatic's
// parallel shards claim "same routing state as the sequential build".
func TestFillStaticTableMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 64, 257, 1024} {
		for _, k := range []int{2, 8, 16} {
			rng := rand.New(rand.NewPCG(uint64(n), uint64(k)))
			r, err := ring.Generate(rng, n)
			if err != nil {
				t.Fatal(err)
			}
			net, err := BuildStatic(Config{BucketSize: k}, simnet.NewDirect(), r.Points())
			if err != nil {
				t.Fatal(err)
			}
			sorted := r.Points()
			for _, id := range net.Members() {
				nd, err := net.Node(id)
				if err != nil {
					t.Fatal(err)
				}
				// Reference: bucket the whole membership by XOR octave,
				// sort each bucket by ascending distance, truncate to k,
				// store farthest first.
				var byBucket [idBits][]ring.Point
				for _, m := range sorted {
					d := xorDist(id, m)
					if d == 0 {
						continue
					}
					byBucket[bucketIndex(d)] = append(byBucket[bucketIndex(d)], m)
				}
				for b := range byBucket {
					want := byBucket[b]
					slices.SortFunc(want, func(a, c ring.Point) int {
						return cmp.Compare(xorDist(id, a), xorDist(id, c))
					})
					if len(want) > k {
						want = want[:k]
					}
					slices.Reverse(want)
					got := nd.BucketEntries(b)
					if !slices.Equal(got, want) {
						t.Fatalf("n=%d k=%d node %v bucket %d:\n got %v\nwant %v", n, k, id, b, got, want)
					}
				}
			}
		}
	}
}

// TestMembersEpochSnapshotRace mirrors the chord test: concurrent
// joins/crashes, owner resolutions and Members/Epoch readers under
// -race prove the copy-on-write membership snapshot needs no per-call
// copy and stays internally consistent.
func TestMembersEpochSnapshotRace(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 45))
	r, err := ring.Generate(rng, 48)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewPCG(7, 8))
		for i := 0; i < 150; i++ {
			members := net.Members()
			if wrng.IntN(2) == 0 {
				_, _ = net.Join(ring.Point(wrng.Uint64()), members[wrng.IntN(len(members))])
			} else if len(members) > 8 {
				if victim := members[wrng.IntN(len(members))]; victim != r.At(0) {
					_ = net.Crash(victim)
				}
			}
			net.RunMaintenance(1)
		}
		close(stop)
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e1 := net.Epoch()
				m := net.Members()
				e2 := net.Epoch()
				for i := 1; i < len(m); i++ {
					if m[i] <= m[i-1] {
						t.Errorf("snapshot not sorted/duplicate-free at %d", i)
						return
					}
				}
				_ = e1
				_ = e2
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		lrng := rand.New(rand.NewPCG(9, 10))
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _, _ = net.ResolveOwner(r.At(0), ring.Point(lrng.Uint64()))
		}
	}()
	wg.Wait()
}
