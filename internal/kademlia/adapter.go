package kademlia

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// DHT adapts a Kademlia network, viewed from one caller node, to the
// paper's abstract DHT model: H is an iterative XOR lookup plus an O(1)
// expected ring-pointer verification (see ResolveOwner), Next is one
// get-successor RPC, and every RPC is charged on the transport meter.
type DHT struct {
	net    *Network
	caller ring.Point

	mu sync.RWMutex
	// sorted is the membership snapshot owner indices are derived from:
	// a peer's owner index is its rank here (binary search), so the
	// adapter carries no per-peer map — at 10^7 peers the old
	// map[Point]int cost more memory than the overlay itself.
	sorted []ring.Point

	lookups   atomic.Int64
	rounds    atomic.Int64
	chaseRPCs atomic.Int64
}

var _ dht.DHT = (*DHT)(nil)

// AsDHT returns the network viewed from the given caller node. The
// owner index of each peer is its rank in the current sorted
// membership; call RefreshOwners after churn to re-derive it.
func (n *Network) AsDHT(caller ring.Point) (*DHT, error) {
	if _, err := n.Node(caller); err != nil {
		return nil, err
	}
	d := &DHT{net: n, caller: caller}
	d.RefreshOwners()
	return d, nil
}

// RefreshOwners re-snapshots the membership the owner indices are
// ranked against (global knowledge used only for experiment tallying,
// never by the protocol or the samplers). The snapshot is the
// network's immutable copy-on-write membership slice, so this is a
// pointer fetch, not a rebuild.
func (d *DHT) RefreshOwners() {
	members := d.net.Members()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sorted = members
}

// Self returns the caller as a peer.
func (d *DHT) Self() dht.Peer { return d.peerOf(d.caller) }

// H implements dht.DHT via an iterative Kademlia lookup followed by
// the clockwise-owner resolution.
func (d *DHT) H(x ring.Point) (dht.Peer, error) {
	owner, stats, err := d.net.ResolveOwner(d.caller, x)
	if err != nil {
		return dht.Peer{}, fmt.Errorf("kademlia dht: h(%v): %w", x, err)
	}
	d.lookups.Add(1)
	d.rounds.Add(int64(stats.Lookup.Rounds))
	d.chaseRPCs.Add(int64(stats.ChaseRPCs))
	return d.peerOf(owner), nil
}

// Next implements dht.DHT via one get-successor RPC to p.
func (d *DHT) Next(p dht.Peer) (dht.Peer, error) {
	succ, err := d.net.Successor(d.caller, p.Point)
	if err != nil {
		if errors.Is(err, simnet.ErrUnknownNode) {
			return dht.Peer{}, fmt.Errorf("%w: no peer at %v", dht.ErrUnknownPeer, p.Point)
		}
		return dht.Peer{}, fmt.Errorf("kademlia dht: next(%v): %w", p.Point, err)
	}
	return d.peerOf(succ), nil
}

// Size implements dht.DHT.
func (d *DHT) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.sorted)
}

// Owners implements dht.DHT. Kademlia has one point per peer.
func (d *DHT) Owners() int { return d.Size() }

// Meter implements dht.DHT.
func (d *DHT) Meter() *simnet.Meter { return d.net.Meter() }

// Network exposes the underlying Kademlia network.
func (d *DHT) Network() *Network { return d.net }

// LookupStats reports the adapter's cumulative H-cost split: total H
// calls, sequential lookup rounds (the t_h latency model: alpha
// FIND_NODEs travel per round), and ring-pointer chase RPCs spent on
// clockwise-owner resolution.
type LookupStats struct {
	Lookups   int64
	Rounds    int64
	ChaseRPCs int64
}

// Stats returns the cumulative H-cost counters.
func (d *DHT) Stats() LookupStats {
	return LookupStats{
		Lookups:   d.lookups.Load(),
		Rounds:    d.rounds.Load(),
		ChaseRPCs: d.chaseRPCs.Load(),
	}
}

func (d *DHT) peerOf(id ring.Point) dht.Peer {
	d.mu.RLock()
	sorted := d.sorted
	d.mu.RUnlock()
	owner := -1
	if rank, ok := ring.Rank(sorted, id); ok {
		owner = rank
	}
	return dht.Peer{Point: id, Owner: owner}
}

// NeighborsOf returns the overlay neighbors (all routing-table
// contacts) of the node at p, as peers. Random-walk samplers traverse
// these edges; the per-step RPC cost is charged by the walker.
func (d *DHT) NeighborsOf(p dht.Peer) ([]dht.Peer, error) {
	nd, err := d.net.Node(p.Point)
	if err != nil {
		return nil, fmt.Errorf("kademlia dht: neighbors of %v: %w", p.Point, err)
	}
	points := nd.Contacts()
	out := make([]dht.Peer, len(points))
	for i, pt := range points {
		out[i] = d.peerOf(pt)
	}
	return out, nil
}
