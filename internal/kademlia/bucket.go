package kademlia

import (
	"sync"

	"github.com/dht-sampling/randompeer/internal/ring"
)

// bucket is one k-bucket: up to k contacts ordered least-recently-seen
// first (index 0 is the eviction candidate, the tail is the freshest),
// plus a small replacement cache of contacts observed while the bucket
// was full. Kademlia's eviction rule — ping the least-recently-seen
// entry and keep it if it answers — requires an RPC, so it runs in the
// maintenance path (Network.RefreshNode), never while handling an
// incoming message.
type bucket struct {
	entries []ring.Point
	cache   []ring.Point
}

// replacementCacheLen bounds each bucket's replacement cache.
const replacementCacheLen = 4

// touch records a live contact: an existing entry moves to the tail
// (most recently seen), a new one is appended if the bucket has room
// under capacity k, and otherwise it is remembered in the replacement
// cache for the next maintenance round.
func (b *bucket) touch(id ring.Point, k int) {
	for i, e := range b.entries {
		if e == id {
			copy(b.entries[i:], b.entries[i+1:])
			b.entries[len(b.entries)-1] = id
			return
		}
	}
	if len(b.entries) < k {
		b.entries = append(b.entries, id)
		return
	}
	for _, c := range b.cache {
		if c == id {
			return
		}
	}
	if len(b.cache) >= replacementCacheLen {
		// Drop the oldest cached contact to make room.
		copy(b.cache, b.cache[1:])
		b.cache = b.cache[:len(b.cache)-1]
	}
	b.cache = append(b.cache, id)
}

// remove drops a contact (observed dead) from the entries and cache.
func (b *bucket) remove(id ring.Point) {
	for i, e := range b.entries {
		if e == id {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			break
		}
	}
	for i, c := range b.cache {
		if c == id {
			b.cache = append(b.cache[:i], b.cache[i+1:]...)
			break
		}
	}
}

// promote moves up to free replacement-cache entries into the bucket
// (freshest cache entries first), used by maintenance after dead
// entries have been removed.
func (b *bucket) promote(k int) {
	for len(b.entries) < k && len(b.cache) > 0 {
		id := b.cache[len(b.cache)-1]
		b.cache = b.cache[:len(b.cache)-1]
		b.entries = append(b.entries, id)
	}
}

// table is a node's routing table: one bucket per XOR-distance octave
// from the owner, guarded by a mutex because lookups read it while
// incoming RPCs update it.
type table struct {
	self ring.Point
	k    int

	mu      sync.Mutex
	buckets [idBits]bucket
}

func newTable(self ring.Point, k int) *table {
	return &table{self: self, k: k}
}

// bucketFor returns the bucket index of id relative to the owner, or
// -1 for the owner itself.
func (t *table) bucketFor(id ring.Point) int {
	d := xorDist(t.self, id)
	if d == 0 {
		return -1
	}
	return bucketIndex(d)
}

// touch records a live contact in its bucket.
func (t *table) touch(id ring.Point) {
	i := t.bucketFor(id)
	if i < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buckets[i].touch(id, t.k)
}

// remove drops a dead contact.
func (t *table) remove(id ring.Point) {
	i := t.bucketFor(id)
	if i < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buckets[i].remove(id)
}

// closestInto returns up to count known contacts sorted by XOR
// distance to target, optionally including the owner itself,
// appending into the caller's buffer (reused
// across calls by the pooled FIND_NODE replies and lookup scratch). It
// keeps a bounded best-list instead of sorting the whole table:
// FIND_NODE handlers call it on every hop of every lookup, so it is
// the subsystem's hottest function.
func (t *table) closestInto(best []ring.Point, target ring.Point, count int, includeSelf bool) []ring.Point {
	best = best[:0]
	if count <= 0 {
		return best
	}
	t.mu.Lock()
	for b := range t.buckets {
		for _, id := range t.buckets[b].entries {
			best = insertClosest(best, target, count, id)
		}
	}
	t.mu.Unlock()
	if includeSelf {
		best = insertClosest(best, target, count, t.self)
	}
	return best
}

// insertClosest places id into the sorted bounded best-list (by XOR
// distance to target, ties by id) if it beats the current worst. This
// is the bounded-insertion selection the lookup rounds also use in
// place of sorting every known contact per round.
func insertClosest(best []ring.Point, target ring.Point, count int, id ring.Point) []ring.Point {
	d := xorDist(target, id)
	if len(best) == count {
		wd := xorDist(target, best[len(best)-1])
		if d > wd || (d == wd && id >= best[len(best)-1]) {
			return best
		}
		best = best[:len(best)-1]
	}
	// Linear scan: the list holds at most count (= k, typically 16)
	// entries, where a plain loop beats a closure-based binary search.
	i := 0
	for i < len(best) {
		bd := xorDist(target, best[i])
		if bd > d || (bd == d && best[i] > id) {
			break
		}
		i++
	}
	best = append(best, 0)
	copy(best[i+1:], best[i:])
	best[i] = id
	return best
}

// fillBucket installs a fresh bucket's entries wholesale (bulk
// construction: the entries are pre-ordered least-recently-seen first,
// i.e. farthest contact at index 0). The table is owned exclusively by
// its build-shard worker at this point, but the mutex is cheap and
// keeps the invariant that buckets never change without it.
func (t *table) fillBucket(i int, entries []ring.Point) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[i]
	b.entries = append(b.entries[:0], entries...)
}

// entriesOf returns a copy of bucket i's live entries.
func (t *table) entriesOf(i int) []ring.Point {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ring.Point, len(t.buckets[i].entries))
	copy(out, t.buckets[i].entries)
	return out
}

// markAlive confirms bucket i's entry id answered a ping: it moves to
// the tail, deferring its eviction.
func (t *table) markAlive(i int, id ring.Point) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buckets[i].touch(id, t.k)
}

// promote fills bucket i from its replacement cache.
func (t *table) promote(i int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buckets[i].promote(t.k)
}

// size returns the total number of live entries across all buckets.
func (t *table) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i].entries)
	}
	return n
}

// contacts returns every live entry across all buckets.
func (t *table) contacts() []ring.Point {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ring.Point, 0, idBits)
	for i := range t.buckets {
		out = append(out, t.buckets[i].entries...)
	}
	return out
}
