package kademlia

import (
	"github.com/dht-sampling/randompeer/internal/ring"
)

// k-buckets over the flat region pool. One region per non-empty bucket
// holds a packed header word (entry count in the low half, replacement
// cache count in the high half), up to k entry slots ordered least-
// recently-seen first (index 0 is the eviction candidate, the tail is
// the freshest), and up to replacementCacheLen cached slots observed
// while the bucket was full. Kademlia's eviction rule — ping the
// least-recently-seen entry and keep it if it answers — requires an
// RPC, so it runs in the maintenance path (Network.RefreshNode), never
// while handling an incoming message.
//
// The reg* functions below are pure operations on one region's words;
// contacts are arena slot references, translated to identifiers by the
// callers (Network.closestIntoSlot and friends) via atomic id loads.

// replacementCacheLen bounds each bucket's replacement cache.
const replacementCacheLen = 4

// regLens unpacks a region's entry and cache counts.
func regLens(reg []uint32) (ents, cached int) {
	return int(reg[0] & 0xffff), int(reg[0] >> 16)
}

// regSetLens packs a region's entry and cache counts.
func regSetLens(reg []uint32, ents, cached int) {
	reg[0] = uint32(ents) | uint32(cached)<<16
}

// regEntries returns the live entry view (LRU first).
func regEntries(reg []uint32) []uint32 {
	e, _ := regLens(reg)
	return reg[1 : 1+e]
}

// regCache returns the replacement-cache view (oldest first). The
// cache words sit after the k entry slots, so the view needs the
// bucket capacity.
func regCache(reg []uint32, k int) []uint32 {
	_, c := regLens(reg)
	return reg[1+k : 1+k+c]
}

// regTouch records a live contact: an existing entry moves to the tail
// (most recently seen), a new one is appended if the bucket has room
// under capacity k, and otherwise it is remembered in the replacement
// cache for the next maintenance round.
func regTouch(reg []uint32, k int, c uint32) {
	ents, cached := regLens(reg)
	entries := reg[1 : 1+ents]
	for i, e := range entries {
		if e == c {
			copy(entries[i:], entries[i+1:])
			entries[ents-1] = c
			return
		}
	}
	if ents < k {
		reg[1+ents] = c
		regSetLens(reg, ents+1, cached)
		return
	}
	cache := reg[1+k : 1+k+cached]
	for _, e := range cache {
		if e == c {
			return
		}
	}
	if cached >= replacementCacheLen {
		// Drop the oldest cached contact to make room.
		copy(cache, cache[1:])
		cached--
	}
	reg[1+k+cached] = c
	regSetLens(reg, ents, cached+1)
}

// regRemove drops a contact (observed dead) from the entries and cache.
func regRemove(reg []uint32, k int, c uint32) {
	ents, cached := regLens(reg)
	entries := reg[1 : 1+ents]
	for i, e := range entries {
		if e == c {
			copy(entries[i:], entries[i+1:])
			ents--
			break
		}
	}
	cache := reg[1+k : 1+k+cached]
	for i, e := range cache {
		if e == c {
			copy(cache[i:], cache[i+1:])
			cached--
			break
		}
	}
	regSetLens(reg, ents, cached)
}

// regPromote moves up to free replacement-cache entries into the
// bucket (freshest cache entries first), used by maintenance after
// dead entries have been removed.
func regPromote(reg []uint32, k int) {
	ents, cached := regLens(reg)
	for ents < k && cached > 0 {
		reg[1+ents] = reg[1+k+cached-1]
		ents++
		cached--
	}
	regSetLens(reg, ents, cached)
}

// bucketRef returns slot s's region for bucket b, allocating one on
// first use. Caller holds stripe(s) for writing; region allocation
// takes only the leaf regionMu, so no lock-order issue arises.
func (n *Network) bucketRefFor(s uint32, b int) []uint32 {
	ref := n.st.bucketRefs[int(s)*idBits+b]
	if ref == noRegion {
		ref = n.allocRegion()
		n.st.bucketRefs[int(s)*idBits+b] = ref
	}
	return n.region(ref)
}

// touchContact records a live contact in slot s's table (Kademlia's
// passive maintenance). The contact is interned first — lock order:
// network.mu before stripe.
func (n *Network) touchContact(s uint32, id ring.Point) {
	cs := n.intern(id)
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	defer st.Unlock()
	d := xorDist(a.id(s), id)
	if d == 0 {
		return
	}
	regTouch(n.bucketRefFor(s, bucketIndex(d)), n.cfg.BucketSize, cs)
}

// removeContact drops a dead contact from slot s's table. Contacts the
// network has no slot for cannot be in any bucket (buckets hold slot
// references), so the miss is a no-op.
func (n *Network) removeContact(s uint32, id ring.Point) {
	cs, ok := n.slotOf(id)
	if !ok {
		return
	}
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	defer st.Unlock()
	d := xorDist(a.id(s), id)
	if d == 0 {
		return
	}
	if ref := a.bucketRefs[int(s)*idBits+bucketIndex(d)]; ref != noRegion {
		regRemove(n.region(ref), n.cfg.BucketSize, cs)
	}
}

// markAliveContact confirms bucket b's entry id answered a ping: it
// moves to the tail, deferring its eviction.
func (n *Network) markAliveContact(s uint32, b int, id ring.Point) {
	cs := n.intern(id) // before the stripe: intern takes network.mu
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	defer st.Unlock()
	regTouch(n.bucketRefFor(s, b), n.cfg.BucketSize, cs)
}

// promoteBucket fills bucket b of slot s from its replacement cache.
func (n *Network) promoteBucket(s uint32, b int) {
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	defer st.Unlock()
	if ref := a.bucketRefs[int(s)*idBits+b]; ref != noRegion {
		regPromote(n.region(ref), n.cfg.BucketSize)
	}
}

// closestIntoSlot returns up to count contacts known to slot s sorted
// by XOR distance to target, optionally including the owner itself,
// appending into the caller's buffer (reused across calls by the
// pooled FIND_NODE replies and lookup scratch). It keeps a bounded
// best-list instead of sorting the whole table: FIND_NODE handlers
// call it on every hop of every lookup, so it is the subsystem's
// hottest function. Entry slots translate to identifiers with atomic
// loads under one stripe read-lock; nothing allocates.
func (n *Network) closestIntoSlot(s uint32, best []ring.Point, target ring.Point, count int, includeSelf bool) []ring.Point {
	best = best[:0]
	if count <= 0 {
		return best
	}
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	self := a.id(s)
	row := a.bucketRefs[int(s)*idBits : int(s)*idBits+idBits]
	for _, ref := range row {
		if ref == noRegion {
			continue
		}
		for _, c := range regEntries(n.region(ref)) {
			best = insertClosest(best, target, count, a.id(c))
		}
	}
	st.RUnlock()
	if includeSelf {
		best = insertClosest(best, target, count, self)
	}
	return best
}

// insertClosest places id into the sorted bounded best-list (by XOR
// distance to target, ties by id) if it beats the current worst. This
// is the bounded-insertion selection the lookup rounds also use in
// place of sorting every known contact per round.
func insertClosest(best []ring.Point, target ring.Point, count int, id ring.Point) []ring.Point {
	d := xorDist(target, id)
	if len(best) == count {
		wd := xorDist(target, best[len(best)-1])
		if d > wd || (d == wd && id >= best[len(best)-1]) {
			return best
		}
		best = best[:len(best)-1]
	}
	// Linear scan: the list holds at most count (= k, typically 16)
	// entries, where a plain loop beats a closure-based binary search.
	i := 0
	for i < len(best) {
		bd := xorDist(target, best[i])
		if bd > d || (bd == d && best[i] > id) {
			break
		}
		i++
	}
	best = append(best, 0)
	copy(best[i+1:], best[i:])
	best[i] = id
	return best
}

// entriesOfSlot returns a copy of bucket b's live entries for slot s,
// translated to identifiers (LRU first).
func (n *Network) entriesOfSlot(s uint32, b int) []ring.Point {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	defer st.RUnlock()
	ref := a.bucketRefs[int(s)*idBits+b]
	if ref == noRegion {
		return nil
	}
	ents := regEntries(n.region(ref))
	out := make([]ring.Point, len(ents))
	for i, c := range ents {
		out[i] = a.id(c)
	}
	return out
}

// tableSizeOf returns slot s's total live entry count.
func (n *Network) tableSizeOf(s uint32) int {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	defer st.RUnlock()
	total := 0
	row := a.bucketRefs[int(s)*idBits : int(s)*idBits+idBits]
	for _, ref := range row {
		if ref != noRegion {
			e, _ := regLens(n.region(ref))
			total += e
		}
	}
	return total
}

// contactsOf returns every live entry across slot s's buckets.
func (n *Network) contactsOf(s uint32) []ring.Point {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	defer st.RUnlock()
	out := make([]ring.Point, 0, idBits)
	row := a.bucketRefs[int(s)*idBits : int(s)*idBits+idBits]
	for _, ref := range row {
		if ref == noRegion {
			continue
		}
		for _, c := range regEntries(n.region(ref)) {
			out = append(out, a.id(c))
		}
	}
	return out
}
