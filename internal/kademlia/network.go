package kademlia

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"github.com/dht-sampling/randompeer/internal/parallel"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Config parameterizes a Kademlia network.
type Config struct {
	// BucketSize is Kademlia's k: the capacity of each k-bucket and the
	// closeness of FIND_NODE results. Default 16.
	BucketSize int
	// Alpha is the lookup parallelism: the number of candidates queried
	// per lookup round. Default 3.
	Alpha int
	// MaxLookupRounds aborts iterative lookups that fail to converge
	// (possible only with badly damaged routing tables). Default 128.
	MaxLookupRounds int
	// MaxChaseSteps caps the ring-pointer walk that turns an XOR-routed
	// lookup into the clockwise owner (see ResolveOwner). Zero means
	// "number of live nodes plus slack", the tight correctness bound.
	MaxChaseSteps int
}

func (c Config) withDefaults() Config {
	if c.BucketSize <= 0 {
		c.BucketSize = 16
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.MaxLookupRounds <= 0 {
		c.MaxLookupRounds = 128
	}
	return c
}

// Network is a collection of Kademlia nodes sharing one simulated
// transport. All per-node state lives in a flat slot arena (see
// arena.go); nodes are addressed internally by dense uint32 slot and
// externally by ring.Point identifier.
type Network struct {
	cfg Config
	tr  simnet.Transport
	// regStride is the word width of one bucket region: a header word,
	// BucketSize entry slots and the replacement cache.
	regStride int
	// multi records that the transport accepted a bulk registration:
	// one handler serves every node this network hosts and joins and
	// crashes cost no per-node transport bookkeeping. Without it the
	// network falls back to one registered closure per node.
	multi bool

	mu sync.RWMutex
	st arena
	// members is the sorted live membership, maintained incrementally:
	// join/crash installs a fresh copy with the id spliced in or out
	// (copy-on-write) and bumps epoch. The slice itself is immutable, so
	// Members hands it out with no per-call copy and holders keep a
	// consistent snapshot across later churn.
	members []ring.Point
	// memberSlots is the aligned slot snapshot: memberSlots[i] is the
	// arena slot of members[i]. Maintained copy-on-write in lockstep
	// with members, it is the ID-to-index half of the bridge that
	// replaces the old map[ring.Point]*Node.
	memberSlots []uint32
	epoch       uint64
}

// Kademlia error conditions.
var (
	ErrNodeExists    = errors.New("kademlia: node already exists")
	ErrNodeNotFound  = errors.New("kademlia: node not found")
	ErrLookupAborted = errors.New("kademlia: lookup aborted")
	ErrEmptyNetwork  = errors.New("kademlia: network has no live nodes")
)

// NewNetwork creates an empty Kademlia network over the given transport.
func NewNetwork(cfg Config, tr simnet.Transport) *Network {
	cfg = cfg.withDefaults()
	n := &Network{
		cfg:       cfg,
		tr:        tr,
		regStride: 1 + cfg.BucketSize + replacementCacheLen,
	}
	n.st.overflow = make(map[ring.Point]uint32)
	empty := make([][]uint32, 0)
	n.st.chunks.Store(&empty)
	if mr, ok := tr.(simnet.MultiRegistrar); ok {
		if err := mr.RegisterMulti(n.ownsID, n.dispatchAny); err == nil {
			n.multi = true
		}
	}
	return n
}

// ownsID reports whether this network currently hosts a live node with
// the given transport id; the transport's bulk-registration path
// consults it in place of a per-node handler table.
func (n *Network) ownsID(id simnet.NodeID) bool {
	_, ok := n.liveSlot(ring.Point(id))
	return ok
}

// dispatchAny routes a bulk-registered RPC to its destination slot.
// Crashed nodes remain resolvable through the overflow map until
// scavenged, so an in-flight RPC that won the transport's liveness
// check still reaches the node's frozen state, exactly as a registered
// handler used to keep answering until deregistration took effect.
func (n *Network) dispatchAny(to, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	s, ok := n.slotOf(ring.Point(to))
	if !ok {
		return nil, fmt.Errorf("%w: %d", simnet.ErrUnknownNode, to)
	}
	return n.handleRPC(s, from, msg)
}

// idHandler returns the per-node registration closure for transports
// without bulk registration. It captures the identifier, never the
// slot: the slot is resolved per call, so slot recycling cannot
// misroute a stale registration.
func (n *Network) idHandler(id ring.Point) simnet.Handler {
	return func(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		s, ok := n.slotOf(id)
		if !ok {
			return nil, fmt.Errorf("%w: %d", simnet.ErrUnknownNode, simnet.NodeID(id))
		}
		return n.handleRPC(s, from, msg)
	}
}

// Config returns the network's effective (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// Transport returns the underlying transport (for meters and faults).
func (n *Network) Transport() simnet.Transport { return n.tr }

// Meter returns the transport's cost meter.
func (n *Network) Meter() *simnet.Meter { return n.tr.Meter() }

// Node returns the node with the given id. The returned handle points
// into the arena's preconstructed handle table, so the call allocates
// nothing.
func (n *Network) Node(id ring.Point) (*Node, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if rank, ok := ring.Rank(n.members, id); ok {
		if s := n.memberSlots[rank]; n.st.alive[s] {
			return &n.st.handles[s], nil
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrNodeNotFound, id)
}

// Members returns the ids of all live nodes in sorted order. The
// returned slice is a shared immutable snapshot — callers must not
// modify it. Join/crash never re-sorts and never invalidates: each
// installs a fresh spliced copy (copy-on-write), so a held snapshot
// stays internally consistent across later churn and a call here is a
// read-locked pointer fetch even at n = 10^6 under sustained churn.
func (n *Network) Members() []ring.Point {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.members
}

// Epoch returns the membership epoch: it increments on every join and
// crash, so two equal readings around a Members call certify the
// snapshot is current (the epoch-snapshot pairing the race tests
// exercise).
func (n *Network) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.epoch
}

// NumAlive returns the number of live nodes. The membership snapshot
// holds exactly the live nodes (Crash removes before marking dead), so
// this is the snapshot length.
func (n *Network) NumAlive() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.members)
}

// addNode allocates (or recycles) a slot for id, registers it on the
// transport when per-node registration is in use, and splices it into
// the live membership.
func (n *Network) addNode(id ring.Point) (*Node, error) {
	if !n.multi {
		// Register before taking the network lock, as always: the
		// transport may consult its own locks, and registration order
		// is observable to concurrent callers.
		if err := n.tr.Register(simnet.NodeID(id), n.idHandler(id)); err != nil {
			return nil, fmt.Errorf("kademlia: registering node %v: %w", id, err)
		}
	}
	n.mu.Lock()
	rank, found := ring.Rank(n.members, id)
	if found {
		n.mu.Unlock()
		if !n.multi {
			n.tr.Deregister(simnet.NodeID(id))
		}
		return nil, fmt.Errorf("%w: %v", ErrNodeExists, id)
	}
	s, ok := n.st.overflow[id]
	if ok {
		// The id had a zombie or external slot: reclaim it for the
		// rejoining node with fresh baseline state.
		delete(n.st.overflow, id)
		if n.st.reclaimable > 0 {
			n.st.reclaimable--
		}
		n.resetSlotLocked(s, id)
	} else {
		s = n.newSlotLocked(id)
	}
	n.st.alive[s] = true
	n.members = spliceIn(n.members, rank, id)
	n.memberSlots = spliceIn(n.memberSlots, rank, s)
	n.epoch++
	nd := &n.st.handles[s]
	n.mu.Unlock()
	return nd, nil
}

// call performs one RPC through the transport.
func (n *Network) call(from, to ring.Point, msg simnet.Message) (simnet.Message, error) {
	return n.tr.Call(simnet.NodeID(from), simnet.NodeID(to), msg)
}

// Create starts the first node of a fresh network.
func (n *Network) Create(id ring.Point) (*Node, error) {
	return n.addNode(id)
}

// Join adds a node through the existing node via, per the Kademlia join
// protocol: seed the routing table with the bootstrap contact, perform
// an iterative lookup of the node's own identifier (which both fills
// its buckets with the contacts it learns and announces it to every
// node it queries), then splice the node into the ownership ring
// between its successor and predecessor.
func (n *Network) Join(id, via ring.Point) (*Node, error) {
	if _, err := n.Node(via); err != nil {
		return nil, fmt.Errorf("kademlia: join of %v: bootstrap %v: %w", id, via, err)
	}
	return n.JoinVia(id, via)
}

// JoinVia adds a locally hosted node through a bootstrap contact that
// may live on another process: identical to Join except the bootstrap
// is not required to be a local node — every interaction with it is an
// RPC, which the wire transport routes across processes. It is the
// join path wire-transport daemons use.
func (n *Network) JoinVia(id, via ring.Point) (*Node, error) {
	if _, ok := n.liveSlot(id); ok {
		return nil, fmt.Errorf("%w: %v", ErrNodeExists, id)
	}
	nd, err := n.addNode(id)
	if err != nil {
		return nil, err
	}
	// Any failure past this point must withdraw the half-joined node:
	// the self-lookup announces id into other tables, and a registered
	// node with self-looping ring pointers would otherwise be reported
	// as the owner of arbitrary keys by later resolutions.
	fail := func(step string, err error) (*Node, error) {
		_ = n.Crash(id)
		return nil, fmt.Errorf("kademlia: join of %v: %s: %w", id, step, err)
	}
	n.touchContact(nd.slot, via)
	if _, err := n.FindClosest(id, id); err != nil {
		return fail("self-lookup", err)
	}
	// Resolve the clockwise successor among the EXISTING nodes (the
	// joiner excludes itself) and splice the ring pointers.
	succ, _, err := n.resolveOwner(id, id, id, true)
	if err != nil {
		return fail("resolving successor", err)
	}
	raw, err := n.call(id, succ, getPredecessorReq{})
	if err != nil {
		return fail(fmt.Sprintf("predecessor of %v", succ), err)
	}
	pred := raw.(*pointResp).P
	putPointResp(raw.(*pointResp))
	if _, err := n.call(id, succ, spliceReq{Pred: id, HasPred: true}); err != nil {
		return fail(fmt.Sprintf("splicing %v", succ), err)
	}
	if pred != succ {
		if _, err := n.call(id, pred, spliceReq{Succ: id, HasSucc: true}); err != nil {
			return fail(fmt.Sprintf("splicing %v", pred), err)
		}
	} else {
		// Two-node ring: the single existing node is both successor and
		// predecessor; its succ pointer must also come to the joiner.
		if _, err := n.call(id, succ, spliceReq{Succ: id, HasSucc: true}); err != nil {
			return fail(fmt.Sprintf("splicing %v", succ), err)
		}
	}
	nd.setRing(succ, pred)
	return nd, nil
}

// Crash removes a node abruptly: it leaves the live membership and
// every new RPC to it fails until maintenance routes around it. Its
// slot parks in the overflow map (state frozen, still answering RPCs
// already in flight) until the scavenger recycles it.
func (n *Network) Crash(id ring.Point) error {
	n.mu.Lock()
	rank, ok := ring.Rank(n.members, id)
	var s uint32
	if ok {
		s = n.memberSlots[rank]
		if !n.st.alive[s] {
			ok = false // partitioned build: the member is hosted elsewhere
		}
	}
	if ok {
		n.members = ring.RemoveSorted(n.members, id)
		n.memberSlots = spliceOut(n.memberSlots, rank)
		n.st.alive[s] = false
		n.st.overflow[id] = s
		n.st.reclaimable++
		n.epoch++
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNodeNotFound, id)
	}
	if !n.multi {
		n.tr.Deregister(simnet.NodeID(id))
	}
	return nil
}

// LookupResult reports one iterative FIND_NODE lookup.
type LookupResult struct {
	// Closest holds up to k live contacts sorted by XOR distance to the
	// target, every one of them queried (or the initiator itself).
	Closest []ring.Point
	// Seen holds every identifier learned during the lookup, including
	// the initiator. Entries that were never queried may be stale.
	Seen []ring.Point
	// Rounds is the number of sequential query waves: with alpha
	// queries in flight per wave, it is the lookup's latency in the
	// paper's t_h model.
	Rounds int
	// RPCs is the number of FIND_NODE calls issued (half the messages).
	RPCs int
}

// lookup candidate states.
const (
	stateCandidate = iota
	stateQueried
	stateFailed
)

// lookupScratch is the per-lookup working set FindClosest reuses
// across calls via a free-list: the candidate state map, the bounded
// k-best selection buffer, the table-seed buffer and the per-round
// query wave. One lookup used to allocate all four (the state map and
// a fresh sorted slice per round); now concurrent lookups each check a
// scratch out of the pool and return it cleared.
type lookupScratch struct {
	state map[ring.Point]int
	best  []ring.Point
	seed  []ring.Point
	wave  []ring.Point
}

var lookupScratchPool = sync.Pool{New: func() any {
	return &lookupScratch{state: make(map[ring.Point]int)}
}}

// FindClosest performs an iterative Kademlia lookup from node "from"
// toward target: each round queries the alpha XOR-closest unqueried
// candidates with FIND_NODE and merges their answers, until the k
// closest known contacts have all been queried. Every successfully
// queried contact is recorded in the initiator's routing table; dead
// candidates are evicted from it.
//
// Each round selects the k closest known contacts with the same
// bounded-insertion selection the k-bucket tables use, instead of
// sorting every known contact per round; the map iteration feeding the
// selection is unordered, but a bounded k-best under the total
// (distance, id) order is order-independent, so results are
// bit-identical to the sorted implementation it replaces.
func (n *Network) FindClosest(from, target ring.Point) (LookupResult, error) {
	initiator, err := n.Node(from)
	if err != nil {
		return LookupResult{}, err
	}
	self := initiator.slot
	k, alpha := n.cfg.BucketSize, n.cfg.Alpha
	ls := lookupScratchPool.Get().(*lookupScratch)
	defer func() {
		clear(ls.state)
		lookupScratchPool.Put(ls)
	}()
	state := ls.state
	state[from] = stateQueried
	ls.seed = n.closestIntoSlot(self, ls.seed, target, k, false)
	for _, c := range ls.seed {
		state[c] = stateCandidate
	}
	var res LookupResult

	// kClosest fills ls.best with the up-to-k XOR-closest non-failed
	// known ids, sorted best first.
	kClosest := func() []ring.Point {
		ls.best = ls.best[:0]
		for id, st := range state {
			if st != stateFailed {
				ls.best = insertClosest(ls.best, target, k, id)
			}
		}
		return ls.best
	}

	req := simnet.Message(findNodeReq{Target: target, K: k})
	for round := 0; ; round++ {
		if round >= n.cfg.MaxLookupRounds {
			return res, fmt.Errorf("%w: exceeded %d rounds toward %v", ErrLookupAborted, n.cfg.MaxLookupRounds, target)
		}
		ls.wave = ls.wave[:0]
		for _, id := range kClosest() {
			if state[id] == stateCandidate {
				ls.wave = append(ls.wave, id)
				if len(ls.wave) >= alpha {
					break
				}
			}
		}
		if len(ls.wave) == 0 {
			// Every one of the k closest known contacts has been
			// queried: the lookup has converged.
			break
		}
		res.Rounds++
		for _, id := range ls.wave {
			raw, err := n.call(from, id, req)
			res.RPCs++
			if err != nil {
				state[id] = stateFailed
				n.removeContact(self, id)
				continue
			}
			state[id] = stateQueried
			n.touchContact(self, id)
			resp := raw.(*findNodeResp)
			for _, c := range resp.Closest {
				if _, known := state[c]; !known {
					state[c] = stateCandidate
				}
			}
			putFindNodeResp(resp)
		}
	}

	res.Seen = make([]ring.Point, 0, len(state))
	for id, st := range state {
		if st != stateFailed {
			res.Seen = append(res.Seen, id)
		}
	}
	slices.Sort(res.Seen)
	res.Closest = make([]ring.Point, 0, k)
	for id, st := range state {
		if st == stateQueried {
			res.Closest = insertClosest(res.Closest, target, k, id)
		}
	}
	return res, nil
}

// Successor asks node "of" for its ring successor pointer (one RPC):
// the paper's next(p) primitive.
func (n *Network) Successor(from, of ring.Point) (ring.Point, error) {
	raw, err := n.call(from, of, getSuccessorReq{})
	if err != nil {
		return 0, fmt.Errorf("kademlia: successor of %v: %w", of, err)
	}
	resp := raw.(*pointResp)
	p := resp.P
	putPointResp(resp)
	return p, nil
}

// Predecessor asks node "of" for its ring predecessor pointer.
func (n *Network) Predecessor(from, of ring.Point) (ring.Point, error) {
	raw, err := n.call(from, of, getPredecessorReq{})
	if err != nil {
		return 0, fmt.Errorf("kademlia: predecessor of %v: %w", of, err)
	}
	resp := raw.(*pointResp)
	p := resp.P
	putPointResp(resp)
	return p, nil
}

// OwnerStats reports the cost split of one ResolveOwner call.
type OwnerStats struct {
	// Lookup is the iterative XOR lookup's result.
	Lookup LookupResult
	// ChaseRPCs counts the ring-pointer RPCs spent turning the XOR
	// result into the clockwise owner (successor/predecessor chases).
	ChaseRPCs int
}

// ResolveOwner resolves h(x) from node "from": the peer whose point is
// clockwise-closest to x. Kademlia routes by XOR, not by clockwise
// distance, so the resolution has two phases:
//
//  1. An iterative FIND_NODE toward x. The XOR-closest node to x
//     shares x's longest common prefix b, so every node inside x's
//     deepest non-empty aligned 2^(64-b) block is within the lookup's
//     k-closest result (blocks nest in the XOR metric: in-block
//     distances are below 2^(64-b), out-of-block distances above).
//  2. A ring-pointer verification. Let m be the learned node closest
//     counterclockwise-at-or-below x and c the closest clockwise-at-
//     or-above. If the block holds a node below x, m is x's exact
//     predecessor (any closer node would sit inside the block and have
//     been learned), so one successor RPC finishes; if the block only
//     holds nodes at or above x, c is the exact owner, confirmed by
//     one predecessor RPC. Either way the expected overhead is O(1)
//     RPCs; with damaged tables the chase walks pointer by pointer,
//     still converging because ring pointers are ground truth.
func (n *Network) ResolveOwner(from, x ring.Point) (ring.Point, OwnerStats, error) {
	return n.resolveOwner(from, x, 0, false)
}

func (n *Network) resolveOwner(from, x ring.Point, exclude ring.Point, hasExclude bool) (ring.Point, OwnerStats, error) {
	var stats OwnerStats
	res, err := n.FindClosest(from, x)
	if err != nil {
		return 0, stats, err
	}
	stats.Lookup = res
	// m: closest at-or-below x (counterclockwise); c: closest at-or-
	// above x (clockwise). A node exactly at x is both and owns x.
	// Scanned in place — the filtered copy this used to build per
	// resolution only fed these two reductions.
	var m, c ring.Point
	found := false
	for _, id := range res.Seen {
		if hasExclude && id == exclude {
			continue
		}
		if !found {
			m, c, found = id, id, true
			continue
		}
		if cwDist(id, x) < cwDist(m, x) { // distance from id clockwise to x
			m = id
		}
		if cwDist(x, id) < cwDist(x, c) { // distance from x clockwise to id
			c = id
		}
	}
	if !found {
		return 0, stats, fmt.Errorf("%w: no live contacts toward %v", ErrLookupAborted, x)
	}
	if c == x {
		return c, stats, nil
	}
	// Below side: if m is x's exact predecessor, its successor pointer
	// is the answer.
	s, err := n.Successor(from, m)
	if err != nil {
		return 0, stats, err
	}
	stats.ChaseRPCs++
	if (!hasExclude || s != exclude) && betweenIncl(m, s, x) {
		return s, stats, nil
	}
	// Above side: if c is the exact owner, its predecessor confirms it.
	p, err := n.Predecessor(from, c)
	if err != nil {
		return 0, stats, err
	}
	stats.ChaseRPCs++
	if (!hasExclude || p != exclude) && betweenIncl(p, c, x) {
		return c, stats, nil
	}
	// Fallback (imperfect routing tables): walk successor pointers
	// clockwise from m. Ring pointers are ground truth, so the walk
	// terminates at the true owner. An excluded node (a joiner running
	// this resolution) is never the target of live ring pointers, so no
	// exclusion check is needed here. The O(n) alive-count cap is only
	// computed on this rare path, keeping the common case O(1).
	maxChase := n.cfg.MaxChaseSteps
	if maxChase <= 0 {
		maxChase = n.NumAlive() + 8
	}
	cur := m
	for step := 0; step < maxChase; step++ {
		next, err := n.Successor(from, cur)
		if err != nil {
			return 0, stats, err
		}
		stats.ChaseRPCs++
		if betweenIncl(cur, next, x) {
			return next, stats, nil
		}
		cur = next
	}
	return 0, stats, fmt.Errorf("%w: owner chase for %v exceeded %d steps", ErrLookupAborted, x, maxChase)
}

// RefreshNode runs one maintenance round for node id:
//
//  1. k-bucket upkeep: probe every entry of each non-empty bucket in
//     least-recently-seen-first order, evicting dead contacts and
//     promoting replacement-cache contacts into freed slots (a full
//     liveness sweep; Kademlia's on-insert rule pings only the LRU
//     entry, but insert-time pings would nest RPCs inside handlers,
//     so all probing is concentrated here).
//  2. Bucket refresh: an iterative lookup toward a point in bucket
//     "refreshBucket"'s distance range, repopulating it with live
//     contacts.
//  3. Ring repair: if the successor pointer is dead, re-resolve it
//     from the surviving contacts and re-splice the ring.
func (n *Network) RefreshNode(id ring.Point, refreshBucket int) error {
	nd, err := n.Node(id)
	if err != nil {
		return err
	}
	for i := 0; i < idBits; i++ {
		entries := n.entriesOfSlot(nd.slot, i)
		if len(entries) == 0 {
			continue
		}
		// Probe least-recently-seen first, the Kademlia eviction order:
		// dead entries are dropped, live ones move to the fresh end, and
		// replacement-cache contacts are promoted into freed slots.
		for _, e := range entries {
			if _, err := n.call(id, e, pingReq{}); err != nil {
				n.removeContact(nd.slot, e)
			} else {
				n.markAliveContact(nd.slot, i, e)
			}
		}
		n.promoteBucket(nd.slot, i)
	}
	if refreshBucket >= 0 && refreshBucket < idBits {
		// A target with bit "refreshBucket" flipped lands in that
		// bucket's distance octave. A failed refresh (badly damaged
		// tables) is ignored: ring repair below matters more after
		// churn, and later rounds keep repairing the buckets.
		target := ring.Point(uint64(id) ^ (uint64(1) << uint(refreshBucket)))
		_, _ = n.FindClosest(id, target)
	}
	return n.repairRing(nd)
}

// repairRing checks the node's successor pointer and re-splices the
// ring around dead neighbors.
func (n *Network) repairRing(nd *Node) error {
	id := nd.ID()
	succ := nd.Successor()
	if succ != id {
		if _, err := n.call(id, succ, pingReq{}); err == nil {
			// Successor alive; reconcile with its predecessor pointer.
			p, err := n.Predecessor(id, succ)
			if err == nil && p != id {
				alive := false
				if _, err := n.call(id, p, pingReq{}); err == nil {
					alive = true
				}
				if alive && p != succ && betweenIncl(id, succ, p) {
					// The successor knows a live node between us — a
					// joiner whose splice toward us was lost, or a
					// repair that outran ours. Adopt it and announce
					// ourselves (Chord's stabilize rule); without this
					// tightening step the ring wedges permanently with
					// the middle node invisible to its predecessor.
					n.setSucc(nd.slot, p)
					_, _ = n.call(id, p, spliceReq{Pred: id, HasPred: true})
					return nil
				}
				if !alive || !betweenIncl(id, succ, p) {
					// Its predecessor is dead or behind us: we are the
					// rightful predecessor — re-assert.
					_, _ = n.call(id, succ, spliceReq{Pred: id, HasPred: true})
				}
			}
			return nil
		}
		n.removeContact(nd.slot, succ)
	}
	// Successor dead (or self while others exist): pick the best live
	// candidate and tighten it by walking predecessor pointers.
	best, ok := n.bestLiveSuccessorCandidate(nd)
	if !ok {
		return nil // nothing else alive; ring is just this node
	}
	maxChase := n.cfg.MaxChaseSteps
	if maxChase <= 0 {
		maxChase = n.NumAlive() + 8
	}
	for step := 0; step < maxChase; step++ {
		p, err := n.Predecessor(id, best)
		if err != nil || p == best {
			break
		}
		if _, err := n.call(id, p, pingReq{}); err != nil {
			break // dead predecessor: best is the boundary
		}
		if !betweenIncl(id, best, p) || p == id {
			break
		}
		best = p
	}
	n.setSucc(nd.slot, best)
	_, _ = n.call(id, best, spliceReq{Pred: id, HasPred: true})
	return nil
}

// bestLiveSuccessorCandidate returns the live contact clockwise-
// closest after id, gathered from the node's table plus a lookup.
func (n *Network) bestLiveSuccessorCandidate(nd *Node) (ring.Point, bool) {
	id := nd.ID()
	cands := n.contactsOf(nd.slot)
	if res, err := n.FindClosest(id, ring.Point(uint64(id)+1)); err == nil {
		cands = append(cands, res.Closest...)
	}
	var best ring.Point
	found := false
	for _, c := range cands {
		if c == id {
			continue
		}
		if found && cwDist(id, c) >= cwDist(id, best) {
			continue
		}
		if _, err := n.call(id, c, pingReq{}); err != nil {
			n.removeContact(nd.slot, c)
			continue
		}
		best, found = c, true
	}
	return best, found
}

// RunMaintenance executes the given number of synchronous maintenance
// rounds: in each round every live node (in sorted order, for
// determinism) runs RefreshNode with a rotating bucket-refresh index.
// Enough rounds after churn restore correct buckets and a perfect
// ring; tests assert this via VerifyRing and VerifyTables.
func (n *Network) RunMaintenance(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, id := range n.Members() {
			// Ignore per-node errors: nodes may crash mid-round; the
			// survivors keep repairing.
			_ = n.RefreshNode(id, r%idBits)
		}
	}
}

// VerifyRing checks global ring consistency: every live node's succ
// and pred pointers must match the sorted membership exactly.
func (n *Network) VerifyRing() error {
	members := n.Members()
	if len(members) == 0 {
		return ErrEmptyNetwork
	}
	for i, id := range members {
		nd, err := n.Node(id)
		if err != nil {
			return err
		}
		wantSucc := members[(i+1)%len(members)]
		wantPred := members[(i-1+len(members))%len(members)]
		if got := nd.Successor(); got != wantSucc {
			return fmt.Errorf("kademlia: node %v successor = %v, want %v", id, got, wantSucc)
		}
		if got := nd.Predecessor(); got != wantPred {
			return fmt.Errorf("kademlia: node %v predecessor = %v, want %v", id, got, wantPred)
		}
	}
	return nil
}

// VerifyTables checks structural routing-table invariants for every
// live node: entries are live members, sit in the bucket matching
// their XOR distance, contain no duplicates, and never exceed k.
func (n *Network) VerifyTables() error {
	members := make(map[ring.Point]bool)
	for _, id := range n.Members() {
		members[id] = true
	}
	if len(members) == 0 {
		return ErrEmptyNetwork
	}
	for id := range members {
		nd, err := n.Node(id)
		if err != nil {
			return err
		}
		for i := 0; i < idBits; i++ {
			entries := n.entriesOfSlot(nd.slot, i)
			if len(entries) > n.cfg.BucketSize {
				return fmt.Errorf("kademlia: node %v bucket %d has %d entries (k=%d)", id, i, len(entries), n.cfg.BucketSize)
			}
			seen := make(map[ring.Point]bool, len(entries))
			for _, e := range entries {
				if seen[e] {
					return fmt.Errorf("kademlia: node %v bucket %d duplicate entry %v", id, i, e)
				}
				seen[e] = true
				if !members[e] {
					return fmt.Errorf("kademlia: node %v bucket %d holds dead contact %v", id, i, e)
				}
				if got := bucketIndex(xorDist(id, e)); got != i {
					return fmt.Errorf("kademlia: node %v contact %v in bucket %d, belongs in %d", id, e, i, got)
				}
			}
		}
	}
	return nil
}

// BuildStatic constructs a fully populated Kademlia network over the
// given points in one step: every node's k-buckets hold the k XOR-
// closest members of each distance octave and the ring pointers are
// exact. It is the starting state for experiments that study the
// sampler rather than overlay convergence.
//
// Construction is bulk and parallel: slots are assigned sequentially
// (slot i is ring rank i) with the membership snapshot installed once,
// then per-node buckets — pure functions of the sorted membership —
// are populated over contiguous worker shards, bit-identically to the
// sequential build at any GOMAXPROCS. The per-node fill itself is
// O(log^2 n + k log n) via sorted-range trie descent instead of the
// O(n log n) full scan-and-sort the incremental path would pay per
// node, and because slot and ring index coincide the bucket entries
// are written as plain indices with no ID translation at all.
func BuildStatic(cfg Config, tr simnet.Transport, points []ring.Point) (*Network, error) {
	return BuildStaticPartition(cfg, tr, points, nil)
}

// BuildStaticPartition constructs the local shard of a fully populated
// network that spans multiple processes: the full membership defines
// every node's buckets and ring pointers, but only the nodes selected
// by owned are instantiated (and registered, on per-node transports)
// on this process's transport. The other points must be hosted by peer
// processes reachable through the transport (the wire transport routes
// by node id). A nil owned predicate owns everything, which is exactly
// BuildStatic.
//
// Per-node state is a pure function of the sorted membership, so every
// process computes identical state for its shard and the union across
// processes is bit-identical to the single-process build.
func BuildStaticPartition(cfg Config, tr simnet.Transport, points []ring.Point, owned func(ring.Point) bool) (*Network, error) {
	r, err := ring.New(points)
	if err != nil {
		return nil, fmt.Errorf("kademlia: building static network: %w", err)
	}
	n := NewNetwork(cfg, tr)
	sorted := r.Points()
	size := len(sorted)
	// Single-threaded sizing and slot assignment: no locks needed until
	// the network is published.
	n.growLocked(size)
	a := &n.st
	a.used = size
	n.memberSlots = make([]uint32, size)
	ownedIdx := make([]int, 0, size)
	single := size == 1
	for i, id := range sorted {
		s := uint32(i)
		n.memberSlots[i] = s
		a.ids[s] = uint64(id)
		if single {
			a.succs[s], a.preds[s] = s, s
		} else {
			a.succs[s] = uint32(r.NextIndex(i))
			a.preds[s] = uint32(r.PrevIndex(i))
		}
		a.handles[s] = Node{net: n, slot: s}
		if owned != nil && !owned(id) {
			continue
		}
		a.alive[s] = true
		if !n.multi {
			if err := tr.Register(simnet.NodeID(id), n.idHandler(id)); err != nil {
				return nil, fmt.Errorf("kademlia: registering node %v: %w", id, err)
			}
		}
		ownedIdx = append(ownedIdx, i)
	}
	n.members = sorted
	n.epoch++
	parallel.Shards(len(ownedIdx), parallel.Workers(len(ownedIdx)), func(lo, hi int) {
		scratch := make([]uint32, 0, n.cfg.BucketSize)
		rb := regionBatcher{n: n}
		for j := lo; j < hi; j++ {
			scratch = n.fillStaticSlot(sorted, ownedIdx[j], scratch, &rb)
		}
		rb.release()
	})
	return n, nil
}

// fillStaticSlot populates slot i's buckets (slot = ring rank, by
// construction) with the k XOR-closest members of each distance
// octave, farthest first so the closest contacts sit at the most-
// recently-seen end — the same state the old full scan-and-sort fill
// produced, computed from the sorted membership instead: bucket b's
// candidates form one contiguous value range (the aligned block
// reached by flipping bit b of the node's id and clearing the bits
// below), and the k XOR-closest within the range are selected by
// descending the implicit binary trie, visiting only subranges that
// can still contribute. It runs during BuildStatic's sharded phase:
// the slot is owned exclusively by one worker and published by the
// shard barrier, so no locks are taken.
func (n *Network) fillStaticSlot(sorted []ring.Point, i int, scratch []uint32, rb *regionBatcher) []uint32 {
	id := uint64(sorted[i])
	k := n.cfg.BucketSize
	row := n.st.bucketRefs[i*idBits : i*idBits+idBits]
	for b := 0; b < idBits; b++ {
		base := (id ^ (uint64(1) << uint(b))) &^ (uint64(1)<<uint(b) - 1)
		lo, _ := slices.BinarySearch(sorted, ring.Point(base))
		var hi int
		if end := base + uint64(1)<<uint(b); end == 0 {
			hi = len(sorted) // bucket 63's upper block ends at 2^64
		} else {
			hi, _ = slices.BinarySearch(sorted, ring.Point(end))
		}
		if lo >= hi {
			continue
		}
		scratch = collectXorClosest(scratch[:0], sorted, lo, hi, base, b, id, k)
		// Insertion-sort by descending XOR distance (≤ k elements, all
		// distances distinct) and install: entries order farthest →
		// closest matches the touch-farthest-first order of the
		// incremental path.
		for x := 1; x < len(scratch); x++ {
			v := scratch[x]
			dv := uint64(sorted[v]) ^ id
			j := x - 1
			for j >= 0 && uint64(sorted[scratch[j]])^id < dv {
				scratch[j+1] = scratch[j]
				j--
			}
			scratch[j+1] = v
		}
		ref := rb.alloc()
		reg := n.region(ref)
		copy(reg[1:], scratch)
		regSetLens(reg, len(scratch), 0)
		row[b] = ref
	}
	return scratch
}

// collectXorClosest appends the sorted-membership indices of the
// up-to-rem XOR-closest members to id within sorted[lo:hi), an aligned
// block of size 2^level starting at base. Output order is unspecified;
// callers sort. The descent takes the half sharing id's next bit first
// (strictly closer than the other half), so only ranges that can still
// contribute are visited. Indices double as arena slots during the
// static build, so the bucket entries need no ID translation.
func collectXorClosest(dst []uint32, sorted []ring.Point, lo, hi int, base uint64, level int, id uint64, rem int) []uint32 {
	for {
		if rem <= 0 || lo >= hi {
			return dst
		}
		if hi-lo <= rem || level == 0 {
			for j := lo; j < hi; j++ {
				dst = append(dst, uint32(j))
			}
			return dst
		}
		half := uint64(1) << uint(level-1)
		m, _ := slices.BinarySearch(sorted[lo:hi], ring.Point(base+half))
		mid := lo + m
		if id&half == 0 {
			// Lower half is XOR-closer: everything in it beats
			// everything in the upper half.
			before := len(dst)
			dst = collectXorClosest(dst, sorted, lo, mid, base, level-1, id, rem)
			rem -= len(dst) - before
			lo, base, level = mid, base+half, level-1
		} else {
			before := len(dst)
			dst = collectXorClosest(dst, sorted, mid, hi, base+half, level-1, id, rem)
			rem -= len(dst) - before
			hi, level = mid, level-1
		}
	}
}
