package kademlia

import (
	"fmt"
	"sync"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Node is one Kademlia peer: a routing table of k-buckets for XOR
// routing, plus ring successor/predecessor pointers that carry the
// paper's next(p) primitive and decide key ownership. All exported
// accessors and the RPC handler are safe for concurrent use; no lock
// is ever held across an RPC.
type Node struct {
	id    ring.Point
	net   *Network
	table *table

	mu    sync.RWMutex
	succ  ring.Point
	pred  ring.Point
	alive bool
}

// ID returns the node's identifier.
func (nd *Node) ID() ring.Point { return nd.id }

// Successor returns the node's ring successor pointer.
func (nd *Node) Successor() ring.Point {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	return nd.succ
}

// Predecessor returns the node's ring predecessor pointer.
func (nd *Node) Predecessor() ring.Point {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	return nd.pred
}

// Alive reports whether the node is participating in the network.
func (nd *Node) Alive() bool {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	return nd.alive
}

// Contacts returns every routing-table entry (all buckets), the edges
// a random-walk sampler would traverse.
func (nd *Node) Contacts() []ring.Point { return nd.table.contacts() }

// TableSize returns the number of routing-table entries.
func (nd *Node) TableSize() int { return nd.table.size() }

// BucketEntries returns a copy of bucket i's entries (LRU first).
func (nd *Node) BucketEntries(i int) []ring.Point { return nd.table.entriesOf(i) }

// setRing installs the node's ring pointers.
func (nd *Node) setRing(succ, pred ring.Point) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.succ = succ
	nd.pred = pred
}

// handle dispatches one RPC. It is registered with the transport.
// Every inbound message is evidence the sender is alive, so the sender
// is recorded in the routing table first (Kademlia's passive table
// maintenance).
func (nd *Node) handle(from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	if p := ring.Point(from); p != nd.id {
		nd.table.touch(p)
	}
	switch m := msg.(type) {
	case findNodeReq:
		resp := newFindNodeResp()
		resp.Closest = nd.table.closestInto(resp.Closest, m.Target, m.K, true)
		return resp, nil
	case getSuccessorReq:
		return newPointResp(nd.Successor()), nil
	case getPredecessorReq:
		return newPointResp(nd.Predecessor()), nil
	case spliceReq:
		nd.mu.Lock()
		if m.HasSucc {
			nd.succ = m.Succ
		}
		if m.HasPred {
			nd.pred = m.Pred
		}
		nd.mu.Unlock()
		return ackResp{}, nil
	case pingReq:
		return ackResp{}, nil
	default:
		return nil, fmt.Errorf("kademlia: node %v: unknown message %T from %d", nd.id, msg, from)
	}
}
