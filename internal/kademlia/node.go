package kademlia

import (
	"fmt"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Node is one Kademlia peer's public handle: a (network, slot) pair
// into the network's flat slot arena. A handle holds no state of its
// own — the ring pointers and k-buckets live in the arena's packed
// arrays and bucket regions — so handles are 16 bytes, preconstructed
// once per slot, and handed out by pointer with no allocation. All
// exported accessors and the RPC handlers are safe for concurrent use;
// no lock is ever held across an RPC.
type Node struct {
	net  *Network
	slot uint32
}

// ID returns the node's identifier.
func (nd *Node) ID() ring.Point { return nd.net.idOf(nd.slot) }

// Successor returns the node's ring successor pointer.
func (nd *Node) Successor() ring.Point { return nd.net.succOf(nd.slot) }

// Predecessor returns the node's ring predecessor pointer.
func (nd *Node) Predecessor() ring.Point { return nd.net.predOf(nd.slot) }

// Alive reports whether the node is participating in the network.
func (nd *Node) Alive() bool {
	n := nd.net
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.st.alive[nd.slot]
}

// Contacts returns every routing-table entry (all buckets), the edges
// a random-walk sampler would traverse.
func (nd *Node) Contacts() []ring.Point { return nd.net.contactsOf(nd.slot) }

// TableSize returns the number of routing-table entries.
func (nd *Node) TableSize() int { return nd.net.tableSizeOf(nd.slot) }

// BucketEntries returns a copy of bucket i's entries (LRU first).
func (nd *Node) BucketEntries(i int) []ring.Point { return nd.net.entriesOfSlot(nd.slot, i) }

// setRing installs the node's ring pointers.
func (nd *Node) setRing(succ, pred ring.Point) { nd.net.setRing(nd.slot, succ, pred) }

// idOf returns slot s's identifier.
func (n *Network) idOf(s uint32) ring.Point {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	id := a.id(s)
	st.RUnlock()
	return id
}

// succOf returns slot s's ring successor identifier.
func (n *Network) succOf(s uint32) ring.Point {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	succ := a.id(a.succs[s])
	st.RUnlock()
	return succ
}

// predOf returns slot s's ring predecessor identifier.
func (n *Network) predOf(s uint32) ring.Point {
	a := &n.st
	st := a.stripe(s)
	st.RLock()
	pred := a.id(a.preds[s])
	st.RUnlock()
	return pred
}

// setRing installs slot s's ring pointers. The targets are interned
// outside the stripe (lock order: network.mu before stripe).
func (n *Network) setRing(s uint32, succ, pred ring.Point) {
	ss := n.intern(succ)
	ps := n.intern(pred)
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	a.succs[s] = ss
	a.preds[s] = ps
	st.Unlock()
}

// setSucc installs slot s's ring successor pointer.
func (n *Network) setSucc(s uint32, succ ring.Point) {
	ss := n.intern(succ) // before the stripe: intern takes network.mu
	a := &n.st
	st := a.stripe(s)
	st.Lock()
	a.succs[s] = ss
	st.Unlock()
}

// handleRPC dispatches one RPC addressed to the node in slot s. Every
// inbound message is evidence the sender is alive, so the sender is
// recorded in the routing table first (Kademlia's passive table
// maintenance).
func (n *Network) handleRPC(s uint32, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	if p := ring.Point(from); p != n.idOf(s) {
		n.touchContact(s, p)
	}
	switch m := msg.(type) {
	case findNodeReq:
		resp := newFindNodeResp()
		resp.Closest = n.closestIntoSlot(s, resp.Closest, m.Target, m.K, true)
		return resp, nil
	case getSuccessorReq:
		return newPointResp(n.succOf(s)), nil
	case getPredecessorReq:
		return newPointResp(n.predOf(s)), nil
	case spliceReq:
		// Intern both targets before taking the stripe (lock order:
		// network.mu before stripe).
		var ss, ps uint32
		if m.HasSucc {
			ss = n.intern(m.Succ)
		}
		if m.HasPred {
			ps = n.intern(m.Pred)
		}
		a := &n.st
		st := a.stripe(s)
		st.Lock()
		if m.HasSucc {
			a.succs[s] = ss
		}
		if m.HasPred {
			a.preds[s] = ps
		}
		st.Unlock()
		return ackResp{}, nil
	case pingReq:
		return ackResp{}, nil
	default:
		return nil, fmt.Errorf("kademlia: node %v: unknown message %T from %d", n.idOf(s), msg, from)
	}
}
