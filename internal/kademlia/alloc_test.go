package kademlia

import (
	"math/rand/v2"
	"testing"

	"github.com/dht-sampling/randompeer/internal/raceflag"

	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// resolveAllocBudget documents the per-lookup allocation cost of the h
// primitive on a fully populated overlay: 4 measured — the FIND_NODE
// request envelope (boxed once per lookup), the Seen and Closest
// result slices (both escape in the public LookupResult), and one
// residual — with +2 headroom for scratch- and reply-pool refills
// after a GC. Everything else (candidate state map, k-best selection,
// query waves, reply buffers) is reused through free-lists.
const resolveAllocBudget = 6

func TestAllocBudgetResolveOwner(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewPCG(47, 47))
	r, err := ring.Generate(rng, 1024)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(500, func() {
		if _, _, err := net.ResolveOwner(r.At(0), ring.Point(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	})
	if got > resolveAllocBudget {
		t.Errorf("kademlia ResolveOwner allocates %.1f per lookup, budget %d", got, resolveAllocBudget)
	}
}

// TestAllocBudgetSuccessor pins the next(p) primitive, which every
// walk step of every sample pays: zero-size request, pooled reply.
func TestAllocBudgetSuccessor(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewPCG(48, 48))
	r, err := ring.Generate(rng, 1024)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildStatic(Config{}, simnet.NewDirect(), r.Points())
	if err != nil {
		t.Fatal(err)
	}
	cur := r.At(0)
	got := testing.AllocsPerRun(500, func() {
		var err error
		if cur, err = net.Successor(r.At(0), cur); err != nil {
			t.Fatal(err)
		}
	})
	if got > 1 {
		t.Errorf("kademlia Successor allocates %.1f per call, budget 1", got)
	}
}

// skipIfRace skips an allocation-budget test under the race detector,
// whose instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
}
