package kademlia_test

import (
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/dht/dhttest"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
	"github.com/dht-sampling/randompeer/internal/wire"
)

// TestKademliaConformance runs the shared DHT conformance suite
// against the Kademlia network: the sampler-facing (h, next) contract
// holds on a prefix-routing overlay whose metric is not the clockwise
// circle, which is the substrate-independence claim made executable.
func TestKademliaConformance(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "kademlia", func(points []ring.Point) (dht.DHT, error) {
		net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}

// TestKademliaConformanceSimTransport re-runs the suite over the
// virtual-clock transport: simulated time must not change any
// sampler-facing behaviour, only add latency accounting.
func TestKademliaConformanceSimTransport(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "kademlia-sim", func(points []ring.Point) (dht.DHT, error) {
		tr := sim.NewTransport(sim.WithModel(sim.Constant{RTT: time.Millisecond}))
		net, err := kademlia.BuildStatic(kademlia.Config{}, tr, points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}

// TestKademliaConformanceWireTransport re-runs the suite over real
// TCP sockets: the overlay is partitioned across two wire transports
// (the caller's node on one, every other node on the other), so every
// FindClosest iteration is an HTTP RPC over loopback. The
// sampler-facing contract — and the metered costs the suite checks —
// must be identical to the in-process transports.
func TestKademliaConformanceWireTransport(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "kademlia-wire", func(points []ring.Point) (dht.DHT, error) {
		server := wire.NewTransport(wire.WithJitterSeed(1))
		if err := server.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		t.Cleanup(func() { server.Close() })
		client := wire.NewTransport(wire.WithJitterSeed(2))
		if err := client.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		t.Cleanup(func() { client.Close() })
		local := points[0]
		for _, p := range points {
			if p == local {
				server.SetRoute(simnet.NodeID(p), client.Addr())
			} else {
				client.SetRoute(simnet.NodeID(p), server.Addr())
			}
		}
		if _, err := kademlia.BuildStaticPartition(kademlia.Config{}, server, points,
			func(p ring.Point) bool { return p != local }); err != nil {
			return nil, err
		}
		net, err := kademlia.BuildStaticPartition(kademlia.Config{}, client, points,
			func(p ring.Point) bool { return p == local })
		if err != nil {
			return nil, err
		}
		return net.AsDHT(local)
	})
}

// TestKademliaConformanceSmallK re-runs the suite with tiny buckets
// and minimal parallelism: correctness must not depend on generous
// routing state, only cost does.
func TestKademliaConformanceSmallK(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "kademlia-k2", func(points []ring.Point) (dht.DHT, error) {
		net, err := kademlia.BuildStatic(kademlia.Config{BucketSize: 2, Alpha: 1}, simnet.NewDirect(), points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}
