package kademlia_test

import (
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/dht"
	"github.com/dht-sampling/randompeer/internal/dht/dhttest"
	"github.com/dht-sampling/randompeer/internal/kademlia"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// TestKademliaConformance runs the shared DHT conformance suite
// against the Kademlia network: the sampler-facing (h, next) contract
// holds on a prefix-routing overlay whose metric is not the clockwise
// circle, which is the substrate-independence claim made executable.
func TestKademliaConformance(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "kademlia", func(points []ring.Point) (dht.DHT, error) {
		net, err := kademlia.BuildStatic(kademlia.Config{}, simnet.NewDirect(), points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}

// TestKademliaConformanceSimTransport re-runs the suite over the
// virtual-clock transport: simulated time must not change any
// sampler-facing behaviour, only add latency accounting.
func TestKademliaConformanceSimTransport(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "kademlia-sim", func(points []ring.Point) (dht.DHT, error) {
		tr := sim.NewTransport(sim.WithModel(sim.Constant{RTT: time.Millisecond}))
		net, err := kademlia.BuildStatic(kademlia.Config{}, tr, points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}

// TestKademliaConformanceSmallK re-runs the suite with tiny buckets
// and minimal parallelism: correctness must not depend on generous
// routing state, only cost does.
func TestKademliaConformanceSmallK(t *testing.T) {
	t.Parallel()
	dhttest.Run(t, "kademlia-k2", func(points []ring.Point) (dht.DHT, error) {
		net, err := kademlia.BuildStatic(kademlia.Config{BucketSize: 2, Alpha: 1}, simnet.NewDirect(), points)
		if err != nil {
			return nil, err
		}
		return net.AsDHT(points[0])
	})
}
