// Package kademlia is a Kademlia-style DHT (Maymounkov & Mazières,
// IPTPS 2002) over the simulated network in internal/simnet: 64-bit
// identifiers under the XOR metric, k-buckets with least-recently-seen
// eviction and replacement caches, and iterative FIND_NODE lookups with
// configurable parallelism (alpha) and closeness (k).
//
// It is the second real routing geometry of the repo (after
// internal/chord) and exists to prove King & Saia's substrate-
// independence claim: the paper's sampler needs only h (a routed
// lookup) and next (one successor chase), so it must run unmodified
// over a prefix-routing overlay whose metric is not the clockwise
// circle. The dht.DHT adapter in this package resolves h by combining
// an iterative XOR lookup with each node's maintained ring pointers —
// see adapter.go for the owner-resolution argument — and serves next
// from the successor pointer in one RPC, with all costs charged on the
// transport meter.
package kademlia

import (
	"math/bits"
	"sync"

	"github.com/dht-sampling/randompeer/internal/ring"
)

// idBits is the identifier width; XOR distances span [0, 2^64).
const idBits = 64

// xorDist returns the XOR distance between two identifiers. It is the
// Kademlia metric: symmetric, and unidirectional (for any target and
// distance there is exactly one identifier at that distance).
func xorDist(a, b ring.Point) uint64 {
	return uint64(a) ^ uint64(b)
}

// bucketIndex returns the k-bucket an identifier at XOR distance d
// belongs to: bucket i covers distances [2^i, 2^(i+1)). Distance zero
// (the node itself) has no bucket; callers must not pass it.
func bucketIndex(d uint64) int {
	return bits.Len64(d) - 1
}

// cwDist returns the clockwise ring distance from x to p (zero when
// they coincide). The ring metric decides key ownership — h(x) is the
// clockwise-closest peer — while the XOR metric only routes.
func cwDist(x, p ring.Point) uint64 {
	return ring.Distance(x, p)
}

// betweenIncl reports whether x lies in the clockwise interval (a, b].
// When a == b the interval spans the full circle (the single-node
// case), so every x qualifies.
func betweenIncl(a, b, x ring.Point) bool {
	if a == b {
		return true
	}
	d := ring.Distance(a, x)
	return d != 0 && d <= ring.Distance(a, b)
}

// RPC request and response payloads. Handlers are strictly local: they
// read or mutate the destination node's state and never issue nested
// RPCs, which keeps every transport deadlock-free. Liveness probes and
// bucket refreshes happen in the maintenance path, never in handlers.

// findNodeReq asks a node for the K contacts it knows closest (by XOR)
// to Target.
type findNodeReq struct {
	Target ring.Point
	K      int
}

// findNodeResp carries the responder's closest known contacts, best
// (XOR-closest) first, including the responder itself. Replies travel
// as pooled pointers whose Closest buffer is reused across RPCs: a
// FIND_NODE reply is issued per queried contact per lookup round, so
// boxing a fresh value plus a fresh k-slice each time was the
// subsystem's densest allocation site. The lookup loop drains each
// reply and recycles it with putFindNodeResp.
type findNodeResp struct {
	Closest []ring.Point
}

var findNodeRespPool = sync.Pool{New: func() any { return new(findNodeResp) }}

// newFindNodeResp returns a reply from the pool with an empty (but
// possibly pre-grown) Closest buffer.
func newFindNodeResp() *findNodeResp {
	r := findNodeRespPool.Get().(*findNodeResp)
	r.Closest = r.Closest[:0]
	return r
}

// putFindNodeResp recycles a reply, keeping its buffer.
func putFindNodeResp(r *findNodeResp) { findNodeRespPool.Put(r) }

// getSuccessorReq asks a node for its ring successor pointer. This is
// the paper's next(p): one pointer chase, one RPC.
type getSuccessorReq struct{}

// getPredecessorReq asks a node for its ring predecessor pointer.
type getPredecessorReq struct{}

// pointResp carries one identifier. Pooled like findNodeResp: the
// successor chase issues one of these RPCs per walk step of every
// sample. Consumers copy P out and recycle with putPointResp.
type pointResp struct {
	P ring.Point
}

var pointRespPool = sync.Pool{New: func() any { return new(pointResp) }}

// newPointResp returns a filled reply from the pool.
func newPointResp(p ring.Point) *pointResp {
	r := pointRespPool.Get().(*pointResp)
	r.P = p
	return r
}

// putPointResp recycles a reply the consumer is done with.
func putPointResp(r *pointResp) { pointRespPool.Put(r) }

// spliceReq rewires a node's ring pointers during a join: the receiver
// adopts Succ and/or Pred when the corresponding Has flag is set.
type spliceReq struct {
	Succ    ring.Point
	HasSucc bool
	Pred    ring.Point
	HasPred bool
}

// pingReq checks liveness (used by maintenance to validate
// least-recently-seen bucket entries before eviction decisions).
type pingReq struct{}

// ackResp acknowledges splice and ping.
type ackResp struct{}
