package kademlia

import "github.com/dht-sampling/randompeer/internal/wire"

// Wire registration of every Kademlia RPC payload: the same
// value/pointer shapes the handlers and callers use in-process travel
// across process boundaries on the wire transport. Adding an RPC type
// without registering it here fails loudly at the first cross-process
// call (wire: message type not registered).
func init() {
	wire.RegisterValue[findNodeReq]("kademlia.findNodeReq")
	wire.RegisterPointer[findNodeResp]("kademlia.findNodeResp")
	wire.RegisterValue[getSuccessorReq]("kademlia.getSuccessorReq")
	wire.RegisterValue[getPredecessorReq]("kademlia.getPredecessorReq")
	wire.RegisterPointer[pointResp]("kademlia.pointResp")
	wire.RegisterValue[spliceReq]("kademlia.spliceReq")
	wire.RegisterValue[pingReq]("kademlia.pingReq")
	wire.RegisterValue[ackResp]("kademlia.ackResp")
}
