package kademlia

import (
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Byzantine reply forging. Like chord's equivalent, this file exports
// the minimal surface the adversary package needs over the unexported
// (pooled) RPC payloads: recognize subvertible RPCs and rewrite their
// replies toward attacker-chosen peers. Policy (who lies, to whom)
// stays in internal/adversary; this file owns how each kademlia RPC is
// best subverted, because that takes the overlay's own metrics:
//
//   - FIND_NODE replies carry the coalition members XOR-closest to the
//     requested target. Anything else loses the race inside the
//     querier's k-closest frontier — a random colluder is almost never
//     closer than the honest candidates already known, so the lie gets
//     ignored; the XOR-closest colluders displace honest candidates
//     and (during maintenance refreshes) land in exactly the bucket
//     being refreshed.
//   - Ring-pointer replies use widest-interval lies. The owner
//     verification accepts a successor reply s from node m when the
//     key x lies in (m, s], so the most credible lie is the coalition
//     member the farthest clockwise from the asked node — the interval
//     it claims covers almost the whole circle and passes the check
//     for almost every key. Predecessor lies mirror this
//     counterclockwise.
//
// Every forged value is a pure function of (lying node, request,
// coalition), keeping simulations bit-identical at any GOMAXPROCS.

// IsLookupRPC reports whether msg is an iterative-lookup step (a
// FIND_NODE request).
func IsLookupRPC(msg simnet.Message) bool {
	_, ok := msg.(findNodeReq)
	return ok
}

// IsPointerRPC reports whether msg is a ring-pointer query (the
// successor/predecessor reads behind the paper's next primitive and
// the adapter's owner verification).
func IsPointerRPC(msg simnet.Message) bool {
	switch msg.(type) {
	case getSuccessorReq, getPredecessorReq:
		return true
	}
	return false
}

// ByzantineReply forges the reply lying node self substitutes for the
// genuine handler outcome (resp, err) it produced for req. coalition
// is the full colluding set in ascending point order; the forged
// values steer toward its members as described in the file comment.
// The third return is false when req is not a subvertible kademlia
// RPC (or no usable lie exists). Forged replies reuse the handler's
// pooled reply value when one exists.
func ByzantineReply(self ring.Point, req, resp simnet.Message, err error, coalition []ring.Point) (simnet.Message, error, bool) {
	if len(coalition) == 0 {
		return nil, nil, false
	}
	switch m := req.(type) {
	case findNodeReq:
		r, ok := resp.(*findNodeResp)
		if !ok || err != nil {
			r = newFindNodeResp()
		}
		k := m.K
		if k <= 0 {
			k = 1
		}
		r.Closest = r.Closest[:0]
		for _, c := range coalition {
			r.Closest = insertClosest(r.Closest, m.Target, k, c)
		}
		// Also inject the colluders ring-sandwiching the target: every
		// reply contact enters the querier's seen set, and the owner
		// verification scans that set by clockwise distance — so the
		// coalition members tightest below and above the target are the
		// ones that can win the predecessor/owner slots.
		below := nearest(coalition, func(c ring.Point) uint64 { return cwDist(c, m.Target) })
		above := nearest(coalition, func(c ring.Point) uint64 { return cwDist(m.Target, c) })
		r.Closest = appendUnique(r.Closest, below)
		r.Closest = appendUnique(r.Closest, above)
		return r, nil, true
	case getSuccessorReq:
		// Widest clockwise interval: the colluder the farthest
		// clockwise from self (skipping self, who may itself collude).
		lie, ok := farthest(self, coalition, func(c ring.Point) uint64 { return cwDist(self, c) })
		if !ok {
			return nil, nil, false
		}
		r, isPool := resp.(*pointResp)
		if !isPool || err != nil {
			r = newPointResp(lie)
		}
		r.P = lie
		return r, nil, true
	case getPredecessorReq:
		lie, ok := farthest(self, coalition, func(c ring.Point) uint64 { return cwDist(c, self) })
		if !ok {
			return nil, nil, false
		}
		r, isPool := resp.(*pointResp)
		if !isPool || err != nil {
			r = newPointResp(lie)
		}
		r.P = lie
		return r, nil, true
	}
	return nil, nil, false
}

// nearest returns the coalition member minimizing dist. The caller
// guarantees a non-empty coalition.
func nearest(coalition []ring.Point, dist func(ring.Point) uint64) ring.Point {
	best := coalition[0]
	bestD := dist(best)
	for _, c := range coalition[1:] {
		if d := dist(c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// appendUnique appends p unless already present (forged contact lists
// are short, so the linear scan is fine).
func appendUnique(list []ring.Point, p ring.Point) []ring.Point {
	for _, e := range list {
		if e == p {
			return list
		}
	}
	return append(list, p)
}

// farthest returns the coalition member other than self maximizing
// dist, and false when the coalition holds nobody else.
func farthest(self ring.Point, coalition []ring.Point, dist func(ring.Point) uint64) (ring.Point, bool) {
	var best ring.Point
	var bestD uint64
	found := false
	for _, c := range coalition {
		if c == self {
			continue
		}
		if d := dist(c); !found || d > bestD {
			best, bestD, found = c, d, true
		}
	}
	return best, found
}
