package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dht-sampling/randompeer/internal/obs"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Transport is a virtual-clock RPC fabric implementing
// simnet.Transport: every Call pays a latency drawn from its Model
// before the destination handler runs, and the round trip is recorded in
// the meter's latency histogram next to the usual call/message counters.
//
// Bound to a Kernel, a Call made inside a kernel process sleeps on the
// event queue, so other processes (churn events, maintenance sweeps,
// other samplers) interleave with it in virtual time — and a node
// crashed while the message is in flight makes the call fail, exactly
// as it would on a real network. Without a kernel (or outside any
// process) the transport free-runs: each Call advances the clock in the
// caller's goroutine, which keeps sequential workloads deterministic
// and costs a few nanoseconds over the Direct transport.
//
// Handlers execute in the calling goroutine with no transport locks
// held, exactly like simnet.Direct.
type Transport struct {
	mu       sync.RWMutex
	handlers map[simnet.NodeID]simnet.Handler
	multis   []multiReg
	closed   bool
	meter    simnet.Meter
	faults   *simnet.Faults
	model    Model
	stream   *Stream
	kernel   *Kernel

	// constRTT short-circuits constant models on the hot path: no
	// uniform draw, no interface call. Zero means "not constant".
	constRTT time.Duration
	// shaped is true while any slowdown or link delay is installed;
	// false keeps the constant-model fast path inlinable in Call.
	shaped atomic.Bool

	// slow and delay are copy-on-write so the hot path pays one atomic
	// load when no slowdowns or link delays are installed.
	slow  atomic.Pointer[map[simnet.NodeID]float64]
	delay atomic.Pointer[map[[2]simnet.NodeID]time.Duration]

	// trace, when armed, records one obs.Hop per Call. Disarmed it is
	// one atomic pointer load on the hot path.
	trace atomic.Pointer[obs.Trace]
	// byz, when armed, rewrites handler outcomes (Byzantine nodes).
	// Disarmed it is one atomic pointer load on the hot path.
	byz atomic.Pointer[simnet.Interceptor]
}

// multiReg is one bulk registration: an ownership predicate plus the
// handler serving every owned node (see simnet.MultiRegistrar).
type multiReg struct {
	owns func(simnet.NodeID) bool
	h    simnet.MultiHandler
}

var (
	_ simnet.Transport      = (*Transport)(nil)
	_ obs.Traceable         = (*Transport)(nil)
	_ simnet.Interceptable  = (*Transport)(nil)
	_ simnet.MultiRegistrar = (*Transport)(nil)
)

// TransportOption configures a Transport.
type TransportOption func(*Transport)

// WithModel sets the latency model (default Constant{1ms}).
func WithModel(m Model) TransportOption {
	return func(t *Transport) {
		if m != nil {
			t.model = m
		}
	}
}

// WithStreamSeed roots the latency draw stream (default 1).
func WithStreamSeed(seed uint64) TransportOption {
	return func(t *Transport) { t.stream = NewStream(seed) }
}

// WithKernel binds the transport to a kernel: calls from kernel
// processes sleep on the event queue and the kernel's clock is the
// transport's clock.
func WithKernel(k *Kernel) TransportOption {
	return func(t *Transport) { t.kernel = k }
}

// WithFaults attaches a fault-injection plan (shared with the simnet
// transports). Combine with Kernel.At to script time-based faults:
// schedule a process that flips SetDead, SetDropRate, SetNodeSlowdown,
// SetLinkDelay or Partition/Heal at chosen virtual times.
func WithFaults(f *simnet.Faults) TransportOption {
	return func(t *Transport) { t.faults = f }
}

// NewTransport returns a ready-to-use virtual-clock transport.
func NewTransport(opts ...TransportOption) *Transport {
	t := &Transport{
		handlers: make(map[simnet.NodeID]simnet.Handler),
		model:    Constant{RTT: time.Millisecond},
		stream:   NewStream(1),
	}
	for _, opt := range opts {
		opt(t)
	}
	if c, ok := t.model.(Constant); ok {
		t.constRTT = c.RTT
		// Arm the meter's constant-latency fast lane: successful calls
		// under an unshaped constant model charge call count and latency
		// record in one atomic add (see Meter.ChargeConstSuccess).
		t.meter.ArmConstLatency(c.RTT)
	}
	return t
}

// Now returns the current virtual time: the kernel clock when bound,
// otherwise the sum of every recorded RPC latency — free-running calls
// execute back to back, so total latency IS elapsed sequential time,
// and the hot path saves a separate clock update per call.
func (t *Transport) Now() time.Duration {
	if t.kernel != nil {
		return t.kernel.Now()
	}
	return time.Duration(t.meter.LatencySumNanos())
}

// Model returns the transport's latency model.
func (t *Transport) Model() Model { return t.model }

// SetNodeSlowdown multiplies the latency of every RPC from or to id by
// factor (factor 1 removes the slowdown). It models a struggling host —
// schedule it from a timed kernel process to start or stop mid-run.
func (t *Transport) SetNodeSlowdown(id simnet.NodeID, factor float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.slow.Load()
	next := make(map[simnet.NodeID]float64)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	if factor == 1 {
		delete(next, id)
	} else {
		next[id] = factor
	}
	if len(next) == 0 {
		t.slow.Store(nil)
	} else {
		t.slow.Store(&next)
	}
	t.reshape()
}

// SetLinkDelay adds a fixed extra delay to every RPC on the directed
// link from -> to (zero removes it). It models a congested or long
// route between two specific peers.
func (t *Transport) SetLinkDelay(from, to simnet.NodeID, extra time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.delay.Load()
	next := make(map[[2]simnet.NodeID]time.Duration)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	key := [2]simnet.NodeID{from, to}
	if extra == 0 {
		delete(next, key)
	} else {
		next[key] = extra
	}
	if len(next) == 0 {
		t.delay.Store(nil)
	} else {
		t.delay.Store(&next)
	}
	t.reshape()
}

// reshape refreshes the fast-path flag after a slowdown or delay
// change (caller holds t.mu).
func (t *Transport) reshape() {
	t.shaped.Store(t.slow.Load() != nil || t.delay.Load() != nil)
}

// latencySlow draws from the model and applies slowdowns and delays.
// Call bypasses it for unshaped constant models — the per-RPC hot path
// of every simulated-time benchmark.
func (t *Transport) latencySlow(from, to simnet.NodeID) time.Duration {
	var d time.Duration
	if t.constRTT != 0 {
		d = t.constRTT
	} else {
		d = t.model.Latency(from, to, t.stream.U01())
	}
	if m := t.slow.Load(); m != nil {
		if f, ok := (*m)[from]; ok {
			d = time.Duration(float64(d) * f)
		}
		if f, ok := (*m)[to]; ok {
			d = time.Duration(float64(d) * f)
		}
	}
	if m := t.delay.Load(); m != nil {
		if extra, ok := (*m)[[2]simnet.NodeID{from, to}]; ok {
			d += extra
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Register implements simnet.Transport.
func (t *Transport) Register(id simnet.NodeID, h simnet.Handler) error {
	if h == nil {
		return fmt.Errorf("sim: nil handler for node %d", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return simnet.ErrClosed
	}
	if _, ok := t.handlers[id]; ok {
		return fmt.Errorf("%w: %d", simnet.ErrDuplicateID, id)
	}
	t.handlers[id] = h
	return nil
}

// RegisterMulti implements simnet.MultiRegistrar: h serves every node
// owns reports as hosted here, with no per-node table entry. Because
// ownership is consulted only when the message is delivered — after
// the latency has elapsed — a node crashed while the message is in
// flight fails the call exactly like a deregistered one.
func (t *Transport) RegisterMulti(owns func(simnet.NodeID) bool, h simnet.MultiHandler) error {
	if owns == nil || h == nil {
		return fmt.Errorf("sim: nil multi registration")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return simnet.ErrClosed
	}
	t.multis = append(t.multis, multiReg{owns: owns, h: h})
	return nil
}

// Deregister implements simnet.Transport.
func (t *Transport) Deregister(id simnet.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.handlers, id)
}

// SetTrace arms (nil disarms) hop tracing. Traced hops carry both the
// virtual round trip (from the transport clock) and the wall-clock
// time the call took to execute. Virtual deltas are per-call accurate
// for sequential lookups; under a kernel with concurrent processes the
// clock advances for everyone, so arm traces on quiesced lookups.
func (t *Transport) SetTrace(tr *obs.Trace) { t.trace.Store(tr) }

// SetInterceptor arms (nil disarms) the Byzantine hook: while armed,
// every RPC's handler outcome passes through ic before metering and
// delivery — after the latency has elapsed and the fault plan has let
// the call through. Disarmed, the hook costs one atomic pointer load.
func (t *Transport) SetInterceptor(ic simnet.Interceptor) {
	if ic == nil {
		t.byz.Store(nil)
		return
	}
	t.byz.Store(&ic)
}

// Call implements simnet.Transport. The destination is resolved only
// after the latency has elapsed, so a node deregistered (crashed) while
// the message is in flight fails the call — asynchronous churn is
// visible to in-flight RPCs.
func (t *Transport) Call(from, to simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	if tr := t.trace.Load(); tr != nil {
		return t.callTraced(tr, from, to, msg)
	}
	return t.call(from, to, msg)
}

// callTraced wraps call with virtual and wall timing plus a hop record.
func (t *Transport) callTraced(tr *obs.Trace, from, to simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	startWall := time.Now()
	startVirt := t.Now()
	resp, err := t.call(from, to, msg)
	tr.Record(obs.Hop{
		From:         uint64(from),
		To:           uint64(to),
		RPC:          simnet.MessageName(msg),
		VirtualNanos: int64(t.Now() - startVirt),
		WallNanos:    time.Since(startWall).Nanoseconds(),
		Outcome:      simnet.ErrorClass(err),
	})
	return resp, err
}

func (t *Transport) call(from, to simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
	lat := t.constRTT
	konst := lat != 0 && !t.shaped.Load()
	if !konst {
		lat = t.latencySlow(from, to)
	}
	if k := t.kernel; k != nil {
		if err := k.Sleep(lat); err != nil {
			// Kernel draining: surface the transport-closed condition
			// the protocols already unwind on.
			return t.fail(from, to, lat, simnet.ErrClosed)
		}
	}
	if err := t.faults.Check(from, to, msg); err != nil {
		return t.fail(from, to, lat, err)
	}
	t.mu.RLock()
	closed := t.closed
	h, ok := t.handlers[to]
	var mh simnet.MultiHandler
	if !ok && !closed {
		for i := range t.multis {
			if t.multis[i].owns(to) {
				mh, ok = t.multis[i].h, true
				break
			}
		}
	}
	t.mu.RUnlock()
	if closed {
		return t.fail(from, to, lat, simnet.ErrClosed)
	}
	if !ok {
		t.meter.ChargeFailure()
		t.meter.RecordLatency(lat)
		return nil, fmt.Errorf("%w: %d", simnet.ErrUnknownNode, to)
	}
	var resp simnet.Message
	var err error
	if mh != nil {
		resp, err = mh(to, from, msg)
	} else {
		resp, err = h(from, msg)
	}
	if bz := t.byz.Load(); bz != nil {
		resp, err = (*bz)(from, to, msg, resp, err)
	}
	if err != nil {
		return t.fail(from, to, lat, err)
	}
	if konst {
		// Unshaped constant model: one atomic add covers the call count
		// and the latency record — the same meter traffic Direct pays.
		t.meter.ChargeConstSuccess()
	} else {
		t.meter.ChargeSuccess()
		t.meter.RecordLatency(lat)
	}
	return resp, nil
}

// fail charges and wraps one failed RPC (a method, not a closure, to
// keep the hot path allocation-free).
func (t *Transport) fail(from, to simnet.NodeID, lat time.Duration, err error) (simnet.Message, error) {
	t.meter.ChargeFailure()
	t.meter.RecordLatency(lat)
	return nil, fmt.Errorf("call %d->%d: %w", from, to, err)
}

// Meter implements simnet.Transport.
func (t *Transport) Meter() *simnet.Meter { return &t.meter }

// Close implements simnet.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	t.handlers = make(map[simnet.NodeID]simnet.Handler)
	return nil
}
