package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.At(30*time.Millisecond, "c", func() { order = append(order, "c") })
	k.At(10*time.Millisecond, "a", func() { order = append(order, "a") })
	k.At(20*time.Millisecond, "b", func() { order = append(order, "b") })
	k.Run()
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Errorf("order = %s, want [a b c]", got)
	}
	if k.Now() != 30*time.Millisecond {
		t.Errorf("final clock = %v, want 30ms", k.Now())
	}
}

func TestKernelBreaksTiesInScheduleOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		k.At(5*time.Millisecond, "p", func() { order = append(order, i) })
	}
	k.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (same-time events must fire in schedule order)", i, got, i)
		}
	}
}

func TestKernelSleepInterleavesProcesses(t *testing.T) {
	k := NewKernel(1)
	type step struct {
		who string
		at  time.Duration
	}
	var trace []step
	k.Go("fast", func() {
		for i := 0; i < 3; i++ {
			if err := k.Sleep(10 * time.Millisecond); err != nil {
				t.Error(err)
				return
			}
			trace = append(trace, step{"fast", k.Now()})
		}
	})
	k.Go("slow", func() {
		if err := k.Sleep(25 * time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		trace = append(trace, step{"slow", k.Now()})
	})
	k.Run()
	want := []step{
		{"fast", 10 * time.Millisecond},
		{"fast", 20 * time.Millisecond},
		{"slow", 25 * time.Millisecond},
		{"fast", 30 * time.Millisecond},
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace[%d] = %v, want %v", i, trace[i], want[i])
		}
	}
}

func TestKernelNestedSpawn(t *testing.T) {
	k := NewKernel(1)
	var ran bool
	k.Go("parent", func() {
		k.At(k.Now()+5*time.Millisecond, "child", func() { ran = true })
		if err := k.Sleep(time.Millisecond); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if !ran {
		t.Error("child process spawned from a running process never ran")
	}
}

func TestKernelStopUnwindsSleepers(t *testing.T) {
	k := NewKernel(1)
	var stoppedErr error
	sleeps := 0
	k.Go("looper", func() {
		for {
			if err := k.Sleep(time.Millisecond); err != nil {
				stoppedErr = err
				return
			}
			sleeps++
		}
	})
	k.At(10*time.Millisecond, "watchdog", func() { k.Stop() })
	k.Run()
	if !errors.Is(stoppedErr, ErrStopped) {
		t.Errorf("sleeper saw %v, want ErrStopped", stoppedErr)
	}
	if sleeps == 0 {
		t.Error("looper never ran before the watchdog fired")
	}
	if !k.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestKernelFreeModeSleepAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	if err := k.Sleep(7 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 7*time.Millisecond {
		t.Errorf("clock = %v, want 7ms", k.Now())
	}
}

func TestKernelObserverSeesEveryEvent(t *testing.T) {
	k := NewKernel(1)
	var seen []uint64
	k.SetObserver(func(_ time.Duration, seq uint64, _ string) { seen = append(seen, seq) })
	k.Go("p", func() {
		for i := 0; i < 3; i++ {
			if err := k.Sleep(time.Millisecond); err != nil {
				return
			}
		}
	})
	k.Run()
	if uint64(len(seen)) != k.Processed() {
		t.Errorf("observer saw %d events, Processed() = %d", len(seen), k.Processed())
	}
	if len(seen) != 4 { // spawn + 3 sleeps
		t.Errorf("events = %d, want 4", len(seen))
	}
}

func TestPostRunsCallbacksInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.PostAt(30*time.Millisecond, "c", func() { order = append(order, "c") })
	k.At(10*time.Millisecond, "a", func() { order = append(order, "a") })
	k.PostAt(20*time.Millisecond, "b", func() { order = append(order, "b") })
	k.Run()
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Errorf("order = %s, want [a b c] (callbacks and processes share one queue)", got)
	}
	if k.Now() != 30*time.Millisecond {
		t.Errorf("final clock = %v, want 30ms", k.Now())
	}
}

func TestPostChainsAndSpawns(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	var fromCallback bool
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			k.Post(time.Millisecond, "tick", tick)
		} else {
			// Callbacks may spawn blocking processes.
			k.Go("proc", func() {
				if err := k.Sleep(time.Millisecond); err != nil {
					t.Error(err)
				}
				fromCallback = true
			})
		}
	}
	k.Post(0, "tick", tick)
	k.Run()
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if !fromCallback {
		t.Error("process spawned from a callback never ran")
	}
	if k.Now() != 5*time.Millisecond {
		t.Errorf("clock = %v, want 5ms", k.Now())
	}
}

func TestSleepFromCallbackPanics(t *testing.T) {
	k := NewKernel(1)
	var recovered any
	k.Post(0, "bad", func() {
		defer func() { recovered = recover() }()
		_ = k.Sleep(time.Millisecond)
	})
	k.Run()
	if recovered == nil {
		t.Fatal("Sleep inside a Post callback must panic (callbacks cannot block)")
	}
}

func TestGoArgPassesArgument(t *testing.T) {
	k := NewKernel(1)
	var got []uint64
	fn := func(v uint64) { got = append(got, v) }
	for i := uint64(0); i < 4; i++ {
		k.GoArg("p", fn, i*7)
	}
	k.Run()
	if fmt.Sprint(got) != "[0 7 14 21]" {
		t.Errorf("args = %v, want [0 7 14 21]", got)
	}
}

// TestCrossPathDeterminism is the callback fast path's compatibility
// guarantee: the same logical schedule — n timed work items at the same
// virtual times — produces a bit-identical event trace and identical
// side effects whether it is driven by a coroutine process sleeping
// between items or by a self-reposting callback chain. Both consume
// one (time, seq, name) event per item, so simulations may migrate
// non-blocking processes to callbacks without changing results.
func TestCrossPathDeterminism(t *testing.T) {
	const items = 64
	type record struct {
		at   time.Duration
		seq  uint64
		name string
	}
	run := func(callback bool) (trace []record, draws []uint64, clock time.Duration) {
		k := NewKernel(9)
		k.SetObserver(func(at time.Duration, seq uint64, name string) {
			trace = append(trace, record{at, seq, name})
		})
		rng := rand.New(rand.NewPCG(5, 6))
		work := func() { draws = append(draws, k.Rand().Uint64()) }
		gap := func() time.Duration { return time.Duration(rng.IntN(5)+1) * time.Millisecond }
		if callback {
			i := 0
			var tick func()
			tick = func() {
				work()
				i++
				if i < items {
					k.Post(gap(), "worker", tick)
				}
			}
			k.PostAt(0, "worker", tick)
		} else {
			k.At(0, "worker", func() {
				for i := 0; i < items; i++ {
					if i > 0 {
						if err := k.Sleep(gap()); err != nil {
							t.Error(err)
							return
						}
					}
					work()
				}
			})
		}
		k.Run()
		return trace, draws, k.Now()
	}
	pt, pd, pc := run(false)
	ct, cd, cc := run(true)
	if fmt.Sprint(pt) != fmt.Sprint(ct) {
		t.Errorf("event traces differ:\n proc     %v\n callback %v", pt, ct)
	}
	if fmt.Sprint(pd) != fmt.Sprint(cd) {
		t.Errorf("kernel RNG draw sequences differ")
	}
	if pc != cc {
		t.Errorf("final clocks differ: %v vs %v", pc, cc)
	}
	if len(pt) != items {
		t.Errorf("trace has %d events, want %d (one per work item on either path)", len(pt), items)
	}
}

// TestKernelAllocBudget gates the event loop's allocation behaviour:
// a steady-state callback chain (Post + dispatch) and a pooled-process
// sleep loop both run without any per-event heap allocation.
func TestKernelAllocBudget(t *testing.T) {
	t.Run("post-dispatch", func(t *testing.T) {
		k := NewKernel(1)
		const events = 2000
		i := 0
		var tick func()
		tick = func() {
			i++
			if i < events {
				k.Post(time.Microsecond, "tick", tick)
			}
		}
		avg := testing.AllocsPerRun(1, func() {
			i = 0
			k.Post(0, "tick", tick)
			k.Run()
		})
		// One queue-slice grow amortizes to ~0 per event.
		if perEvent := avg / events; perEvent > 0.01 {
			t.Errorf("callback events allocate %.4f allocs/event, want 0 amortized", perEvent)
		}
	})
	t.Run("proc-sleep", func(t *testing.T) {
		k := NewKernel(1)
		const events = 2000
		avg := testing.AllocsPerRun(1, func() {
			k.Go("sleeper", func() {
				for i := 0; i < events; i++ {
					if k.Sleep(time.Microsecond) != nil {
						return
					}
				}
			})
			k.Run()
		})
		// The spawn itself may allocate (closure + proc on first use);
		// the per-sleep fast path must not.
		if perEvent := avg / events; perEvent > 0.01 {
			t.Errorf("sleep events allocate %.4f allocs/event, want 0 amortized", perEvent)
		}
	})
}

// TestPooledProcsAreReused checks the spawn pool: after a process
// finishes, the next spawn reuses its coroutine instead of allocating a
// proc, two channels and a goroutine.
func TestPooledProcsAreReused(t *testing.T) {
	k := NewKernel(1)
	const spawns = 500
	i := 0
	var next func(uint64)
	next = func(u uint64) {
		i++
		if i < spawns {
			k.GoArg("chain", next, u+1)
		}
	}
	avg := testing.AllocsPerRun(1, func() {
		i = 0
		k.GoArg("chain", next, 0)
		k.Run()
	})
	if perSpawn := avg / spawns; perSpawn > 0.05 {
		t.Errorf("sequential spawns allocate %.4f allocs/spawn, want ~0 (pooled procs)", perSpawn)
	}
}

// TestStopDrainsCallbackChains is the regression test for the drain
// livelock: a self-reposting callback chain must not keep Run alive
// after Stop — with the clock frozen, each repost would land at the
// same virtual time, permanently ahead of every sleeper's wake event.
// Stop discards pending callbacks, so Run returns and the sleeper
// unwinds through ErrStopped.
func TestStopDrainsCallbackChains(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		k.Post(time.Millisecond, "tick", tick)
	}
	k.Post(0, "tick", tick)
	var sleeperErr error
	k.Go("sleeper", func() {
		sleeperErr = k.Sleep(time.Hour) // wakes only via the drain
	})
	k.At(5*time.Millisecond, "watchdog", func() { k.Stop() })
	done := make(chan struct{})
	go func() { k.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Stop with a reposting callback chain queued")
	}
	if !errors.Is(sleeperErr, ErrStopped) {
		t.Errorf("sleeper saw %v, want ErrStopped", sleeperErr)
	}
	if ticks == 0 {
		t.Error("callback chain never ran before Stop")
	}
}
