package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.At(30*time.Millisecond, "c", func() { order = append(order, "c") })
	k.At(10*time.Millisecond, "a", func() { order = append(order, "a") })
	k.At(20*time.Millisecond, "b", func() { order = append(order, "b") })
	k.Run()
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Errorf("order = %s, want [a b c]", got)
	}
	if k.Now() != 30*time.Millisecond {
		t.Errorf("final clock = %v, want 30ms", k.Now())
	}
}

func TestKernelBreaksTiesInScheduleOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		k.At(5*time.Millisecond, "p", func() { order = append(order, i) })
	}
	k.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (same-time events must fire in schedule order)", i, got, i)
		}
	}
}

func TestKernelSleepInterleavesProcesses(t *testing.T) {
	k := NewKernel(1)
	type step struct {
		who string
		at  time.Duration
	}
	var trace []step
	k.Go("fast", func() {
		for i := 0; i < 3; i++ {
			if err := k.Sleep(10 * time.Millisecond); err != nil {
				t.Error(err)
				return
			}
			trace = append(trace, step{"fast", k.Now()})
		}
	})
	k.Go("slow", func() {
		if err := k.Sleep(25 * time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		trace = append(trace, step{"slow", k.Now()})
	})
	k.Run()
	want := []step{
		{"fast", 10 * time.Millisecond},
		{"fast", 20 * time.Millisecond},
		{"slow", 25 * time.Millisecond},
		{"fast", 30 * time.Millisecond},
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace[%d] = %v, want %v", i, trace[i], want[i])
		}
	}
}

func TestKernelNestedSpawn(t *testing.T) {
	k := NewKernel(1)
	var ran bool
	k.Go("parent", func() {
		k.At(k.Now()+5*time.Millisecond, "child", func() { ran = true })
		if err := k.Sleep(time.Millisecond); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if !ran {
		t.Error("child process spawned from a running process never ran")
	}
}

func TestKernelStopUnwindsSleepers(t *testing.T) {
	k := NewKernel(1)
	var stoppedErr error
	sleeps := 0
	k.Go("looper", func() {
		for {
			if err := k.Sleep(time.Millisecond); err != nil {
				stoppedErr = err
				return
			}
			sleeps++
		}
	})
	k.At(10*time.Millisecond, "watchdog", func() { k.Stop() })
	k.Run()
	if !errors.Is(stoppedErr, ErrStopped) {
		t.Errorf("sleeper saw %v, want ErrStopped", stoppedErr)
	}
	if sleeps == 0 {
		t.Error("looper never ran before the watchdog fired")
	}
	if !k.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestKernelFreeModeSleepAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	if err := k.Sleep(7 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 7*time.Millisecond {
		t.Errorf("clock = %v, want 7ms", k.Now())
	}
}

func TestKernelObserverSeesEveryEvent(t *testing.T) {
	k := NewKernel(1)
	var seen []uint64
	k.SetObserver(func(_ time.Duration, seq uint64, _ string) { seen = append(seen, seq) })
	k.Go("p", func() {
		for i := 0; i < 3; i++ {
			if err := k.Sleep(time.Millisecond); err != nil {
				return
			}
		}
	})
	k.Run()
	if uint64(len(seen)) != k.Processed() {
		t.Errorf("observer saw %d events, Processed() = %d", len(seen), k.Processed())
	}
	if len(seen) != 4 { // spawn + 3 sleeps
		t.Errorf("events = %d, want 4", len(seen))
	}
}
