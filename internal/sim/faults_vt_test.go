package sim_test

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/dht-sampling/randompeer/internal/chord"
	"github.com/dht-sampling/randompeer/internal/churn"
	"github.com/dht-sampling/randompeer/internal/ring"
	"github.com/dht-sampling/randompeer/internal/sim"
	"github.com/dht-sampling/randompeer/internal/simnet"
)

// Virtual-time fault-plan tests: named partitions scheduled and healed
// on the simulation kernel while lookups are in flight, and random
// in-flight drops racing asynchronous churn crashes — both
// deterministic replays of the same seed.

// TestPartitionHealsMidLookup schedules a partition cutting an island
// off the ring and a heal event 50ms later, with a virtual-time client
// retrying RPCs across the cut the whole time. The client must see
// ErrPartitioned-classified failures while the cut holds and a success
// only after the heal fires.
func TestPartitionHealsMidLookup(t *testing.T) {
	t.Parallel()
	const seed = 41
	const healAt = 50 * time.Millisecond
	rng := rand.New(rand.NewPCG(seed, seed+1))
	r, err := ring.Generate(rng, 32)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(seed)
	faults := simnet.NewFaults(nil)
	tr := sim.NewTransport(
		sim.WithKernel(k),
		sim.WithStreamSeed(seed+2),
		sim.WithModel(sim.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond}),
		sim.WithFaults(faults),
	)
	net, err := chord.BuildStatic(chord.Config{}, tr, r.Points())
	if err != nil {
		t.Fatal(err)
	}
	caller := r.At(0)
	// Island: four contiguous nodes on the far side of the ring.
	island := make([]simnet.NodeID, 0, 4)
	mainland := make([]simnet.NodeID, 0, 28)
	for i := 0; i < 32; i++ {
		if i >= 16 && i < 20 {
			island = append(island, simnet.NodeID(r.At(i)))
		} else {
			mainland = append(mainland, simnet.NodeID(r.At(i)))
		}
	}
	faults.Partition("island", island, mainland)
	if !faults.Partitioned(simnet.NodeID(caller), island[0]) {
		t.Fatal("partition not in effect")
	}

	target := ring.Point(island[0])
	var partitionedFails int
	var successAt time.Duration
	var firstErr error
	k.Go("client", func() {
		for {
			// One pointer RPC straight across the cut.
			_, err := net.Successor(caller, target)
			if err == nil {
				successAt = k.Now()
				return
			}
			if firstErr == nil {
				firstErr = err
			}
			if errors.Is(err, simnet.ErrPartitioned) {
				partitionedFails++
			}
			if k.Sleep(5*time.Millisecond) != nil {
				return
			}
		}
	})
	k.PostAt(healAt, "heal", func() { faults.Heal("island") })
	k.Run()

	if partitionedFails == 0 {
		t.Errorf("no partition-classified failures before heal (first err: %v)", firstErr)
	}
	if successAt == 0 {
		t.Fatal("RPC across the healed cut never succeeded")
	}
	if successAt < healAt {
		t.Errorf("success at %v predates the heal at %v", successAt, healAt)
	}
	if faults.Partitioned(simnet.NodeID(caller), island[0]) {
		t.Error("Partitioned still true after heal")
	}
}

// TestRoutedLookupAcrossPartition drives full routed lookups (not just
// single RPCs) against keys owned by the island: while the cut holds,
// routes touching island fingers fail; after the heal, the same lookup
// succeeds and resolves to the island owner.
func TestRoutedLookupAcrossPartition(t *testing.T) {
	t.Parallel()
	const seed = 43
	const healAt = 40 * time.Millisecond
	rng := rand.New(rand.NewPCG(seed, seed+1))
	r, err := ring.Generate(rng, 32)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(seed)
	faults := simnet.NewFaults(nil)
	tr := sim.NewTransport(
		sim.WithKernel(k),
		sim.WithStreamSeed(seed+2),
		sim.WithModel(sim.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond}),
		sim.WithFaults(faults),
	)
	net, err := chord.BuildStatic(chord.Config{}, tr, r.Points())
	if err != nil {
		t.Fatal(err)
	}
	caller := r.At(0)
	// Cut the caller's half from the far half: far-side keys cannot
	// route without crossing the cut.
	var near, far []simnet.NodeID
	for i := 0; i < 32; i++ {
		if i < 16 {
			near = append(near, simnet.NodeID(r.At(i)))
		} else {
			far = append(far, simnet.NodeID(r.At(i)))
		}
	}
	faults.Partition("split", near, far)
	farKey := ring.Point(far[len(far)/2]) // owned by a far-side node

	var failsBeforeHeal int
	var gotOwner ring.Point
	var successAt time.Duration
	k.Go("client", func() {
		for {
			owner, err := net.Lookup(caller, farKey)
			if err == nil {
				gotOwner, successAt = owner, k.Now()
				return
			}
			failsBeforeHeal++
			if k.Sleep(5*time.Millisecond) != nil {
				return
			}
		}
	})
	k.PostAt(healAt, "heal", func() { faults.Heal("split") })
	k.Run()

	if failsBeforeHeal == 0 {
		t.Error("routed lookup never failed while partitioned")
	}
	if successAt == 0 {
		t.Fatal("routed lookup never succeeded after heal")
	}
	if successAt < healAt {
		t.Errorf("success at %v predates the heal at %v", successAt, healAt)
	}
	if gotOwner != farKey {
		t.Errorf("lookup resolved to %v, want the far-side owner %v", gotOwner, farKey)
	}
}

// TestDropsRacingChurn runs random in-flight drops concurrently with
// asynchronous churn crashes and maintenance, twice with the same
// seed: the run must finish (drops never wedge the kernel) and both
// replays must agree event for event.
func TestDropsRacingChurn(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) (events uint64, clock time.Duration, ok, fail int, rpcFails int64) {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		r, err := ring.Generate(rng, 32)
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel(seed)
		faults := simnet.NewFaults(rand.New(rand.NewPCG(seed+7, seed+8)))
		faults.SetDropRate(0.15)
		tr := sim.NewTransport(
			sim.WithKernel(k),
			sim.WithStreamSeed(seed+2),
			sim.WithModel(sim.Uniform{Min: time.Millisecond, Max: 3 * time.Millisecond}),
			sim.WithFaults(faults),
		)
		net, err := chord.BuildStatic(chord.Config{}, tr, r.Points())
		if err != nil {
			t.Fatal(err)
		}
		caller := r.At(0)
		d, err := net.AsDHT(caller)
		if err != nil {
			t.Fatal(err)
		}
		driver, err := churn.NewDriver(churn.Chord(net), rand.New(rand.NewPCG(seed+3, seed+4)), churn.Config{
			Events:    10,
			Protected: map[ring.Point]bool{caller: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		arun, err := driver.Schedule(k, churn.AsyncConfig{
			MeanInterval:        8 * time.Millisecond,
			MaintenanceInterval: 5 * time.Millisecond,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		srng := rand.New(rand.NewPCG(seed+5, seed+6))
		k.Go("sampler", func() {
			for !arun.Done() {
				if _, err := d.H(ring.Point(srng.Uint64())); err != nil {
					fail++
				} else {
					ok++
				}
				if k.Sleep(time.Millisecond) != nil {
					return
				}
			}
		})
		k.Run()
		return k.Processed(), k.Now(), ok, fail, tr.Meter().Snapshot().Failures
	}
	e1, c1, ok1, fail1, rf1 := run(97)
	e2, c2, ok2, fail2, rf2 := run(97)
	if ok1 == 0 {
		t.Error("no lookup ever succeeded under drops and churn")
	}
	// Individual RPCs must be dropping even when chord's backup
	// candidates save the end-to-end lookups.
	if rf1 == 0 {
		t.Error("15% drops plus crashes produced zero failed RPCs (faults inactive?)")
	}
	if e1 != e2 || c1 != c2 || ok1 != ok2 || fail1 != fail2 || rf1 != rf2 {
		t.Errorf("same seed, different runs: %d/%v/%d/%d/%d vs %d/%v/%d/%d/%d",
			e1, c1, ok1, fail1, rf1, e2, c2, ok2, fail2, rf2)
	}
}
