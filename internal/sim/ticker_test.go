package sim

import (
	"testing"
	"time"
)

func TestTickerFiresAtFixedPeriod(t *testing.T) {
	k := NewKernel(1)
	var fires []time.Duration
	tk := k.Every(10*time.Millisecond, 5*time.Millisecond, "tick", func(now time.Duration) {
		fires = append(fires, now)
	})
	k.Go("deadline", func() {
		_ = k.Sleep(32 * time.Millisecond)
		tk.Stop()
	})
	k.Run()
	want := []time.Duration{10, 15, 20, 25, 30}
	if len(fires) != len(want) {
		t.Fatalf("fired %d times (%v); want %d", len(fires), fires, len(want))
	}
	for i, at := range want {
		if fires[i] != at*time.Millisecond {
			t.Fatalf("fire %d at %v; want %v", i, fires[i], at*time.Millisecond)
		}
	}
}

func TestTickerStopFromOwnCallback(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var tk *Ticker
	tk = k.Every(0, time.Millisecond, "tick", func(time.Duration) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	k.Run()
	if n != 3 {
		t.Fatalf("fired %d times; want exactly 3 (Stop from callback must break the chain)", n)
	}
}

func TestTickerStoppedPendingEventIsNoop(t *testing.T) {
	k := NewKernel(1)
	n := 0
	tk := k.Every(5*time.Millisecond, 5*time.Millisecond, "tick", func(time.Duration) { n++ })
	// Stop before the first occurrence pops: the queued event must do
	// nothing and the kernel must still drain.
	k.PostAt(time.Millisecond, "stopper", tk.Stop)
	k.Run()
	if n != 0 {
		t.Fatalf("stopped ticker fired %d times; want 0", n)
	}
}

func TestTickerSurvivesKernelStop(t *testing.T) {
	k := NewKernel(1)
	k.Every(0, time.Millisecond, "tick", func(time.Duration) {})
	k.Go("watchdog", func() {
		_ = k.Sleep(10 * time.Millisecond)
		k.Stop()
	})
	done := make(chan struct{})
	go func() { k.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("kernel failed to drain with a live ticker after Stop")
	}
}
