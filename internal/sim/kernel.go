// Package sim is a deterministic discrete-event simulation kernel for
// the testbed: a virtual clock, an event queue keyed by (time, sequence
// number), cooperatively scheduled processes, and a virtual-clock
// Transport implementing simnet.Transport so Chord, Kademlia and every
// sampler run on simulated time unmodified.
//
// The kernel executes at most one process at a time. A process runs
// until it sleeps (directly via Kernel.Sleep, or implicitly inside a
// Transport.Call paying its link latency), at which point it yields to
// the kernel, which pops the next event — (time, seq) order — and
// resumes the process it wakes. Because user code never runs
// concurrently, a simulation is a pure function of its seeds and
// schedule: event order, latency histograms and sampled peers are
// bit-identical at any GOMAXPROCS, which the determinism tests assert.
//
// Two usage modes:
//
//   - Kernel mode: spawn processes with Go/At, then Run. Arrivals,
//     departures, maintenance sweeps and fault scripts are just timed
//     processes, concurrent in virtual time with in-flight samples.
//   - Free-running mode: use a Transport without ever calling Run. Each
//     Call advances the virtual clock by the sampled latency in the
//     caller's goroutine. This is the right mode for sequential
//     workloads (conformance suites, latency CDFs) and costs one atomic
//     add over the Direct transport.
//
// The two modes must not overlap: while Run is active, only kernel
// processes may touch the kernel or its transports.
package sim

import (
	"container/heap"
	"errors"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock counting nanoseconds since the start of the
// simulation. The zero value reads zero and is ready to use. Reads are
// safe from any goroutine.
type Clock struct {
	nanos atomic.Int64
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.nanos.Load()) }

// Advance moves the clock forward by d (non-positive d is a no-op). It
// is used by free-running transports; under a kernel the event loop owns
// the clock.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.nanos.Add(int64(d))
	}
}

// set jumps the clock to an absolute reading (event-loop use only).
func (c *Clock) set(t time.Duration) { c.nanos.Store(int64(t)) }

// ErrStopped is returned by Sleep after Stop: the sleeping process is
// being unwound so the kernel can drain. Transports translate it to
// simnet.ErrClosed, so protocol code unwinds through its normal error
// paths.
var ErrStopped = errors.New("sim: kernel stopped")

// event is one queue entry: wake process p at virtual time "at". seq
// breaks ties deterministically in schedule order.
type event struct {
	at  time.Duration
	seq uint64
	p   *proc
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// proc is one cooperatively scheduled process. The resume/yield channel
// pair is the coroutine handoff: exactly one of {kernel, this process}
// runs between any matched send/receive, which both serializes all user
// code and establishes happens-before for the kernel's plain fields.
type proc struct {
	name   string
	fn     func()
	resume chan struct{}
	yield  chan struct{}
}

// Kernel is the discrete-event scheduler. Create with NewKernel; zero
// value is not usable.
type Kernel struct {
	clock     Clock
	queue     eventQueue
	seq       uint64
	rng       *rand.Rand
	cur       *proc
	stopped   bool
	processed uint64
	observer  func(at time.Duration, seq uint64, proc string)
}

// NewKernel returns a kernel whose Rand is seeded from seed. Equal seeds
// plus equal schedules reproduce identical simulations.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.clock.Now() }

// Clock exposes the kernel's virtual clock (for transports and readers).
func (k *Kernel) Clock() *Clock { return &k.clock }

// Rand is the kernel's seeded generator. Processes run one at a time,
// so draws interleave deterministically.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Stopped reports whether Stop was called. Long-running processes should
// poll it (or propagate Sleep/Call errors) so the kernel can drain.
func (k *Kernel) Stopped() bool { return k.stopped }

// Processed returns the number of events executed so far — a cheap
// fingerprint for determinism checks alongside SetObserver.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetObserver installs a hook called for every event the loop executes,
// with the event's virtual time, sequence number and process name.
// Determinism tests hash this trace.
func (k *Kernel) SetObserver(fn func(at time.Duration, seq uint64, proc string)) {
	k.observer = fn
}

// Go spawns a process at the current virtual time.
func (k *Kernel) Go(name string, fn func()) { k.At(k.Now(), name, fn) }

// At spawns a process at absolute virtual time t (clamped to now).
// Processes are started in (time, schedule-order) just like any other
// event; fn runs on its own goroutine but never concurrently with other
// simulation code.
func (k *Kernel) At(t time.Duration, name string, fn func()) {
	if t < k.Now() {
		t = k.Now()
	}
	p := &proc{name: name, fn: fn, resume: make(chan struct{}), yield: make(chan struct{})}
	go func() {
		<-p.resume
		p.fn()
		p.yield <- struct{}{}
	}()
	k.schedule(t, p)
}

func (k *Kernel) schedule(at time.Duration, p *proc) {
	k.seq++
	heap.Push(&k.queue, &event{at: at, seq: k.seq, p: p})
}

// Sleep suspends the calling process for virtual duration d (negative d
// counts as zero); other processes and timed events run in between. It
// returns ErrStopped when the kernel is draining after Stop. Called from
// outside any process — the free-running mode — it simply advances the
// clock and returns nil.
func (k *Kernel) Sleep(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	p := k.cur
	if p == nil {
		k.clock.Advance(d)
		return nil
	}
	if k.stopped {
		return ErrStopped
	}
	k.schedule(k.Now()+d, p)
	p.yield <- struct{}{}
	<-p.resume
	if k.stopped {
		return ErrStopped
	}
	return nil
}

// Stop begins draining: the clock freezes, every in-flight Sleep returns
// ErrStopped as its process is next woken, and Run returns once all
// processes have unwound. Call it from a process (e.g. a timed watchdog)
// to end an open-ended simulation.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue is empty: every spawned process
// has returned and no sleeper remains. It must be called from the
// goroutine that owns the kernel, and nothing else may use the kernel or
// its transports while it runs.
func (k *Kernel) Run() {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if !k.stopped {
			k.clock.set(ev.at)
		}
		k.processed++
		if k.observer != nil {
			k.observer(ev.at, ev.seq, ev.p.name)
		}
		k.cur = ev.p
		ev.p.resume <- struct{}{}
		<-ev.p.yield
		k.cur = nil
	}
}
